# Development workflow recipes. `just verify` is the tier-1 gate every
# change must pass before merging.

# Full verification: release build, complete test suite, lint-clean.
verify:
    cargo build --release
    cargo test -q
    cargo clippy --workspace -- -D warnings

# Fast inner-loop check.
check:
    cargo check --workspace

# Everything the workspace tests, including per-crate suites.
test:
    cargo test --workspace

# Micro-benchmarks (complexity claims + observe overhead contract).
bench:
    cargo bench -p stwa-bench

# Regenerate every paper table/figure CSV under results/.
experiments:
    ./run_experiments.sh
