# Development workflow recipes. `just verify` is the tier-1 gate every
# change must pass before merging.

# Full verification: release build, complete test suite, lint-clean,
# and no kernel-throughput regression beyond 15% of the checked-in
# baseline (normalized against the in-tree reference kernel, so the
# gate is portable across hosts of different absolute speed).
verify:
    cargo build --release
    cargo test -q
    cargo test -q -p stwa-ckpt --test corruption
    cargo test -q -p stwa-core --test resume
    cargo clippy --workspace --all-targets -- -D warnings
    cargo run --release -p stwa-bench --bin bench_kernels -- --check BENCH_kernels.json
    cargo run --release -p stwa-bench --bin bench_train_step -- --check BENCH_train_step.json
    cargo run --release -p stwa-bench --bin bench_infer -- --check BENCH_infer.json
    cargo run --release -p stwa-bench --bin bench_epoch -- --check BENCH_epoch.json
    cargo run --release -p stwa-bench --bin bench_ckpt -- --check BENCH_ckpt.json
    cargo run --release -p stwa-bench --bin bench_attention -- --check BENCH_attention.json
    cargo run --release -p stwa-bench --bin bench_serve -- --check BENCH_serve.json

# Fast inner-loop check.
check:
    cargo check --workspace

# Everything the workspace tests, including per-crate suites.
test:
    cargo test --workspace

# Micro-benchmarks: kernel + attention scaling criterion suites, then
# the GEMM throughput report (refreshes BENCH_kernels.json).
bench:
    cargo bench -p stwa-bench --bench kernels --bench attention_scaling
    cargo run --release -p stwa-bench --bin bench_kernels -- --out BENCH_kernels.json
    cargo run --release -p stwa-bench --bin bench_train_step -- --out BENCH_train_step.json

# Serving-latency benchmark: graph eval vs the tape-free inference
# engine at batch 1/8/64, plus the quantized-panel section (refreshes
# BENCH_infer.json; enforces the >=2x batch-1 frozen speedup floor,
# the >=1.3x batch-64 int8 floor, and the bf16/int8 forecast-MAE
# accuracy gates).
bench-infer:
    cargo run --release -p stwa-bench --bin bench_infer -- --out BENCH_infer.json

# Quantized serving comparison: f32 vs bf16 vs int8 frozen panels at
# batch 1/8/64 with accuracy gates and the int8 speedup floor. Same
# binary as bench-infer — the quant section runs (and gates) on every
# invocation; this alias refreshes the committed baseline.
bench-quant: bench-infer

# Epoch-throughput benchmark: sequential vs 8-shard data-parallel
# training, plus the sharded bitwise-determinism self-check (refreshes
# BENCH_epoch.json; the speedup floor adapts to the host's core count).
bench-epoch:
    cargo run --release -p stwa-bench --bin bench_epoch -- --out BENCH_epoch.json

# Checkpoint save/load throughput through the model registry, with a
# bitwise round-trip assertion (refreshes BENCH_ckpt.json).
bench-ckpt:
    cargo run --release -p stwa-bench --bin bench_ckpt -- --out BENCH_ckpt.json

# Sparse vs dense sensor-attention scaling on corridor topologies up
# to 10240 sensors, with a bitwise sparse==dense self-check and a hard
# near-linearity floor (refreshes BENCH_attention.json).
bench-attention:
    cargo run --release -p stwa-bench --bin bench_attention -- --out BENCH_attention.json

# Network-serving load benchmark: a million pipelined HTTP requests
# against the stwa-serve front-end with a registry hot swap at the
# halfway mark, then the replica-scaling section (miss throughput at
# 1/2/4 model replicas plus a coordinated swap under full-pool load).
# Refreshes BENCH_serve.json and the stwa-observe run manifest;
# enforces zero errors, zero dropped requests, bitwise agreement with
# direct eval on every sampled response, the >=10x cached-hit p50
# floor, and the host-adaptive replica-scaling floor (>=2.5x at 4
# replicas on >=4-core hosts, pathology guard elsewhere).
bench-serve:
    cargo run --release -p stwa-bench --bin bench_serve -- --out BENCH_serve.json

# Regenerate every paper table/figure CSV under results/.
experiments:
    ./run_experiments.sh
