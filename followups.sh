#!/bin/bash
# Longer-budget follow-ups for the budget-sensitive claims.
set -u
cd "$(dirname "$0")"
run() {
  name=$1; out=$2; shift 2
  echo "[$(date +%H:%M:%S)] running $name $* (out: $out)"
  ./target/release/$name "$@" --out-dir results/long > logs/${out}.log 2>&1
  echo "[$(date +%H:%M:%S)] done $name"
}
mkdir -p results/long
run table08 table08_long --epochs 45
run table11 table11_long --epochs 40
echo "followups complete"
run ablation_flow ablation_flow_ext --epochs 15
