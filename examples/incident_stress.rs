//! Incident stress test: how do forecasts degrade when traffic deviates
//! from the regular daily pattern?
//!
//! The paper motivates *temporal-aware* parameters with exactly this
//! scenario ("accidents or road closures, where traffic patterns may
//! deviate from regular temporal patterns"). Here we synthesize a test
//! city with frequent incidents, train ST-WA and its spatial-only
//! ablation (S-WA) on it, and compare their errors on incident windows
//! vs. calm windows.
//!
//! ```sh
//! cargo run --release --example incident_stress
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use st_wa::model::{ForecastModel, StwaConfig, StwaModel, TrainConfig, Trainer};
use st_wa::traffic::{mae, DatasetConfig, TrafficDataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Crank the incident rate: ~1 in 4 sensor-days sees a disruption.
    let mut config = DatasetConfig::pems08_like();
    config.generator.incident_rate = 0.25;
    config.name = "PEMS08-incidents".to_string();
    let dataset = TrafficDataset::generate(config);
    let n = dataset.num_sensors();
    let (h, u) = (12, 12);
    let trainer = Trainer::new(TrainConfig {
        epochs: 10,
        train_stride: 4,
        eval_stride: 2,
        ..TrainConfig::default()
    });

    let test = dataset.test(h, u, 2)?;
    // Split test samples into "disrupted" (input window far below the
    // seasonal norm -> an incident is in progress) and "calm".
    let per_sample_mean: Vec<f32> = (0..test.x.shape()[0])
        .map(|s| {
            let w = test.x.narrow(0, s, 1).unwrap();
            w.mean_all().item().unwrap()
        })
        .collect();
    let mut sorted = per_sample_mean.clone();
    sorted.sort_by(f32::total_cmp);
    let threshold = sorted[sorted.len() / 10]; // lowest decile = disrupted
    let disrupted: Vec<usize> = (0..per_sample_mean.len())
        .filter(|&s| per_sample_mean[s] <= threshold)
        .collect();
    let calm: Vec<usize> = (0..per_sample_mean.len())
        .filter(|&s| per_sample_mean[s] > threshold)
        .collect();
    println!(
        "test windows: {} calm, {} disrupted (lowest-decile input flow)",
        calm.len(),
        disrupted.len()
    );

    for variant in ["S-WA", "ST-WA"] {
        let mut rng = StdRng::seed_from_u64(11);
        let config = match variant {
            "S-WA" => StwaConfig::s_wa(n, h, u),
            _ => StwaConfig::st_wa(n, h, u),
        };
        let model = StwaModel::new(config, &mut rng)?;
        trainer.train(&model, &dataset, h, u)?;
        let eval = |idx: &[usize], rng: &mut StdRng| -> f32 {
            let x = test.x.index_select(0, idx).unwrap();
            let y = test.y.index_select(0, idx).unwrap();
            let pred = trainer.predict(&model, &x, &dataset.scaler(), rng).unwrap();
            mae(&pred, &y)
        };
        let calm_mae = eval(&calm, &mut rng);
        let disrupted_mae = eval(&disrupted, &mut rng);
        println!(
            "{:>6} ({}): calm MAE {:6.2}   disrupted MAE {:6.2}   degradation x{:.2}",
            variant,
            model.name(),
            calm_mae,
            disrupted_mae,
            disrupted_mae / calm_mae.max(1e-6),
        );
    }
    println!(
        "\nThe temporal adaption variable z_t lets ST-WA adjust its parameters to the\n\
         disrupted regime; S-WA must reuse the same per-sensor parameters everywhere."
    );
    Ok(())
}
