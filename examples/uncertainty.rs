//! Predictive uncertainty from the stochastic latents.
//!
//! ST-WA's latent `Theta_t^(i)` is a *distribution* over model
//! parameters (the paper argues stochastic variables "generalize better
//! and have stronger representational power"). A capability that falls
//! out for free, which the paper never exercises: sampling the latents
//! across several forward passes yields a Monte-Carlo predictive
//! distribution — forecast intervals, not just point forecasts.
//!
//! This example trains ST-WA, draws 30 sampled forecasts for the test
//! set, and reports the empirical coverage of the ±2σ interval.
//!
//! ```sh
//! cargo run --release --example uncertainty
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use st_wa::model::{StwaConfig, StwaModel, TrainConfig, Trainer};
use st_wa::traffic::{DatasetConfig, TrafficDataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = TrafficDataset::generate(DatasetConfig::pems08_like());
    let n = dataset.num_sensors();
    let (h, u) = (12, 12);
    let mut rng = StdRng::seed_from_u64(21);
    let model = StwaModel::new(StwaConfig::st_wa(n, h, u), &mut rng)?;
    let trainer = Trainer::new(TrainConfig {
        epochs: 8,
        train_stride: 4,
        eval_stride: 8,
        ..TrainConfig::default()
    });
    let report = trainer.train(&model, &dataset, h, u)?;
    println!("trained ST-WA: test {}", report.test);

    let test = dataset.test(h, u, 8)?;
    let (mean, std) =
        trainer.predict_with_uncertainty(&model, &test.x, &dataset.scaler(), &mut rng, 30)?;

    // Empirical coverage of mean ± 2σ (plus an observation-noise floor —
    // the latent-induced spread only captures *parameter* uncertainty).
    let noise_floor = report.test.rmse * 0.5;
    let mut covered = 0usize;
    let mut total = 0usize;
    let mut avg_width = 0f64;
    for ((&m, &s), &y) in mean.data().iter().zip(std.data()).zip(test.y.data()) {
        let half = 2.0 * (s * s + noise_floor * noise_floor).sqrt();
        if (y - m).abs() <= half {
            covered += 1;
        }
        avg_width += 2.0 * half as f64;
        total += 1;
    }
    println!(
        "±2σ interval (param uncertainty + noise floor): coverage {:.1}% over {total} \
         forecasts, mean width {:.1} veh/5min",
        covered as f64 / total as f64 * 100.0,
        avg_width / total as f64,
    );
    println!(
        "mean parameter-uncertainty σ: {:.2} veh/5min (latent sampling only)",
        std.mean_all().item()?
    );
    println!(
        "\nThe deterministic ablation collapses this: its σ is exactly 0, so it\n\
         cannot express forecast confidence at all."
    );
    Ok(())
}
