//! Compare forecasting model families on one dataset — a miniature of
//! the paper's Table IV spanning all four awareness quadrants
//! (Table II): ST-agnostic (GRU, LongFormer), spatial-aware (AGCRN),
//! temporal-aware (meta-LSTM), and spatio-temporal aware (ST-WA).
//!
//! ```sh
//! cargo run --release --example compare_models
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use st_wa::baselines::build_model;
use st_wa::model::{TrainConfig, Trainer};
use st_wa::traffic::{DatasetConfig, TrafficDataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = TrafficDataset::generate(DatasetConfig::pems08_like());
    let n = dataset.num_sensors();
    let adj = dataset.network().adjacency();
    let (h, u) = (12, 12);
    let trainer = Trainer::new(TrainConfig {
        epochs: 10,
        train_stride: 4,
        eval_stride: 4,
        ..TrainConfig::default()
    });

    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "model", "MAE", "MAPE%", "RMSE", "s/epoch", "params"
    );
    println!("{}", "-".repeat(60));
    for (name, quadrant) in [
        ("GRU", "ST-agnostic"),
        ("LongFormer", "ST-agnostic"),
        ("AGCRN", "S-aware"),
        ("meta-LSTM", "T-aware"),
        ("ST-WA", "ST-aware"),
    ] {
        let mut rng = StdRng::seed_from_u64(1);
        let model = build_model(name, n, h, u, &adj, &mut rng)?;
        let report = trainer.train(model.as_ref(), &dataset, h, u)?;
        println!(
            "{:<12} {:>8.2} {:>8.2} {:>8.2} {:>9.2} {:>9}   ({quadrant})",
            name,
            report.test.mae,
            report.test.mape,
            report.test.rmse,
            report.epoch_seconds,
            report.param_count,
        );
    }
    Ok(())
}
