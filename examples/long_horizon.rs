//! Long-horizon forecasting (6 hours in, 6 hours out) — the setting
//! where the paper's linear window attention pays off: canonical
//! self-attention must score 72x72 timestamp pairs per layer, window
//! attention only 72 x p.
//!
//! Trains the SA (canonical attention) baseline and ST-WA at H = U = 72
//! and reports accuracy, per-epoch time, and peak tensor memory.
//!
//! ```sh
//! cargo run --release --example long_horizon
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use st_wa::baselines::SaTransformer;
use st_wa::model::{ForecastModel, StwaConfig, StwaModel, TrainConfig, Trainer};
use st_wa::tensor::memory;
use st_wa::traffic::{DatasetConfig, TrafficDataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = TrafficDataset::generate(DatasetConfig::pems08_like());
    let n = dataset.num_sensors();
    let (h, u) = (72, 72);
    let trainer = Trainer::new(TrainConfig {
        epochs: 4,
        train_stride: 8,
        eval_stride: 8,
        ..TrainConfig::default()
    });

    let mut rng = StdRng::seed_from_u64(3);
    // The paper's H=72 configuration: 3 layers of window size 6, 6, 2
    // with p=2 proxies per window.
    let st_wa = StwaModel::new(
        StwaConfig::st_wa(n, h, u)
            .with_windows(&[6, 6, 2])
            .with_proxies(2),
        &mut rng,
    )?;
    let sa = SaTransformer::new(n, h, u, 1, 16, 4, 2, &mut rng);

    println!("H = U = 72 (6 hours history, 6 hours horizon), N = {n}\n");
    for (label, model) in [
        ("canonical SA", &sa as &dyn ForecastModel),
        ("ST-WA", &st_wa),
    ] {
        let report = trainer.train(model, &dataset, h, u)?;
        println!(
            "{label:>12}: test {}  |  {:.2}s/epoch, peak {}",
            report.test,
            report.epoch_seconds,
            memory::format_bytes(report.peak_bytes),
        );
    }
    println!(
        "\nThe shape to notice: ST-WA's window attention keeps per-epoch time \
         and peak memory far below canonical attention at this horizon \
         (paper Fig. 10 / Table VI)."
    );
    Ok(())
}
