//! Quickstart: generate synthetic traffic, train ST-WA for a few
//! epochs, evaluate, and print a forecast.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use st_wa::model::{StwaConfig, StwaModel, TrainConfig, Trainer};
use st_wa::traffic::{DatasetConfig, TrafficDataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic PEMS-like dataset: 20 sensors on 4 corridors,
    //    two weeks of 5-minute flow counts.
    let dataset = TrafficDataset::generate(DatasetConfig::pems08_like());
    let n = dataset.num_sensors();
    println!(
        "dataset {}: {} sensors x {} timestamps",
        dataset.config().name,
        n,
        dataset.num_timestamps()
    );

    // 2. The paper's full model: stochastic spatio-temporal latents,
    //    window attention with window sizes (3, 2, 2), KL-regularized.
    let (h, u) = (12, 12); // one hour in, one hour out
    let mut rng = StdRng::seed_from_u64(7);
    let model = StwaModel::new(StwaConfig::st_wa(n, h, u), &mut rng)?;
    println!(
        "model {}: {} parameters",
        st_wa::model::ForecastModel::name(&model),
        st_wa::model::ForecastModel::store(&model).num_scalars()
    );

    // 3. Train with the paper's recipe (Adam, Huber + KL, early stop).
    let trainer = Trainer::new(TrainConfig {
        epochs: 8,
        train_stride: 4,
        eval_stride: 4,
        verbose: true,
        ..TrainConfig::default()
    });
    let report = trainer.train(&model, &dataset, h, u)?;
    println!("\ntest metrics: {}", report.test);

    // 4. Forecast the next hour for sensor 0 from the last test window.
    let test = dataset.test(h, u, 4)?;
    let last = test.x.shape()[0] - 1;
    let window = test.x.narrow(0, last, 1)?;
    let pred = trainer.predict(&model, &window, &dataset.scaler(), &mut rng)?;
    println!("\nsensor 0, next {u} steps (5-minute flow):");
    print!("  predicted:");
    for t in 0..u {
        print!(" {:6.1}", pred.at(&[0, 0, t, 0]));
    }
    print!("\n  actual:   ");
    for t in 0..u {
        print!(" {:6.1}", test.y.at(&[last, 0, t, 0]));
    }
    println!();

    // 5. Checkpoint round trip: save, restore into a fresh model, and
    //    verify the predictions agree bit for bit.
    let ckpt = std::env::temp_dir().join("stwa_quickstart.ckpt");
    st_wa::nn::checkpoint::save(st_wa::model::ForecastModel::store(&model), &ckpt)?;
    let mut rng2 = StdRng::seed_from_u64(999); // different init, overwritten by load
    let restored = StwaModel::new(StwaConfig::st_wa(n, h, u), &mut rng2)?;
    st_wa::nn::checkpoint::load(st_wa::model::ForecastModel::store(&restored), &ckpt)?;
    let pred2 = trainer.predict(&restored, &window, &dataset.scaler(), &mut rng)?;
    assert!(
        pred.approx_eq(&pred2, 0.0),
        "checkpoint must restore exactly"
    );
    println!("\ncheckpoint round trip OK -> {}", ckpt.display());
    Ok(())
}
