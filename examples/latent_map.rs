//! Visualize the learned spatial latents `z^(i)` (paper Fig. 9(b)):
//! train ST-WA, t-SNE-embed each sensor's latent mean to 2-D, and render
//! an ASCII scatter labeled by corridor. Same-street sensors should land
//! near each other.
//!
//! ```sh
//! cargo run --release --example latent_map
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use st_wa::model::{StwaConfig, StwaModel, TrainConfig, Trainer};
use st_wa::traffic::{DatasetConfig, TrafficDataset};
use st_wa::tsne::{tsne, TsneConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = TrafficDataset::generate(DatasetConfig::pems08_like());
    let n = dataset.num_sensors();
    let (h, u) = (12, 12);
    let mut rng = StdRng::seed_from_u64(5);
    let model = StwaModel::new(StwaConfig::st_wa(n, h, u), &mut rng)?;
    let trainer = Trainer::new(TrainConfig {
        epochs: 8,
        train_stride: 4,
        eval_stride: 4,
        ..TrainConfig::default()
    });
    let report = trainer.train(&model, &dataset, h, u)?;
    println!("trained ST-WA to test {}", report.test);

    let z = model
        .spatial_latent_means()
        .expect("ST-WA has spatial latents");
    let embedded = tsne(
        &z,
        &TsneConfig {
            perplexity: 5.0,
            seed: 5,
            ..TsneConfig::default()
        },
    )?;

    // ASCII scatter: each sensor plotted as its corridor digit.
    const W: usize = 68;
    const HGT: usize = 24;
    let (mut min_x, mut max_x) = (f32::INFINITY, f32::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f32::INFINITY, f32::NEG_INFINITY);
    for i in 0..n {
        min_x = min_x.min(embedded.at(&[i, 0]));
        max_x = max_x.max(embedded.at(&[i, 0]));
        min_y = min_y.min(embedded.at(&[i, 1]));
        max_y = max_y.max(embedded.at(&[i, 1]));
    }
    let mut canvas = vec![vec![' '; W]; HGT];
    for i in 0..n {
        let cx =
            ((embedded.at(&[i, 0]) - min_x) / (max_x - min_x + 1e-6) * (W - 1) as f32) as usize;
        let cy =
            ((embedded.at(&[i, 1]) - min_y) / (max_y - min_y + 1e-6) * (HGT - 1) as f32) as usize;
        let corridor = dataset.network().sensors()[i].corridor;
        canvas[cy][cx] = char::from_digit(corridor as u32 % 10, 10).unwrap_or('?');
    }
    println!("\nt-SNE of z^(i), labeled by corridor id (paper Fig. 9(b)):\n");
    for row in canvas {
        println!("  {}", row.into_iter().collect::<String>());
    }
    println!("\nEach digit is one sensor; clusters of equal digits = sensors of");
    println!("the same street discovering shared latent structure, purely from flow data.");
    Ok(())
}
