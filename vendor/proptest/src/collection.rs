//! Collection strategies: `vec(element, size)`.

use crate::{Strategy, TestRng};
use rand::Rng;

/// Inclusive length bounds for [`vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "vec size range is empty: {r:?}");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "vec size range is empty: {r:?}");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
