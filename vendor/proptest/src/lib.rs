//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset the workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, range and tuple
//! strategies, [`collection::vec`], [`Just`], [`any`], and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** A failing case panics with its assertion message;
//!   because every test's stream is seeded from a stable hash of its
//!   fully-qualified name, failures reproduce exactly on re-run.
//! - **Fixed determinism.** There is no `PROPTEST_CASES`/env handling;
//!   case counts come from [`ProptestConfig`] only.

pub mod collection;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The RNG handed to strategies. A concrete type keeps [`Strategy`]
/// object-safe and simple.
pub type TestRng = StdRng;

/// Per-test deterministic RNG: FNV-1a over the test's qualified name,
/// folded into a fixed workspace seed.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ 0x5712_57a5_u64)
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test body runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values for one test argument.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The whole-domain strategy for `T` — `any::<bool>()` et al.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Everything the workspace's tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Define deterministic property tests.
///
/// Supported grammar (the subset upstream tests in this workspace use):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))] // optional
///     #[test]
///     fn my_property(x in 0usize..10, data in collection::vec(-1.0f32..1.0, 8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($config:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng =
                    $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                    { $body }
                }
            }
        )*
    };
}

/// Assert within a [`proptest!`] body. Panics (fails the test) with the
/// condition text; cases replay deterministically.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "prop_assert failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..7, y in -1.5f32..1.5) {
            prop_assert!(x < 7);
            prop_assert!((-1.5..1.5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in collection::vec(0u8..=255, 3..9),
            exact in collection::vec(0.0f32..1.0, 5),
        ) {
            prop_assert!((3..9).contains(&v.len()));
            prop_assert_eq!(exact.len(), 5);
        }

        #[test]
        fn prop_map_applies(n in (1usize..4).prop_map(|n| n * 10)) {
            prop_assert!(n == 10 || n == 20 || n == 30);
        }

        #[test]
        fn tuples_and_any(pair in (0usize..3, any::<bool>())) {
            prop_assert!(pair.0 < 3);
        }
    }

    #[test]
    fn same_test_name_reproduces_stream() {
        let mut a = test_rng("x::y");
        let mut b = test_rng("x::y");
        let s = 0usize..1000;
        assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
    }
}
