//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!` / `criterion_main!` macros — with two modes,
//! mirroring upstream behaviour:
//!
//! - **Bench mode** (`cargo bench`, detected by the `--bench` flag cargo
//!   passes): auto-calibrated iteration counts, `sample_size` timed
//!   samples, median/mean/min report per benchmark.
//! - **Test mode** (`cargo test`, no `--bench` flag): each benchmark
//!   body runs exactly once so the suite stays fast and green.
//!
//! A positional CLI filter (substring match on the benchmark id, as in
//! upstream) is honoured in both modes.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time per collected sample in bench mode.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Bench,
    Test,
}

/// Top-level harness handle, one per bench binary.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut mode = Mode::Test;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => mode = Mode::Bench,
                a if !a.starts_with('-') => filter = Some(a.to_string()),
                _ => {}
            }
        }
        Criterion { mode, filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Criterion {
        let id = id.to_string();
        run_one(self.mode, &self.filter, &id, 100, f);
        self
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2, got {n}");
        self.sample_size = n;
        self
    }

    /// No-op in this stand-in; samples are bounded by count, not time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// No-op in this stand-in; warm-up is a fixed fraction of sampling.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(
            self.criterion.mode,
            &self.criterion.filter,
            &full,
            self.sample_size,
            f,
        );
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

/// `function_name/parameter` benchmark identifier.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Hands the benchmark body its timing loop.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    /// Median / mean / min nanoseconds per iteration, filled by `iter`.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.mode == Mode::Test {
            black_box(f());
            return;
        }
        // Calibrate: how many iterations fill one sample window?
        let mut iters_per_sample = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= SAMPLE_TARGET || iters_per_sample >= 1 << 24 {
                break;
            }
            // Grow geometrically toward the target window.
            iters_per_sample = if elapsed.is_zero() {
                iters_per_sample * 16
            } else {
                let scale = SAMPLE_TARGET.as_secs_f64() / elapsed.as_secs_f64();
                ((iters_per_sample as f64 * scale.min(16.0)).ceil() as u64).max(iters_per_sample + 1)
            };
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        self.result = Some((median, mean, samples[0]));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    mode: Mode,
    filter: &Option<String>,
    id: &str,
    sample_size: usize,
    mut f: F,
) {
    if let Some(pat) = filter {
        if !id.contains(pat.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        mode,
        sample_size,
        result: None,
    };
    f(&mut bencher);
    match (mode, bencher.result) {
        (Mode::Test, _) => println!("test {id} ... ok"),
        (Mode::Bench, Some((median, mean, min))) => println!(
            "{id:<48} median {:>12}  mean {:>12}  min {:>12}",
            fmt_ns(median),
            fmt_ns(mean),
            fmt_ns(min)
        ),
        (Mode::Bench, None) => println!("{id:<48} (no measurement: iter was never called)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Collect benchmark functions into one runner, as in upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("square", 64).to_string(), "square/64");
    }

    #[test]
    fn test_mode_runs_body_once() {
        let mut calls = 0usize;
        let mut b = Bencher {
            mode: Mode::Test,
            sample_size: 10,
            result: None,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.result.is_none());
    }

    #[test]
    fn bench_mode_measures_and_reports() {
        let mut b = Bencher {
            mode: Mode::Bench,
            sample_size: 3,
            result: None,
        };
        b.iter(|| black_box(2u64.pow(10)));
        let (median, mean, min) = b.result.expect("bench mode must record a result");
        assert!(median > 0.0 && mean > 0.0 && min > 0.0);
        assert!(min <= median);
    }

    #[test]
    fn fmt_ns_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(1.2e4).ends_with("µs"));
        assert!(fmt_ns(3.4e6).ends_with("ms"));
        assert!(fmt_ns(2.5e9).ends_with(" s"));
    }
}
