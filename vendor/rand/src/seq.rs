//! Slice helpers: Fisher-Yates shuffle and uniform choice.

use crate::Rng;

pub trait SliceRandom {
    type Item;

    /// Uniform in-place permutation (Fisher-Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn choose_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
