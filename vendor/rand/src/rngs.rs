//! Concrete generators. [`StdRng`] is the workspace's only generator:
//! xoshiro256++ (Blackman & Vigna), seeded via SplitMix64.

use crate::{RngCore, SeedableRng};

/// Deterministic seeded generator: xoshiro256++.
///
/// Not the same stream as upstream rand's ChaCha12-based `StdRng`; see
/// the crate docs. Statistical quality is ample for initialization,
/// shuffling, and synthetic-data generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.step().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> StdRng {
        let mut s = [0u64; 4];
        for (lane, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_does_not_stick_at_zero() {
        let mut rng = StdRng::from_seed([0; 32]);
        assert!((0..8).any(|_| rng.next_u64() != 0));
    }

    #[test]
    fn clone_replays_the_stream() {
        let mut a = StdRng::seed_from_u64(17);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
