//! Concrete generators. [`StdRng`] is the workspace's only generator:
//! xoshiro256++ (Blackman & Vigna), seeded via SplitMix64.

use crate::{RngCore, SeedableRng};

/// Deterministic seeded generator: xoshiro256++.
///
/// Not the same stream as upstream rand's ChaCha12-based `StdRng`; see
/// the crate docs. Statistical quality is ample for initialization,
/// shuffling, and synthetic-data generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Current internal state — everything needed to resume the stream
    /// exactly where it is (checkpoint/restore support).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a state captured by [`StdRng::state`];
    /// the resulting stream replays bitwise.
    ///
    /// # Panics
    ///
    /// The all-zero state is a fixed point of xoshiro256++ and can never
    /// be produced by [`StdRng::state`] on a properly seeded generator;
    /// callers restoring untrusted state must reject it before calling.
    pub fn from_state(s: [u64; 4]) -> StdRng {
        assert!(s != [0; 4], "xoshiro256++ state must be non-zero");
        StdRng { s }
    }

    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.step().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> StdRng {
        let mut s = [0u64; 4];
        for (lane, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_does_not_stick_at_zero() {
        let mut rng = StdRng::from_seed([0; 32]);
        assert!((0..8).any(|_| rng.next_u64() != 0));
    }

    #[test]
    fn clone_replays_the_stream() {
        let mut a = StdRng::seed_from_u64(17);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn state_roundtrip_replays_the_stream() {
        let mut a = StdRng::seed_from_u64(42);
        a.next_u64();
        let saved = a.state();
        let draws: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let mut b = StdRng::from_state(saved);
        let replayed: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(draws, replayed);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_state_is_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }
}
