//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates.io mirror,
//! so the workspace vendors the small API subset it actually uses:
//! [`RngCore`], [`Rng`] (`gen_range` / `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`), [`rngs::StdRng`], and [`seq::SliceRandom`]
//! (`shuffle` / `choose`).
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream rand's ChaCha12, but every draw in the workspace
//! flows from explicit `seed_from_u64` calls, so determinism (the
//! property the tests rely on) is preserved. Golden values checked into
//! tests are derived from *this* generator.

pub mod rngs;
pub mod seq;

/// Low-level source of randomness: raw 32/64-bit words and byte fill.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types [`Rng::gen_range`] can sample uniformly.
///
/// A single generic `SampleRange<T> for Range<T>` impl (below) hangs off
/// this trait so type inference can flow *backwards* from the expected
/// result type into untyped float literals (`rng.gen_range(-0.2..0.2)`
/// in an `f32` context), exactly as in upstream rand.
pub trait SampleUniform: PartialOrd + Copy + std::fmt::Display {
    /// A sample from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

/// A range that can produce a single sample — the argument type of
/// [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(
            self.start < self.end,
            "gen_range: empty range {}..{}",
            self.start,
            self.end
        );
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
        T::sample_between(rng, lo, hi, true)
    }
}

/// Map a raw `u64` onto `[0, span)` with a widening multiply; the bias
/// for the span sizes used here (< 2^32) is below one part in 2^32.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
                } else {
                    lo.wrapping_add(bounded_u64(rng, span) as $t)
                }
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty, $mantissa_bits:expr, $shift:expr);*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                _inclusive: bool,
            ) -> $t {
                // Uniform in [0, 1): the top mantissa-many bits scaled
                // down; strictly below 1, so lo maps in and hi stays out
                // up to rounding of the final affine map.
                let unit = (rng.next_u64() >> $shift) as $t
                    / (1u64 << $mantissa_bits) as $t;
                let v = lo + (hi - lo) * unit;
                // The affine map can round up onto `hi`; step back inside.
                if v >= hi { hi.next_down().max(lo) } else { v }
            }
        }
    )*};
}

impl_uniform_float!(f32, 24, 40; f64, 53, 11);

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] (including unsized `dyn RngCore`).
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} outside [0, 1]");
        ((p * (u64::MAX as f64 + 1.0)) as u128) > self.next_u64() as u128
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (the same
    /// expansion upstream rand uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x: f32 = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = rng.gen_range(0usize..5);
            assert!(n < 5);
            let m: usize = rng.gen_range(3usize..=3);
            assert_eq!(m, 3);
        }
    }

    #[test]
    fn gen_range_covers_small_int_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..4 should appear: {seen:?}");
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 hit rate: {hits}/10000");
    }

    #[test]
    fn float_unit_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let mean: f64 = (0..20_000)
            .map(|_| rng.gen_range(0.0f64..1.0))
            .sum::<f64>()
            / 20_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0usize..10);
        assert!(v < 10);
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
