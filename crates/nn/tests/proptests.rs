//! Property-based tests of the nn layer semantics: gradient-checked
//! layers on random inputs, batching invariants, loss identities.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use stwa_autograd::{check_gradient, Graph};
use stwa_nn::batch::BatchIter;
use stwa_nn::layers::{Activation, GruCell, LayerNorm, Linear, Mlp};
use stwa_nn::loss::{huber, kl_standard_normal, mae, mse};
use stwa_nn::ParamStore;
use stwa_tensor::Tensor;

fn vecs(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn linear_layer_gradcheck(data in vecs(6), seed in 0u64..100) {
        let x = Tensor::from_vec(data, &[2, 3]).unwrap();
        let r = check_gradient(&x, 1e-2, |v| {
            let store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(seed);
            let lin = Linear::new(&store, "l", 3, 4, &mut rng);
            lin.forward(v.graph(), v)?.square()?.mean_all()
        }).unwrap();
        prop_assert!(r.passes(3e-2), "{r:?}");
    }

    #[test]
    fn layernorm_gradcheck(data in vecs(8), seed in 0u64..100) {
        // Keep some spread so the variance is well-conditioned.
        let x = Tensor::from_vec(
            data.iter().enumerate().map(|(i, v)| v + i as f32 * 0.3).collect(),
            &[2, 4],
        ).unwrap();
        let r = check_gradient(&x, 1e-2, |v| {
            let store = ParamStore::new();
            let ln = LayerNorm::new(&store, "ln", 4);
            ln.forward(v.graph(), v)?.square()?.mean_all()
        }).unwrap();
        let _ = seed;
        prop_assert!(r.passes(5e-2), "{r:?}");
    }

    #[test]
    fn gru_cell_gradcheck(data in vecs(4), seed in 0u64..50) {
        let x = Tensor::from_vec(data, &[2, 2]).unwrap();
        let r = check_gradient(&x, 1e-2, |v| {
            let store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(seed);
            let cell = GruCell::new(&store, "g", 2, 3, &mut rng);
            let h = v.graph().constant(Tensor::zeros(&[2, 3]));
            cell.step(v.graph(), v, &h)?.square()?.mean_all()
        }).unwrap();
        prop_assert!(r.passes(4e-2), "{r:?}");
    }

    #[test]
    fn mlp_composes_like_manual_layers(data in vecs(6), seed in 0u64..50) {
        // An MLP with identity activations equals chaining its Linears.
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&store, "m", &[3, 5, 2],
            &[Activation::Identity, Activation::Identity], &mut rng);
        let g = Graph::new();
        let x = g.constant(Tensor::from_vec(data, &[2, 3]).unwrap());
        let via_mlp = mlp.forward(&g, &x).unwrap();
        // Manual: layer params live in the same store (w0, b0, w1, b1).
        let params = store.params();
        let w0 = g.constant(params[0].value());
        let b0 = g.constant(params[1].value());
        let w1 = g.constant(params[2].value());
        let b1 = g.constant(params[3].value());
        let manual = x.matmul(&w0).unwrap().add(&b0).unwrap()
            .matmul(&w1).unwrap().add(&b1).unwrap();
        prop_assert!(via_mlp.value().approx_eq(&manual.value(), 1e-5));
    }

    #[test]
    fn huber_between_zero_and_mae_scaled(p in vecs(6), t in vecs(6), delta in 0.1f32..3.0) {
        // 0 <= H(p, t) <= delta * mean|p - t|
        let g = Graph::new();
        let pv = g.constant(Tensor::from_vec(p.clone(), &[6]).unwrap());
        let tv = g.constant(Tensor::from_vec(t.clone(), &[6]).unwrap());
        let h = huber(&pv, &tv, delta).unwrap().value().item().unwrap();
        let m = mae(&pv, &tv).unwrap().value().item().unwrap();
        prop_assert!(h >= 0.0);
        prop_assert!(h <= delta * m + 1e-5, "h={h} delta*mae={}", delta * m);
    }

    #[test]
    fn huber_converges_to_half_mse_for_large_delta(p in vecs(5), t in vecs(5)) {
        let g = Graph::new();
        let pv = g.constant(Tensor::from_vec(p, &[5]).unwrap());
        let tv = g.constant(Tensor::from_vec(t, &[5]).unwrap());
        let h = huber(&pv, &tv, 1e4).unwrap().value().item().unwrap();
        let m = mse(&pv, &tv).unwrap().value().item().unwrap();
        prop_assert!((h - 0.5 * m).abs() < 1e-4);
    }

    #[test]
    fn kl_nonnegative_for_any_gaussian(mu in vecs(4), logvar in vecs(4)) {
        let g = Graph::new();
        let m = g.constant(Tensor::from_vec(mu, &[4]).unwrap());
        let lv = g.constant(Tensor::from_vec(logvar, &[4]).unwrap());
        let kl = kl_standard_normal(&m, &lv).unwrap().value().item().unwrap();
        prop_assert!(kl >= -1e-6, "KL must be nonnegative, got {kl}");
    }

    #[test]
    fn batches_partition_samples(n in 1usize..20, batch in 1usize..8) {
        let x = Tensor::from_fn(&[n, 2], |i| i[0] as f32);
        let y = Tensor::from_fn(&[n, 1], |i| i[0] as f32);
        let total: usize = BatchIter::new(&x, &y, batch).unwrap()
            .map(|(bx, _)| bx.shape()[0])
            .sum();
        prop_assert_eq!(total, n);
        let mut rng = StdRng::seed_from_u64(0);
        let shuffled_total: usize = BatchIter::shuffled(&x, &y, batch, &mut rng).unwrap()
            .map(|(bx, _)| bx.shape()[0])
            .sum();
        prop_assert_eq!(shuffled_total, n);
    }
}

// ---- Fused-kernel bitwise equality (buffer-pool / fusion switches) ----
//
// The fused Huber and bias_add+activation tape nodes must reproduce the
// reference op chains bit for bit, in both the forward values and the
// gradients they backpropagate. The switches are process-global, so the
// toggling tests serialize on a lock (proptest can run cases on several
// threads at once).

static TOGGLE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn with_switches<T>(on: bool, f: impl FnOnce() -> T) -> T {
    use stwa_tensor::memory;
    memory::set_pool_enabled(on);
    memory::set_fused_enabled(on);
    let out = f();
    memory::set_pool_enabled(true);
    memory::set_fused_enabled(true);
    out
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Loss value and d(loss)/d(pred) of the Huber loss; `fused` picks the
/// single-node kernel or the seven-node reference chain.
fn huber_loss_and_grad(fused: bool, pred: &[f32], target: &[f32], delta: f32) -> (f32, Vec<f32>) {
    with_switches(fused, || {
        let graph = Graph::new();
        let cols = pred.len() / 2;
        let p = graph.leaf(Tensor::from_vec(pred.to_vec(), &[2, cols]).unwrap());
        let t = graph.constant(Tensor::from_vec(target.to_vec(), &[2, cols]).unwrap());
        let loss = huber(&p, &t, delta).unwrap();
        graph.backward(&loss).unwrap();
        let g = graph.grad(&p).unwrap();
        (loss.value().item().unwrap(), g.data().to_vec())
    })
}

/// Forward values, input gradient, and all parameter gradients of one
/// `Linear::forward_act` step under the given switch regime.
fn linear_act_run(
    fused: bool,
    data: &[f32],
    seed: u64,
    act: Activation,
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    with_switches(fused, || {
        let graph = Graph::new();
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let lin = Linear::new(&store, "l", 3, 4, &mut rng);
        let x = graph.leaf(Tensor::from_vec(data.to_vec(), &[2, 3]).unwrap());
        let y = lin.forward_act(&graph, &x, act).unwrap();
        let out = y.value().data().to_vec();
        let loss = y.square().unwrap().mean_all().unwrap();
        graph.backward(&loss).unwrap();
        let gx = graph.grad(&x).unwrap().data().to_vec();
        let mut gp = Vec::new();
        for p in store.params() {
            gp.extend_from_slice(p.grad().expect("param grad").data());
        }
        (out, gx, gp)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fused_huber_bitwise_matches_reference(
        pred in vecs(8),
        target in vecs(8),
        delta in 0.25f32..2.0,
    ) {
        let _guard = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (lf, gf) = huber_loss_and_grad(true, &pred, &target, delta);
        let (lr, gr) = huber_loss_and_grad(false, &pred, &target, delta);
        prop_assert_eq!(lf.to_bits(), lr.to_bits(), "loss {lf} vs {lr}");
        prop_assert_eq!(bits(&gf), bits(&gr));
    }

    #[test]
    fn fused_bias_add_act_bitwise_matches_unfused(data in vecs(6), seed in 0u64..100) {
        let _guard = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for act in [
            Activation::Identity,
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
        ] {
            let (of, xf, pf) = linear_act_run(true, &data, seed, act);
            let (or_, xr, pr) = linear_act_run(false, &data, seed, act);
            prop_assert_eq!(bits(&of), bits(&or_), "forward values diverge for {act:?}");
            prop_assert_eq!(bits(&xf), bits(&xr), "input grads diverge for {act:?}");
            prop_assert_eq!(bits(&pf), bits(&pr), "param grads diverge for {act:?}");
        }
    }
}

// ---- Thread-count invariance of the clipping norm ----
//
// `global_grad_norm` reduces every gradient through fixed-length chunk
// lanes, so its bits must not depend on how many pool threads execute
// the reduction. Gradients larger than the tensor crate's parallel
// threshold exercise the pooled path; small ones take the scalar fold.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn global_grad_norm_is_thread_count_invariant(
        seed in 0u64..1000,
        amp in 0.1f32..4.0,
        clip in 0.5f32..10.0,
    ) {
        let _guard = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        use rand::RngCore;
        let mut rng = StdRng::seed_from_u64(seed);
        // One gradient well above the parallel threshold (1 << 16) plus
        // two small ones that stay on the scalar fold.
        let sizes = [70_000usize, 513, 7];
        let store = ParamStore::new();
        for (i, &n) in sizes.iter().enumerate() {
            let data: Vec<f32> = (0..n)
                .map(|_| (rng.next_u64() as f32 / u64::MAX as f32 - 0.5) * amp)
                .collect();
            let p = store.param(format!("p{i}"), Tensor::zeros(&[n]));
            p.set_grad(Tensor::from_vec(data, &[n]).unwrap());
        }
        let params = store.params();

        let before = stwa_pool::current_threads();
        stwa_pool::set_threads(1);
        let norm_1 = stwa_nn::optim::global_grad_norm(&params);
        stwa_pool::set_threads(8);
        let norm_8 = stwa_nn::optim::global_grad_norm(&params);
        stwa_pool::set_threads(before);
        prop_assert_eq!(norm_1.to_bits(), norm_8.to_bits(), "norm {norm_1} vs {norm_8}");

        // The derived clip scale is therefore invariant too.
        let max_norm = clip;
        let scale_1 = if norm_1 > max_norm && norm_1 > 0.0 { max_norm / norm_1 } else { 1.0 };
        let scale_8 = if norm_8 > max_norm && norm_8 > 0.0 { max_norm / norm_8 } else { 1.0 };
        prop_assert_eq!(scale_1.to_bits(), scale_8.to_bits());
    }
}
