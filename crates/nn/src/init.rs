//! Weight initializers.
//!
//! All initializers take an explicit RNG so model construction is
//! deterministic under a fixed seed.

use rand::Rng;
use stwa_tensor::Tensor;

/// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// The default for dense projections and attention matrices.
pub fn xavier_uniform(
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut impl Rng,
) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(shape, -a, a, rng)
}

/// He/Kaiming uniform: `U(-a, a)` with `a = sqrt(6 / fan_in)` — used in
/// front of ReLU nonlinearities.
pub fn he_uniform(shape: &[usize], fan_in: usize, rng: &mut impl Rng) -> Tensor {
    let a = (6.0 / fan_in as f32).sqrt();
    Tensor::rand_uniform(shape, -a, a, rng)
}

/// Small-uniform init used for recurrent weights: `U(-1/sqrt(d), 1/sqrt(d))`.
pub fn lecun_uniform(shape: &[usize], fan_in: usize, rng: &mut impl Rng) -> Tensor {
    let a = (1.0 / fan_in as f32).sqrt();
    Tensor::rand_uniform(shape, -a, a, rng)
}

/// Gaussian init with explicit std (used by latent variables and proxies).
pub fn normal(shape: &[usize], std: f32, rng: &mut impl Rng) -> Tensor {
    Tensor::rand_normal(shape, 0.0, std, rng)
}

/// All-zero init (biases).
pub fn zeros(shape: &[usize]) -> Tensor {
    Tensor::zeros(shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_bound() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = xavier_uniform(&[64, 64], 64, 64, &mut rng);
        let bound = (6.0f32 / 128.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= bound));
        // Not degenerate.
        assert!(t.data().iter().any(|&x| x.abs() > bound * 0.5));
    }

    #[test]
    fn he_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = he_uniform(&[100], 25, &mut rng);
        assert!(t.data().iter().all(|&x| x.abs() <= (6.0f32 / 25.0).sqrt()));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = xavier_uniform(&[8], 8, 8, &mut StdRng::seed_from_u64(3));
        let b = xavier_uniform(&[8], 8, 8, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }
}
