//! Parameters and the parameter store.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;
use stwa_autograd::{Graph, Var};
use stwa_tensor::{Result, Tensor, TensorError};

/// Monotonic mutation counter shared by a [`ParamStore`] and every
/// parameter it registered. Any `set_value` — an optimizer step, a
/// checkpoint restore — bumps it, so consumers that cached derived
/// state (packed inference weights, decoded projections) can detect
/// staleness with a single integer compare.
#[derive(Clone, Default)]
pub struct StoreVersion(Rc<Cell<u64>>);

impl StoreVersion {
    /// Current mutation count.
    pub fn get(&self) -> u64 {
        self.0.get()
    }

    fn bump(&self) {
        self.0.set(self.0.get() + 1);
    }
}

struct ParamInner {
    name: String,
    value: RefCell<Tensor>,
    /// The leaf `Var` this parameter was bound to on the most recent
    /// graph; the optimizer reads gradients through it after backward.
    bound: RefCell<Option<Var>>,
    /// Externally injected gradient (the data-parallel trainer's
    /// fixed-order shard reduction lands here). Takes precedence over
    /// the graph binding in [`Param::grad`] until [`Param::unbind`].
    injected_grad: RefCell<Option<Tensor>>,
    /// The owning store's mutation counter; bumped on every `set_value`.
    version: StoreVersion,
}

/// A trainable tensor.
///
/// `Param` is a cheap `Rc` handle: layers hold clones of the handles they
/// registered with the [`ParamStore`], and the optimizer iterates the
/// store. Parameters are single-threaded, like the autograd graph.
#[derive(Clone)]
pub struct Param(Rc<ParamInner>);

impl Param {
    /// Current value (cloned).
    pub fn value(&self) -> Tensor {
        self.0.value.borrow().clone()
    }

    /// Shape of the stored value.
    pub fn shape(&self) -> Vec<usize> {
        self.0.value.borrow().shape().to_vec()
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.0.value.borrow().len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Debug name (layer path).
    pub fn name(&self) -> &str {
        &self.0.name
    }

    /// Bind the parameter onto `graph` as a gradient-requiring leaf.
    ///
    /// Every layer `forward` starts by leafing its parameters; the
    /// returned `Var` participates in the computation, and the binding is
    /// remembered so [`Param::grad`] can read the gradient after
    /// `graph.backward`.
    ///
    /// Calling `leaf` again **on the same graph** returns the existing
    /// binding instead of creating a new node. This is load-bearing for
    /// correctness, not just economy: a parameter used several times on
    /// one tape (a fusion layer applied per window, a graph convolution
    /// applied per timestep) must be a *single* node so the backward
    /// sweep accumulates every use's contribution into the one gradient
    /// the optimizer reads. Separate leaves would each hold a partial
    /// gradient and [`Param::grad`] would see only the last one.
    pub fn leaf(&self, graph: &Graph) -> Var {
        if let Some(existing) = self.0.bound.borrow().as_ref() {
            if existing.belongs_to(graph) {
                return existing.clone();
            }
        }
        let var = graph.leaf(self.0.value.borrow().clone());
        *self.0.bound.borrow_mut() = Some(var.clone());
        var
    }

    /// Gradient the optimizer should apply this step: an injected
    /// gradient when one is present (the sharded trainer's combined
    /// reduction), otherwise whatever backward accumulated on the most
    /// recent bound graph.
    pub fn grad(&self) -> Option<Tensor> {
        if let Some(g) = self.0.injected_grad.borrow().as_ref() {
            return Some(g.clone());
        }
        let bound = self.0.bound.borrow();
        bound.as_ref().and_then(|v| v.graph().grad(v))
    }

    /// Squared L2 norm of the gradient without cloning it — what the
    /// optimizers' global-norm clipping measures every step. Large
    /// gradients reduce through the pool's fixed-chunk lanes
    /// ([`stwa_tensor::reduce::sq_norm`]); identical at any thread
    /// count.
    pub fn grad_sq_norm(&self) -> Option<f32> {
        if let Some(g) = self.0.injected_grad.borrow().as_ref() {
            return Some(stwa_tensor::reduce::sq_norm(g.data()));
        }
        let bound = self.0.bound.borrow();
        bound.as_ref().and_then(|v| v.graph().grad_sq_norm(v))
    }

    /// Inject an externally computed gradient. Until [`Param::unbind`]
    /// clears it, [`Param::grad`] and [`Param::grad_sq_norm`] serve the
    /// injected tensor instead of reading the graph binding — this is
    /// how the data-parallel trainer hands its reduced shard gradients
    /// to an unmodified optimizer.
    pub fn set_grad(&self, grad: Tensor) {
        assert_eq!(
            grad.shape(),
            self.shape().as_slice(),
            "set_grad must match the parameter shape ({})",
            self.name()
        );
        *self.0.injected_grad.borrow_mut() = Some(grad);
    }

    /// Overwrite the stored value (used by optimizers and tests).
    ///
    /// Also drops the remembered graph binding: a cached leaf would
    /// otherwise keep serving the *old* value to any further forward
    /// passes on the same tape.
    pub fn set_value(&self, value: Tensor) {
        assert_eq!(
            value.shape(),
            self.shape().as_slice(),
            "set_value must preserve the parameter shape ({})",
            self.name()
        );
        *self.0.value.borrow_mut() = value;
        *self.0.bound.borrow_mut() = None;
        self.0.version.bump();
    }

    /// Drop the remembered graph binding (frees the old tape) and any
    /// injected gradient.
    pub fn unbind(&self) {
        *self.0.bound.borrow_mut() = None;
        *self.0.injected_grad.borrow_mut() = None;
    }
}

/// One parameter's frozen state inside a [`ParamSnapshot`].
struct SnapshotEntry {
    name: String,
    shape: Vec<usize>,
    data: Arc<Vec<f32>>,
}

/// An immutable, `Send + Sync` copy of every parameter in a store, in
/// registration order.
///
/// `Param`/`ParamStore` are `Rc`-based and thread-confined; the
/// data-parallel trainer snapshots the store once per step and hands
/// each shard worker an `Arc` of the same snapshot. Workers rebuild
/// plain `Tensor`s from the raw buffers on their own thread via
/// [`ParamSnapshot::load_into`], so no `Rc` ever crosses a thread
/// boundary.
pub struct ParamSnapshot {
    entries: Vec<SnapshotEntry>,
}

impl ParamSnapshot {
    /// Number of parameter tensors in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Overwrite every parameter of `store` with the snapshot's values.
    ///
    /// The store must have the same registration order as the one the
    /// snapshot was taken from (same tensor count, and shape-compatible
    /// parameter by parameter) — the contract between a model and its
    /// worker-thread replicas built from the same config.
    pub fn load_into(&self, store: &ParamStore) -> Result<()> {
        let params = store.params();
        if params.len() != self.entries.len() {
            return Err(TensorError::Invalid(format!(
                "ParamSnapshot: store has {} parameters, snapshot has {}",
                params.len(),
                self.entries.len()
            )));
        }
        for (p, e) in params.iter().zip(&self.entries) {
            if p.shape() != e.shape {
                return Err(TensorError::Invalid(format!(
                    "ParamSnapshot: shape mismatch loading '{}' into '{}': {:?} vs {:?}",
                    e.name,
                    p.name(),
                    e.shape,
                    p.shape()
                )));
            }
            p.set_value(Tensor::from_vec(
                stwa_tensor::memory::take_copy(e.data.as_slice()),
                &e.shape,
            )?);
        }
        Ok(())
    }
}

/// Registry of every trainable tensor in a model.
///
/// Created once per model; layers register their parameters at
/// construction time, optimizers iterate [`ParamStore::params`].
#[derive(Default)]
pub struct ParamStore {
    params: RefCell<Vec<Param>>,
    version: StoreVersion,
}

impl ParamStore {
    pub fn new() -> ParamStore {
        ParamStore::default()
    }

    /// Register a new parameter initialized to `value`.
    pub fn param(&self, name: impl Into<String>, value: Tensor) -> Param {
        let p = Param(Rc::new(ParamInner {
            name: name.into(),
            value: RefCell::new(value),
            bound: RefCell::new(None),
            injected_grad: RefCell::new(None),
            version: self.version.clone(),
        }));
        self.params.borrow_mut().push(p.clone());
        p
    }

    /// Current mutation count: incremented whenever any registered
    /// parameter's value is overwritten.
    pub fn version(&self) -> u64 {
        self.version.get()
    }

    /// Cheap handle to the mutation counter, independent of the store's
    /// lifetime — what a frozen inference session holds to detect that
    /// its cached weights went stale.
    pub fn version_handle(&self) -> StoreVersion {
        self.version.clone()
    }

    /// Handles to all registered parameters, in registration order.
    pub fn params(&self) -> Vec<Param> {
        self.params.borrow().clone()
    }

    /// A `Send + Sync` copy of every parameter value, in registration
    /// order — the once-per-step handoff the data-parallel trainer
    /// ships to its shard workers.
    pub fn snapshot(&self) -> ParamSnapshot {
        ParamSnapshot {
            entries: self
                .params
                .borrow()
                .iter()
                .map(|p| SnapshotEntry {
                    name: p.name().to_string(),
                    shape: p.shape(),
                    data: Arc::new(p.value().into_vec()),
                })
                .collect(),
        }
    }

    /// Number of registered parameter tensors.
    pub fn tensor_count(&self) -> usize {
        self.params.borrow().len()
    }

    /// Total number of scalar parameters — the paper's "# Para" column.
    pub fn num_scalars(&self) -> usize {
        self.params.borrow().iter().map(|p| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_count() {
        let store = ParamStore::new();
        store.param("w", Tensor::zeros(&[3, 4]));
        store.param("b", Tensor::zeros(&[4]));
        assert_eq!(store.tensor_count(), 2);
        assert_eq!(store.num_scalars(), 16);
    }

    #[test]
    fn leaf_binds_and_reads_grad() {
        let store = ParamStore::new();
        let p = store.param("w", Tensor::from_vec(vec![2.0, 3.0], &[2]).unwrap());
        let g = Graph::new();
        let w = p.leaf(&g);
        let loss = w.square().unwrap().sum_all().unwrap();
        g.backward(&loss).unwrap();
        assert_eq!(p.grad().unwrap().data(), &[4.0, 6.0]);
        p.unbind();
        assert!(p.grad().is_none());
    }

    #[test]
    fn repeated_leaf_on_same_graph_accumulates_all_uses() {
        // w used twice in the loss: d/dw (w*a + w*b) = a + b. With
        // per-call re-binding this would report only the second use.
        let store = ParamStore::new();
        let p = store.param("w", Tensor::from_vec(vec![1.0], &[1]).unwrap());
        let g = Graph::new();
        let w1 = p.leaf(&g);
        let w2 = p.leaf(&g); // same node
        let a = g.constant(Tensor::from_vec(vec![3.0], &[1]).unwrap());
        let b = g.constant(Tensor::from_vec(vec![5.0], &[1]).unwrap());
        let loss = w1
            .mul(&a)
            .unwrap()
            .add(&w2.mul(&b).unwrap())
            .unwrap()
            .sum_all()
            .unwrap();
        g.backward(&loss).unwrap();
        assert_eq!(p.grad().unwrap().data(), &[8.0], "grad must sum both uses");
        // A fresh graph gets a fresh binding.
        let g2 = Graph::new();
        let w3 = p.leaf(&g2);
        assert!(w3.belongs_to(&g2));
    }

    #[test]
    fn set_value_keeps_shape_and_invalidates_binding() {
        let store = ParamStore::new();
        let p = store.param("w", Tensor::zeros(&[2]));
        let g = Graph::new();
        let _old = p.leaf(&g);
        p.set_value(Tensor::ones(&[2]));
        assert_eq!(p.value().data(), &[1.0, 1.0]);
        // The next leaf on the same graph must carry the new value, not
        // the cached pre-update binding.
        let fresh = p.leaf(&g);
        assert_eq!(fresh.value().data(), &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "preserve the parameter shape")]
    fn set_value_rejects_shape_change() {
        let store = ParamStore::new();
        let p = store.param("w", Tensor::zeros(&[2]));
        p.set_value(Tensor::zeros(&[3]));
    }

    #[test]
    fn set_value_bumps_store_version() {
        let store = ParamStore::new();
        let p = store.param("w", Tensor::zeros(&[2]));
        let q = store.param("b", Tensor::zeros(&[1]));
        let handle = store.version_handle();
        assert_eq!(store.version(), 0);
        p.set_value(Tensor::ones(&[2]));
        assert_eq!(store.version(), 1);
        q.set_value(Tensor::ones(&[1]));
        assert_eq!(store.version(), 2);
        assert_eq!(handle.get(), 2, "handle tracks the same counter");
        // Reads do not bump.
        let _ = p.value();
        p.unbind();
        assert_eq!(store.version(), 2);
    }

    #[test]
    fn snapshot_is_send_and_round_trips_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParamSnapshot>();

        let store = ParamStore::new();
        store.param("w", Tensor::from_vec(vec![1.0, -2.5, 3.25], &[3]).unwrap());
        store.param("b", Tensor::from_vec(vec![0.5], &[1]).unwrap());
        let snap = Arc::new(store.snapshot());
        assert_eq!(snap.len(), 2);

        // Rebuild a replica store on another thread from the snapshot.
        let shipped = Arc::clone(&snap);
        let values = std::thread::spawn(move || {
            let replica = ParamStore::new();
            replica.param("w", Tensor::zeros(&[3]));
            replica.param("b", Tensor::zeros(&[1]));
            shipped.load_into(&replica).unwrap();
            replica
                .params()
                .iter()
                .flat_map(|p| p.value().data().to_vec())
                .collect::<Vec<f32>>()
        })
        .join()
        .unwrap();
        assert_eq!(values, vec![1.0, -2.5, 3.25, 0.5]);
    }

    #[test]
    fn snapshot_load_rejects_mismatched_stores() {
        let store = ParamStore::new();
        store.param("w", Tensor::zeros(&[2]));
        let snap = store.snapshot();

        let wrong_count = ParamStore::new();
        assert!(snap.load_into(&wrong_count).is_err());

        let wrong_shape = ParamStore::new();
        wrong_shape.param("w", Tensor::zeros(&[3]));
        assert!(snap.load_into(&wrong_shape).is_err());
    }

    #[test]
    fn snapshot_is_immutable_under_later_updates() {
        let store = ParamStore::new();
        let p = store.param("w", Tensor::zeros(&[2]));
        let snap = store.snapshot();
        p.set_value(Tensor::ones(&[2]));
        let replica = ParamStore::new();
        replica.param("w", Tensor::full(&[2], 9.0));
        snap.load_into(&replica).unwrap();
        assert_eq!(replica.params()[0].value().data(), &[0.0, 0.0]);
    }

    #[test]
    fn injected_grad_overrides_binding_until_unbind() {
        let store = ParamStore::new();
        let p = store.param("w", Tensor::from_vec(vec![2.0, 3.0], &[2]).unwrap());
        let g = Graph::new();
        let w = p.leaf(&g);
        let loss = w.square().unwrap().sum_all().unwrap();
        g.backward(&loss).unwrap();
        assert_eq!(p.grad().unwrap().data(), &[4.0, 6.0]);

        // Injection wins over the live binding...
        p.set_grad(Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap());
        assert_eq!(p.grad().unwrap().data(), &[0.5, -0.5]);
        assert_eq!(p.grad_sq_norm().unwrap(), 0.5);

        // ...and unbind clears both.
        p.unbind();
        assert!(p.grad().is_none());
        assert!(p.grad_sq_norm().is_none());
    }

    #[test]
    #[should_panic(expected = "set_grad must match")]
    fn injected_grad_rejects_shape_mismatch() {
        let store = ParamStore::new();
        let p = store.param("w", Tensor::zeros(&[2]));
        p.set_grad(Tensor::zeros(&[3]));
    }

    #[test]
    fn store_handles_are_shared() {
        let store = ParamStore::new();
        let p = store.param("w", Tensor::zeros(&[1]));
        // Mutating through the store's copy is visible through ours.
        store.params()[0].set_value(Tensor::ones(&[1]));
        assert_eq!(p.value().data(), &[1.0]);
    }
}
