//! Loss functions: Huber (paper Eq. 21), MSE/MAE, and the KL regularizer
//! from the paper's Eq. 20.

use stwa_autograd::Var;
use stwa_tensor::{memory, Result};

/// Elementwise Huber loss, averaged over all elements (paper Eq. 21).
///
/// ```text
/// H(x, x̂) = 0.5 (x - x̂)^2            if |x - x̂| <= delta
///           delta (|x - x̂| - delta/2)  otherwise
/// ```
///
/// `target` is normally a constant; gradients flow through `pred`.
///
/// When the fused-kernel switch is on (the default; see
/// [`stwa_tensor::memory::fused_enabled`]) and the shapes match exactly,
/// this records a single fused tape node instead of the seven-node
/// sub/abs/square/where/mean chain. The fused path replicates the
/// reference chain's arithmetic bit for bit — see
/// [`huber_reference`] and the equality proptests.
pub fn huber(pred: &Var, target: &Var, delta: f32) -> Result<Var> {
    if memory::fused_enabled() && pred.shape() == target.shape() {
        return pred.huber_loss(target, delta);
    }
    huber_reference(pred, target, delta)
}

/// The unfused Huber chain the fused op must match bit for bit. Kept
/// in-tree as the equality oracle for `huber`.
pub fn huber_reference(pred: &Var, target: &Var, delta: f32) -> Result<Var> {
    let diff = pred.sub(target)?;
    let absd = diff.abs();
    // Branch mask from the forward values; constant wrt gradients, which
    // matches the loss being non-smooth only on |diff| == delta.
    let mask = absd.value().map(|x| if x <= delta { 1.0 } else { 0.0 });
    let quadratic = diff.square()?.mul_scalar(0.5);
    let linear = absd.mul_scalar(delta).add_scalar(-0.5 * delta * delta);
    quadratic.where_mask(&mask, &linear)?.mean_all()
}

/// Mean squared error.
pub fn mse(pred: &Var, target: &Var) -> Result<Var> {
    pred.sub(target)?.square()?.mean_all()
}

/// Mean absolute error.
pub fn mae(pred: &Var, target: &Var) -> Result<Var> {
    pred.sub(target)?.abs().mean_all()
}

/// KL divergence `KL(N(mu, diag(exp(logvar))) || N(0, I))`, averaged over
/// every latent coordinate in the batch:
///
/// ```text
/// KL = 0.5 * (exp(logvar) + mu^2 - 1 - logvar)
/// ```
///
/// The paper regularizes the learned posterior of `Theta_t` toward the
/// standard-normal prior (Eq. 20); `alpha` scaling is applied by the
/// caller.
pub fn kl_standard_normal(mu: &Var, logvar: &Var) -> Result<Var> {
    let var = logvar.exp();
    let mu2 = mu.square()?;
    let term = var.add(&mu2)?.add_scalar(-1.0).sub(logvar)?;
    term.mul_scalar(0.5).mean_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stwa_autograd::{check_gradient, Graph};
    use stwa_tensor::Tensor;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn huber_quadratic_inside_delta() {
        let g = Graph::new();
        let pred = g.constant(t(&[0.5], &[1]));
        let target = g.constant(t(&[0.0], &[1]));
        let l = huber(&pred, &target, 1.0).unwrap();
        assert!((l.value().item().unwrap() - 0.125).abs() < 1e-6);
    }

    #[test]
    fn huber_linear_outside_delta() {
        let g = Graph::new();
        let pred = g.constant(t(&[3.0], &[1]));
        let target = g.constant(t(&[0.0], &[1]));
        // delta (|diff| - delta/2) = 1 * (3 - 0.5) = 2.5
        let l = huber(&pred, &target, 1.0).unwrap();
        assert!((l.value().item().unwrap() - 2.5).abs() < 1e-6);
    }

    #[test]
    fn huber_matches_mse_times_half_for_small_errors() {
        let g = Graph::new();
        let pred = g.constant(t(&[0.1, -0.2, 0.05], &[3]));
        let target = g.constant(t(&[0.0, 0.0, 0.0], &[3]));
        let h = huber(&pred, &target, 10.0).unwrap().value().item().unwrap();
        let m = mse(&pred, &target).unwrap().value().item().unwrap();
        assert!((h - 0.5 * m).abs() < 1e-6);
    }

    #[test]
    fn huber_is_less_than_half_mse_for_outliers() {
        let g = Graph::new();
        let pred = g.constant(t(&[100.0], &[1]));
        let target = g.constant(t(&[0.0], &[1]));
        let h = huber(&pred, &target, 1.0).unwrap().value().item().unwrap();
        let m = mse(&pred, &target).unwrap().value().item().unwrap();
        assert!(h < 0.5 * m, "Huber should damp outliers: {h} vs {m}");
    }

    #[test]
    fn huber_gradient_checks() {
        let x = t(&[0.2, -0.4, 2.0, -3.0], &[4]);
        let report = check_gradient(&x, 1e-2, |v| {
            let target = v.graph().constant(Tensor::zeros(&[4]));
            huber(v, &target, 1.0)
        })
        .unwrap();
        assert!(report.passes(2e-2), "{report:?}");
    }

    #[test]
    fn mae_and_mse_values() {
        let g = Graph::new();
        let pred = g.constant(t(&[1.0, -1.0], &[2]));
        let target = g.constant(t(&[0.0, 0.0], &[2]));
        assert_eq!(mae(&pred, &target).unwrap().value().item().unwrap(), 1.0);
        assert_eq!(mse(&pred, &target).unwrap().value().item().unwrap(), 1.0);
    }

    #[test]
    fn kl_zero_at_standard_normal() {
        let g = Graph::new();
        let mu = g.constant(Tensor::zeros(&[4]));
        let logvar = g.constant(Tensor::zeros(&[4]));
        let kl = kl_standard_normal(&mu, &logvar).unwrap();
        assert!(kl.value().item().unwrap().abs() < 1e-7);
    }

    #[test]
    fn kl_positive_away_from_prior() {
        let g = Graph::new();
        for (m, lv) in [(1.0, 0.0), (0.0, 1.0), (0.0, -1.0), (-2.0, 0.5)] {
            let mu = g.constant(Tensor::full(&[4], m));
            let logvar = g.constant(Tensor::full(&[4], lv));
            let kl = kl_standard_normal(&mu, &logvar)
                .unwrap()
                .value()
                .item()
                .unwrap();
            assert!(
                kl > 0.0,
                "KL must be positive at mu={m}, logvar={lv}, got {kl}"
            );
        }
    }

    #[test]
    fn kl_gradient_checks() {
        let mu0 = t(&[0.3, -0.6], &[2]);
        let report = check_gradient(&mu0, 1e-2, |v| {
            let logvar = v.graph().constant(t(&[0.2, -0.3], &[2]));
            kl_standard_normal(v, &logvar)
        })
        .unwrap();
        assert!(report.passes(2e-2), "mu grad: {report:?}");

        let lv0 = t(&[0.4, -0.5], &[2]);
        let report = check_gradient(&lv0, 1e-2, |v| {
            let mu = v.graph().constant(t(&[0.1, 0.7], &[2]));
            kl_standard_normal(&mu, v)
        })
        .unwrap();
        assert!(report.passes(2e-2), "logvar grad: {report:?}");
    }
}
