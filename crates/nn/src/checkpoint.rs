//! Checkpointing: save and restore a model's parameters.
//!
//! Format (little-endian, versioned):
//!
//! ```text
//! magic "STWA" | u32 version | u64 param_count |
//!   per param: u64 name_len | name bytes |
//!              u64 rank     | u64 dims...  | f32 data...
//! ```
//!
//! Parameters are matched *by name*, so a checkpoint written by a model
//! can be loaded into a freshly constructed model of the same
//! architecture regardless of registration order.

use crate::param::ParamStore;
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use stwa_tensor::Tensor;

const MAGIC: &[u8; 4] = b"STWA";
const VERSION: u32 = 1;

/// Errors from checkpoint IO.
#[derive(Debug)]
pub enum CheckpointError {
    Io(io::Error),
    /// Not a checkpoint file, or an unsupported version.
    Format(String),
    /// Parameter set doesn't match the model being restored.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Format(m) => write!(f, "checkpoint format error: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Write every parameter of `store` to `path`.
pub fn save(store: &ParamStore, path: &Path) -> Result<(), CheckpointError> {
    let params = store.params();
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(params.len() as u64).to_le_bytes())?;
    for p in &params {
        let name = p.name().as_bytes();
        w.write_all(&(name.len() as u64).to_le_bytes())?;
        w.write_all(name)?;
        let value = p.value();
        w.write_all(&(value.rank() as u64).to_le_bytes())?;
        for &d in value.shape() {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for &v in value.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Restore every parameter of `store` from `path`, matching by name.
///
/// Fails if any model parameter is missing from the file or has a
/// different shape; extra entries in the file are an error too (they
/// indicate an architecture mismatch).
pub fn load(store: &ParamStore, path: &Path) -> Result<(), CheckpointError> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported version {version} (expected {VERSION})"
        )));
    }
    let count = read_u64(&mut r)? as usize;
    let mut loaded: HashMap<String, Tensor> = HashMap::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u64(&mut r)? as usize;
        let mut name_bytes = vec![0u8; name_len];
        r.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| CheckpointError::Format("non-utf8 parameter name".into()))?;
        let rank = read_u64(&mut r)? as usize;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(read_u64(&mut r)? as usize);
        }
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        let mut buf = [0u8; 4];
        for _ in 0..n {
            r.read_exact(&mut buf)?;
            data.push(f32::from_le_bytes(buf));
        }
        let tensor =
            Tensor::from_vec(data, &shape).map_err(|e| CheckpointError::Format(e.to_string()))?;
        if loaded.insert(name.clone(), tensor).is_some() {
            return Err(CheckpointError::Format(format!(
                "duplicate parameter '{name}' in checkpoint"
            )));
        }
    }

    let params = store.params();
    if params.len() != loaded.len() {
        return Err(CheckpointError::Mismatch(format!(
            "model has {} parameters, checkpoint has {}",
            params.len(),
            loaded.len()
        )));
    }
    for p in &params {
        let tensor = loaded.remove(p.name()).ok_or_else(|| {
            CheckpointError::Mismatch(format!("parameter '{}' missing from checkpoint", p.name()))
        })?;
        if tensor.shape() != p.shape().as_slice() {
            return Err(CheckpointError::Mismatch(format!(
                "parameter '{}': model shape {:?} vs checkpoint {:?}",
                p.name(),
                p.shape(),
                tensor.shape()
            )));
        }
        p.set_value(tensor);
    }
    Ok(())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("stwa_checkpoint_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn store_with(seed: u64) -> ParamStore {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        store.param("layer.w", Tensor::randn(&[3, 4], &mut rng));
        store.param("layer.b", Tensor::randn(&[4], &mut rng));
        store.param("head.w", Tensor::randn(&[4, 2], &mut rng));
        store
    }

    #[test]
    fn roundtrip_restores_exact_values() {
        let src = store_with(1);
        let path = tmp("roundtrip.stwa");
        save(&src, &path).unwrap();
        let dst = store_with(2); // different init
        assert_ne!(src.params()[0].value(), dst.params()[0].value());
        load(&dst, &path).unwrap();
        for (a, b) in src.params().iter().zip(dst.params()) {
            assert_eq!(a.value(), b.value(), "{}", a.name());
        }
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let src = store_with(1);
        let path = tmp("mismatch.stwa");
        save(&src, &path).unwrap();
        let dst = ParamStore::new();
        dst.param("layer.w", Tensor::zeros(&[3, 5])); // wrong shape
        dst.param("layer.b", Tensor::zeros(&[4]));
        dst.param("head.w", Tensor::zeros(&[4, 2]));
        assert!(matches!(
            load(&dst, &path),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn missing_parameter_is_rejected() {
        let src = store_with(1);
        let path = tmp("missing.stwa");
        save(&src, &path).unwrap();
        let dst = ParamStore::new();
        dst.param("layer.w", Tensor::zeros(&[3, 4]));
        dst.param("layer.b", Tensor::zeros(&[4]));
        dst.param("other.w", Tensor::zeros(&[4, 2])); // renamed
        assert!(matches!(
            load(&dst, &path),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn garbage_file_is_rejected() {
        let path = tmp("garbage.stwa");
        std::fs::write(&path, b"not a checkpoint at all").unwrap();
        let dst = store_with(1);
        assert!(matches!(load(&dst, &path), Err(CheckpointError::Format(_))));
    }

    #[test]
    fn load_order_independent() {
        // Same params registered in a different order still load.
        let src = store_with(1);
        let path = tmp("order.stwa");
        save(&src, &path).unwrap();
        let dst = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(9);
        dst.param("head.w", Tensor::randn(&[4, 2], &mut rng));
        dst.param("layer.b", Tensor::randn(&[4], &mut rng));
        dst.param("layer.w", Tensor::randn(&[3, 4], &mut rng));
        load(&dst, &path).unwrap();
        let by_name =
            |s: &ParamStore, n: &str| s.params().iter().find(|p| p.name() == n).unwrap().value();
        assert_eq!(by_name(&src, "layer.w"), by_name(&dst, "layer.w"));
    }
}
