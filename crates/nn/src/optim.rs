//! Optimizers: SGD and Adam, with optional global-norm gradient clipping.

use crate::param::{Param, ParamStore};
use stwa_tensor::{Result, Tensor, TensorError};

/// Common optimizer interface: read gradients off the most recent graph
/// binding of every parameter and update the stored values in place.
pub trait Optimizer {
    /// Apply one update. Parameters whose gradient is `None` (unreached
    /// by backward this step) are left untouched.
    fn step(&mut self);

    /// Drop graph bindings so the previous tape can be freed.
    fn finish_step(&mut self);
}

/// Global L2 norm of all parameter gradients (pre-clip measurement).
///
/// Measured in place — no gradient tensors are cloned. Each gradient's
/// sum of squares reduces through the pool's fixed-chunk lanes
/// ([`stwa_tensor::reduce::sq_norm`]), so the norm is bitwise identical
/// at any `STWA_THREADS` setting. Rescaling happens inside the
/// optimizers via `clip_scale`.
pub fn global_grad_norm(params: &[Param]) -> f32 {
    params
        .iter()
        .filter_map(|p| p.grad_sq_norm())
        .sum::<f32>()
        .sqrt()
}

/// Stochastic gradient descent with fixed learning rate.
pub struct Sgd {
    params: Vec<Param>,
    lr: f32,
    max_grad_norm: Option<f32>,
}

impl Sgd {
    pub fn new(store: &ParamStore, lr: f32) -> Sgd {
        Sgd {
            params: store.params(),
            lr,
            max_grad_norm: None,
        }
    }

    /// Enable global-norm gradient clipping.
    pub fn with_clip(mut self, max_norm: f32) -> Sgd {
        self.max_grad_norm = Some(max_norm);
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        let scale = clip_scale(&self.params, self.max_grad_norm);
        for p in &self.params {
            if let Some(g) = p.grad() {
                let mut v = p.value();
                let lr = self.lr * scale;
                for (w, gi) in v.data_mut().iter_mut().zip(g.data()) {
                    *w -= lr * gi;
                }
                p.set_value(v);
            }
        }
    }

    fn finish_step(&mut self) {
        for p in &self.params {
            p.unbind();
        }
    }
}

/// Adam (Kingma & Ba) — the paper trains with Adam at lr 0.001.
pub struct Adam {
    params: Vec<Param>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    max_grad_norm: Option<f32>,
    /// First/second moment estimates, parallel to `params`.
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
}

impl Adam {
    pub fn new(store: &ParamStore, lr: f32) -> Adam {
        let params = store.params();
        let m = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        let v = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        Adam {
            params,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            max_grad_norm: None,
            m,
            v,
            t: 0,
        }
    }

    /// Enable global-norm gradient clipping (the paper's training uses
    /// standard clipping to stabilize the variational encoder early on).
    pub fn with_clip(mut self, max_norm: f32) -> Adam {
        self.max_grad_norm = Some(max_norm);
        self
    }

    /// Copy out the optimizer state — step counter plus first/second
    /// moments labeled with their parameter names — for checkpointing.
    pub fn export_state(&self) -> AdamState {
        let label = |moments: &[Tensor]| {
            self.params
                .iter()
                .zip(moments)
                .map(|(p, t)| (p.name().to_string(), t.clone()))
                .collect()
        };
        AdamState {
            t: self.t,
            m: label(&self.m),
            v: label(&self.v),
        }
    }

    /// Restore state captured by [`Adam::export_state`] (possibly from a
    /// checkpoint written by another process). Moments are matched to
    /// parameters **by name** and shape-checked; a bitwise-identical
    /// resume requires every parameter to find its moments.
    pub fn import_state(&mut self, state: AdamState) -> Result<()> {
        let pick = |from: &[(String, Tensor)], which: &str| -> Result<Vec<Tensor>> {
            self.params
                .iter()
                .map(|p| {
                    let (_, t) = from
                        .iter()
                        .find(|(name, _)| name == p.name())
                        .ok_or_else(|| {
                            TensorError::Invalid(format!(
                                "Adam state has no '{which}' moment for '{}'",
                                p.name()
                            ))
                        })?;
                    if t.shape() != p.shape().as_slice() {
                        return Err(TensorError::Invalid(format!(
                            "Adam '{which}' moment for '{}' has shape {:?}, parameter is {:?}",
                            p.name(),
                            t.shape(),
                            p.shape()
                        )));
                    }
                    Ok(t.clone())
                })
                .collect()
        };
        let m = pick(&state.m, "m")?;
        let v = pick(&state.v, "v")?;
        self.m = m;
        self.v = v;
        self.t = state.t;
        Ok(())
    }
}

/// Portable Adam state: the bias-correction step counter and the
/// first/second moment estimates, each labeled with its parameter's
/// registration name so a restore can match by name rather than order.
pub struct AdamState {
    pub t: u64,
    pub m: Vec<(String, Tensor)>,
    pub v: Vec<(String, Tensor)>,
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.t += 1;
        let scale = clip_scale(&self.params, self.max_grad_norm);
        let bias1 = 1.0 - self.beta1.powi(self.t as i32);
        let bias2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in self.params.iter().enumerate() {
            let Some(g) = p.grad() else { continue };
            let mut value = p.value();
            let m = self.m[i].data_mut();
            let v = self.v[i].data_mut();
            for (((w, &graw), mi), vi) in value
                .data_mut()
                .iter_mut()
                .zip(g.data())
                .zip(m.iter_mut())
                .zip(v.iter_mut())
            {
                let gi = graw * scale;
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
                let m_hat = *mi / bias1;
                let v_hat = *vi / bias2;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            p.set_value(value);
        }
    }

    fn finish_step(&mut self) {
        for p in &self.params {
            p.unbind();
        }
    }
}

/// Uniform gradient scale factor implementing global-norm clipping.
///
/// One traversal over every gradient computes the global norm (through
/// the pool's parallel reduction lanes; see [`global_grad_norm`]); the
/// scale itself is applied *inside* each optimizer's update loop
/// (`gi = graw * scale` fused into the weight update), so clipping
/// never makes a second standalone pass over the gradients.
fn clip_scale(params: &[Param], max_norm: Option<f32>) -> f32 {
    let Some(max_norm) = max_norm else { return 1.0 };
    let norm = global_grad_norm(params);
    if norm > max_norm && norm > 0.0 {
        max_norm / norm
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stwa_autograd::Graph;

    /// One quadratic-descent step helper: loss = sum((w - target)^2).
    fn quad_step(p: &Param, target: f32) {
        let g = Graph::new();
        let w = p.leaf(&g);
        let t = g.constant(Tensor::full(&p.shape(), target));
        let loss = w.sub(&t).unwrap().square().unwrap().sum_all().unwrap();
        g.backward(&loss).unwrap();
    }

    #[test]
    fn sgd_descends_quadratic() {
        let store = ParamStore::new();
        let p = store.param("w", Tensor::full(&[2], 5.0));
        let mut opt = Sgd::new(&store, 0.1);
        for _ in 0..50 {
            quad_step(&p, 1.0);
            opt.step();
            opt.finish_step();
        }
        assert!(p.value().data().iter().all(|&w| (w - 1.0).abs() < 1e-3));
    }

    #[test]
    fn adam_descends_quadratic() {
        let store = ParamStore::new();
        let p = store.param("w", Tensor::full(&[3], -4.0));
        let mut opt = Adam::new(&store, 0.2);
        for _ in 0..200 {
            quad_step(&p, 2.0);
            opt.step();
            opt.finish_step();
        }
        assert!(
            p.value().data().iter().all(|&w| (w - 2.0).abs() < 1e-2),
            "{:?}",
            p.value()
        );
    }

    #[test]
    fn params_without_grad_untouched() {
        let store = ParamStore::new();
        let used = store.param("used", Tensor::full(&[1], 1.0));
        let unused = store.param("unused", Tensor::full(&[1], 7.0));
        quad_step(&used, 0.0);
        let mut opt = Sgd::new(&store, 0.5);
        opt.step();
        opt.finish_step();
        assert_ne!(used.value().data()[0], 1.0);
        assert_eq!(unused.value().data()[0], 7.0);
    }

    #[test]
    fn clipping_bounds_update() {
        let store = ParamStore::new();
        let p = store.param("w", Tensor::full(&[1], 1000.0));
        // Gradient is 2*(w - 0) = 2000; with clip 1.0 the applied step is
        // at most lr * 1.0.
        quad_step(&p, 0.0);
        let mut opt = Sgd::new(&store, 0.1).with_clip(1.0);
        opt.step();
        opt.finish_step();
        let w = p.value().data()[0];
        assert!((1000.0 - w) <= 0.1 + 1e-6, "step too large: {w}");
        assert!(w < 1000.0, "must still descend");
    }

    #[test]
    fn adam_state_roundtrip_resumes_bitwise() {
        // Two optimizers over identical stores; one exports/imports its
        // state mid-run. Further steps must match bitwise.
        let mk = || {
            let store = ParamStore::new();
            let p = store.param("w", Tensor::full(&[3], -4.0));
            let opt = Adam::new(&store, 0.2);
            (store, p, opt)
        };
        let (_sa, pa, mut oa) = mk();
        let (_sb, pb, mut ob) = mk();
        for _ in 0..5 {
            quad_step(&pa, 2.0);
            oa.step();
            oa.finish_step();
            quad_step(&pb, 2.0);
            ob.step();
            ob.finish_step();
        }
        // Transplant A's state into a *fresh* optimizer over B's store.
        let state = oa.export_state();
        let mut ob2 = Adam::new(&_sb, 0.2);
        ob2.import_state(state).unwrap();
        for _ in 0..5 {
            quad_step(&pa, 2.0);
            oa.step();
            oa.finish_step();
            quad_step(&pb, 2.0);
            ob2.step();
            ob2.finish_step();
        }
        for (a, b) in pa.value().data().iter().zip(pb.value().data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn adam_import_rejects_missing_or_misshapen_moments() {
        let store = ParamStore::new();
        store.param("w", Tensor::zeros(&[2]));
        let mut opt = Adam::new(&store, 0.1);
        // Missing name.
        let empty = AdamState {
            t: 3,
            m: vec![],
            v: vec![],
        };
        assert!(opt.import_state(empty).is_err());
        // Wrong shape.
        let misshapen = AdamState {
            t: 3,
            m: vec![("w".into(), Tensor::zeros(&[5]))],
            v: vec![("w".into(), Tensor::zeros(&[5]))],
        };
        assert!(opt.import_state(misshapen).is_err());
        // Step counter must be untouched after failed imports.
        assert_eq!(opt.export_state().t, 0);
    }

    #[test]
    fn adam_steps_are_bounded_by_lr_scale() {
        // Adam's per-coordinate step magnitude is ~lr regardless of the
        // raw gradient scale.
        let store = ParamStore::new();
        let p = store.param("w", Tensor::full(&[1], 1000.0));
        quad_step(&p, 0.0); // raw gradient 2000, yet step stays ~lr
        let mut opt = Adam::new(&store, 0.01);
        opt.step();
        opt.finish_step();
        let moved = 1000.0 - p.value().data()[0];
        assert!(moved > 0.0 && moved < 0.02, "moved {moved}");
    }
}
