//! Mini-batch iteration over sample-major tensors.

use rand::seq::SliceRandom;
use rand::Rng;
use stwa_tensor::{Result, Tensor, TensorError};

/// Yields `(inputs, targets)` mini-batches from two tensors whose first
/// axis indexes samples.
///
/// The iterator owns a (possibly shuffled) index order and materializes
/// each batch with `index_select`, so the source tensors are borrowed for
/// the iterator's lifetime only.
pub struct BatchIter<'a> {
    x: &'a Tensor,
    y: &'a Tensor,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
    drop_last: bool,
}

impl<'a> BatchIter<'a> {
    /// Sequential (unshuffled) batches — evaluation order.
    pub fn new(x: &'a Tensor, y: &'a Tensor, batch_size: usize) -> Result<BatchIter<'a>> {
        if x.rank() == 0 || y.rank() == 0 || x.shape()[0] != y.shape()[0] {
            return Err(TensorError::ShapeMismatch {
                op: "BatchIter",
                lhs: x.shape().to_vec(),
                rhs: y.shape().to_vec(),
            });
        }
        if batch_size == 0 {
            return Err(TensorError::Invalid(
                "BatchIter: batch_size must be > 0".into(),
            ));
        }
        Ok(BatchIter {
            x,
            y,
            order: (0..x.shape()[0]).collect(),
            batch_size,
            cursor: 0,
            drop_last: false,
        })
    }

    /// Shuffled batches — training order. The RNG decides the epoch's
    /// permutation; pass a per-epoch-seeded RNG for reproducibility.
    pub fn shuffled(
        x: &'a Tensor,
        y: &'a Tensor,
        batch_size: usize,
        rng: &mut impl Rng,
    ) -> Result<BatchIter<'a>> {
        let mut it = BatchIter::new(x, y, batch_size)?;
        it.order.shuffle(rng);
        Ok(it)
    }

    /// Skip the final smaller-than-batch_size remainder batch.
    pub fn drop_last(mut self) -> Self {
        self.drop_last = true;
        self
    }

    /// Number of batches this iterator will yield.
    pub fn num_batches(&self) -> usize {
        let n = self.order.len();
        if self.drop_last {
            n / self.batch_size
        } else {
            n.div_ceil(self.batch_size)
        }
    }
}

impl Iterator for BatchIter<'_> {
    type Item = (Tensor, Tensor);

    fn next(&mut self) -> Option<(Tensor, Tensor)> {
        let remaining = self.order.len() - self.cursor;
        if remaining == 0 || (self.drop_last && remaining < self.batch_size) {
            return None;
        }
        let take = remaining.min(self.batch_size);
        let idx = &self.order[self.cursor..self.cursor + take];
        self.cursor += take;
        // Indices come from 0..shape[0], so selection cannot fail.
        let bx = self.x.index_select(0, idx).expect("batch index in range");
        let by = self.y.index_select(0, idx).expect("batch index in range");
        Some((bx, by))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn samples(n: usize) -> (Tensor, Tensor) {
        let x = Tensor::from_fn(&[n, 2], |i| i[0] as f32);
        let y = Tensor::from_fn(&[n, 1], |i| i[0] as f32);
        (x, y)
    }

    #[test]
    fn sequential_covers_all_rows_in_order() {
        let (x, y) = samples(5);
        let batches: Vec<_> = BatchIter::new(&x, &y, 2).unwrap().collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].0.shape(), &[2, 2]);
        assert_eq!(batches[2].0.shape(), &[1, 2]); // remainder
        assert_eq!(batches[0].0.at(&[0, 0]), 0.0);
        assert_eq!(batches[2].1.at(&[0, 0]), 4.0);
    }

    #[test]
    fn drop_last_skips_remainder() {
        let (x, y) = samples(5);
        let it = BatchIter::new(&x, &y, 2).unwrap().drop_last();
        assert_eq!(it.num_batches(), 2);
        assert_eq!(it.count(), 2);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let (x, y) = samples(7);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen: Vec<f32> = BatchIter::shuffled(&x, &y, 3, &mut rng)
            .unwrap()
            .flat_map(|(_, by)| by.data().to_vec())
            .collect();
        seen.sort_by(f32::total_cmp);
        assert_eq!(seen, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn x_and_y_stay_aligned_under_shuffle() {
        let (x, y) = samples(10);
        let mut rng = StdRng::seed_from_u64(9);
        for (bx, by) in BatchIter::shuffled(&x, &y, 4, &mut rng).unwrap() {
            for r in 0..bx.shape()[0] {
                assert_eq!(bx.at(&[r, 0]), by.at(&[r, 0]));
            }
        }
    }

    #[test]
    fn mismatched_sample_counts_rejected() {
        let x = Tensor::zeros(&[4, 2]);
        let y = Tensor::zeros(&[5, 1]);
        assert!(BatchIter::new(&x, &y, 2).is_err());
        assert!(BatchIter::new(&x, &x, 0).is_err());
    }
}
