//! Mini-batch iteration over sample-major tensors.

use rand::seq::SliceRandom;
use rand::Rng;
use stwa_tensor::{Result, Tensor, TensorError};

/// Yields `(inputs, targets)` mini-batches from two tensors whose first
/// axis indexes samples.
///
/// The iterator owns a (possibly shuffled) index order and materializes
/// each batch with `index_select`, so the source tensors are borrowed for
/// the iterator's lifetime only.
pub struct BatchIter<'a> {
    x: &'a Tensor,
    y: &'a Tensor,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
    drop_last: bool,
}

impl<'a> BatchIter<'a> {
    /// Sequential (unshuffled) batches — evaluation order.
    pub fn new(x: &'a Tensor, y: &'a Tensor, batch_size: usize) -> Result<BatchIter<'a>> {
        if x.rank() == 0 || y.rank() == 0 || x.shape()[0] != y.shape()[0] {
            return Err(TensorError::ShapeMismatch {
                op: "BatchIter",
                lhs: x.shape().to_vec(),
                rhs: y.shape().to_vec(),
            });
        }
        if batch_size == 0 {
            return Err(TensorError::Invalid(
                "BatchIter: batch_size must be > 0".into(),
            ));
        }
        Ok(BatchIter {
            x,
            y,
            order: (0..x.shape()[0]).collect(),
            batch_size,
            cursor: 0,
            drop_last: false,
        })
    }

    /// Shuffled batches — training order. The RNG decides the epoch's
    /// permutation; pass a per-epoch-seeded RNG for reproducibility.
    pub fn shuffled(
        x: &'a Tensor,
        y: &'a Tensor,
        batch_size: usize,
        rng: &mut impl Rng,
    ) -> Result<BatchIter<'a>> {
        let mut it = BatchIter::new(x, y, batch_size)?;
        it.order.shuffle(rng);
        Ok(it)
    }

    /// Skip the final smaller-than-batch_size remainder batch.
    pub fn drop_last(mut self) -> Self {
        self.drop_last = true;
        self
    }

    /// Number of batches this iterator will yield.
    pub fn num_batches(&self) -> usize {
        let n = self.order.len();
        if self.drop_last {
            n / self.batch_size
        } else {
            n.div_ceil(self.batch_size)
        }
    }
}

/// Drive `f` over shuffled batches while the *next* batch is gathered
/// on a background thread (double buffering): batch `t+1` is cut from
/// the sample tensors while `f` trains on batch `t`.
///
/// A [`Tensor`] is not `Send` (its storage is `Rc`-shared), so the
/// producer ships raw `Vec<f32>` row gathers and the consumer rewraps
/// them. The gather copies exactly the rows `index_select` copies —
/// moving `f32`s never changes their bits — so the batches `f` sees
/// are bitwise identical to [`BatchIter::shuffled`] with the same RNG;
/// only the overlap with compute differs.
pub fn prefetched_shuffled<F>(
    x: &Tensor,
    y: &Tensor,
    batch_size: usize,
    rng: &mut impl Rng,
    mut f: F,
) -> Result<()>
where
    F: FnMut(Tensor, Tensor) -> Result<()>,
{
    let it = BatchIter::shuffled(x, y, batch_size, rng)?;
    let order = it.order;
    if order.is_empty() {
        return Ok(());
    }
    let n = order.len();
    let (xd, yd) = (x.data(), y.data());
    let (xrow, yrow) = (xd.len() / n, yd.len() / n);
    let mut xshape = x.shape().to_vec();
    let mut yshape = y.shape().to_vec();

    std::thread::scope(|s| -> Result<()> {
        // Capacity 1 + the batch being gathered = two batches in
        // flight; the producer blocks until the trainer catches up.
        let (tx, rx) = std::sync::mpsc::sync_channel::<(Vec<f32>, Vec<f32>, usize)>(1);
        let order = &order;
        s.spawn(move || {
            for chunk in order.chunks(batch_size) {
                let mut bx = Vec::with_capacity(chunk.len() * xrow);
                let mut by = Vec::with_capacity(chunk.len() * yrow);
                for &i in chunk {
                    bx.extend_from_slice(&xd[i * xrow..(i + 1) * xrow]);
                    by.extend_from_slice(&yd[i * yrow..(i + 1) * yrow]);
                }
                if tx.send((bx, by, chunk.len())).is_err() {
                    return; // consumer bailed out early
                }
            }
        });
        while let Ok((bx, by, take)) = rx.recv() {
            xshape[0] = take;
            yshape[0] = take;
            f(
                Tensor::from_vec(bx, &xshape)?,
                Tensor::from_vec(by, &yshape)?,
            )?;
        }
        Ok(())
    })
}

impl Iterator for BatchIter<'_> {
    type Item = (Tensor, Tensor);

    fn next(&mut self) -> Option<(Tensor, Tensor)> {
        let remaining = self.order.len() - self.cursor;
        if remaining == 0 || (self.drop_last && remaining < self.batch_size) {
            return None;
        }
        let take = remaining.min(self.batch_size);
        let idx = &self.order[self.cursor..self.cursor + take];
        self.cursor += take;
        // Indices come from 0..shape[0], so selection cannot fail.
        let bx = self.x.index_select(0, idx).expect("batch index in range");
        let by = self.y.index_select(0, idx).expect("batch index in range");
        Some((bx, by))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn samples(n: usize) -> (Tensor, Tensor) {
        let x = Tensor::from_fn(&[n, 2], |i| i[0] as f32);
        let y = Tensor::from_fn(&[n, 1], |i| i[0] as f32);
        (x, y)
    }

    #[test]
    fn sequential_covers_all_rows_in_order() {
        let (x, y) = samples(5);
        let batches: Vec<_> = BatchIter::new(&x, &y, 2).unwrap().collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].0.shape(), &[2, 2]);
        assert_eq!(batches[2].0.shape(), &[1, 2]); // remainder
        assert_eq!(batches[0].0.at(&[0, 0]), 0.0);
        assert_eq!(batches[2].1.at(&[0, 0]), 4.0);
    }

    #[test]
    fn drop_last_skips_remainder() {
        let (x, y) = samples(5);
        let it = BatchIter::new(&x, &y, 2).unwrap().drop_last();
        assert_eq!(it.num_batches(), 2);
        assert_eq!(it.count(), 2);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let (x, y) = samples(7);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen: Vec<f32> = BatchIter::shuffled(&x, &y, 3, &mut rng)
            .unwrap()
            .flat_map(|(_, by)| by.data().to_vec())
            .collect();
        seen.sort_by(f32::total_cmp);
        assert_eq!(seen, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn x_and_y_stay_aligned_under_shuffle() {
        let (x, y) = samples(10);
        let mut rng = StdRng::seed_from_u64(9);
        for (bx, by) in BatchIter::shuffled(&x, &y, 4, &mut rng).unwrap() {
            for r in 0..bx.shape()[0] {
                assert_eq!(bx.at(&[r, 0]), by.at(&[r, 0]));
            }
        }
    }

    #[test]
    fn prefetched_batches_match_batchiter_bitwise() {
        let (x, y) = samples(11);
        // Same seed -> same permutation; the prefetch path must yield
        // the same batches, bit for bit, including the remainder.
        let want: Vec<_> = BatchIter::shuffled(&x, &y, 4, &mut StdRng::seed_from_u64(5))
            .unwrap()
            .collect();
        let mut got: Vec<(Tensor, Tensor)> = Vec::new();
        prefetched_shuffled(&x, &y, 4, &mut StdRng::seed_from_u64(5), |bx, by| {
            got.push((bx, by));
            Ok(())
        })
        .unwrap();
        assert_eq!(want.len(), got.len());
        for ((wx, wy), (gx, gy)) in want.iter().zip(&got) {
            assert_eq!(wx.shape(), gx.shape());
            assert_eq!(wx.data(), gx.data());
            assert_eq!(wy.data(), gy.data());
        }
    }

    #[test]
    fn prefetched_consumes_rng_like_shuffled() {
        // Both paths must advance the epoch RNG identically so a
        // trainer can toggle prefetch without perturbing later epochs.
        let (x, y) = samples(9);
        let mut a = StdRng::seed_from_u64(77);
        let mut b = StdRng::seed_from_u64(77);
        BatchIter::shuffled(&x, &y, 2, &mut a).unwrap();
        prefetched_shuffled(&x, &y, 2, &mut b, |_, _| Ok(())).unwrap();
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn prefetched_propagates_callback_errors() {
        let (x, y) = samples(8);
        let mut calls = 0;
        let err = prefetched_shuffled(&x, &y, 2, &mut StdRng::seed_from_u64(1), |_, _| {
            calls += 1;
            if calls == 2 {
                Err(TensorError::Invalid("stop".into()))
            } else {
                Ok(())
            }
        });
        assert!(err.is_err());
        assert_eq!(calls, 2);
    }

    #[test]
    fn mismatched_sample_counts_rejected() {
        let x = Tensor::zeros(&[4, 2]);
        let y = Tensor::zeros(&[5, 1]);
        assert!(BatchIter::new(&x, &y, 2).is_err());
        assert!(BatchIter::new(&x, &x, 0).is_err());
    }
}
