//! Canonical (quadratic) multi-head self-attention — the paper's Eq. 2/3
//! and the `SA` ablation baseline of Table VIII.

use crate::init;
use crate::param::{Param, ParamStore};
use rand::Rng;
use stwa_autograd::{Graph, Var};
use stwa_tensor::{linalg, Result, Tensor, TensorError};

/// Multi-head scaled-dot-product self-attention.
///
/// Input is `[..., T, in_dim]` with any number of leading batch axes
/// (the workspace convention is `[B, N, T, F]`). The projections
/// `Q, K, V in R^{F x d}` are the *spatio-temporal agnostic* shared
/// parameters the paper's generator replaces; use
/// [`MultiHeadSelfAttention::forward_with`] to run the same attention
/// arithmetic under externally generated projections.
pub struct MultiHeadSelfAttention {
    wq: Param,
    wk: Param,
    wv: Param,
    heads: usize,
    in_dim: usize,
    d: usize,
}

impl MultiHeadSelfAttention {
    pub fn new(
        store: &ParamStore,
        name: &str,
        in_dim: usize,
        d: usize,
        heads: usize,
        rng: &mut impl Rng,
    ) -> MultiHeadSelfAttention {
        assert!(heads >= 1 && d.is_multiple_of(heads), "heads must divide d");
        let proj = |suffix: &str, rng: &mut dyn rand::RngCore| {
            store.param(
                format!("{name}.{suffix}"),
                init::xavier_uniform(&[in_dim, d], in_dim, d, &mut &mut *rng),
            )
        };
        MultiHeadSelfAttention {
            wq: proj("q", rng),
            wk: proj("k", rng),
            wv: proj("v", rng),
            heads,
            in_dim,
            d,
        }
    }

    pub fn out_dim(&self) -> usize {
        self.d
    }

    /// Attention with this layer's own (shared) projections.
    pub fn forward(&self, graph: &Graph, x: &Var) -> Result<Var> {
        let wq = self.wq.leaf(graph);
        let wk = self.wk.leaf(graph);
        let wv = self.wv.leaf(graph);
        self.forward_with(x, &wq, &wk, &wv)
    }

    /// Attention under externally supplied projections.
    ///
    /// `wq`/`wk`/`wv` must broadcast against `x`'s leading axes under
    /// batched matmul — either plain `[F, d]` (shared) or
    /// `[B, N, F, d]`-style per-sensor generated projections (the
    /// spatio-temporal aware case).
    pub fn forward_with(&self, x: &Var, wq: &Var, wk: &Var, wv: &Var) -> Result<Var> {
        let shape = x.shape();
        let rank = shape.len();
        if rank < 2 || shape[rank - 1] != self.in_dim {
            return Err(TensorError::Invalid(format!(
                "attention: expected [..., T, {}], got {shape:?}",
                self.in_dim
            )));
        }
        let q = x.matmul(wq)?; // [..., T, d]
        let k = x.matmul(wk)?;
        let v = x.matmul(wv)?;
        let ctx = scaled_dot_attention(&q, &k, &v, self.heads)?;
        Ok(ctx)
    }
}

/// Scaled-dot-product attention with head splitting.
///
/// `q`: `[..., Tq, d]`, `k`/`v`: `[..., Tk, d]`; returns `[..., Tq, d]`.
/// Softmax is over the key axis. `heads` must divide `d`.
pub fn scaled_dot_attention(q: &Var, k: &Var, v: &Var, heads: usize) -> Result<Var> {
    let qs = q.shape();
    let rank = qs.len();
    let d = qs[rank - 1];
    if heads == 0 || !d.is_multiple_of(heads) {
        return Err(TensorError::Invalid(format!(
            "scaled_dot_attention: heads {heads} must divide d {d}"
        )));
    }
    let dh = d / heads;
    let tq = qs[rank - 2];
    let tk = k.shape()[rank - 2];

    // [..., T, d] -> [..., heads, T, dh]
    let split = |x: &Var, t: usize| -> Result<Var> {
        let mut s = x.shape()[..rank - 2].to_vec();
        s.extend_from_slice(&[t, heads, dh]);
        let y = x.reshape(&s)?;
        let r = y.shape().len();
        y.swap_axes(r - 3, r - 2)
    };
    let qh = split(q, tq)?;
    let kh = split(k, tk)?;
    let vh = split(v, tk)?;

    let scores = qh
        .matmul_nt(&kh)?
        .mul_scalar(1.0 / (dh as f32).sqrt()); // [..., heads, Tq, Tk]
    let attn = scores.softmax(scores.shape().len() - 1)?;
    let ctx = attn.matmul(&vh)?; // [..., heads, Tq, dh]

    // [..., heads, Tq, dh] -> [..., Tq, d]
    let r = ctx.shape().len();
    let merged = ctx.swap_axes(r - 3, r - 2)?;
    let mut out_shape = merged.shape()[..r - 2].to_vec();
    out_shape.push(d);
    merged.reshape(&out_shape)
}

/// Tape-free [`scaled_dot_attention`]: the same tensor kernels in the
/// same order, with no graph nodes. Bitwise equal to the graph path.
pub fn scaled_dot_attention_nograd(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
) -> Result<Tensor> {
    let qs = q.shape().to_vec();
    let rank = qs.len();
    let d = qs[rank - 1];
    if heads == 0 || !d.is_multiple_of(heads) {
        return Err(TensorError::Invalid(format!(
            "scaled_dot_attention: heads {heads} must divide d {d}"
        )));
    }
    let dh = d / heads;
    let tq = qs[rank - 2];
    let tk = k.shape()[rank - 2];

    let split = |x: &Tensor, t: usize| -> Result<Tensor> {
        let mut s = x.shape()[..rank - 2].to_vec();
        s.extend_from_slice(&[t, heads, dh]);
        let y = x.reshape(&s)?;
        let r = y.rank();
        y.swap_axes(r - 3, r - 2)
    };
    let sspan = stwa_observe::span!("att_split");
    let qh = split(q, tq)?;
    let kh = split(k, tk)?;
    let vh = split(v, tk)?;
    drop(sspan);

    let scspan = stwa_observe::span!("att_scores");
    let scores = linalg::matmul_nt(&qh, &kh)?.mul_scalar(1.0 / (dh as f32).sqrt());
    drop(scspan);
    let smspan = stwa_observe::span!("att_softmax");
    let attn = scores.softmax(scores.rank() - 1)?;
    drop(smspan);
    let cspan = stwa_observe::span!("att_ctx");
    let ctx = linalg::matmul(&attn, &vh)?;
    drop(cspan);

    let mspan = stwa_observe::span!("att_merge");
    let r = ctx.rank();
    let merged = ctx.swap_axes(r - 3, r - 2)?;
    let mut out_shape = merged.shape()[..r - 2].to_vec();
    out_shape.push(d);
    let out = merged.reshape(&out_shape);
    drop(mspan);
    out
}

/// Serving-path [`scaled_dot_attention_nograd`]: one fused walk with no
/// intermediate tensors.
///
/// The tape-free mirror above spends most of its time on data movement
/// — six permute/reshape materializations to split and re-merge heads,
/// plus five kernel dispatches — on score matrices of a few dozen
/// elements (window attention runs `Tq = p ≈ 1`, `Tk = s ≈ 3`). This
/// variant reads each head's `dh`-wide column block of `q`/`k`/`v` in
/// place and writes the context straight into the merged output layout.
///
/// Bitwise contract: every score is the ascending-`c` dot product the
/// NT kernel computes, scaled after the full sum exactly like
/// `mul_scalar`; the softmax row is the max / `exp_f32(x - m)` /
/// ascending-sum / divide chain shared by `softmax_lastdim` and the
/// strided reference; the context accumulates ascending `j` like the
/// NN kernels. Identical chains, identical bits — asserted against
/// [`scaled_dot_attention_nograd`] by unit test and proptest.
///
/// `q` is `[..., Tq, d]`, `k`/`v` are `[..., Tk, d]` with leading axes
/// equal to `q`'s (no broadcasting).
pub fn scaled_dot_attention_lean(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
) -> Result<Tensor> {
    let rank = q.rank();
    if rank < 2 || k.rank() != rank || v.shape() != k.shape() {
        return Err(TensorError::Invalid(format!(
            "scaled_dot_attention_lean: q {:?} / k {:?} / v {:?}",
            q.shape(),
            k.shape(),
            v.shape()
        )));
    }
    let d = q.shape()[rank - 1];
    if heads == 0 || !d.is_multiple_of(heads) {
        return Err(TensorError::Invalid(format!(
            "scaled_dot_attention: heads {heads} must divide d {d}"
        )));
    }
    if q.shape()[..rank - 2] != k.shape()[..rank - 2] || k.shape()[rank - 1] != d {
        return Err(TensorError::Invalid(format!(
            "scaled_dot_attention_lean: leading/feature axes of q {:?} and k {:?} must match",
            q.shape(),
            k.shape()
        )));
    }
    let dh = d / heads;
    let tq = q.shape()[rank - 2];
    let tk = k.shape()[rank - 2];
    let lead: usize = q.shape()[..rank - 2].iter().product();
    let scale = 1.0 / (dh as f32).sqrt();

    let (qd, kd, vd) = (q.data(), k.data(), v.data());
    let mut out = stwa_tensor::memory::take_scratch(lead * tq * d);
    let mut scores = vec![0f32; tk];
    for l in 0..lead {
        let qb = &qd[l * tq * d..(l + 1) * tq * d];
        let kb = &kd[l * tk * d..(l + 1) * tk * d];
        let vb = &vd[l * tk * d..(l + 1) * tk * d];
        let ob = &mut out[l * tq * d..(l + 1) * tq * d];
        for h in 0..heads {
            let off = h * dh;
            for i in 0..tq {
                let qrow = &qb[i * d + off..i * d + off + dh];
                // Scores: ascending-c dot, scaled after the full sum.
                for (j, slot) in scores.iter_mut().enumerate() {
                    let krow = &kb[j * d + off..j * d + off + dh];
                    let mut acc = 0.0f32;
                    for (&qv, &kv) in qrow.iter().zip(krow.iter()) {
                        acc += qv * kv;
                    }
                    *slot = acc * scale;
                }
                // Softmax row: max, exp-shift, ascending sum, divide.
                let mut m = f32::NEG_INFINITY;
                for &x in scores.iter() {
                    m = m.max(x);
                }
                stwa_tensor::mathfn::exp_sub_slice(&mut scores, m);
                let mut z = 0.0f32;
                for &x in scores.iter() {
                    z += x;
                }
                for x in scores.iter_mut() {
                    *x /= z;
                }
                // Context: ascending-j accumulation, written straight
                // into the merged [..., Tq, d] layout.
                let orow = &mut ob[i * d + off..i * d + off + dh];
                for (c, slot) in orow.iter_mut().enumerate() {
                    let mut acc = 0.0f32;
                    for (j, &w) in scores.iter().enumerate() {
                        acc += w * vb[j * d + off + c];
                    }
                    *slot = acc;
                }
            }
        }
    }
    Tensor::from_vec(out, q.shape())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stwa_tensor::Tensor;

    fn layer(
        in_dim: usize,
        d: usize,
        heads: usize,
        seed: u64,
    ) -> (ParamStore, MultiHeadSelfAttention) {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let att = MultiHeadSelfAttention::new(&store, "att", in_dim, d, heads, &mut rng);
        (store, att)
    }

    #[test]
    fn output_shape_multi_batch() {
        let (_s, att) = layer(3, 8, 2, 0);
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(1);
        // [B, N, T, F] convention.
        let x = g.constant(Tensor::randn(&[2, 4, 6, 3], &mut rng));
        let y = att.forward(&g, &x).unwrap();
        assert_eq!(y.shape(), vec![2, 4, 6, 8]);
    }

    #[test]
    fn single_head_equals_multi_head_with_same_dh_math() {
        // Sanity: one head runs and produces finite values.
        let (_s, att) = layer(2, 4, 1, 2);
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(3);
        let x = g.constant(Tensor::randn(&[1, 5, 2], &mut rng));
        let y = att.forward(&g, &x).unwrap();
        assert!(!y.value().has_non_finite());
    }

    #[test]
    fn identical_timestamps_attend_uniformly() {
        // If every timestamp is the same vector, attention output equals
        // the value projection of that vector at every position.
        let (_s, att) = layer(3, 6, 3, 4);
        let g = Graph::new();
        let row = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[3]).unwrap();
        let x = g.constant(row.broadcast_to(&[1, 7, 3]).unwrap());
        let y = att.forward(&g, &x).unwrap();
        let v = y.value();
        for t in 1..7 {
            for c in 0..6 {
                assert!((v.at(&[0, t, c]) - v.at(&[0, 0, c])).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn heads_must_divide_d() {
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(5);
        let q = g.constant(Tensor::randn(&[1, 4, 6], &mut rng));
        assert!(scaled_dot_attention(&q, &q, &q, 4).is_err());
        assert!(scaled_dot_attention(&q, &q, &q, 0).is_err());
        assert!(scaled_dot_attention(&q, &q, &q, 3).is_ok());
    }

    #[test]
    fn cross_attention_shapes() {
        // Query length != key length (the window-attention usage where
        // proxies act as queries).
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(6);
        let q = g.constant(Tensor::randn(&[2, 3, 8], &mut rng)); // 3 proxies
        let k = g.constant(Tensor::randn(&[2, 12, 8], &mut rng)); // 12 timestamps
        let v = g.constant(Tensor::randn(&[2, 12, 8], &mut rng));
        let y = scaled_dot_attention(&q, &k, &v, 2).unwrap();
        assert_eq!(y.shape(), vec![2, 3, 8]);
    }

    #[test]
    fn attention_output_in_value_convex_hull() {
        // Attention is a convex combination of values per head; with one
        // head the output of each position lies within [min, max] of the
        // value rows per coordinate.
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(7);
        let q = g.constant(Tensor::randn(&[1, 4, 4], &mut rng));
        let k = g.constant(Tensor::randn(&[1, 6, 4], &mut rng));
        let v = g.constant(Tensor::randn(&[1, 6, 4], &mut rng));
        let y = scaled_dot_attention(&q, &k, &v, 1).unwrap();
        let vv = v.value();
        let yv = y.value();
        for c in 0..4 {
            let lo = (0..6)
                .map(|t| vv.at(&[0, t, c]))
                .fold(f32::INFINITY, f32::min);
            let hi = (0..6)
                .map(|t| vv.at(&[0, t, c]))
                .fold(f32::NEG_INFINITY, f32::max);
            for t in 0..4 {
                let val = yv.at(&[0, t, c]);
                assert!(val >= lo - 1e-5 && val <= hi + 1e-5);
            }
        }
    }

    #[test]
    fn nograd_attention_bitwise_matches_graph_path() {
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(12);
        let q = Tensor::randn(&[2, 3, 5, 8], &mut rng);
        let k = Tensor::randn(&[2, 3, 9, 8], &mut rng);
        let v = Tensor::randn(&[2, 3, 9, 8], &mut rng);
        let graph_out = scaled_dot_attention(
            &g.constant(q.clone()),
            &g.constant(k.clone()),
            &g.constant(v.clone()),
            4,
        )
        .unwrap()
        .value();
        let nograd_out = scaled_dot_attention_nograd(&q, &k, &v, 4).unwrap();
        assert_eq!(graph_out.shape(), nograd_out.shape());
        assert_eq!(graph_out.data(), nograd_out.data());
    }

    #[test]
    fn lean_attention_bitwise_matches_nograd_path() {
        let mut rng = StdRng::seed_from_u64(13);
        // Window-attention shapes (p=1 queries, s=3 keys, d=16, 4
        // heads), the graph-test shape, and a chunky cross-attention.
        let cases: &[(&[usize], &[usize], usize)] = &[
            (&[2, 32, 4, 1, 16], &[2, 32, 4, 3, 16], 4),
            (&[2, 3, 5, 8], &[2, 3, 9, 8], 4),
            (&[1, 32, 1, 16], &[1, 32, 2, 16], 4),
            (&[4, 7, 12], &[4, 11, 12], 3),
            (&[6, 6], &[9, 6], 1),
        ];
        for &(qs, ks, heads) in cases {
            let q = Tensor::randn(qs, &mut rng).mul_scalar(3.0);
            let k = Tensor::randn(ks, &mut rng).mul_scalar(3.0);
            let v = Tensor::randn(ks, &mut rng);
            let want = scaled_dot_attention_nograd(&q, &k, &v, heads).unwrap();
            let got = scaled_dot_attention_lean(&q, &k, &v, heads).unwrap();
            assert_eq!(want.shape(), got.shape(), "shape for q {qs:?}");
            assert_eq!(want.data(), got.data(), "bits for q {qs:?}");
        }
    }

    #[test]
    fn lean_attention_rejects_mismatched_leading_axes() {
        let mut rng = StdRng::seed_from_u64(14);
        let q = Tensor::randn(&[2, 3, 8], &mut rng);
        let k = Tensor::randn(&[3, 3, 8], &mut rng);
        assert!(scaled_dot_attention_lean(&q, &k, &k, 2).is_err());
        let k2 = Tensor::randn(&[2, 3, 8], &mut rng);
        let v2 = Tensor::randn(&[2, 4, 8], &mut rng);
        assert!(scaled_dot_attention_lean(&q, &k2, &v2, 2).is_err());
        assert!(scaled_dot_attention_lean(&q, &k2, &k2, 3).is_err());
    }

    #[test]
    fn gradients_flow_to_projections() {
        let (store, att) = layer(3, 4, 2, 8);
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(9);
        let x = g.constant(Tensor::randn(&[1, 5, 3], &mut rng));
        let loss = att
            .forward(&g, &x)
            .unwrap()
            .square()
            .unwrap()
            .sum_all()
            .unwrap();
        g.backward(&loss).unwrap();
        assert!(store.params().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    fn forward_with_accepts_per_batch_projections() {
        // Generated projections with a leading batch axis broadcast
        // through batched matmul — the ST-aware path.
        let (_s, att) = layer(3, 4, 1, 10);
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(11);
        let x = g.constant(Tensor::randn(&[2, 5, 3], &mut rng));
        let wq = g.constant(Tensor::randn(&[2, 3, 4], &mut rng));
        let wk = g.constant(Tensor::randn(&[2, 3, 4], &mut rng));
        let wv = g.constant(Tensor::randn(&[2, 3, 4], &mut rng));
        let y = att.forward_with(&x, &wq, &wk, &wv).unwrap();
        assert_eq!(y.shape(), vec![2, 5, 4]);
        // Different per-batch projections -> different outputs.
        let y0 = y.value().narrow(0, 0, 1).unwrap();
        let y1 = y.value().narrow(0, 1, 1).unwrap();
        assert!(!y0.approx_eq(&y1, 1e-6));
    }
}
