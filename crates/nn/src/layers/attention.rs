//! Canonical (quadratic) multi-head self-attention — the paper's Eq. 2/3
//! and the `SA` ablation baseline of Table VIII.

use crate::init;
use crate::param::{Param, ParamStore};
use rand::Rng;
use stwa_autograd::{Graph, Var};
use stwa_tensor::{Result, TensorError};

/// Multi-head scaled-dot-product self-attention.
///
/// Input is `[..., T, in_dim]` with any number of leading batch axes
/// (the workspace convention is `[B, N, T, F]`). The projections
/// `Q, K, V in R^{F x d}` are the *spatio-temporal agnostic* shared
/// parameters the paper's generator replaces; use
/// [`MultiHeadSelfAttention::forward_with`] to run the same attention
/// arithmetic under externally generated projections.
pub struct MultiHeadSelfAttention {
    wq: Param,
    wk: Param,
    wv: Param,
    heads: usize,
    in_dim: usize,
    d: usize,
}

impl MultiHeadSelfAttention {
    pub fn new(
        store: &ParamStore,
        name: &str,
        in_dim: usize,
        d: usize,
        heads: usize,
        rng: &mut impl Rng,
    ) -> MultiHeadSelfAttention {
        assert!(heads >= 1 && d.is_multiple_of(heads), "heads must divide d");
        let proj = |suffix: &str, rng: &mut dyn rand::RngCore| {
            store.param(
                format!("{name}.{suffix}"),
                init::xavier_uniform(&[in_dim, d], in_dim, d, &mut &mut *rng),
            )
        };
        MultiHeadSelfAttention {
            wq: proj("q", rng),
            wk: proj("k", rng),
            wv: proj("v", rng),
            heads,
            in_dim,
            d,
        }
    }

    pub fn out_dim(&self) -> usize {
        self.d
    }

    /// Attention with this layer's own (shared) projections.
    pub fn forward(&self, graph: &Graph, x: &Var) -> Result<Var> {
        let wq = self.wq.leaf(graph);
        let wk = self.wk.leaf(graph);
        let wv = self.wv.leaf(graph);
        self.forward_with(x, &wq, &wk, &wv)
    }

    /// Attention under externally supplied projections.
    ///
    /// `wq`/`wk`/`wv` must broadcast against `x`'s leading axes under
    /// batched matmul — either plain `[F, d]` (shared) or
    /// `[B, N, F, d]`-style per-sensor generated projections (the
    /// spatio-temporal aware case).
    pub fn forward_with(&self, x: &Var, wq: &Var, wk: &Var, wv: &Var) -> Result<Var> {
        let shape = x.shape();
        let rank = shape.len();
        if rank < 2 || shape[rank - 1] != self.in_dim {
            return Err(TensorError::Invalid(format!(
                "attention: expected [..., T, {}], got {shape:?}",
                self.in_dim
            )));
        }
        let q = x.matmul(wq)?; // [..., T, d]
        let k = x.matmul(wk)?;
        let v = x.matmul(wv)?;
        let ctx = scaled_dot_attention(&q, &k, &v, self.heads)?;
        Ok(ctx)
    }
}

/// Scaled-dot-product attention with head splitting.
///
/// `q`: `[..., Tq, d]`, `k`/`v`: `[..., Tk, d]`; returns `[..., Tq, d]`.
/// Softmax is over the key axis. `heads` must divide `d`.
pub fn scaled_dot_attention(q: &Var, k: &Var, v: &Var, heads: usize) -> Result<Var> {
    let qs = q.shape();
    let rank = qs.len();
    let d = qs[rank - 1];
    if heads == 0 || !d.is_multiple_of(heads) {
        return Err(TensorError::Invalid(format!(
            "scaled_dot_attention: heads {heads} must divide d {d}"
        )));
    }
    let dh = d / heads;
    let tq = qs[rank - 2];
    let tk = k.shape()[rank - 2];

    // [..., T, d] -> [..., heads, T, dh]
    let split = |x: &Var, t: usize| -> Result<Var> {
        let mut s = x.shape()[..rank - 2].to_vec();
        s.extend_from_slice(&[t, heads, dh]);
        let y = x.reshape(&s)?;
        let r = y.shape().len();
        y.swap_axes(r - 3, r - 2)
    };
    let qh = split(q, tq)?;
    let kh = split(k, tk)?;
    let vh = split(v, tk)?;

    let scores = qh
        .matmul_nt(&kh)?
        .mul_scalar(1.0 / (dh as f32).sqrt()); // [..., heads, Tq, Tk]
    let attn = scores.softmax(scores.shape().len() - 1)?;
    let ctx = attn.matmul(&vh)?; // [..., heads, Tq, dh]

    // [..., heads, Tq, dh] -> [..., Tq, d]
    let r = ctx.shape().len();
    let merged = ctx.swap_axes(r - 3, r - 2)?;
    let mut out_shape = merged.shape()[..r - 2].to_vec();
    out_shape.push(d);
    merged.reshape(&out_shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stwa_tensor::Tensor;

    fn layer(
        in_dim: usize,
        d: usize,
        heads: usize,
        seed: u64,
    ) -> (ParamStore, MultiHeadSelfAttention) {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let att = MultiHeadSelfAttention::new(&store, "att", in_dim, d, heads, &mut rng);
        (store, att)
    }

    #[test]
    fn output_shape_multi_batch() {
        let (_s, att) = layer(3, 8, 2, 0);
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(1);
        // [B, N, T, F] convention.
        let x = g.constant(Tensor::randn(&[2, 4, 6, 3], &mut rng));
        let y = att.forward(&g, &x).unwrap();
        assert_eq!(y.shape(), vec![2, 4, 6, 8]);
    }

    #[test]
    fn single_head_equals_multi_head_with_same_dh_math() {
        // Sanity: one head runs and produces finite values.
        let (_s, att) = layer(2, 4, 1, 2);
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(3);
        let x = g.constant(Tensor::randn(&[1, 5, 2], &mut rng));
        let y = att.forward(&g, &x).unwrap();
        assert!(!y.value().has_non_finite());
    }

    #[test]
    fn identical_timestamps_attend_uniformly() {
        // If every timestamp is the same vector, attention output equals
        // the value projection of that vector at every position.
        let (_s, att) = layer(3, 6, 3, 4);
        let g = Graph::new();
        let row = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[3]).unwrap();
        let x = g.constant(row.broadcast_to(&[1, 7, 3]).unwrap());
        let y = att.forward(&g, &x).unwrap();
        let v = y.value();
        for t in 1..7 {
            for c in 0..6 {
                assert!((v.at(&[0, t, c]) - v.at(&[0, 0, c])).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn heads_must_divide_d() {
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(5);
        let q = g.constant(Tensor::randn(&[1, 4, 6], &mut rng));
        assert!(scaled_dot_attention(&q, &q, &q, 4).is_err());
        assert!(scaled_dot_attention(&q, &q, &q, 0).is_err());
        assert!(scaled_dot_attention(&q, &q, &q, 3).is_ok());
    }

    #[test]
    fn cross_attention_shapes() {
        // Query length != key length (the window-attention usage where
        // proxies act as queries).
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(6);
        let q = g.constant(Tensor::randn(&[2, 3, 8], &mut rng)); // 3 proxies
        let k = g.constant(Tensor::randn(&[2, 12, 8], &mut rng)); // 12 timestamps
        let v = g.constant(Tensor::randn(&[2, 12, 8], &mut rng));
        let y = scaled_dot_attention(&q, &k, &v, 2).unwrap();
        assert_eq!(y.shape(), vec![2, 3, 8]);
    }

    #[test]
    fn attention_output_in_value_convex_hull() {
        // Attention is a convex combination of values per head; with one
        // head the output of each position lies within [min, max] of the
        // value rows per coordinate.
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(7);
        let q = g.constant(Tensor::randn(&[1, 4, 4], &mut rng));
        let k = g.constant(Tensor::randn(&[1, 6, 4], &mut rng));
        let v = g.constant(Tensor::randn(&[1, 6, 4], &mut rng));
        let y = scaled_dot_attention(&q, &k, &v, 1).unwrap();
        let vv = v.value();
        let yv = y.value();
        for c in 0..4 {
            let lo = (0..6)
                .map(|t| vv.at(&[0, t, c]))
                .fold(f32::INFINITY, f32::min);
            let hi = (0..6)
                .map(|t| vv.at(&[0, t, c]))
                .fold(f32::NEG_INFINITY, f32::max);
            for t in 0..4 {
                let val = yv.at(&[0, t, c]);
                assert!(val >= lo - 1e-5 && val <= hi + 1e-5);
            }
        }
    }

    #[test]
    fn gradients_flow_to_projections() {
        let (store, att) = layer(3, 4, 2, 8);
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(9);
        let x = g.constant(Tensor::randn(&[1, 5, 3], &mut rng));
        let loss = att
            .forward(&g, &x)
            .unwrap()
            .square()
            .unwrap()
            .sum_all()
            .unwrap();
        g.backward(&loss).unwrap();
        assert!(store.params().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    fn forward_with_accepts_per_batch_projections() {
        // Generated projections with a leading batch axis broadcast
        // through batched matmul — the ST-aware path.
        let (_s, att) = layer(3, 4, 1, 10);
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(11);
        let x = g.constant(Tensor::randn(&[2, 5, 3], &mut rng));
        let wq = g.constant(Tensor::randn(&[2, 3, 4], &mut rng));
        let wk = g.constant(Tensor::randn(&[2, 3, 4], &mut rng));
        let wv = g.constant(Tensor::randn(&[2, 3, 4], &mut rng));
        let y = att.forward_with(&x, &wq, &wk, &wv).unwrap();
        assert_eq!(y.shape(), vec![2, 5, 4]);
        // Different per-batch projections -> different outputs.
        let y0 = y.value().narrow(0, 0, 1).unwrap();
        let y1 = y.value().narrow(0, 1, 1).unwrap();
        assert!(!y0.approx_eq(&y1, 1e-6));
    }
}
