//! Gated recurrent units: the single-step cell and a full sequence layer.
//!
//! GRUs are one of the two "spatio-temporal agnostic" architectures the
//! paper enhances with generated parameters (Table VII), and the temporal
//! module of several baselines (DCRNN, AGCRN).

use crate::init;
use crate::param::{Param, ParamStore};
use rand::Rng;
use stwa_autograd::{Graph, Var};
use stwa_tensor::{Result, Tensor, TensorError};

/// One GRU step with fused gate weights.
///
/// Gate layout along the last axis of the fused matrices: `[z | r | n]`.
///
/// ```text
/// z = sigma(x Wx_z + h Wh_z + b_z)
/// r = sigma(x Wx_r + h Wh_r + b_r)
/// n = tanh (x Wx_n + r * (h Wh_n) + b_n)
/// h' = (1 - z) * n + z * h
/// ```
pub struct GruCell {
    wx: Param,
    wh: Param,
    b: Param,
    in_dim: usize,
    hidden: usize,
}

impl GruCell {
    pub fn new(
        store: &ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> GruCell {
        GruCell {
            wx: store.param(
                format!("{name}.wx"),
                init::lecun_uniform(&[in_dim, 3 * hidden], in_dim, rng),
            ),
            wh: store.param(
                format!("{name}.wh"),
                init::lecun_uniform(&[hidden, 3 * hidden], hidden, rng),
            ),
            b: store.param(format!("{name}.b"), init::zeros(&[3 * hidden])),
            in_dim,
            hidden,
        }
    }

    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Step: `x` is `[B, in_dim]`, `h` is `[B, hidden]`; returns the new
    /// hidden state `[B, hidden]`.
    pub fn step(&self, graph: &Graph, x: &Var, h: &Var) -> Result<Var> {
        self.step_with(
            graph,
            x,
            h,
            &self.wx.leaf(graph),
            &self.wh.leaf(graph),
            &self.b.leaf(graph),
        )
    }

    /// Step with externally supplied weight `Var`s.
    ///
    /// This is the hook the paper's parameter-generation framework uses:
    /// `GRU+S`/`GRU+ST` (Table VII) pass per-sensor generated weights here
    /// instead of the cell's own parameters.
    pub fn step_with(
        &self,
        _graph: &Graph,
        x: &Var,
        h: &Var,
        wx: &Var,
        wh: &Var,
        b: &Var,
    ) -> Result<Var> {
        let xs = x.shape();
        if xs.last() != Some(&self.in_dim) {
            return Err(TensorError::Invalid(format!(
                "GruCell: expected input last dim {}, got {:?}",
                self.in_dim, xs
            )));
        }
        let d = self.hidden;
        let gx = x.matmul(wx)?.add(b)?; // [B, 3d]
        let gh = h.matmul(wh)?; // [B, 3d]
        let rank = gx.shape().len();
        let axis = rank - 1;
        let z = gx
            .narrow(axis, 0, d)?
            .add(&gh.narrow(axis, 0, d)?)?
            .sigmoid();
        let r = gx
            .narrow(axis, d, d)?
            .add(&gh.narrow(axis, d, d)?)?
            .sigmoid();
        let n = gx
            .narrow(axis, 2 * d, d)?
            .add(&r.mul(&gh.narrow(axis, 2 * d, d)?)?)?
            .tanh();
        // h' = (1 - z) * n + z * h
        let one_minus_z = z.neg().add_scalar(1.0);
        one_minus_z.mul(&n)?.add(&z.mul(h)?)
    }
}

/// A full GRU over a time axis.
pub struct Gru {
    cell: GruCell,
}

impl Gru {
    pub fn new(
        store: &ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Gru {
        Gru {
            cell: GruCell::new(store, name, in_dim, hidden, rng),
        }
    }

    pub fn cell(&self) -> &GruCell {
        &self.cell
    }

    /// Run over `x` of shape `[B, T, in_dim]`, returning the final hidden
    /// state `[B, hidden]`.
    pub fn forward_last(&self, graph: &Graph, x: &Var) -> Result<Var> {
        let shape = x.shape();
        if shape.len() != 3 {
            return Err(TensorError::Invalid(format!(
                "Gru: expected [B, T, F] input, got {shape:?}"
            )));
        }
        let (b, t) = (shape[0], shape[1]);
        // Bind weights once; reuse the same leaves across time steps.
        let wx = self.cell.wx.leaf(graph);
        let wh = self.cell.wh.leaf(graph);
        let bias = self.cell.b.leaf(graph);
        let mut h = graph.constant(Tensor::zeros(&[b, self.cell.hidden]));
        for step in 0..t {
            let xt = x.narrow(1, step, 1)?.squeeze(1)?;
            h = self.cell.step_with(graph, &xt, &h, &wx, &wh, &bias)?;
        }
        Ok(h)
    }

    /// Run over `x` `[B, T, in_dim]`, returning all hidden states
    /// `[B, T, hidden]`.
    pub fn forward_all(&self, graph: &Graph, x: &Var) -> Result<Var> {
        let shape = x.shape();
        if shape.len() != 3 {
            return Err(TensorError::Invalid(format!(
                "Gru: expected [B, T, F] input, got {shape:?}"
            )));
        }
        let (b, t) = (shape[0], shape[1]);
        let wx = self.cell.wx.leaf(graph);
        let wh = self.cell.wh.leaf(graph);
        let bias = self.cell.b.leaf(graph);
        let mut h = graph.constant(Tensor::zeros(&[b, self.cell.hidden]));
        let mut outputs = Vec::with_capacity(t);
        for step in 0..t {
            let xt = x.narrow(1, step, 1)?.squeeze(1)?;
            h = self.cell.step_with(graph, &xt, &h, &wx, &wh, &bias)?;
            outputs.push(h.unsqueeze(1)?);
        }
        let refs: Vec<&Var> = outputs.iter().collect();
        stwa_autograd::concat(&refs, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cell_output_shape_and_range() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let cell = GruCell::new(&store, "gru", 3, 5, &mut rng);
        let g = Graph::new();
        let x = g.constant(Tensor::randn(&[4, 3], &mut rng));
        let h = g.constant(Tensor::zeros(&[4, 5]));
        let h2 = cell.step(&g, &x, &h).unwrap();
        assert_eq!(h2.shape(), vec![4, 5]);
        // With zero initial state, h' = (1-z) * tanh(...) is in (-1, 1).
        assert!(h2.value().data().iter().all(|&v| v.abs() < 1.0));
    }

    #[test]
    fn zero_input_zero_state_stays_bounded() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cell = GruCell::new(&store, "gru", 2, 4, &mut rng);
        let g = Graph::new();
        let x = g.constant(Tensor::zeros(&[1, 2]));
        let mut h = g.constant(Tensor::zeros(&[1, 4]));
        for _ in 0..50 {
            h = cell.step(&g, &x, &h).unwrap();
        }
        assert!(h
            .value()
            .data()
            .iter()
            .all(|v| v.is_finite() && v.abs() <= 1.0));
    }

    #[test]
    fn sequence_layer_shapes() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let gru = Gru::new(&store, "gru", 2, 6, &mut rng);
        let g = Graph::new();
        let x = g.constant(Tensor::randn(&[3, 7, 2], &mut rng));
        assert_eq!(gru.forward_last(&g, &x).unwrap().shape(), vec![3, 6]);
        assert_eq!(gru.forward_all(&g, &x).unwrap().shape(), vec![3, 7, 6]);
        let bad = g.constant(Tensor::zeros(&[3, 2]));
        assert!(gru.forward_last(&g, &bad).is_err());
    }

    #[test]
    fn forward_all_last_step_matches_forward_last() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let gru = Gru::new(&store, "gru", 2, 4, &mut rng);
        let g = Graph::new();
        let x = g.constant(Tensor::randn(&[2, 5, 2], &mut rng));
        let last = gru.forward_last(&g, &x).unwrap();
        let all = gru.forward_all(&g, &x).unwrap();
        let all_last = all.narrow(1, 4, 1).unwrap().squeeze(1).unwrap();
        assert!(last.value().approx_eq(&all_last.value(), 1e-6));
    }

    #[test]
    fn gru_learns_to_sum_sequence() {
        // Target: sum of a length-4 scalar sequence. A GRU with a linear
        // readout should fit this to reasonable accuracy.
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let gru = Gru::new(&store, "gru", 1, 8, &mut rng);
        let readout = crate::layers::Linear::new(&store, "out", 8, 1, &mut rng);
        let xs = Tensor::rand_uniform(&[32, 4, 1], -0.5, 0.5, &mut rng);
        let ys = xs.clone().sum_axis(1, false).unwrap(); // [32, 1]
        let mut opt = Adam::new(&store, 0.02);
        let mut first = None;
        let mut last_loss = f32::INFINITY;
        for _ in 0..120 {
            let g = Graph::new();
            let x = g.constant(xs.clone());
            let y = g.constant(ys.clone());
            let h = gru.forward_last(&g, &x).unwrap();
            let pred = readout.forward(&g, &h).unwrap();
            let l = loss::mse(&pred, &y).unwrap();
            last_loss = l.value().item().unwrap();
            first.get_or_insert(last_loss);
            g.backward(&l).unwrap();
            opt.step();
            opt.finish_step();
        }
        assert!(
            last_loss < first.unwrap() * 0.1,
            "GRU failed to learn: {} -> {}",
            first.unwrap(),
            last_loss
        );
    }
}
