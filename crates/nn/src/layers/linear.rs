//! Dense (fully connected) layers and the small MLP used throughout the
//! paper (encoder `E_psi`, decoder `D_omega`, predictor, aggregator).

use crate::init;
use crate::param::{Param, ParamStore};
use rand::Rng;
use stwa_autograd::{ActKind, Graph, Var};
use stwa_tensor::{linalg, memory, Result, Tensor, TensorError};

/// Pointwise nonlinearity selector for [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    Identity,
    Relu,
    Tanh,
    Sigmoid,
}

impl Activation {
    pub fn apply(&self, x: &Var) -> Var {
        match self {
            Activation::Identity => x.clone(),
            Activation::Relu => x.relu(),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => x.sigmoid(),
        }
    }

    /// The autograd-side fused-kernel selector for this activation.
    /// Public so the tape-free inference path can fuse identically.
    pub fn kind(&self) -> ActKind {
        match self {
            Activation::Identity => ActKind::Identity,
            Activation::Relu => ActKind::Relu,
            Activation::Tanh => ActKind::Tanh,
            Activation::Sigmoid => ActKind::Sigmoid,
        }
    }

    /// Tensor-path mirror of [`Activation::apply`] — the same underlying
    /// kernels the `Var` ops delegate to, so results are bitwise equal.
    pub fn apply_tensor(&self, x: &Tensor) -> Tensor {
        match self {
            Activation::Identity => x.clone(),
            Activation::Relu => x.relu(),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => x.sigmoid(),
        }
    }
}

/// `y = x W + b`, applied to the last axis of an arbitrary-rank input.
pub struct Linear {
    w: Param,
    b: Option<Param>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    pub fn new(
        store: &ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Linear {
        let w = store.param(
            format!("{name}.w"),
            init::xavier_uniform(&[in_dim, out_dim], in_dim, out_dim, rng),
        );
        let b = Some(store.param(format!("{name}.b"), init::zeros(&[out_dim])));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// A bias-free projection (attention projections in the paper carry
    /// no bias, matching canonical `Q`, `K`, `V`).
    pub fn new_no_bias(
        store: &ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Linear {
        let w = store.param(
            format!("{name}.w"),
            init::xavier_uniform(&[in_dim, out_dim], in_dim, out_dim, rng),
        );
        Linear {
            w,
            b: None,
            in_dim,
            out_dim,
        }
    }

    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The bias parameter, when the layer has one — used by the ST-WA
    /// decoder to seed its output distribution at a useful scale.
    pub fn bias_param(&self) -> Option<&Param> {
        self.b.as_ref()
    }

    /// Apply to `x` of shape `[..., in_dim]`, producing `[..., out_dim]`.
    pub fn forward(&self, graph: &Graph, x: &Var) -> Result<Var> {
        self.forward_act(graph, x, Activation::Identity)
    }

    /// `act(x W + b)` in one call. With a bias present and the fused
    /// switch on, the bias add and the activation collapse into a single
    /// tape node ([`Var::bias_add_act`]), which skips one intermediate
    /// tensor per layer; the result is bit-identical to
    /// `act.apply(&forward(..))`.
    pub fn forward_act(&self, graph: &Graph, x: &Var, act: Activation) -> Result<Var> {
        let shape = x.shape();
        let rank = shape.len();
        if rank == 0 || shape[rank - 1] != self.in_dim {
            return Err(TensorError::Invalid(format!(
                "Linear: expected last dim {}, got shape {:?}",
                self.in_dim, shape
            )));
        }
        let w = self.w.leaf(graph);
        // Flatten leading dims so matmul sees a plain [M, in] x [in, out].
        let lead: usize = shape[..rank - 1].iter().product();
        let flat = x.reshape(&[lead, self.in_dim])?;
        let mut y = flat.matmul(&w)?;
        let mut applied = false;
        if let Some(b) = &self.b {
            let b = b.leaf(graph);
            if memory::fused_enabled() {
                y = y.bias_add_act(&b, act.kind())?;
                applied = true;
            } else {
                y = y.add(&b)?;
            }
        }
        if !applied {
            y = act.apply(&y);
        }
        let mut out_shape = shape[..rank - 1].to_vec();
        out_shape.push(self.out_dim);
        y.reshape(&out_shape)
    }

    /// The weight parameter — read by the inference engine when packing
    /// frozen layers.
    pub fn weight_param(&self) -> &Param {
        &self.w
    }

    /// Tape-free [`Linear::forward`]: same kernels, same order, no graph
    /// nodes. Bitwise equal to the graph path in eval mode.
    pub fn forward_nograd(&self, x: &Tensor) -> Result<Tensor> {
        self.forward_act_nograd(x, Activation::Identity)
    }

    /// Tape-free [`Linear::forward_act`]. Mirrors the graph path
    /// branch-for-branch — including the fused bias+activation `zip`
    /// under [`memory::fused_enabled`] — so either switch setting
    /// produces identical bits to the corresponding `Var` sequence.
    pub fn forward_act_nograd(&self, x: &Tensor, act: Activation) -> Result<Tensor> {
        let shape = x.shape().to_vec();
        let rank = shape.len();
        if rank == 0 || shape[rank - 1] != self.in_dim {
            return Err(TensorError::Invalid(format!(
                "Linear: expected last dim {}, got shape {:?}",
                self.in_dim, shape
            )));
        }
        let w = self.w.value();
        let lead: usize = shape[..rank - 1].iter().product();
        let flat = x.reshape(&[lead, self.in_dim])?;
        let mut y = linalg::matmul(&flat, &w)?;
        let mut applied = false;
        if let Some(b) = &self.b {
            let b = b.value();
            if memory::fused_enabled() {
                let kind = act.kind();
                y = y.zip(&b, "bias_add_act", move |a, bv| kind.apply(a + bv))?;
                applied = true;
            } else {
                y = y.add(&b)?;
            }
        }
        if !applied {
            y = act.apply_tensor(&y);
        }
        let mut out_shape = shape[..rank - 1].to_vec();
        out_shape.push(self.out_dim);
        y.reshape(&out_shape)
    }
}

/// A stack of [`Linear`] layers with per-layer activations — the "2/3
/// layer fully-connected network" pattern the paper uses for the encoder,
/// decoder, predictor, and proxy aggregator.
pub struct Mlp {
    layers: Vec<Linear>,
    activations: Vec<Activation>,
}

impl Mlp {
    /// `dims = [in, h1, ..., out]`; `activations` has one entry per layer
    /// (so `dims.len() - 1` entries).
    pub fn new(
        store: &ParamStore,
        name: &str,
        dims: &[usize],
        activations: &[Activation],
        rng: &mut impl Rng,
    ) -> Mlp {
        assert!(
            dims.len() >= 2 && activations.len() == dims.len() - 1,
            "Mlp: need at least one layer and one activation per layer"
        );
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, &format!("{name}.{i}"), w[0], w[1], rng))
            .collect();
        Mlp {
            layers,
            activations: activations.to_vec(),
        }
    }

    pub fn forward(&self, graph: &Graph, x: &Var) -> Result<Var> {
        let mut h = x.clone();
        for (layer, act) in self.layers.iter().zip(&self.activations) {
            h = layer.forward_act(graph, &h, *act)?;
        }
        Ok(h)
    }

    /// Tape-free [`Mlp::forward`]: folds the layers' tape-free path.
    pub fn forward_nograd(&self, x: &Tensor) -> Result<Tensor> {
        let mut h = x.clone();
        for (layer, act) in self.layers.iter().zip(&self.activations) {
            h = layer.forward_act_nograd(&h, *act)?;
        }
        Ok(h)
    }

    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("Mlp has layers").out_dim()
    }

    /// The final layer (for output-distribution seeding).
    pub fn last_layer(&self) -> &Linear {
        self.layers.last().expect("Mlp has layers")
    }

    /// The stacked layers, in order — read when packing frozen weights.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Per-layer activations, parallel to [`Mlp::layers`].
    pub fn activations(&self) -> &[Activation] {
        &self.activations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stwa_tensor::Tensor;

    #[test]
    fn linear_shapes_any_rank() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(&store, "l", 4, 3, &mut rng);
        let g = Graph::new();
        let x2 = g.constant(Tensor::zeros(&[5, 4]));
        assert_eq!(lin.forward(&g, &x2).unwrap().shape(), vec![5, 3]);
        let x4 = g.constant(Tensor::zeros(&[2, 3, 7, 4]));
        assert_eq!(lin.forward(&g, &x4).unwrap().shape(), vec![2, 3, 7, 3]);
        let bad = g.constant(Tensor::zeros(&[5, 5]));
        assert!(lin.forward(&g, &bad).is_err());
    }

    #[test]
    fn linear_computes_xw_plus_b() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(&store, "l", 2, 2, &mut rng);
        // Overwrite weights with known values.
        store.params()[0].set_value(Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap());
        store.params()[1].set_value(Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap());
        let g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap());
        let y = lin.forward(&g, &x).unwrap();
        assert_eq!(y.value().data(), &[11.0, 22.0]);
    }

    #[test]
    fn mlp_learns_linear_map() {
        // Fit y = 2x - 1 with a tiny MLP; loss must drop substantially.
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mlp = Mlp::new(
            &store,
            "mlp",
            &[1, 8, 1],
            &[Activation::Tanh, Activation::Identity],
            &mut rng,
        );
        let xs = Tensor::from_fn(&[16, 1], |i| i[0] as f32 / 8.0 - 1.0);
        let ys = xs.affine(2.0, -1.0);
        let mut opt = Adam::new(&store, 0.05);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..150 {
            let g = Graph::new();
            let x = g.constant(xs.clone());
            let y = g.constant(ys.clone());
            let pred = mlp.forward(&g, &x).unwrap();
            let loss = crate::loss::mse(&pred, &y).unwrap();
            last = loss.value().item().unwrap();
            first.get_or_insert(last);
            g.backward(&loss).unwrap();
            opt.step();
            opt.finish_step();
        }
        let first = first.unwrap();
        assert!(last < first * 0.05, "loss {first} -> {last} did not drop");
    }

    #[test]
    fn no_bias_variant_has_fewer_params() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Linear::new_no_bias(&store, "l", 3, 4, &mut rng);
        assert_eq!(store.num_scalars(), 12);
    }

    #[test]
    fn nograd_forward_bitwise_matches_graph_path() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(21);
        let mlp = Mlp::new(
            &store,
            "m",
            &[5, 7, 3],
            &[Activation::Relu, Activation::Sigmoid],
            &mut rng,
        );
        let x = Tensor::randn(&[2, 6, 5], &mut rng);
        let g = Graph::new();
        let graph_out = mlp.forward(&g, &g.constant(x.clone())).unwrap().value();
        let nograd_out = mlp.forward_nograd(&x).unwrap();
        assert_eq!(graph_out.data(), nograd_out.data());
        assert_eq!(graph_out.shape(), nograd_out.shape());
        // And with fusion disabled (the unfused add+act branch).
        let before = memory::fused_enabled();
        memory::set_fused_enabled(false);
        let unfused_graph = mlp.forward(&g, &g.constant(x.clone())).unwrap().value();
        let unfused_nograd = mlp.forward_nograd(&x).unwrap();
        memory::set_fused_enabled(before);
        assert_eq!(unfused_graph.data(), unfused_nograd.data());
        assert_eq!(graph_out.data(), unfused_graph.data());
    }

    #[test]
    fn mlp_gradients_flow_to_all_layers() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(
            &store,
            "m",
            &[2, 3, 1],
            &[Activation::Relu, Activation::Identity],
            &mut rng,
        );
        let g = Graph::new();
        let x = g.constant(Tensor::ones(&[4, 2]));
        let loss = mlp
            .forward(&g, &x)
            .unwrap()
            .square()
            .unwrap()
            .sum_all()
            .unwrap();
        g.backward(&loss).unwrap();
        let with_grad = store.params().iter().filter(|p| p.grad().is_some()).count();
        assert_eq!(with_grad, store.tensor_count());
    }
}
