//! Neural-network layers.
//!
//! Each layer registers its parameters with a [`crate::ParamStore`] at
//! construction and binds them onto the caller's graph during `forward`.
//! Layers are therefore reusable across training steps (fresh graph each
//! step) without re-allocation.

pub mod attention;
pub mod conv;
pub mod graphconv;
pub mod gru;
pub mod linear;
pub mod lstm;
pub mod norm;

pub use attention::MultiHeadSelfAttention;
pub use conv::TemporalConv;
pub use graphconv::{AdaptiveGraphConv, ChebGraphConv, DenseGraphConv, DiffusionGraphConv};
pub use gru::{Gru, GruCell};
pub use linear::{Activation, Linear, Mlp};
pub use lstm::LstmCell;
pub use norm::LayerNorm;
