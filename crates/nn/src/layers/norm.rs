//! Layer normalization over the last (feature) axis.

use crate::init;
use crate::param::{Param, ParamStore};
use stwa_autograd::{Graph, Var};
use stwa_tensor::{Result, TensorError};

/// LayerNorm with learnable scale (`gamma`) and shift (`beta`).
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    dim: usize,
    eps: f32,
}

impl LayerNorm {
    pub fn new(store: &ParamStore, name: &str, dim: usize) -> LayerNorm {
        LayerNorm {
            gamma: store.param(format!("{name}.gamma"), stwa_tensor::Tensor::ones(&[dim])),
            beta: store.param(format!("{name}.beta"), init::zeros(&[dim])),
            dim,
            eps: 1e-5,
        }
    }

    /// Normalize `x` of shape `[..., dim]` to zero mean / unit variance
    /// along the last axis, then apply `gamma`/`beta`.
    pub fn forward(&self, graph: &Graph, x: &Var) -> Result<Var> {
        let shape = x.shape();
        let rank = shape.len();
        if rank == 0 || shape[rank - 1] != self.dim {
            return Err(TensorError::Invalid(format!(
                "LayerNorm: expected last dim {}, got shape {:?}",
                self.dim, shape
            )));
        }
        let axis = rank - 1;
        let mean = x.mean_axis(axis, true)?;
        let centered = x.sub(&mean.broadcast_to(&shape)?)?;
        let var = centered.square()?.mean_axis(axis, true)?;
        let std = var.add_scalar(self.eps).sqrt();
        let normed = centered.div(&std.broadcast_to(&shape)?)?;
        let gamma = self.gamma.leaf(graph);
        let beta = self.beta.leaf(graph);
        normed.mul(&gamma)?.add(&beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stwa_tensor::Tensor;

    #[test]
    fn normalizes_rows_to_zero_mean_unit_var() {
        let store = ParamStore::new();
        let ln = LayerNorm::new(&store, "ln", 4);
        let g = Graph::new();
        let x = g.constant(
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, -5.0, 0.0, 5.0, 10.0], &[2, 4]).unwrap(),
        );
        let y = ln.forward(&g, &x).unwrap();
        let v = y.value();
        for r in 0..2 {
            let row: Vec<f32> = (0..4).map(|c| v.at(&[r, c])).collect();
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn gamma_beta_affect_output() {
        let store = ParamStore::new();
        let ln = LayerNorm::new(&store, "ln", 2);
        store.params()[0].set_value(Tensor::from_vec(vec![2.0, 2.0], &[2]).unwrap());
        store.params()[1].set_value(Tensor::from_vec(vec![10.0, 10.0], &[2]).unwrap());
        let g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![-1.0, 1.0], &[1, 2]).unwrap());
        let y = ln.forward(&g, &x).unwrap();
        // normalized is [-1, 1]; scaled by 2 and shifted by 10 -> [8, 12]
        assert!(y
            .value()
            .approx_eq(&Tensor::from_vec(vec![8.0, 12.0], &[1, 2]).unwrap(), 1e-2));
    }

    #[test]
    fn wrong_dim_rejected() {
        let store = ParamStore::new();
        let ln = LayerNorm::new(&store, "ln", 3);
        let g = Graph::new();
        let x = g.constant(Tensor::zeros(&[2, 4]));
        assert!(ln.forward(&g, &x).is_err());
    }

    #[test]
    fn gradients_flow_through_norm() {
        let store = ParamStore::new();
        let ln = LayerNorm::new(&store, "ln", 3);
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![0.5, -1.0, 2.0], &[1, 3]).unwrap());
        let loss = ln
            .forward(&g, &x)
            .unwrap()
            .square()
            .unwrap()
            .sum_all()
            .unwrap();
        g.backward(&loss).unwrap();
        assert!(g.grad(&x).is_some());
        assert!(store.params().iter().all(|p| p.grad().is_some()));
    }
}
