//! Temporal (1-D, time-axis) convolution, with dilation and an optional
//! gated variant — the building block of the TCN-family baselines
//! (Graph WaveNet, STGCN, STFGNN).

use crate::init;
use crate::param::{Param, ParamStore};
use rand::Rng;
use stwa_autograd::{Graph, Var};
use stwa_tensor::{Result, TensorError};

/// Convolution along the second-to-last (time) axis of a `[..., T, C]`
/// tensor, implemented as a sum of shifted dense projections:
///
/// ```text
/// y[t] = b + sum_k  x[t + k * dilation] W_k
/// ```
///
/// Output length is `T - (kernel - 1) * dilation` ("valid" padding). The
/// caller left-pads when causal same-length output is needed.
pub struct TemporalConv {
    /// One `[C_in, C_out]` projection per kernel tap.
    taps: Vec<Param>,
    b: Param,
    in_dim: usize,
    out_dim: usize,
    kernel: usize,
    dilation: usize,
}

impl TemporalConv {
    pub fn new(
        store: &ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        kernel: usize,
        dilation: usize,
        rng: &mut impl Rng,
    ) -> TemporalConv {
        assert!(
            kernel >= 1 && dilation >= 1,
            "TemporalConv: kernel and dilation must be >= 1"
        );
        let taps = (0..kernel)
            .map(|k| {
                store.param(
                    format!("{name}.w{k}"),
                    init::xavier_uniform(&[in_dim, out_dim], in_dim * kernel, out_dim, rng),
                )
            })
            .collect();
        TemporalConv {
            taps,
            b: store.param(format!("{name}.b"), init::zeros(&[out_dim])),
            in_dim,
            out_dim,
            kernel,
            dilation,
        }
    }

    /// Output length for an input of time length `t_in`.
    pub fn out_len(&self, t_in: usize) -> Option<usize> {
        t_in.checked_sub((self.kernel - 1) * self.dilation)
    }

    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Apply to `x` of shape `[..., T, in_dim]`.
    pub fn forward(&self, graph: &Graph, x: &Var) -> Result<Var> {
        let shape = x.shape();
        let rank = shape.len();
        if rank < 2 || shape[rank - 1] != self.in_dim {
            return Err(TensorError::Invalid(format!(
                "TemporalConv: expected [..., T, {}], got {:?}",
                self.in_dim, shape
            )));
        }
        let t_in = shape[rank - 2];
        let t_out = self.out_len(t_in).ok_or_else(|| {
            TensorError::Invalid(format!(
                "TemporalConv: input time length {t_in} shorter than receptive field {}",
                (self.kernel - 1) * self.dilation + 1
            ))
        })?;
        if t_out == 0 {
            return Err(TensorError::Invalid(
                "TemporalConv: output time length is zero".into(),
            ));
        }
        let time_axis = rank - 2;
        let mut acc: Option<Var> = None;
        for (k, tap) in self.taps.iter().enumerate() {
            let w = tap.leaf(graph);
            let slice = x.narrow(time_axis, k * self.dilation, t_out)?;
            // Flatten leading dims + time into rows for the projection.
            let lead: usize = slice.shape()[..rank - 1].iter().product();
            let y = slice.reshape(&[lead, self.in_dim])?.matmul(&w)?;
            acc = Some(match acc {
                None => y,
                Some(a) => a.add(&y)?,
            });
        }
        let mut out = acc.expect("kernel >= 1").add(&self.b.leaf(graph))?;
        let mut out_shape = shape[..rank - 2].to_vec();
        out_shape.push(t_out);
        out_shape.push(self.out_dim);
        out = out.reshape(&out_shape)?;
        Ok(out)
    }

    /// Gated variant used by Graph WaveNet: `tanh(conv_a(x)) * sigmoid(conv_b(x))`.
    pub fn gated_forward(
        a: &TemporalConv,
        b: &TemporalConv,
        graph: &Graph,
        x: &Var,
    ) -> Result<Var> {
        let filt = a.forward(graph, x)?.tanh();
        let gate = b.forward(graph, x)?.sigmoid();
        filt.mul(&gate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stwa_tensor::Tensor;

    #[test]
    fn output_length_valid_padding() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = TemporalConv::new(&store, "c", 2, 4, 3, 1, &mut rng);
        let g = Graph::new();
        let x = g.constant(Tensor::zeros(&[5, 10, 2]));
        let y = conv.forward(&g, &x).unwrap();
        assert_eq!(y.shape(), vec![5, 8, 4]);
    }

    #[test]
    fn dilation_widens_receptive_field() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let conv = TemporalConv::new(&store, "c", 1, 1, 2, 3, &mut rng);
        let g = Graph::new();
        let x = g.constant(Tensor::zeros(&[1, 10, 1]));
        // receptive field = 1 + (2-1)*3 = 4, so T_out = 7
        assert_eq!(conv.forward(&g, &x).unwrap().shape(), vec![1, 7, 1]);
        let too_short = g.constant(Tensor::zeros(&[1, 3, 1]));
        assert!(conv.forward(&g, &too_short).is_err());
    }

    #[test]
    fn kernel_one_is_pointwise_projection() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let conv = TemporalConv::new(&store, "c", 2, 2, 1, 1, &mut rng);
        // Identity weights, zero bias -> output equals input.
        store.params()[0].set_value(Tensor::eye(2));
        let g = Graph::new();
        let x = g.constant(Tensor::from_fn(&[1, 4, 2], |i| (i[1] * 2 + i[2]) as f32));
        let y = conv.forward(&g, &x).unwrap();
        assert!(y.value().approx_eq(&x.value(), 1e-6));
    }

    #[test]
    fn known_moving_average() {
        // Kernel 2, both taps = identity * 0.5 -> output is the pairwise
        // mean of consecutive timestamps.
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let conv = TemporalConv::new(&store, "c", 1, 1, 2, 1, &mut rng);
        store.params()[0].set_value(Tensor::full(&[1, 1], 0.5));
        store.params()[1].set_value(Tensor::full(&[1, 1], 0.5));
        let g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![0.0, 2.0, 4.0, 6.0], &[1, 4, 1]).unwrap());
        let y = conv.forward(&g, &x).unwrap();
        assert!(y.value().approx_eq(
            &Tensor::from_vec(vec![1.0, 3.0, 5.0], &[1, 3, 1]).unwrap(),
            1e-6
        ));
    }

    #[test]
    fn gated_forward_bounds() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let a = TemporalConv::new(&store, "a", 2, 3, 2, 1, &mut rng);
        let b = TemporalConv::new(&store, "b", 2, 3, 2, 1, &mut rng);
        let g = Graph::new();
        let x = g.constant(Tensor::randn(&[2, 6, 2], &mut rng));
        let y = TemporalConv::gated_forward(&a, &b, &g, &x).unwrap();
        assert_eq!(y.shape(), vec![2, 5, 3]);
        // tanh * sigmoid is in (-1, 1).
        assert!(y.value().data().iter().all(|&v| v.abs() < 1.0));
    }

    #[test]
    fn gradients_reach_every_tap() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let conv = TemporalConv::new(&store, "c", 2, 2, 3, 1, &mut rng);
        let g = Graph::new();
        let x = g.constant(Tensor::randn(&[1, 6, 2], &mut rng));
        let loss = conv
            .forward(&g, &x)
            .unwrap()
            .square()
            .unwrap()
            .sum_all()
            .unwrap();
        g.backward(&loss).unwrap();
        assert!(store.params().iter().all(|p| p.grad().is_some()));
    }
}
