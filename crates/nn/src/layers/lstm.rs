//! LSTM cell — used by the meta-LSTM baseline \[42\], where one LSTM
//! generates time-varying parameters for another.

use crate::init;
use crate::param::{Param, ParamStore};
use rand::Rng;
use stwa_autograd::{Graph, Var};
use stwa_tensor::{Result, TensorError};

/// One LSTM step with fused gate weights.
///
/// Gate layout along the fused axis: `[i | f | g | o]`.
///
/// ```text
/// i = sigma(x Wx_i + h Wh_i + b_i)
/// f = sigma(x Wx_f + h Wh_f + b_f)
/// g = tanh (x Wx_g + h Wh_g + b_g)
/// o = sigma(x Wx_o + h Wh_o + b_o)
/// c' = f * c + i * g
/// h' = o * tanh(c')
/// ```
pub struct LstmCell {
    wx: Param,
    wh: Param,
    b: Param,
    in_dim: usize,
    hidden: usize,
}

impl LstmCell {
    pub fn new(
        store: &ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> LstmCell {
        LstmCell {
            wx: store.param(
                format!("{name}.wx"),
                init::lecun_uniform(&[in_dim, 4 * hidden], in_dim, rng),
            ),
            wh: store.param(
                format!("{name}.wh"),
                init::lecun_uniform(&[hidden, 4 * hidden], hidden, rng),
            ),
            b: store.param(format!("{name}.b"), init::zeros(&[4 * hidden])),
            in_dim,
            hidden,
        }
    }

    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Bind this cell's weights once for a multi-step rollout.
    pub fn bind(&self, graph: &Graph) -> (Var, Var, Var) {
        (self.wx.leaf(graph), self.wh.leaf(graph), self.b.leaf(graph))
    }

    /// Step: `x` `[B, in]`, `(h, c)` `[B, hidden]` each; returns `(h', c')`.
    pub fn step(&self, graph: &Graph, x: &Var, h: &Var, c: &Var) -> Result<(Var, Var)> {
        let (wx, wh, b) = self.bind(graph);
        self.step_with(x, h, c, &wx, &wh, &b)
    }

    /// Step with externally supplied (possibly generated) weights.
    pub fn step_with(
        &self,
        x: &Var,
        h: &Var,
        c: &Var,
        wx: &Var,
        wh: &Var,
        b: &Var,
    ) -> Result<(Var, Var)> {
        if x.shape().last() != Some(&self.in_dim) {
            return Err(TensorError::Invalid(format!(
                "LstmCell: expected input last dim {}, got {:?}",
                self.in_dim,
                x.shape()
            )));
        }
        let gates = x.matmul(wx)?.add(&h.matmul(wh)?)?.add(b)?; // [B, 4d]
        Self::combine_gates(&gates, c, self.hidden)
    }

    /// The LSTM state update from pre-activation gates (`[..., 4d]`,
    /// layout `[i | f | g | o]`): shared by [`LstmCell::step_with`] and
    /// models that *generate* the gate pre-activations themselves (the
    /// meta-LSTM baseline).
    pub fn combine_gates(gates: &Var, c: &Var, d: usize) -> Result<(Var, Var)> {
        let axis = gates.shape().len() - 1;
        let i = gates.narrow(axis, 0, d)?.sigmoid();
        let f = gates.narrow(axis, d, d)?.sigmoid();
        let g = gates.narrow(axis, 2 * d, d)?.tanh();
        let o = gates.narrow(axis, 3 * d, d)?.sigmoid();
        let c_next = f.mul(c)?.add(&i.mul(&g)?)?;
        let h_next = o.mul(&c_next.tanh())?;
        Ok((h_next, c_next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stwa_tensor::Tensor;

    #[test]
    fn step_shapes() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let cell = LstmCell::new(&store, "lstm", 3, 5, &mut rng);
        let g = Graph::new();
        let x = g.constant(Tensor::randn(&[2, 3], &mut rng));
        let h = g.constant(Tensor::zeros(&[2, 5]));
        let c = g.constant(Tensor::zeros(&[2, 5]));
        let (h2, c2) = cell.step(&g, &x, &h, &c).unwrap();
        assert_eq!(h2.shape(), vec![2, 5]);
        assert_eq!(c2.shape(), vec![2, 5]);
    }

    #[test]
    fn hidden_state_is_bounded() {
        // |h| = |o * tanh(c)| < 1 always.
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cell = LstmCell::new(&store, "lstm", 2, 4, &mut rng);
        let g = Graph::new();
        let mut h = g.constant(Tensor::zeros(&[1, 4]));
        let mut c = g.constant(Tensor::zeros(&[1, 4]));
        for step in 0..30 {
            let x = g.constant(Tensor::full(&[1, 2], (step % 5) as f32));
            let (h2, c2) = cell.step(&g, &x, &h, &c).unwrap();
            h = h2;
            c = c2;
        }
        assert!(h
            .value()
            .data()
            .iter()
            .all(|&v| v.abs() < 1.0 && v.is_finite()));
    }

    #[test]
    fn gradients_reach_all_weights() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let cell = LstmCell::new(&store, "lstm", 2, 3, &mut rng);
        let g = Graph::new();
        let x = g.constant(Tensor::randn(&[4, 2], &mut rng));
        let h = g.constant(Tensor::zeros(&[4, 3]));
        let c = g.constant(Tensor::zeros(&[4, 3]));
        let (h2, _) = cell.step(&g, &x, &h, &c).unwrap();
        let loss = h2.square().unwrap().sum_all().unwrap();
        g.backward(&loss).unwrap();
        assert!(store.params().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    fn rejects_wrong_input_dim() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let cell = LstmCell::new(&store, "lstm", 2, 3, &mut rng);
        let g = Graph::new();
        let x = g.constant(Tensor::zeros(&[1, 5]));
        let h = g.constant(Tensor::zeros(&[1, 3]));
        let c = g.constant(Tensor::zeros(&[1, 3]));
        assert!(cell.step(&g, &x, &h, &c).is_err());
    }
}
