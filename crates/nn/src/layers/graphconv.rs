//! Graph convolutions over the sensor graph.
//!
//! Four variants cover the mechanisms of the paper's GNN baselines:
//!
//! - [`DenseGraphConv`] — `A_hat X W` with a pre-normalized adjacency
//!   (STGCN/STG2Seq-style spatial mixing).
//! - [`ChebGraphConv`] — Chebyshev polynomial filters over the scaled
//!   Laplacian (STGCN's spectral variant).
//! - [`DiffusionGraphConv`] — forward/backward random-walk diffusion
//!   steps (DCRNN, Graph WaveNet).
//! - [`AdaptiveGraphConv`] — adjacency learned from node embeddings,
//!   `softmax(relu(E E^T))`, no predefined graph (AGCRN, and Graph
//!   WaveNet's adaptive adjacency).

use crate::init;
use crate::param::{Param, ParamStore};
use rand::Rng;
use stwa_autograd::{Graph, Var};
use stwa_tensor::{linalg, Result, Tensor, TensorError};

/// Row-normalize an adjacency: `D^-1 (A + I)` (random-walk transition
/// matrix with self-loops). Rows with zero degree become pure self-loops.
pub fn normalize_adjacency(adj: &Tensor) -> Result<Tensor> {
    let n = square_side(adj)?;
    let with_self = adj.add(&Tensor::eye(n))?;
    let mut out = with_self.clone();
    let data = out.data_mut();
    for r in 0..n {
        let row = &mut data[r * n..(r + 1) * n];
        let deg: f32 = row.iter().sum();
        if deg > 0.0 {
            for v in row.iter_mut() {
                *v /= deg;
            }
        }
    }
    Ok(out)
}

/// Scaled graph Laplacian `2 L / lambda_max - I` with
/// `L = I - D^-1/2 A D^-1/2`, using the bound `lambda_max <= 2`.
pub fn scaled_laplacian(adj: &Tensor) -> Result<Tensor> {
    let n = square_side(adj)?;
    // Symmetric normalization.
    let deg: Vec<f32> = (0..n)
        .map(|r| adj.data()[r * n..(r + 1) * n].iter().sum())
        .collect();
    let mut l = Tensor::zeros(&[n, n]);
    {
        let data = l.data_mut();
        for r in 0..n {
            for c in 0..n {
                let a = adj.data()[r * n + c];
                let norm = if deg[r] > 0.0 && deg[c] > 0.0 {
                    a / (deg[r].sqrt() * deg[c].sqrt())
                } else {
                    0.0
                };
                let identity = if r == c { 1.0 } else { 0.0 };
                // L = I - A_sym ; scaled: 2L/2 - I = L - I = -A_sym
                // (with lambda_max ~= 2, the common DCRNN/STGCN shortcut)
                data[r * n + c] = (identity - norm) - identity;
            }
        }
    }
    Ok(l)
}

fn square_side(adj: &Tensor) -> Result<usize> {
    if adj.rank() != 2 || adj.shape()[0] != adj.shape()[1] {
        return Err(TensorError::Invalid(format!(
            "adjacency must be square, got {:?}",
            adj.shape()
        )));
    }
    Ok(adj.shape()[0])
}

/// `y = A_hat x W + b` where `A_hat` is a fixed normalized adjacency and
/// `x` is `[..., N, C]`.
pub struct DenseGraphConv {
    a_hat: Tensor,
    w: Param,
    b: Param,
    in_dim: usize,
}

impl DenseGraphConv {
    pub fn new(
        store: &ParamStore,
        name: &str,
        adj: &Tensor,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Result<DenseGraphConv> {
        Ok(DenseGraphConv {
            a_hat: normalize_adjacency(adj)?,
            w: store.param(
                format!("{name}.w"),
                init::xavier_uniform(&[in_dim, out_dim], in_dim, out_dim, rng),
            ),
            b: store.param(format!("{name}.b"), init::zeros(&[out_dim])),
            in_dim,
        })
    }

    pub fn forward(&self, graph: &Graph, x: &Var) -> Result<Var> {
        check_node_feature_shape("DenseGraphConv", x, self.a_hat.shape()[0], self.in_dim)?;
        let a = graph.constant(self.a_hat.clone());
        let mixed = a.matmul(x)?; // [..., N, C] with A broadcast over batch
        let w = self.w.leaf(graph);
        mixed.matmul(&w)?.add(&self.b.leaf(graph))
    }
}

/// Chebyshev graph convolution of order `k`:
/// `y = sum_j T_j(L_scaled) x W_j + b`.
pub struct ChebGraphConv {
    l_scaled: Tensor,
    weights: Vec<Param>,
    b: Param,
    in_dim: usize,
}

impl ChebGraphConv {
    pub fn new(
        store: &ParamStore,
        name: &str,
        adj: &Tensor,
        order: usize,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Result<ChebGraphConv> {
        assert!(order >= 1, "ChebGraphConv: order must be >= 1");
        let weights = (0..order)
            .map(|j| {
                store.param(
                    format!("{name}.w{j}"),
                    init::xavier_uniform(&[in_dim, out_dim], in_dim * order, out_dim, rng),
                )
            })
            .collect();
        Ok(ChebGraphConv {
            l_scaled: scaled_laplacian(adj)?,
            weights,
            b: store.param(format!("{name}.b"), init::zeros(&[out_dim])),
            in_dim,
        })
    }

    pub fn forward(&self, graph: &Graph, x: &Var) -> Result<Var> {
        check_node_feature_shape("ChebGraphConv", x, self.l_scaled.shape()[0], self.in_dim)?;
        let l = graph.constant(self.l_scaled.clone());
        // T_0 = x, T_1 = L x, T_k = 2 L T_{k-1} - T_{k-2}
        let mut terms: Vec<Var> = vec![x.clone()];
        if self.weights.len() > 1 {
            terms.push(l.matmul(x)?);
        }
        for _ in 2..self.weights.len() {
            let prev = &terms[terms.len() - 1];
            let prev2 = &terms[terms.len() - 2];
            let t = l.matmul(prev)?.mul_scalar(2.0).sub(prev2)?;
            terms.push(t);
        }
        let mut acc: Option<Var> = None;
        for (t, w) in terms.iter().zip(&self.weights) {
            let y = t.matmul(&w.leaf(graph))?;
            acc = Some(match acc {
                None => y,
                Some(a) => a.add(&y)?,
            });
        }
        acc.expect("order >= 1").add(&self.b.leaf(graph))
    }
}

/// Diffusion convolution (DCRNN): random-walk transitions in both
/// directions, `y = sum_s (P_f^s x W_fs + P_b^s x W_bs) + b`.
pub struct DiffusionGraphConv {
    p_forward: Tensor,
    p_backward: Tensor,
    w_f: Vec<Param>,
    w_b: Vec<Param>,
    b: Param,
    in_dim: usize,
}

impl DiffusionGraphConv {
    pub fn new(
        store: &ParamStore,
        name: &str,
        adj: &Tensor,
        steps: usize,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Result<DiffusionGraphConv> {
        assert!(steps >= 1, "DiffusionGraphConv: steps must be >= 1");
        let p_forward = normalize_adjacency(adj)?;
        let p_backward = normalize_adjacency(&adj.transpose_last2()?)?;
        let mk = |dir: &str, rng: &mut dyn rand::RngCore| -> Vec<Param> {
            (0..steps)
                .map(|s| {
                    store.param(
                        format!("{name}.{dir}{s}"),
                        init::xavier_uniform(
                            &[in_dim, out_dim],
                            in_dim * steps * 2,
                            out_dim,
                            &mut &mut *rng,
                        ),
                    )
                })
                .collect()
        };
        Ok(DiffusionGraphConv {
            p_forward,
            p_backward,
            w_f: mk("f", rng),
            w_b: mk("b", rng),
            b: store.param(format!("{name}.bias"), init::zeros(&[out_dim])),
            in_dim,
        })
    }

    pub fn forward(&self, graph: &Graph, x: &Var) -> Result<Var> {
        check_node_feature_shape(
            "DiffusionGraphConv",
            x,
            self.p_forward.shape()[0],
            self.in_dim,
        )?;
        let pf = graph.constant(self.p_forward.clone());
        let pb = graph.constant(self.p_backward.clone());
        let mut acc: Option<Var> = None;
        for (p, ws) in [(pf, &self.w_f), (pb, &self.w_b)] {
            let mut diffused = x.clone();
            for w in ws {
                diffused = p.matmul(&diffused)?;
                let y = diffused.matmul(&w.leaf(graph))?;
                acc = Some(match acc {
                    None => y,
                    Some(a) => a.add(&y)?,
                });
            }
        }
        acc.expect("steps >= 1").add(&self.b.leaf(graph))
    }
}

/// Adaptive graph convolution (AGCRN / Graph WaveNet adaptive adjacency):
/// the adjacency is `softmax(relu(E E^T))` with learnable node embeddings
/// `E`, discovered from data rather than road topology.
pub struct AdaptiveGraphConv {
    embeddings: Param,
    w: Param,
    b: Param,
    n: usize,
    in_dim: usize,
}

impl AdaptiveGraphConv {
    pub fn new(
        store: &ParamStore,
        name: &str,
        n: usize,
        embed_dim: usize,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> AdaptiveGraphConv {
        AdaptiveGraphConv {
            embeddings: store.param(format!("{name}.e"), init::normal(&[n, embed_dim], 0.1, rng)),
            w: store.param(
                format!("{name}.w"),
                init::xavier_uniform(&[in_dim, out_dim], in_dim, out_dim, rng),
            ),
            b: store.param(format!("{name}.b"), init::zeros(&[out_dim])),
            n,
            in_dim,
        }
    }

    /// The learned adjacency (for inspection / the latent visualizations).
    pub fn adjacency(&self) -> Result<Tensor> {
        let e = self.embeddings.value();
        let logits = linalg::matmul_nt(&e, &e)?.relu();
        logits.softmax(1)
    }

    pub fn forward(&self, graph: &Graph, x: &Var) -> Result<Var> {
        check_node_feature_shape("AdaptiveGraphConv", x, self.n, self.in_dim)?;
        let e = self.embeddings.leaf(graph);
        let logits = e.matmul_nt(&e)?.relu();
        let a = logits.softmax(1)?;
        let mixed = a.matmul(x)?;
        mixed.matmul(&self.w.leaf(graph))?.add(&self.b.leaf(graph))
    }
}

fn check_node_feature_shape(op: &str, x: &Var, n: usize, in_dim: usize) -> Result<()> {
    let shape = x.shape();
    let rank = shape.len();
    if rank < 2 || shape[rank - 2] != n || shape[rank - 1] != in_dim {
        return Err(TensorError::Invalid(format!(
            "{op}: expected [..., {n}, {in_dim}], got {shape:?}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line_graph(n: usize) -> Tensor {
        // 0 - 1 - 2 - ... - (n-1), symmetric.
        Tensor::from_fn(
            &[n, n],
            |i| {
                if i[0].abs_diff(i[1]) == 1 {
                    1.0
                } else {
                    0.0
                }
            },
        )
    }

    #[test]
    fn normalized_adjacency_rows_sum_to_one() {
        let a = normalize_adjacency(&line_graph(4)).unwrap();
        for r in 0..4 {
            let s: f32 = (0..4).map(|c| a.at(&[r, c])).sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Self-loops present.
        assert!(a.at(&[0, 0]) > 0.0);
    }

    #[test]
    fn isolated_node_becomes_self_loop() {
        let adj = Tensor::zeros(&[3, 3]);
        let a = normalize_adjacency(&adj).unwrap();
        assert_eq!(a.at(&[1, 1]), 1.0);
        assert_eq!(a.at(&[1, 0]), 0.0);
    }

    #[test]
    fn dense_conv_shapes_with_batch() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = DenseGraphConv::new(&store, "g", &line_graph(5), 3, 4, &mut rng).unwrap();
        let g = Graph::new();
        let x = g.constant(Tensor::randn(&[2, 5, 3], &mut rng));
        let y = conv.forward(&g, &x).unwrap();
        assert_eq!(y.shape(), vec![2, 5, 4]);
        let bad = g.constant(Tensor::zeros(&[2, 4, 3]));
        assert!(conv.forward(&g, &bad).is_err());
    }

    #[test]
    fn dense_conv_mixes_neighbors() {
        // With identity weights and zero bias, node 0's output is the
        // average of node 0 and node 1 features.
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let conv = DenseGraphConv::new(&store, "g", &line_graph(3), 1, 1, &mut rng).unwrap();
        store.params()[0].set_value(Tensor::eye(1));
        let g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![0.0, 2.0, 4.0], &[3, 1]).unwrap());
        let y = conv.forward(&g, &x).unwrap();
        assert!((y.value().at(&[0, 0]) - 1.0).abs() < 1e-6); // (0 + 2) / 2
        assert!((y.value().at(&[1, 0]) - 2.0).abs() < 1e-6); // (0 + 2 + 4) / 3
    }

    #[test]
    fn cheb_conv_order_one_is_pointwise() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let conv = ChebGraphConv::new(&store, "g", &line_graph(3), 1, 2, 2, &mut rng).unwrap();
        store.params()[0].set_value(Tensor::eye(2));
        let g = Graph::new();
        let x = g.constant(Tensor::randn(&[3, 2], &mut rng));
        let y = conv.forward(&g, &x).unwrap();
        assert!(y.value().approx_eq(&x.value(), 1e-6));
    }

    #[test]
    fn cheb_conv_higher_order_shapes() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let conv = ChebGraphConv::new(&store, "g", &line_graph(4), 3, 2, 5, &mut rng).unwrap();
        let g = Graph::new();
        let x = g.constant(Tensor::randn(&[2, 4, 2], &mut rng));
        assert_eq!(conv.forward(&g, &x).unwrap().shape(), vec![2, 4, 5]);
    }

    #[test]
    fn diffusion_conv_uses_both_directions() {
        // Directed edge 0 -> 1 only: forward diffusion moves mass from 1's
        // perspective looking at 0; check output differs between nodes.
        let mut adj = Tensor::zeros(&[2, 2]);
        adj.set(&[0, 1], 1.0);
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let conv = DiffusionGraphConv::new(&store, "g", &adj, 2, 1, 1, &mut rng).unwrap();
        let g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1.0, 0.0], &[2, 1]).unwrap());
        let y = conv.forward(&g, &x).unwrap();
        assert_eq!(y.shape(), vec![2, 1]);
        assert!((y.value().at(&[0, 0]) - y.value().at(&[1, 0])).abs() > 1e-6);
    }

    #[test]
    fn adaptive_adjacency_rows_are_distributions() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let conv = AdaptiveGraphConv::new(&store, "g", 6, 4, 2, 3, &mut rng);
        let a = conv.adjacency().unwrap();
        assert_eq!(a.shape(), &[6, 6]);
        for r in 0..6 {
            let s: f32 = (0..6).map(|c| a.at(&[r, c])).sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!((0..6).all(|c| a.at(&[r, c]) >= 0.0));
        }
    }

    #[test]
    fn adaptive_conv_trains_embeddings() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(6);
        let conv = AdaptiveGraphConv::new(&store, "g", 4, 3, 2, 2, &mut rng);
        let g = Graph::new();
        let x = g.constant(Tensor::randn(&[4, 2], &mut rng));
        let loss = conv
            .forward(&g, &x)
            .unwrap()
            .square()
            .unwrap()
            .sum_all()
            .unwrap();
        g.backward(&loss).unwrap();
        // The embedding parameter receives a gradient.
        assert!(store.params()[0].grad().is_some());
    }
}
