//! # stwa-nn
//!
//! Neural-network building blocks over `stwa-autograd`: a parameter
//! store, initializers, layers (dense, recurrent, convolutional, graph
//! convolutional, attention), loss functions (including the paper's
//! Huber loss and diagonal-Gaussian KL), and optimizers (SGD, Adam).
//!
//! The training contract used across the workspace:
//!
//! 1. build a fresh [`stwa_autograd::Graph`] per step;
//! 2. call [`Param::leaf`] (done inside each layer's `forward`) to bind
//!    parameters onto the graph;
//! 3. compute a scalar loss and run `graph.backward`;
//! 4. call [`optim::Optimizer::step`], which reads each parameter's
//!    gradient off the graph and updates the stored value.

pub mod batch;
pub mod checkpoint;
pub mod init;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod param;

pub use param::{Param, ParamSnapshot, ParamStore, StoreVersion};
