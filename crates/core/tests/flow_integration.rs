//! Integration tests of the normalizing-flow extension: the flowed
//! ST-WA must behave like a proper model (trainable, deterministic at
//! eval, distinct from the Gaussian variant).

use rand::rngs::StdRng;
use rand::SeedableRng;
use stwa_autograd::Graph;
use stwa_core::{ForecastModel, StwaConfig, StwaModel, TrainConfig, Trainer};
use stwa_tensor::Tensor;
use stwa_traffic::{DatasetConfig, TrafficDataset};

#[test]
fn flow_variant_builds_forwards_and_names_itself() {
    let mut rng = StdRng::seed_from_u64(0);
    let model = StwaModel::new(StwaConfig::st_wa(3, 12, 4).with_flow(2), &mut rng).unwrap();
    assert_eq!(model.name(), "ST-WA+NF");
    let g = Graph::new();
    let x = g.constant(Tensor::randn(&[2, 3, 12, 1], &mut rng));
    let out = model.forward(&g, &x, &mut rng, true).unwrap();
    assert_eq!(out.pred.shape(), vec![2, 3, 4, 1]);
    assert!(
        out.regularizer.is_some(),
        "flowed stochastic latents still regularize (MC-KL)"
    );
    assert!(!out.pred.value().has_non_finite());
}

#[test]
fn flow_adds_parameters_and_changes_outputs() {
    let mut rng = StdRng::seed_from_u64(1);
    let plain = StwaModel::new(StwaConfig::deterministic(3, 12, 4), &mut rng).unwrap();
    let mut rng2 = StdRng::seed_from_u64(1);
    let flowed =
        StwaModel::new(StwaConfig::deterministic(3, 12, 4).with_flow(2), &mut rng2).unwrap();
    // 2 layers x (u[k] + w[k] + b[1]) with k = 16.
    assert_eq!(
        flowed.store().num_scalars() - plain.store().num_scalars(),
        2 * (16 + 16 + 1)
    );
}

#[test]
fn flow_gradients_reach_flow_parameters() {
    let mut rng = StdRng::seed_from_u64(2);
    let model = StwaModel::new(StwaConfig::st_wa(3, 12, 4).with_flow(2), &mut rng).unwrap();
    let g = Graph::new();
    let x = g.constant(Tensor::randn(&[2, 3, 12, 1], &mut rng));
    let out = model.forward(&g, &x, &mut rng, true).unwrap();
    let loss = out
        .pred
        .square()
        .unwrap()
        .mean_all()
        .unwrap()
        .add(&out.regularizer.unwrap())
        .unwrap();
    g.backward(&loss).unwrap();
    let flow_params: Vec<_> = model
        .store()
        .params()
        .into_iter()
        .filter(|p| p.name().contains(".flow"))
        .collect();
    assert!(!flow_params.is_empty());
    assert!(
        flow_params.iter().all(|p| p.grad().is_some()),
        "flow parameters must receive gradients"
    );
}

#[test]
fn flow_variant_trains_end_to_end() {
    let dataset = TrafficDataset::generate(DatasetConfig::small());
    let n = dataset.num_sensors();
    let mut rng = StdRng::seed_from_u64(3);
    let model = StwaModel::new(StwaConfig::st_wa(n, 12, 3).with_flow(2), &mut rng).unwrap();
    let trainer = Trainer::new(TrainConfig {
        epochs: 3,
        batch_size: 16,
        train_stride: 8,
        eval_stride: 8,
        ..TrainConfig::default()
    });
    let report = trainer.train(&model, &dataset, 12, 3).unwrap();
    let first = report.history.first().unwrap().0;
    let last = report.history.last().unwrap().0;
    assert!(
        last < first,
        "flowed model failed to train: {first} -> {last}"
    );
    assert!(report.test.mae.is_finite());
}
