//! Property tests for the sparse sensor-correlation attention path:
//!
//! 1. With `k = N - 1` (a complete neighbor graph) the sparse path is
//!    **bitwise identical** to the dense path — forward, backward, and
//!    through the whole model's tape-free eval mirror — for random N,
//!    batch, and inputs. (The frozen inference engine is covered by the
//!    same property in `crates/infer/tests/proptest_infer.rs`.) This is
//!    the dense-equivalence gate from the determinism contract
//!    (DESIGN.md §13): complete neighbor lists reproduce the dense
//!    kernels' fold orders exactly, so equality is `==` on bits, not a
//!    tolerance.
//! 2. On random *sparse* graphs the forward and backward stay finite
//!    and each output row is a convex mix of that row's neighborhood —
//!    including the degenerate isolated-sensor case (zero neighbors),
//!    which must yield a zero row, never a NaN softmax.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use stwa_autograd::Graph;
use stwa_core::{
    ForecastModel, SensorCorrelationAttention, SparsityMode, StwaConfig, StwaModel,
};
use stwa_nn::ParamStore;
use stwa_tensor::{SensorGraph, Tensor};

/// Random neighbor lists over `n` sensors: each ordered pair appears
/// with probability ~1/2, self-loops always included, plus `isolate`
/// sensors stripped to zero neighbors.
fn random_graph(n: usize, seed: u64, isolate: usize) -> SensorGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lists: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| j == i || rng.gen_bool(0.5))
                .collect::<Vec<_>>()
        })
        .collect();
    for row in lists.iter_mut().take(isolate) {
        row.clear();
    }
    SensorGraph::from_neighbor_lists(n, &lists).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// k = N-1: sparse forward + every parameter gradient equals dense,
    /// bit for bit, on the module that owns the attention.
    #[test]
    fn complete_graph_equals_dense_bitwise(
        n in 1usize..8,
        b in 1usize..3,
        di in 0usize..3,
        seed in 0u64..1000,
    ) {
        let d = [2usize, 4, 6][di];
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sca = SensorCorrelationAttention::new(&store, "sca", d, &mut rng);
        let x = Tensor::randn(&[b, n, d], &mut rng);

        let run = |sca: &SensorCorrelationAttention| {
            let g = Graph::new();
            let h = g.constant(x.clone());
            let out = sca.forward(&g, &h).unwrap();
            let loss = out.square().unwrap().sum_all().unwrap();
            g.backward(&loss).unwrap();
            let grads: Vec<Vec<u32>> = store
                .params()
                .iter()
                .map(|p| p.grad().unwrap().data().iter().map(|v| v.to_bits()).collect())
                .collect();
            let bits: Vec<u32> = out.value().data().iter().map(|v| v.to_bits()).collect();
            (bits, grads)
        };

        let (dense_out, dense_grads) = run(&sca);
        sca.set_sparsity(SparsityMode::Sparse(Arc::new(SensorGraph::complete(n))));
        let (sparse_out, sparse_grads) = run(&sca);

        prop_assert_eq!(dense_out, sparse_out, "forward bits diverged");
        prop_assert_eq!(dense_grads, sparse_grads, "gradient bits diverged");
    }

    /// k = N-1 through the whole ST-WA model's tape-free eval mirror:
    /// a sparse-complete model predicts the dense model's bits.
    #[test]
    fn complete_graph_equals_dense_through_model_eval(
        n in 2usize..6,
        seed in 0u64..200,
    ) {
        let dense = StwaModel::new(
            StwaConfig::st_wa(n, 12, 3),
            &mut StdRng::seed_from_u64(seed),
        ).unwrap();
        let sparse = StwaModel::new(
            StwaConfig::st_wa(n, 12, 3)
                .with_sensor_graph(Arc::new(SensorGraph::complete(n))),
            &mut StdRng::seed_from_u64(seed),
        ).unwrap();
        let x = Tensor::randn(&[2, n, 12, 1], &mut StdRng::seed_from_u64(seed ^ 0xabcd));

        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        let a = dense.forward_eval(&x).unwrap();
        let b = sparse.forward_eval(&x).unwrap();
        prop_assert_eq!(bits(&a), bits(&b), "model eval sparse-complete diverged from dense");
    }

    /// Random sparse graphs (possibly with isolated sensors): forward
    /// and backward are finite, isolated rows mix to zero.
    #[test]
    fn random_sparse_graphs_stay_finite(
        n in 2usize..9,
        isolate in 0usize..3,
        seed in 0u64..1000,
    ) {
        let isolate = isolate.min(n - 1);
        let graph = random_graph(n, seed, isolate);
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let mut sca = SensorCorrelationAttention::new(&store, "sca", 4, &mut rng);
        sca.set_sparsity(SparsityMode::Sparse(Arc::new(graph.clone())));

        let g = Graph::new();
        let h = g.constant(Tensor::randn(&[2, n, 4], &mut rng));
        let out = sca.forward(&g, &h).unwrap();
        prop_assert!(!out.value().has_non_finite(), "sparse forward produced NaN/inf");

        let loss = out.square().unwrap().sum_all().unwrap();
        g.backward(&loss).unwrap();
        for p in store.params() {
            let grad = p.grad().unwrap();
            prop_assert!(!grad.has_non_finite(), "sparse backward produced NaN/inf");
        }

        // Isolated sensors (empty neighbor rows) must come out as
        // exactly zero, not NaN from an empty softmax.
        let ov = out.value();
        for i in 0..n {
            if graph.degree(i) == 0 {
                for bi in 0..2 {
                    for c in 0..4 {
                        prop_assert_eq!(ov.at(&[bi, i, c]), 0.0);
                    }
                }
            }
        }
    }
}

#[test]
fn single_isolated_sensor_trains_without_nan() {
    // The fully degenerate fixed case: one sensor, zero neighbors.
    let graph = SensorGraph::from_neighbor_lists(1, &[vec![]]).unwrap();
    let store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(0);
    let mut sca = SensorCorrelationAttention::new(&store, "sca", 4, &mut rng);
    sca.set_sparsity(SparsityMode::Sparse(Arc::new(graph)));
    let g = Graph::new();
    let h = g.constant(Tensor::randn(&[1, 1, 4], &mut rng));
    let out = sca.forward(&g, &h).unwrap();
    assert_eq!(out.value().data(), &[0.0; 4]);
    let loss = out.square().unwrap().sum_all().unwrap();
    g.backward(&loss).unwrap();
    for p in store.params() {
        assert!(!p.grad().unwrap().has_non_finite());
    }
}
