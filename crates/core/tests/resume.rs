//! Resume-determinism contract: a run killed at an epoch boundary and
//! resumed from its published checkpoint is **bitwise identical** to a
//! run that was never interrupted — same loss trajectory, same final
//! parameters, same test metrics — under both the sequential path
//! (`shards = 1`) and the data-parallel engine (`shards = 8`).
//!
//! Plus the refusal cases: a checkpoint from a different seed or a
//! different training configuration, and a params-only (serving)
//! checkpoint, must all be rejected with an error instead of silently
//! producing a non-reproducible run.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stwa_ckpt::{Registry, TrainCheckpoint};
use stwa_core::{ForecastModel, StwaConfig, StwaModel, TrainConfig, Trainer};
use stwa_traffic::{DatasetConfig, TrafficDataset};

fn param_bits(model: &dyn ForecastModel) -> Vec<u32> {
    model
        .store()
        .params()
        .iter()
        .flat_map(|p| p.value().data().iter().map(|x| x.to_bits()).collect::<Vec<_>>())
        .collect()
}

fn config(shards: usize, epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 16,
        train_stride: 12,
        eval_stride: 12,
        seed: 21,
        patience: 10,
        shards,
        ..TrainConfig::default()
    }
}

fn temp_root(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!(
        "stwa_resume_test_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// Train a fresh ST-WA model under `cfg`, returning the full history,
/// the final parameter bits, and the test MAE bits.
fn run(
    dataset: &TrafficDataset,
    cfg: TrainConfig,
) -> (Vec<(f32, f32)>, Vec<u32>, u32) {
    let n = dataset.num_sensors();
    let mut rng = StdRng::seed_from_u64(3);
    let model = StwaModel::new(StwaConfig::st_wa(n, 12, 3), &mut rng).unwrap();
    let report = Trainer::new(cfg).train(&model, dataset, 12, 3).unwrap();
    (report.history, param_bits(&model), report.test.mae.to_bits())
}

/// The tentpole contract, parameterized over the shard count:
/// 4 epochs straight vs 2 + publish + fresh-process reload + 2.
fn straight_vs_resumed(shards: usize) {
    let dataset = TrafficDataset::generate(DatasetConfig::small());
    let root = temp_root(&format!("bitwise_{shards}"));

    let (hist_straight, params_straight, mae_straight) =
        run(&dataset, config(shards, 4));

    // "Killed at epoch 2": train 2 epochs, publishing a checkpoint at
    // the epoch-2 boundary, then drop everything.
    let (hist_partial, _, _) = run(
        &dataset,
        TrainConfig {
            save_every: 2,
            registry_root: Some(root.clone()),
            ..config(shards, 2)
        },
    );
    assert_eq!(hist_partial.len(), 2);

    // Fresh model, fresh optimizer, fresh RNG — everything rebuilt from
    // the registry, then trained for the remaining 2 epochs.
    let registry = Registry::open(&root).unwrap();
    let resume_dir = registry.latest_dir("ST-WA").unwrap();
    let (hist_resumed, params_resumed, mae_resumed) = run(
        &dataset,
        TrainConfig {
            resume_from: Some(resume_dir),
            ..config(shards, 4)
        },
    );

    assert_eq!(
        hist_resumed.len(),
        hist_straight.len(),
        "resumed run must report the full 4-epoch history"
    );
    for (e, ((tl_s, vm_s), (tl_r, vm_r))) in hist_straight
        .iter()
        .zip(hist_resumed.iter())
        .enumerate()
    {
        assert_eq!(
            tl_s.to_bits(),
            tl_r.to_bits(),
            "shards={shards} epoch {e}: train loss {tl_s} != resumed {tl_r}"
        );
        assert_eq!(
            vm_s.to_bits(),
            vm_r.to_bits(),
            "shards={shards} epoch {e}: val MAE {vm_s} != resumed {vm_r}"
        );
    }
    assert_eq!(
        params_straight, params_resumed,
        "shards={shards}: resumed parameters diverged from the uninterrupted run"
    );
    assert_eq!(
        mae_straight, mae_resumed,
        "shards={shards}: test MAE diverged after resume"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn resume_is_bitwise_identical_sequential() {
    straight_vs_resumed(1);
}

#[test]
fn resume_is_bitwise_identical_sharded() {
    straight_vs_resumed(8);
}

#[test]
fn resume_refuses_seed_and_config_skew() {
    let dataset = TrafficDataset::generate(DatasetConfig::small());
    let root = temp_root("skew");
    let (_h, _p, _m) = run(
        &dataset,
        TrainConfig {
            save_every: 1,
            registry_root: Some(root.clone()),
            ..config(1, 1)
        },
    );
    let registry = Registry::open(&root).unwrap();
    let dir = registry.latest_dir("ST-WA").unwrap();

    let n = dataset.num_sensors();
    let attempt = |cfg: TrainConfig| {
        let mut rng = StdRng::seed_from_u64(3);
        let model = StwaModel::new(StwaConfig::st_wa(n, 12, 3), &mut rng).unwrap();
        Trainer::new(cfg).train(&model, &dataset, 12, 3)
    };

    // Different seed.
    let err = attempt(TrainConfig {
        resume_from: Some(dir.clone()),
        seed: 99,
        ..config(1, 2)
    })
    .unwrap_err();
    assert!(err.to_string().contains("seed"), "got: {err}");

    // Different batch size (config fingerprint).
    let err = attempt(TrainConfig {
        resume_from: Some(dir.clone()),
        batch_size: 8,
        ..config(1, 2)
    })
    .unwrap_err();
    assert!(err.to_string().contains("fingerprint"), "got: {err}");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn resume_refuses_params_only_checkpoints() {
    let dataset = TrafficDataset::generate(DatasetConfig::small());
    let n = dataset.num_sensors();
    let root = temp_root("params_only");
    let registry = Registry::open(&root).unwrap();

    // A serving publish: parameters, no optimizer state, no RNG.
    let mut rng = StdRng::seed_from_u64(3);
    let model = StwaModel::new(StwaConfig::st_wa(n, 12, 3), &mut rng).unwrap();
    let ckpt = TrainCheckpoint::params_only("ST-WA", model.store());
    registry.publish("ST-WA", &ckpt).unwrap();

    let err = Trainer::new(TrainConfig {
        resume_from: Some(registry.latest_dir("ST-WA").unwrap()),
        ..config(1, 2)
    })
    .train(&model, &dataset, 12, 3)
    .unwrap_err();
    // Seed/config skew fires first (a params-only checkpoint records
    // neither); any refusal is correct as long as it is an error, not a
    // silent non-deterministic resume.
    assert!(!err.to_string().is_empty());

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn save_every_without_registry_root_is_an_error() {
    let dataset = TrafficDataset::generate(DatasetConfig::small());
    let n = dataset.num_sensors();
    let mut rng = StdRng::seed_from_u64(3);
    let model = StwaModel::new(StwaConfig::st_wa(n, 12, 3), &mut rng).unwrap();
    let err = Trainer::new(TrainConfig {
        save_every: 1,
        ..config(1, 1)
    })
    .train(&model, &dataset, 12, 3)
    .unwrap_err();
    assert!(err.to_string().contains("registry_root"), "got: {err}");
}

#[test]
fn checkpoints_are_pruned_to_the_keep_limit() {
    let dataset = TrafficDataset::generate(DatasetConfig::small());
    let root = temp_root("prune");
    let _ = run(
        &dataset,
        TrainConfig {
            save_every: 1,
            keep_checkpoints: 2,
            registry_root: Some(root.clone()),
            ..config(1, 4)
        },
    );
    let registry = Registry::open(&root).unwrap();
    let versions = registry.versions("ST-WA").unwrap();
    assert_eq!(versions, vec![3, 4], "keep_checkpoints=2 after 4 saves");
    let _ = std::fs::remove_dir_all(&root);
}
