//! Reference-implementation check of the window attention equations:
//! a tiny configuration computed two ways — through
//! `WindowAttentionLayer` and through plain scalar loops transcribing
//! Eq. 10–13 directly from the paper — must agree.

// The scalar reference deliberately mirrors the paper's indexed
// notation; iterator rewrites would obscure the transcription.
#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use stwa_autograd::Graph;
use stwa_core::{AggregatorKind, WindowAttentionLayer};
use stwa_nn::ParamStore;
use stwa_tensor::Tensor;

/// One window (S = T), one sensor, one batch entry: output must equal
/// the hand-computed Eq. 10 + Eq. 12–13 result.
#[test]
fn single_window_matches_hand_computed_equations() {
    let (s_len, p, d) = (3usize, 2usize, 2usize);
    let store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(0);
    let layer = WindowAttentionLayer::new(
        &store,
        "wa",
        1,     // N
        s_len, // T = S: a single window, no fusion
        s_len,
        p,
        1, // F
        d,
        1, // single head keeps the reference math simple
        AggregatorKind::Learned,
        false, // no sensor attention (N = 1 anyway)
        true,
        &mut rng,
    )
    .unwrap();

    // Deterministic parameter values.
    let find = |name: &str| -> Tensor {
        store
            .params()
            .iter()
            .find(|q| q.name().ends_with(name))
            .unwrap_or_else(|| panic!("param {name}"))
            .value()
    };
    let set = |name: &str, t: Tensor| {
        store
            .params()
            .iter()
            .find(|q| q.name().ends_with(name))
            .unwrap()
            .set_value(t);
    };
    set(
        ".P",
        Tensor::from_vec(vec![0.3, -0.2, 0.5, 0.1], &[1, 1, p, d]).unwrap(),
    );
    set("K.w", Tensor::from_vec(vec![0.7, -0.4], &[1, d]).unwrap());
    set("V.w", Tensor::from_vec(vec![0.2, 0.9], &[1, d]).unwrap());
    set(
        "aggW1",
        Tensor::from_vec(vec![0.5, -0.1, 0.3, 0.8], &[d, d]).unwrap(),
    );
    set(
        "aggW2",
        Tensor::from_vec(vec![-0.6, 0.4, 0.2, 0.7], &[d, d]).unwrap(),
    );

    let x_vals = [0.9f32, -0.5, 1.3];
    let g = Graph::new();
    let x = g.constant(Tensor::from_vec(x_vals.to_vec(), &[1, 1, s_len, 1]).unwrap());
    let out = layer.forward(&g, &x, None).unwrap();
    assert_eq!(out.shape(), vec![1, 1, 1, d]);

    // ---- Reference computation, straight from the paper ----
    let proxies = find(".P");
    let kw = find("K.w");
    let vw = find("V.w");
    let w1 = find("aggW1");
    let w2 = find("aggW2");

    // Keys / values per timestamp: k_t = x_t * K, v_t = x_t * V (F = 1).
    let key = |t: usize, c: usize| x_vals[t] * kw.at(&[0, c]);
    let val = |t: usize, c: usize| x_vals[t] * vw.at(&[0, c]);

    // Eq. 10: h_j = softmax_t(P_j . k_t / sqrt(d)) . v_t per proxy j.
    let mut h = [[0f32; 2]; 2]; // [p][d]
    for j in 0..p {
        let mut scores = [0f32; 3];
        for (t, s_out) in scores.iter_mut().enumerate() {
            let mut dot = 0.0;
            for c in 0..d {
                dot += proxies.at(&[0, 0, j, c]) * key(t, c);
            }
            *s_out = dot / (d as f32).sqrt();
        }
        let max = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = scores.iter().map(|v| (v - max).exp()).collect();
        let z: f32 = exps.iter().sum();
        for c in 0..d {
            h[j][c] = (0..s_len).map(|t| exps[t] / z * val(t, c)).sum();
        }
    }
    // Eq. 12–13: A = sigmoid(W2 tanh(W1 h)); h_hat = sum_j A_j ⊙ h_j.
    // (Row-vector convention: y = h W, matching the layer's matmul.)
    let mut expected = [0f32; 2];
    for j in 0..p {
        let mut hidden = [0f32; 2];
        for c in 0..d {
            let mut acc = 0.0;
            for i in 0..d {
                acc += h[j][i] * w1.at(&[i, c]);
            }
            hidden[c] = acc.tanh();
        }
        for c in 0..d {
            let mut acc = 0.0;
            for i in 0..d {
                acc += hidden[i] * w2.at(&[i, c]);
            }
            let gate = 1.0 / (1.0 + (-acc).exp());
            expected[c] += gate * h[j][c];
        }
    }

    for c in 0..d {
        let got = out.value().at(&[0, 0, 0, c]);
        assert!(
            (got - expected[c]).abs() < 1e-5,
            "coordinate {c}: layer {got} vs reference {}",
            expected[c]
        );
    }
}

/// The stacked-layer time-axis contraction of Figure 8: T shrinks by
/// exactly S per layer.
#[test]
fn window_count_contracts_like_figure_8() {
    let store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(1);
    let mut t = 12usize;
    for (l, s) in [3usize, 2, 2].into_iter().enumerate() {
        let layer = WindowAttentionLayer::new(
            &store,
            &format!("wa{l}"),
            2,
            t,
            s,
            1,
            if l == 0 { 1 } else { 8 },
            8,
            1,
            AggregatorKind::Learned,
            true,
            true,
            &mut rng,
        )
        .unwrap();
        assert_eq!(layer.num_windows(), t / s);
        t /= s;
    }
    assert_eq!(t, 1, "12 -> 4 -> 2 -> 1 as in the paper's Figure 8");
}
