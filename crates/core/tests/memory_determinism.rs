//! End-to-end determinism gates for the buffer pool and fused kernels:
//! a short training run must produce bitwise-identical loss trajectories
//! with the pool/fusion switches on or off, and regardless of the worker
//! thread count. These are the integration-level counterparts of the
//! per-kernel bitwise proptests in the tensor and nn crates.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stwa_core::{StwaConfig, StwaModel, TrainConfig, Trainer};
use stwa_tensor::memory;
use stwa_traffic::{DatasetConfig, TrafficDataset};

/// Both tests flip process-global switches, so they must not interleave.
static GLOBAL_STATE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Two-epoch training run on the small synthetic dataset; returns the
/// per-epoch `(train_loss, val_mae)` trajectory as raw bits so equality
/// checks are exact, not within-epsilon.
fn run_trajectory(dataset: &TrafficDataset) -> (Vec<(u32, u32)>, stwa_core::TrainReport) {
    let mut rng = StdRng::seed_from_u64(7);
    let model = StwaModel::new(StwaConfig::st_wa(dataset.num_sensors(), 12, 3), &mut rng)
        .expect("model build");
    let trainer = Trainer::new(TrainConfig {
        epochs: 2,
        batch_size: 16,
        train_stride: 8,
        eval_stride: 8,
        ..TrainConfig::default()
    });
    let report = trainer.train(&model, dataset, 12, 3).expect("train");
    let bits = report
        .history
        .iter()
        .map(|&(loss, mae)| (loss.to_bits(), mae.to_bits()))
        .collect();
    (bits, report)
}

#[test]
fn pool_and_fusion_do_not_change_loss_trajectory() {
    let _guard = GLOBAL_STATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dataset = TrafficDataset::generate(DatasetConfig::small());

    memory::set_pool_enabled(true);
    memory::set_fused_enabled(true);
    // Counters only record while observability is on; turn it on for
    // the pooled run so the manifest assertion below is meaningful.
    let was_recording = stwa_observe::enabled();
    stwa_observe::set_enabled(true);
    let (pooled, report) = run_trajectory(&dataset);
    stwa_observe::set_enabled(was_recording);

    // The allocator counters must surface in the run manifest.
    let hits = report
        .manifest
        .counters
        .iter()
        .find(|(name, _)| name == "alloc.pool_hits")
        .map(|&(_, v)| v);
    assert!(
        matches!(hits, Some(v) if v > 0),
        "manifest should report pool hits, got {hits:?}"
    );

    // STWA_POOL=0 / STWA_FUSED=0 equivalent: every tensor allocates
    // fresh and every op runs the reference kernel chain.
    memory::set_pool_enabled(false);
    memory::set_fused_enabled(false);
    let (churn, _) = run_trajectory(&dataset);

    memory::set_pool_enabled(true);
    memory::set_fused_enabled(true);

    assert_eq!(pooled.len(), 2, "expected one history entry per epoch");
    assert_eq!(
        pooled, churn,
        "loss trajectory must be bitwise identical with the pool and \
         fused kernels disabled"
    );
}

#[test]
fn thread_count_does_not_change_loss_trajectory() {
    let _guard = GLOBAL_STATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dataset = TrafficDataset::generate(DatasetConfig::small());

    let restore = stwa_pool::current_threads();
    stwa_pool::set_threads(1);
    let (single, _) = run_trajectory(&dataset);

    stwa_pool::set_threads(8);
    let (multi, _) = run_trajectory(&dataset);

    stwa_pool::set_threads(restore);

    assert_eq!(
        single, multi,
        "loss trajectory must be bitwise identical across STWA_THREADS=1 \
         and STWA_THREADS=8"
    );
}
