//! Numeric gradient verification of the paper's composite modules: the
//! window attention layer, the sensor correlation attention, and the
//! full ST-WA model (deterministic mode, so finite differences are
//! well-defined).

use rand::rngs::StdRng;
use rand::SeedableRng;
use stwa_autograd::check_gradient;
use stwa_core::{
    AggregatorKind, SensorCorrelationAttention, StwaConfig, StwaModel, WindowAttentionLayer,
};
use stwa_nn::ParamStore;
use stwa_tensor::Tensor;

#[test]
fn window_attention_input_gradient_matches_numeric() {
    let x = Tensor::rand_uniform(&[1, 2, 6, 1], -1.0, 1.0, &mut StdRng::seed_from_u64(0));
    let report = check_gradient(&x, 1e-2, |v| {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = WindowAttentionLayer::new(
            &store,
            "wa",
            2,
            6,
            3,
            2,
            1,
            8,
            2,
            AggregatorKind::Learned,
            true,
            true,
            &mut rng,
        )?;
        layer.forward(v.graph(), v, None)?.square()?.mean_all()
    })
    .unwrap();
    assert!(report.passes(4e-2), "{report:?}");
}

#[test]
fn mean_aggregator_gradient_matches_numeric() {
    let x = Tensor::rand_uniform(&[1, 2, 6, 1], -1.0, 1.0, &mut StdRng::seed_from_u64(2));
    let report = check_gradient(&x, 1e-2, |v| {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let layer = WindowAttentionLayer::new(
            &store,
            "wa",
            2,
            6,
            2,
            2,
            1,
            8,
            1,
            AggregatorKind::Mean,
            false,
            true,
            &mut rng,
        )?;
        layer.forward(v.graph(), v, None)?.square()?.mean_all()
    })
    .unwrap();
    assert!(report.passes(4e-2), "{report:?}");
}

#[test]
fn sensor_correlation_attention_gradient_matches_numeric() {
    let x = Tensor::rand_uniform(&[2, 4, 6], -1.0, 1.0, &mut StdRng::seed_from_u64(4));
    let report = check_gradient(&x, 1e-2, |v| {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let sca = SensorCorrelationAttention::new(&store, "sca", 6, &mut rng);
        sca.forward(v.graph(), v)?.square()?.mean_all()
    })
    .unwrap();
    assert!(report.passes(4e-2), "{report:?}");
}

#[test]
fn full_deterministic_model_gradient_matches_numeric() {
    // Deterministic mode: no sampling, the loss is a smooth-ish function
    // of the input (ReLU/abs kinks aside — inputs avoid them with random
    // offsets), so the end-to-end Jacobian must agree with finite
    // differences through latents, decoder, window attention, sensor
    // attention, skips, and predictor at once.
    let x = Tensor::rand_uniform(&[1, 3, 12, 1], -0.9, 0.9, &mut StdRng::seed_from_u64(6));
    let report = check_gradient(&x, 1e-2, |v| {
        let mut rng = StdRng::seed_from_u64(7);
        let model = StwaModel::new(StwaConfig::deterministic(3, 12, 2), &mut rng)?;
        let out = stwa_core::ForecastModel::forward(&model, v.graph(), v, &mut rng, true)?;
        out.pred.square()?.mean_all()
    })
    .unwrap();
    assert!(report.passes(6e-2), "{report:?}");
}
