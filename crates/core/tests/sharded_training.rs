//! Contract tests for deterministic data-parallel training
//! (`crate::sharded`):
//!
//! 1. `shards = 1` is the sequential path, bit for bit: a hand-rolled
//!    training loop mirroring `Trainer::train_step` reproduces the
//!    trainer's loss trajectory, validation metrics, and final
//!    parameters exactly.
//! 2. `shards = k` is run-to-run deterministic: two fresh runs with the
//!    same seed agree on every history entry and every parameter bit.
//! 3. The shard-weighted objective equals the full-batch mean up to f32
//!    reassociation, and the reduced gradients match the full-batch
//!    gradients to the same tolerance.
//! 4. Sharded training actually converges.
//!
//! Plus property tests of the two determinism primitives: per-shard RNG
//! stream splitting (`shard_seed`) and the fixed-order gradient fold
//! (`fold_shard_grads`).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use stwa_core::{
    fold_shard_grads, shard_seed, ForecastModel, ShardEngine, StwaConfig, StwaModel, TrainConfig,
    Trainer,
};
use stwa_autograd::Graph;
use stwa_nn::batch::BatchIter;
use stwa_nn::loss::huber;
use stwa_nn::optim::{Adam, Optimizer};
use stwa_tensor::Tensor;
use stwa_traffic::{DatasetConfig, TrafficDataset};

fn param_bits(model: &dyn ForecastModel) -> Vec<u32> {
    model
        .store()
        .params()
        .iter()
        .flat_map(|p| p.value().data().iter().map(|x| x.to_bits()).collect::<Vec<_>>())
        .collect()
}

fn config(shards: usize, epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 16,
        train_stride: 12,
        eval_stride: 12,
        seed: 21,
        patience: 10,
        shards,
        ..TrainConfig::default()
    }
}

#[test]
fn shards_one_is_bitwise_identical_to_sequential_reference() {
    let dataset = TrafficDataset::generate(DatasetConfig::small());
    let n = dataset.num_sensors();
    let cfg = config(1, 2);
    let (h, u) = (12, 3);

    // Trainer run with shards = 1.
    let mut rng = StdRng::seed_from_u64(3);
    let model = StwaModel::new(StwaConfig::st_wa(n, h, u), &mut rng).unwrap();
    let trainer = Trainer::new(cfg.clone());
    let report = trainer.train(&model, &dataset, h, u).unwrap();

    // Hand-rolled sequential loop: the exact `train_step` recipe —
    // fresh graph per batch, de-normalized Huber plus regularizer,
    // clipped Adam — including the trainer's shuffle seeding, per-epoch
    // evaluation, and best-validation parameter restore.
    let mut rng2 = StdRng::seed_from_u64(3);
    let reference = StwaModel::new(StwaConfig::st_wa(n, h, u), &mut rng2).unwrap();
    let train = dataset.train(h, u, cfg.train_stride).unwrap();
    let val = dataset.val(h, u, cfg.eval_stride).unwrap();
    let scaler = dataset.scaler();
    let mut step_rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(reference.store(), cfg.lr).with_clip(cfg.grad_clip.unwrap());
    let mut history: Vec<(f32, f32)> = Vec::new();
    let mut best_val = f32::INFINITY;
    let mut best_params: Option<Vec<Tensor>> = None;
    for epoch in 0..cfg.epochs {
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        let mut shuffle_rng = StdRng::seed_from_u64(cfg.seed ^ (epoch as u64 + 1));
        for (bx, by) in
            BatchIter::shuffled(&train.x, &train.y, cfg.batch_size, &mut shuffle_rng).unwrap()
        {
            let graph = Graph::new();
            let x = graph.constant(bx);
            let out = reference.forward(&graph, &x, &mut step_rng, true).unwrap();
            let pred_raw = out.pred.mul_scalar(scaler.std).add_scalar(scaler.mean);
            let target = graph.constant(by);
            let mut loss = huber(&pred_raw, &target, cfg.huber_delta).unwrap();
            if let Some(reg) = out.regularizer {
                loss = loss.add(&reg).unwrap();
            }
            epoch_loss += loss.value().item().unwrap() as f64;
            graph.backward(&loss).unwrap();
            opt.step();
            opt.finish_step();
            batches += 1;
        }
        let val_metrics = trainer
            .evaluate(&reference, &val, &scaler, &mut step_rng)
            .unwrap();
        history.push(((epoch_loss / batches as f64) as f32, val_metrics.mae));
        if val_metrics.mae < best_val {
            best_val = val_metrics.mae;
            best_params = Some(
                reference
                    .store()
                    .params()
                    .iter()
                    .map(|p| p.value())
                    .collect(),
            );
        }
    }
    if let Some(best) = best_params {
        for (p, v) in reference.store().params().iter().zip(best) {
            p.set_value(v);
        }
    }

    assert_eq!(report.history.len(), history.len());
    for (e, ((tl_t, vm_t), (tl_r, vm_r))) in
        report.history.iter().zip(history.iter()).enumerate()
    {
        assert_eq!(
            tl_t.to_bits(),
            tl_r.to_bits(),
            "epoch {e}: trainer loss {tl_t} != sequential reference {tl_r}"
        );
        assert_eq!(
            vm_t.to_bits(),
            vm_r.to_bits(),
            "epoch {e}: trainer val MAE {vm_t} != sequential reference {vm_r}"
        );
    }
    assert_eq!(
        param_bits(&model),
        param_bits(&reference),
        "final parameters diverged from the sequential reference"
    );
}

#[test]
fn sharded_runs_are_bitwise_deterministic_run_to_run() {
    let dataset = TrafficDataset::generate(DatasetConfig::small());
    let n = dataset.num_sensors();
    let run = || {
        let mut rng = StdRng::seed_from_u64(5);
        let model = StwaModel::new(StwaConfig::st_wa(n, 12, 3), &mut rng).unwrap();
        let report = Trainer::new(config(8, 2))
            .train(&model, &dataset, 12, 3)
            .unwrap();
        (report.history, param_bits(&model))
    };
    let (hist_a, params_a) = run();
    let (hist_b, params_b) = run();
    assert_eq!(hist_a.len(), hist_b.len());
    for (e, ((tl_a, vm_a), (tl_b, vm_b))) in hist_a.iter().zip(hist_b.iter()).enumerate() {
        assert_eq!(
            tl_a.to_bits(),
            tl_b.to_bits(),
            "epoch {e}: sharded train loss not reproducible ({tl_a} vs {tl_b})"
        );
        assert_eq!(vm_a.to_bits(), vm_b.to_bits(), "epoch {e}: val MAE drifted");
    }
    assert_eq!(params_a, params_b, "sharded run produced different weights");
}

#[test]
fn sharded_objective_and_gradients_match_full_batch() {
    // Deterministic model (no latents, no regularizer): the sharded
    // loss and reduced gradients must equal the full-batch values up to
    // the documented f32 reassociation of summing per-shard partials.
    let dataset = TrafficDataset::generate(DatasetConfig::small());
    let n = dataset.num_sensors();
    let train = dataset.train(12, 3, 12).unwrap();
    let scaler = dataset.scaler();
    let bx = train.x.narrow(0, 0, 16).unwrap();
    let by = train.y.narrow(0, 0, 16).unwrap();

    let mut rng = StdRng::seed_from_u64(17);
    let sharded_model = StwaModel::new(StwaConfig::wa(n, 12, 3), &mut rng).unwrap();
    let mut rng2 = StdRng::seed_from_u64(17);
    let full_model = StwaModel::new(StwaConfig::wa(n, 12, 3), &mut rng2).unwrap();

    // Sharded pass: gradients land on the params via the engine.
    let engine = ShardEngine::new(&sharded_model, 4).unwrap();
    let (sharded_loss, kl) = engine
        .train_batch(&sharded_model, bx.clone(), by.clone(), 99, 1.0, scaler.mean, scaler.std)
        .unwrap();
    assert!(kl.is_none(), "WA has no regularizer");

    // Full-batch reference on the twin model.
    let graph = Graph::new();
    let x = graph.constant(bx);
    let mut fwd_rng = StdRng::seed_from_u64(0); // WA never consults it
    let out = full_model.forward(&graph, &x, &mut fwd_rng, true).unwrap();
    let pred_raw = out.pred.mul_scalar(scaler.std).add_scalar(scaler.mean);
    let target = graph.constant(by);
    let loss = huber(&pred_raw, &target, 1.0).unwrap();
    let full_loss = loss.value().item().unwrap();
    graph.backward(&loss).unwrap();

    let rel = (sharded_loss - full_loss).abs() / full_loss.abs().max(1e-12);
    assert!(
        rel < 1e-5,
        "sharded loss {sharded_loss} vs full-batch {full_loss} (rel {rel})"
    );

    for (ps, pf) in sharded_model
        .store()
        .params()
        .iter()
        .zip(full_model.store().params())
    {
        let gs = ps.grad().expect("sharded grad");
        let gf = pf.grad().expect("full-batch grad");
        for (a, b) in gs.data().iter().zip(gf.data()) {
            let err = (a - b).abs();
            let tol = 1e-5f32.max(b.abs() * 1e-3);
            assert!(err <= tol, "grad mismatch: sharded {a} vs full {b}");
        }
    }
}

#[test]
fn sharded_training_converges() {
    let dataset = TrafficDataset::generate(DatasetConfig::small());
    let n = dataset.num_sensors();
    let mut rng = StdRng::seed_from_u64(2);
    let model = StwaModel::new(StwaConfig::st_wa(n, 12, 3), &mut rng).unwrap();
    let report = Trainer::new(TrainConfig {
        shards: 4,
        train_stride: 6,
        eval_stride: 6,
        ..config(4, 4)
    })
    .train(&model, &dataset, 12, 3)
    .unwrap();
    let first = report.history.first().unwrap().0;
    let last = report.history.last().unwrap().0;
    assert!(last < first, "sharded loss should fall: {first} -> {last}");
    assert!(report.best_val_mae.is_finite());
    assert!(report.test.mae.is_finite() && report.test.mae > 0.0);
}

// ---- Determinism primitives ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `shard_seed` is a pure function producing pairwise-distinct
    /// seeds whose RNG streams immediately diverge.
    #[test]
    fn shard_seeds_are_deterministic_distinct_and_decorrelated(
        batch_seed in 0u64..u64::MAX,
        k in 2usize..32,
    ) {
        let seeds: Vec<u64> = (0..k).map(|s| shard_seed(batch_seed, s)).collect();
        let again: Vec<u64> = (0..k).map(|s| shard_seed(batch_seed, s)).collect();
        prop_assert_eq!(&seeds, &again, "shard_seed must be pure");
        for i in 0..k {
            for j in (i + 1)..k {
                prop_assert_ne!(seeds[i], seeds[j], "shards {i} and {j} share a seed");
            }
        }
        // First draws of the split streams are pairwise distinct too.
        let first: Vec<u64> = seeds
            .iter()
            .map(|&s| StdRng::seed_from_u64(s).next_u64())
            .collect();
        for i in 0..k {
            for j in (i + 1)..k {
                prop_assert_ne!(first[i], first[j], "streams {i} and {j} collide");
            }
        }
    }

    /// The production fold applied in ascending shard order equals the
    /// scalar reference `((g_0 + g_1) + g_2) + ...` bit for bit, and is
    /// invariant to the order results *arrived* (they are buffered by
    /// shard index before folding).
    #[test]
    fn fixed_order_fold_matches_scalar_reference_bitwise(
        parts in proptest::collection::vec(
            proptest::collection::vec(-100.0f32..100.0, 24..=24),
            2..6,
        ),
        perm_seed in 0u64..1000,
    ) {
        let k = parts.len();

        // Production path: fold in ascending shard index.
        let mut acc: Vec<Option<Vec<f32>>> = vec![None];
        for p in &parts {
            fold_shard_grads(&mut acc, vec![Some(p.clone())], &mut Vec::new());
        }
        let folded = acc[0].clone().unwrap();

        // Scalar reference with the same association order.
        let mut reference = parts[0].clone();
        for p in &parts[1..] {
            for (r, v) in reference.iter_mut().zip(p) {
                *r += v;
            }
        }
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&folded), bits(&reference));

        // Shuffled arrival: buffer outcomes by shard index (what the
        // engine does with the results channel), then fold 0..k.
        let mut order: Vec<usize> = (0..k).collect();
        let mut rng = StdRng::seed_from_u64(perm_seed);
        for i in (1..k).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut buffered: Vec<Option<Vec<f32>>> = vec![None; k];
        for &arrived in &order {
            buffered[arrived] = Some(parts[arrived].clone());
        }
        let mut acc2: Vec<Option<Vec<f32>>> = vec![None];
        for slot in buffered {
            fold_shard_grads(&mut acc2, vec![slot], &mut Vec::new());
        }
        prop_assert_eq!(bits(&acc2[0].clone().unwrap()), bits(&reference));
    }
}
