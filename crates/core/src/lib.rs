//! # stwa-core
//!
//! The paper's contribution: **S**patio-**T**emporal aware **W**indow
//! **A**ttention (ST-WA) for traffic time series forecasting, plus the
//! model-agnostic spatio-temporal aware parameter generation framework.
//!
//! Components map 1:1 onto the paper's Section IV:
//!
//! - [`latent`] — the spatial-aware stochastic variable `z^(i)`
//!   (Eq. 5) and the variational temporal encoder producing `z_t^(i)`
//!   (Eq. 6–7), combined into `Theta_t^(i) = z^(i) + z_t^(i)` (Eq. 4);
//! - [`generator`] — the decoder `D_omega` turning `Theta_t^(i)` into
//!   per-sensor, per-time model parameters (Eq. 8), with the analytic KL
//!   regularizer of Eq. 20;
//! - [`window_attention`] — the linear-complexity proxy window attention
//!   (Eq. 10–14) with the learned proxy aggregator (Eq. 12–13) and
//!   cross-window information flow (Eq. 14);
//! - [`sensor_attention`] — the embedded-Gaussian sensor correlation
//!   attention (Eq. 15–16);
//! - [`model`] — the stacked full model with skip connections and the
//!   2-layer predictor (Eq. 17–19), plus every ablation variant from
//!   the paper's Tables VIII–XIV;
//! - [`trainer`] — end-to-end optimization (Eq. 20: Huber + alpha * KL),
//!   early stopping, epoch timing, and the [`ForecastModel`] trait that
//!   the baseline crate also implements so every experiment binary can
//!   train any model through one code path.

pub mod flow;
pub mod generator;
pub mod latent;
pub mod model;
pub mod sensor_attention;
pub mod sharded;
pub mod trainer;
pub mod window_attention;

pub use flow::{flow_kl, FlowStack};
pub use generator::{
    combine_theta, combined_kl, combined_moments, AwarenessFlags, GeneratedProjections,
    GeneratedTensors, ParamDecoder, StGenerator,
};
pub use latent::{GaussianSample, LatentMode, SpatialLatent, TemporalEncoder};
pub use model::{AggregatorKind, StwaConfig, StwaModel};
pub use sensor_attention::{SensorCorrelationAttention, SparsityMode};
pub use sharded::{fold_shard_grads, shard_seed, ShardEngine};
pub use trainer::{ForecastModel, ForwardOutput, ReplicaFactory, TrainConfig, TrainReport, Trainer};
pub use window_attention::WindowAttentionLayer;
