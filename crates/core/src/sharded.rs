//! Deterministic data-parallel training: shard mini-batches across
//! per-thread tapes, reduce gradients in fixed shard order.
//!
//! The autograd tape ([`stwa_autograd::Graph`]) is deliberately
//! thread-confined (`Rc` storage, no locks on the hot path). Data
//! parallelism therefore happens *above* the tape: each worker thread
//! owns a full **replica** of the model — same architecture, parameters
//! loaded from a [`ParamSnapshot`] of the live store before every step —
//! and runs forward + backward over one contiguous slice of the
//! mini-batch on its own graph. The main thread then combines the
//! per-shard gradients in ascending shard index and injects the sums
//! into the live parameters ([`stwa_nn::Param::set_grad`]) for a single
//! optimizer step.
//!
//! # Determinism contract
//!
//! - **Fixed-order reduction.** Shard results are buffered and summed
//!   in shard-index order, never completion order, so the f32
//!   reassociation is the same on every run: for each parameter scalar
//!   the total is `((g_0 + g_1) + g_2) + ...`.
//! - **Per-shard RNG streams.** Shard `s` of a batch draws its latents
//!   from `StdRng::seed_from_u64(shard_seed(batch_seed, s))`, where
//!   [`shard_seed`] mixes the shard index with the golden-ratio odd
//!   constant `0x9E37_79B9_7F4A_7C15` before XOR. The batch seeds come
//!   from the trainer's own seeded RNG, so a whole `STWA_SHARDS=k` run
//!   is a pure function of `(config.seed, k)`: run-to-run bitwise
//!   deterministic, including every sampled latent.
//! - **Kernels stay off the pool.** Each worker opens
//!   [`stwa_pool::sequential_scope`] for its lifetime, so tensor
//!   kernels inside shard steps run inline instead of competing for the
//!   process-global pool (whose single job slot would serialize them
//!   anyway). Kernel chunk boundaries depend only on shapes, so inline
//!   execution is bitwise identical to pooled execution.
//!
//! # Objective weighting
//!
//! Shard `s` computes its own mean objective `L_s = huber_s + reg_s`
//! over its `n_s` rows and backpropagates `w_s * L_s` with
//! `w_s = n_s / B`. Since the Huber loss is a mean, the weighted sum
//! `sum_s w_s * huber_s` equals the full-batch mean Huber exactly (up
//! to the documented f32 reassociation of summing per-shard partials);
//! the regularizer term becomes the shard-size-weighted average of the
//! per-shard KLs, which coincides with the full-batch KL in expectation
//! (each shard's KL is itself a mean over its rows). `sum_s w_s = 1`
//! always.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use stwa_autograd::Graph;
use stwa_nn::loss::huber;
use stwa_nn::ParamSnapshot;
use stwa_tensor::{Result, Tensor, TensorError};

use crate::trainer::{ForecastModel, ReplicaFactory};

/// The RNG seed for shard `shard` of a batch whose trainer-level seed is
/// `batch_seed`.
///
/// The shard index is spread over all 64 bits by multiplying with the
/// golden-ratio odd constant (the SplitMix64 increment) before XOR, so
/// adjacent shards land in unrelated regions of the seed space; plain
/// `batch_seed ^ shard` would hand `StdRng::seed_from_u64`'s SplitMix64
/// expander nearly identical inputs for shards 0 and 1. Deterministic by
/// construction: no global state, no time, no thread identity.
pub fn shard_seed(batch_seed: u64, shard: usize) -> u64 {
    batch_seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// One shard's work order: everything is `Send` (raw buffers + an
/// `Arc`'d snapshot), rebuilt into thread-confined tensors on the
/// worker.
struct ShardJob {
    shard: usize,
    snapshot: Arc<ParamSnapshot>,
    x_data: Vec<f32>,
    x_shape: Vec<usize>,
    y_data: Vec<f32>,
    y_shape: Vec<usize>,
    seed: u64,
    /// `n_s / B` — applied in-graph to the whole shard objective.
    weight: f32,
    huber_delta: f32,
    scaler_mean: f32,
    scaler_std: f32,
    /// Recycled gradient buffers from earlier steps (coordinator
    /// freelist): the worker fills these instead of allocating fresh
    /// `Vec<f32>`s for its gradient transfer. Shipped in param order;
    /// values are irrelevant, only capacity matters.
    spares: Vec<Vec<f32>>,
}

/// What a worker sends back: pre-weighted gradients in the replica
/// store's registration order (which matches the live store — same
/// constructor, same config).
struct ShardOutcome {
    shard: usize,
    /// Unweighted shard objective (huber + reg), for loss reporting.
    loss: f32,
    kl: Option<f32>,
    grads: Vec<Option<Vec<f32>>>,
}

/// A persistent pool of shard workers, one replica per thread.
///
/// Built once per training run ([`ShardEngine::new`]); each
/// [`train_batch`](ShardEngine::train_batch) snapshots the live
/// parameters, fans the batch out, and injects the reduced gradients
/// back — the caller then runs the optimizer step exactly as in the
/// sequential path.
pub struct ShardEngine {
    senders: Vec<mpsc::Sender<ShardJob>>,
    results: mpsc::Receiver<(usize, Result<ShardOutcome>)>,
    workers: Vec<JoinHandle<()>>,
    /// Gradient-transfer buffers reclaimed by [`fold_shard_grads`]:
    /// every step frees `(k-1) * P` vectors whose capacities already
    /// fit this model's parameters, so they cycle back to the workers
    /// as [`ShardJob::spares`] instead of hitting the allocator. The
    /// engine is thread-confined (like the trainer that owns it), so a
    /// `RefCell` suffices.
    freelist: std::cell::RefCell<Vec<Vec<f32>>>,
}

impl ShardEngine {
    /// Spawn `shards` workers, each with its own replica of `model`.
    ///
    /// Returns `None` when `shards <= 1` or the model does not provide a
    /// [`ForecastModel::replica_builder`] — the trainer then falls back
    /// to the sequential step, keeping that path bit-for-bit untouched.
    pub fn new(model: &dyn ForecastModel, shards: usize) -> Option<ShardEngine> {
        if shards <= 1 {
            return None;
        }
        let factories: Vec<ReplicaFactory> = (0..shards)
            .map(|_| model.replica_builder())
            .collect::<Option<Vec<_>>>()?;

        let (res_tx, res_rx) = mpsc::channel();
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for (w, factory) in factories.into_iter().enumerate() {
            let (job_tx, job_rx) = mpsc::channel::<ShardJob>();
            let results = res_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("stwa-shard-{w}"))
                .spawn(move || worker_loop(factory, job_rx, results))
                .expect("spawn shard worker");
            senders.push(job_tx);
            workers.push(handle);
        }
        Some(ShardEngine {
            senders,
            results: res_rx,
            workers,
            freelist: std::cell::RefCell::new(Vec::new()),
        })
    }

    /// Number of worker threads (the configured shard count).
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Run one data-parallel training step over `(bx, by)`.
    ///
    /// On return, every parameter of `model` that received gradient on
    /// any shard carries the fixed-order sum via `set_grad`; the caller
    /// performs `opt.step(); opt.finish_step()`. Returns the combined
    /// `(loss, kl)` in the same convention as the sequential step: the
    /// shard-size-weighted objective mean.
    #[allow(clippy::too_many_arguments)]
    pub fn train_batch(
        &self,
        model: &dyn ForecastModel,
        bx: Tensor,
        by: Tensor,
        batch_seed: u64,
        huber_delta: f32,
        scaler_mean: f32,
        scaler_std: f32,
    ) -> Result<(f32, Option<f32>)> {
        let b = bx.shape()[0];
        let k = self.senders.len().min(b);
        let snapshot = Arc::new(model.store().snapshot());
        let params = model.store().params();
        stwa_observe::counter!("train.sharded_batches").incr();

        // Contiguous row ranges; the first `b % k` shards take one extra
        // row. Boundaries depend only on (b, k), never on thread timing.
        let mut weights = Vec::with_capacity(k);
        let mut start = 0usize;
        for s in 0..k {
            let n_s = b / k + usize::from(s < b % k);
            let x_chunk = bx.narrow(0, start, n_s)?;
            let y_chunk = by.narrow(0, start, n_s)?;
            let x_shape = x_chunk.shape().to_vec();
            let y_shape = y_chunk.shape().to_vec();
            let weight = n_s as f32 / b as f32;
            weights.push(weight);
            // Hand this worker up to one recycled buffer per parameter
            // from the coordinator freelist (in param order, so the
            // capacities line up with the gradients it will produce).
            let spares = {
                let mut fl = self.freelist.borrow_mut();
                let keep = fl.len().saturating_sub(params.len());
                fl.split_off(keep)
            };
            let job = ShardJob {
                shard: s,
                snapshot: Arc::clone(&snapshot),
                x_data: x_chunk.into_vec(),
                x_shape,
                y_data: y_chunk.into_vec(),
                y_shape,
                seed: shard_seed(batch_seed, s),
                weight,
                huber_delta,
                scaler_mean,
                scaler_std,
                spares,
            };
            self.senders[s].send(job).map_err(|_| {
                TensorError::Invalid(format!("sharded: worker {s} is gone"))
            })?;
            start += n_s;
        }

        // Buffer results by shard index: completion order is
        // nondeterministic, reduction order must not be.
        let mut outcomes: Vec<Option<ShardOutcome>> = (0..k).map(|_| None).collect();
        for _ in 0..k {
            let (shard, res) = self.results.recv().map_err(|_| {
                TensorError::Invalid("sharded: all workers hung up".into())
            })?;
            let out = res.map_err(|e| {
                TensorError::Invalid(format!("sharded: shard {shard} failed: {e}"))
            })?;
            let idx = out.shard;
            outcomes[idx] = Some(out);
        }

        // Fixed-order reduction: ascending shard index, scalar adds.
        let mut acc: Vec<Option<Vec<f32>>> = (0..params.len()).map(|_| None).collect();
        let mut reclaimed: Vec<Vec<f32>> = Vec::new();
        let mut loss = 0.0f32;
        let mut kl = 0.0f32;
        let mut kl_any = false;
        for (s, out) in outcomes.into_iter().enumerate() {
            let out = out
                .ok_or_else(|| TensorError::Invalid(format!("sharded: shard {s} never reported")))?;
            if out.grads.len() != params.len() {
                return Err(TensorError::Invalid(format!(
                    "sharded: shard {s} returned {} gradients for {} parameters",
                    out.grads.len(),
                    params.len()
                )));
            }
            loss += weights[s] * out.loss;
            if let Some(shard_kl) = out.kl {
                kl_any = true;
                kl += weights[s] * shard_kl;
            }
            fold_shard_grads(&mut acc, out.grads, &mut reclaimed);
        }
        self.freelist.borrow_mut().append(&mut reclaimed);

        for (p, grad) in params.iter().zip(acc) {
            if let Some(g) = grad {
                let shape = p.shape();
                p.set_grad(Tensor::from_vec(g, &shape)?);
            }
        }
        Ok((loss, kl_any.then_some(kl)))
    }
}

/// Fold one shard's gradients into the accumulator, scalar adds in
/// element order. The determinism contract lives in the *caller*:
/// shards must be folded in ascending index, so each accumulator scalar
/// is always `((g_0 + g_1) + g_2) + ...` regardless of which worker
/// finished first. Public so the fixed-order property tests exercise
/// the exact production fold.
///
/// Buffers that were summed away (every shard after the first to touch
/// a parameter) land in `reclaimed`, in param order, for the engine's
/// gradient-transfer freelist.
pub fn fold_shard_grads(
    acc: &mut [Option<Vec<f32>>],
    grads: Vec<Option<Vec<f32>>>,
    reclaimed: &mut Vec<Vec<f32>>,
) {
    for (slot, grad) in acc.iter_mut().zip(grads) {
        match (slot.as_mut(), grad) {
            (None, Some(g)) => *slot = Some(g),
            (Some(a), Some(g)) => {
                for (ai, gi) in a.iter_mut().zip(&g) {
                    *ai += gi;
                }
                reclaimed.push(g);
            }
            _ => {}
        }
    }
}

impl Drop for ShardEngine {
    fn drop(&mut self) {
        // Closing the job channels ends every worker loop.
        self.senders.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(
    factory: ReplicaFactory,
    jobs: mpsc::Receiver<ShardJob>,
    results: mpsc::Sender<(usize, Result<ShardOutcome>)>,
) {
    // Shards are the unit of parallelism on this thread: keep tensor
    // kernels inline rather than contending for the global pool.
    let _seq = stwa_pool::sequential_scope();
    let replica = match factory() {
        Ok(model) => model,
        Err(e) => {
            let _ = results.send((usize::MAX, Err(e)));
            return;
        }
    };
    while let Ok(job) = jobs.recv() {
        let shard = job.shard;
        let outcome = run_shard(replica.as_ref(), job);
        if results.send((shard, outcome)).is_err() {
            break; // engine dropped mid-step
        }
    }
}

/// One shard's forward + backward on the worker's replica.
fn run_shard(model: &dyn ForecastModel, job: ShardJob) -> Result<ShardOutcome> {
    let _span = stwa_observe::span!("shard_step");
    stwa_observe::counter!("train.shard_steps").incr();

    // `spares` arrive in param order; reverse once so `pop()` below
    // hands them back in param order too, keeping each buffer's
    // capacity aligned with the gradient it will carry.
    let mut spares = job.spares;
    spares.reverse();
    job.snapshot.load_into(model.store())?;
    let graph = Graph::new();
    let x = graph.constant(Tensor::from_vec(job.x_data, &job.x_shape)?);
    let mut rng = StdRng::seed_from_u64(job.seed);
    let out = model.forward(&graph, &x, &mut rng, true)?;
    // Mirror the sequential step: de-normalize so the Huber loss lives
    // in the raw flow scale.
    let pred_raw = out
        .pred
        .mul_scalar(job.scaler_std)
        .add_scalar(job.scaler_mean);
    let target = graph.constant(Tensor::from_vec(job.y_data, &job.y_shape)?);
    let mut loss = huber(&pred_raw, &target, job.huber_delta)?;
    let kl = match out.regularizer {
        Some(reg) => {
            let kl_val = reg.value().item()?;
            loss = loss.add(&reg)?;
            Some(kl_val)
        }
        None => None,
    };
    let loss_val = loss.value().item()?;
    // Weight the whole objective in-graph: every leaf gradient arrives
    // pre-scaled by n_s / B, so the main thread only sums.
    let objective = loss.mul_scalar(job.weight);
    graph.backward(&objective)?;

    let params = model.store().params();
    let grads = params
        .iter()
        .map(|p| {
            p.grad().map(|g| match spares.pop() {
                Some(mut buf) => {
                    stwa_observe::counter!("alloc.shard_grad_reuse").incr();
                    buf.clear();
                    buf.extend_from_slice(g.data());
                    buf
                }
                None => g.data().to_vec(),
            })
        })
        .collect();
    for p in &params {
        p.unbind(); // free the tape before the next job
    }
    Ok(ShardOutcome {
        shard: job.shard,
        loss: loss_val,
        kl,
        grads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_seed_is_deterministic_and_spread() {
        assert_eq!(shard_seed(42, 0), 42);
        assert_eq!(shard_seed(42, 3), shard_seed(42, 3));
        // Distinct shards get distinct streams; adjacent shards differ
        // in far more than the low bits.
        let a = shard_seed(7, 1);
        let b = shard_seed(7, 2);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 8, "{a:x} vs {b:x} too correlated");
    }

    #[test]
    fn grad_transfer_buffers_recycle_through_freelist() {
        use crate::model::{StwaConfig, StwaModel};
        let mut rng = StdRng::seed_from_u64(11);
        let model = StwaModel::new(StwaConfig::wa(4, 12, 3), &mut rng).unwrap();
        let engine = ShardEngine::new(&model, 2).unwrap();
        let step = |seed: u64| {
            let mut r = StdRng::seed_from_u64(seed);
            let bx = Tensor::randn(&[8, 4, 12, 1], &mut r);
            let by = Tensor::randn(&[8, 4, 3, 1], &mut r);
            engine
                .train_batch(&model, bx, by, seed, 1.0, 0.0, 1.0)
                .unwrap();
        };
        let reuse = || {
            stwa_observe::counters_snapshot()
                .iter()
                .find(|(n, _)| n == "alloc.shard_grad_reuse")
                .map(|&(_, v)| v)
                .unwrap_or(0)
        };
        stwa_observe::set_enabled(true);
        // Step 1 starts with an empty freelist; its fold frees
        // (shards - 1) * P buffers that step 2 must pick up.
        step(1);
        let after_first = reuse();
        step(2);
        let after_second = reuse();
        stwa_observe::set_enabled(false);
        assert!(
            after_second > after_first,
            "second step recycled no gradient buffers ({after_first} -> {after_second})"
        );
        assert!(!engine.freelist.borrow().is_empty());
    }

    #[test]
    fn engine_refuses_single_shard_and_builderless_models() {
        use crate::model::{StwaConfig, StwaModel};
        let mut rng = StdRng::seed_from_u64(0);
        let model = StwaModel::new(StwaConfig::wa(4, 12, 3), &mut rng).unwrap();
        assert!(ShardEngine::new(&model, 1).is_none());
        assert!(ShardEngine::new(&model, 0).is_none());
        let engine = ShardEngine::new(&model, 2).unwrap();
        assert_eq!(engine.shards(), 2);
    }
}
