//! The full ST-WA model (paper Section IV-D, Figure 8) and its ablation
//! variants.

use crate::generator::{AwarenessFlags, StGenerator};
use crate::latent::LatentMode;
use crate::sensor_attention::SparsityMode;
use crate::trainer::{ForecastModel, ForwardOutput, ReplicaFactory};
pub use crate::window_attention::AggregatorKind;
use crate::window_attention::WindowAttentionLayer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stwa_autograd::{Graph, Var};
use stwa_nn::layers::{Activation, Linear, Mlp};
use stwa_nn::ParamStore;
use stwa_tensor::{Result, Tensor, TensorError};

/// Configuration of an [`StwaModel`].
///
/// The defaults follow the paper's H=12 setting at this repository's
/// reduced scale: 3 layers with window sizes (3, 2, 2), one proxy,
/// k=16 as in the paper, and d=16 with 4 heads (the paper uses d=32,
/// 8 heads; see DESIGN.md on uniform width reduction). The `variant`
/// constructors produce the exact ablation rows of Table VIII.
#[derive(Debug, Clone)]
pub struct StwaConfig {
    /// Number of sensors.
    pub n: usize,
    /// Input window length (timestamps).
    pub h: usize,
    /// Forecast horizon (timestamps).
    pub u: usize,
    /// Attributes per timestamp (PEMS flow: 1).
    pub f_in: usize,
    /// Hidden width of the attention layers.
    pub d: usize,
    /// Attention heads (must divide `d`).
    pub heads: usize,
    /// Per-layer window sizes; their product must divide `h` stage by
    /// stage (layer `l+1` runs on layer `l`'s `W` windows).
    pub window_sizes: Vec<usize>,
    /// Number of proxies per window.
    pub proxies: usize,
    /// Latent dimension `k` of the stochastic variables.
    pub k: usize,
    /// Which awareness the parameter generator provides; `None` is the
    /// ST-agnostic stacked window attention ("WA" in Table VIII).
    pub awareness: Option<AwarenessFlags>,
    /// Stochastic (paper) vs deterministic latents (Table XI ablation).
    pub latent_mode: LatentMode,
    /// Learned gate (paper) vs mean aggregation (Table XIV ablation).
    pub aggregator: AggregatorKind,
    /// `alpha` weighting of the KL regularizer (Eq. 20); 0 disables it
    /// (Table X ablation).
    pub kl_weight: f32,
    /// Hidden width of the 2-layer predictor (paper: 512).
    pub predictor_hidden: usize,
    /// `(m1, m2)` hidden sizes of the decoder `D_omega`.
    pub decoder_hidden: (usize, usize),
    /// Whether to apply sensor correlation attention per window.
    pub sensor_attention: bool,
    /// Optional planar normalizing flow depth over `Theta` — the
    /// paper's future-work extension (crate::flow). `None` keeps the
    /// paper's Gaussian latents.
    pub flow_depth: Option<usize>,
    /// Generate per-sensor sensor-correlation transforms too
    /// (Section IV-C's optional variant). Default: shared transforms.
    pub generated_sensor_attention: bool,
    /// Restrict sensor correlation attention to a neighbor graph
    /// (O(N·k) instead of O(N²) — the city-scale path). `None` keeps
    /// the paper's dense attention. Carried in the config so shard
    /// replicas rebuild with the same pair set (the graph is shared by
    /// `Arc`, not copied).
    pub sensor_graph: Option<std::sync::Arc<stwa_tensor::SensorGraph>>,
}

impl StwaConfig {
    /// The paper's default full model for the given data dimensions.
    /// The window schedule comes from [`default_windows`]; override it
    /// with [`StwaConfig::with_windows`].
    pub fn st_wa(n: usize, h: usize, u: usize) -> StwaConfig {
        StwaConfig {
            n,
            h,
            u,
            f_in: 1,
            d: 16,
            heads: 4,
            window_sizes: default_windows(h),
            proxies: 1,
            k: 16,
            awareness: Some(AwarenessFlags::st_aware()),
            latent_mode: LatentMode::Stochastic,
            aggregator: AggregatorKind::Learned,
            kl_weight: 0.01,
            predictor_hidden: 128,
            decoder_hidden: (16, 32),
            sensor_attention: true,
            flow_depth: None,
            generated_sensor_attention: false,
            sensor_graph: None,
        }
    }

    /// "S-WA": spatial-aware only (drop `z_t^(i)`).
    pub fn s_wa(n: usize, h: usize, u: usize) -> StwaConfig {
        StwaConfig {
            awareness: Some(AwarenessFlags::s_aware()),
            ..StwaConfig::st_wa(n, h, u)
        }
    }

    /// "WA": stacked window attention without parameter generation.
    pub fn wa(n: usize, h: usize, u: usize) -> StwaConfig {
        StwaConfig {
            awareness: None,
            ..StwaConfig::st_wa(n, h, u)
        }
    }

    /// "WA-1": a single window-attention layer (no stacking).
    pub fn wa_1(n: usize, h: usize, u: usize) -> StwaConfig {
        StwaConfig {
            awareness: None,
            window_sizes: vec![h.min(3)],
            ..StwaConfig::st_wa(n, h, u)
        }
    }

    /// Deterministic ST-WA (Table XI).
    pub fn deterministic(n: usize, h: usize, u: usize) -> StwaConfig {
        StwaConfig {
            latent_mode: LatentMode::Deterministic,
            kl_weight: 0.0,
            ..StwaConfig::st_wa(n, h, u)
        }
    }

    /// Override the window schedule (Table IX).
    pub fn with_windows(mut self, sizes: &[usize]) -> StwaConfig {
        self.window_sizes = sizes.to_vec();
        self
    }

    /// Override the number of proxies (Table XIII).
    pub fn with_proxies(mut self, p: usize) -> StwaConfig {
        self.proxies = p;
        self
    }

    /// Override the latent size `k` (Table XII).
    pub fn with_k(mut self, k: usize) -> StwaConfig {
        self.k = k;
        self
    }

    /// Disable the KL regularizer (Table X).
    pub fn without_kl(mut self) -> StwaConfig {
        self.kl_weight = 0.0;
        self
    }

    /// Use the mean proxy aggregator (Table XIV).
    pub fn with_mean_aggregator(mut self) -> StwaConfig {
        self.aggregator = AggregatorKind::Mean;
        self
    }

    /// Enable planar normalizing flows of the given depth over the
    /// latent `Theta` (the paper's future-work extension).
    pub fn with_flow(mut self, depth: usize) -> StwaConfig {
        self.flow_depth = Some(depth);
        self
    }

    /// Also generate the sensor-correlation transforms per sensor
    /// (Section IV-C's optional variant). Requires awareness.
    pub fn with_generated_sca(mut self) -> StwaConfig {
        self.generated_sensor_attention = true;
        self
    }

    /// Restrict sensor correlation attention to `graph`'s neighbor
    /// lists (O(N·k)). With a complete graph this is bitwise identical
    /// to dense attention; with a corridor/k-NN graph it is the
    /// city-scale configuration.
    pub fn with_sensor_graph(mut self, graph: std::sync::Arc<stwa_tensor::SensorGraph>) -> StwaConfig {
        self.sensor_graph = Some(graph);
        self
    }

    /// Validate the window schedule against `h`, returning per-layer
    /// `(t_in, f_in)`.
    fn layer_plan(&self) -> Result<Vec<(usize, usize)>> {
        let mut t = self.h;
        let mut f = self.f_in;
        let mut plan = Vec::with_capacity(self.window_sizes.len());
        for (l, &s) in self.window_sizes.iter().enumerate() {
            if s == 0 || !t.is_multiple_of(s) {
                return Err(TensorError::Invalid(format!(
                    "StwaConfig: window size {s} of layer {l} does not divide its input length {t}"
                )));
            }
            plan.push((t, f));
            t /= s;
            f = self.d;
        }
        if plan.is_empty() {
            return Err(TensorError::Invalid(
                "StwaConfig: need at least one layer".into(),
            ));
        }
        Ok(plan)
    }
}

/// The paper's H=12 default schedule (3, 2, 2) when it fits, otherwise a
/// greedy factorization into small windows.
pub fn default_windows(h: usize) -> Vec<usize> {
    if h.is_multiple_of(12) && h >= 12 {
        // (3, 2, 2) handles h = 12; longer inputs get an extra leading
        // window layer to reduce them to 12 first (e.g. h=36 -> 3,3,2,2;
        // h=72 -> 6,3,2,2; h=120 -> 10,3,2,2).
        let lead = h / 12;
        if lead == 1 {
            vec![3, 2, 2]
        } else {
            vec![lead, 3, 2, 2]
        }
    } else {
        // Fallback: peel small prime factors.
        let mut t = h;
        let mut sizes = Vec::new();
        for f in [2usize, 3, 5, 7] {
            while t.is_multiple_of(f) && t > f {
                sizes.push(f);
                t /= f;
            }
        }
        sizes.push(t.max(1));
        sizes
    }
}

/// The stacked ST-WA forecasting model.
pub struct StwaModel {
    config: StwaConfig,
    generator: Option<StGenerator>,
    layers: Vec<WindowAttentionLayer>,
    /// Eq. 18 skip connections: one `W_l` per layer mapping the
    /// flattened layer output to the shared skip width.
    skips: Vec<Linear>,
    predictor: Mlp,
    store: ParamStore,
    name: String,
}

impl StwaModel {
    /// Build the model (and its own parameter store) from a config.
    pub fn new(config: StwaConfig, rng: &mut impl Rng) -> Result<StwaModel> {
        let store = ParamStore::new();
        let plan = config.layer_plan()?;

        let wants_generated_sca = config.generated_sensor_attention
            && config.sensor_attention
            && config.awareness.is_some();
        let generator = match config.awareness {
            None => None,
            Some(flags) => {
                let layer_dims: Vec<(usize, usize)> =
                    plan.iter().map(|&(_t, f)| (f, config.d)).collect();
                Some(StGenerator::new(
                    &store,
                    "gen",
                    flags,
                    config.latent_mode,
                    config.n,
                    config.h,
                    config.f_in,
                    config.k,
                    config.decoder_hidden,
                    &layer_dims,
                    config.flow_depth,
                    wants_generated_sca,
                    rng,
                ))
            }
        };

        let mut layers = Vec::with_capacity(plan.len());
        let mut skips = Vec::with_capacity(plan.len());
        for (l, (&(t_in, f_in), &s)) in plan.iter().zip(&config.window_sizes).enumerate() {
            let mut layer = WindowAttentionLayer::new_with_sca_mode(
                &store,
                &format!("wa{l}"),
                config.n,
                t_in,
                s,
                config.proxies,
                f_in,
                config.d,
                config.heads,
                config.aggregator,
                config.sensor_attention,
                config.awareness.is_none(),
                wants_generated_sca,
                rng,
            )?;
            if let Some(graph) = &config.sensor_graph {
                layer.set_sparsity(SparsityMode::Sparse(std::sync::Arc::clone(graph)));
            }
            let w_out = layer.num_windows();
            skips.push(Linear::new(
                &store,
                &format!("skip{l}"),
                w_out * config.d,
                config.d,
                rng,
            ));
            layers.push(layer);
        }

        let predictor = Mlp::new(
            &store,
            "predictor",
            &[config.d, config.predictor_hidden, config.u * config.f_in],
            &[Activation::Relu, Activation::Identity],
            rng,
        );

        let mut name = match (&config.awareness, config.latent_mode, layers.len()) {
            (None, _, 1) => "WA-1".to_string(),
            (None, _, _) => "WA".to_string(),
            (Some(f), LatentMode::Deterministic, _) if f.temporal => "ST-WA (det)".to_string(),
            (Some(f), _, _) if f.spatial && f.temporal => "ST-WA".to_string(),
            (Some(f), _, _) if f.spatial => "S-WA".to_string(),
            _ => "T-WA".to_string(),
        };
        if config.flow_depth.is_some() {
            name.push_str("+NF");
        }

        Ok(StwaModel {
            config,
            generator,
            layers,
            skips,
            predictor,
            store,
            name,
        })
    }

    pub fn config(&self) -> &StwaConfig {
        &self.config
    }

    /// The learned spatial latent means, for Fig. 9(b).
    pub fn spatial_latent_means(&self) -> Option<stwa_tensor::Tensor> {
        self.generator.as_ref().and_then(|g| g.spatial_means())
    }

    /// Decode the generated `K`/`V` projections for an input window —
    /// used by the Fig. 9(a) visualization of `phi_t^(i)`.
    pub fn generated_projections(
        &self,
        x: &stwa_tensor::Tensor,
        rng: &mut StdRng,
    ) -> Result<Option<stwa_tensor::Tensor>> {
        let Some(gen) = &self.generator else {
            return Ok(None);
        };
        let g = Graph::new();
        let xv = g.constant(x.clone());
        let params = gen.generate(&g, &xv, rng)?;
        let first = &params.layers[0];
        // Flatten [B, N, F, d] -> [B, N, F*d] for embedding.
        let s = first.k_proj.shape();
        let flat = first.k_proj.reshape(&[s[0], s[1], s[2] * s[3]])?;
        Ok(Some(flat.value().as_ref().clone()))
    }

    /// Tape-free eval-mode forward: the same kernel sequence the graph
    /// path runs with `training == false` (latents collapsed to their
    /// means), but without allocating any autograd nodes. Bitwise
    /// identical to the graph path by construction — every op delegates
    /// to the same tensor kernels in the same order.
    pub fn forward_nograd(&self, x: &Tensor) -> Result<Tensor> {
        let shape = x.shape();
        if shape.len() != 4
            || shape[1] != self.config.n
            || shape[2] != self.config.h
            || shape[3] != self.config.f_in
        {
            return Err(TensorError::Invalid(format!(
                "StwaModel: expected [B, {}, {}, {}], got {shape:?}",
                self.config.n, self.config.h, self.config.f_in
            )));
        }
        let b = shape[0];
        let _span = stwa_observe::span!("forward");

        let generated = match &self.generator {
            Some(gen) => Some(gen.generate_nograd(x)?),
            None => None,
        };

        let mut h = x.clone();
        let mut skip_sum: Option<Tensor> = None;
        for (l, layer) in self.layers.iter().enumerate() {
            let layer_span = stwa_observe::span!("wa_layer{}", l);
            let proj = generated.as_ref().map(|g| &g[l]);
            let out = layer.forward_nograd(&h, proj)?; // [B, N, W, d]
            let w = layer.num_windows();
            let flat = out.reshape(&[b, self.config.n, w * self.config.d])?;
            let skip = self.skips[l].forward_nograd(&flat)?; // [B, N, d]
            skip_sum = Some(match skip_sum {
                None => skip,
                Some(acc) => acc.add(&skip)?,
            });
            h = out;
            drop(layer_span);
        }
        let o = skip_sum.expect("at least one layer");

        let predictor_span = stwa_observe::span!("predictor");
        let pred = self.predictor.forward_nograd(&o)?.reshape(&[
            b,
            self.config.n,
            self.config.u,
            self.config.f_in,
        ])?;
        drop(predictor_span);
        Ok(pred)
    }

    /// The parameter generator, when the model is ST/S/T-aware.
    pub fn generator(&self) -> Option<&StGenerator> {
        self.generator.as_ref()
    }

    /// The stacked window-attention layers.
    pub fn layers(&self) -> &[WindowAttentionLayer] {
        &self.layers
    }

    /// Re-point every layer's sensor correlation attention at `mode`
    /// (and record it in the config so replicas and frozen snapshots
    /// follow). Parameters are untouched.
    pub fn set_sparsity(&mut self, mode: SparsityMode) {
        self.config.sensor_graph = mode.graph().map(std::sync::Arc::clone);
        for layer in &mut self.layers {
            layer.set_sparsity(mode.clone());
        }
    }

    /// Eq. 18 skip projections, one per layer.
    pub fn skips(&self) -> &[Linear] {
        &self.skips
    }

    /// The Eq. 19 predictor head.
    pub fn predictor(&self) -> &Mlp {
        &self.predictor
    }
}

impl ForecastModel for StwaModel {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn replica_builder(&self) -> Option<ReplicaFactory> {
        let config = self.config.clone();
        Some(Box::new(move || {
            // The replica's init values are dead weight — every shard
            // step overwrites them from the live snapshot — but the
            // constructor must run to register parameters in the same
            // order and shapes, so any fixed seed does.
            let mut rng = StdRng::seed_from_u64(0);
            Ok(Box::new(StwaModel::new(config, &mut rng)?) as Box<dyn ForecastModel>)
        }))
    }

    fn forward(
        &self,
        graph: &Graph,
        x: &Var,
        rng: &mut StdRng,
        training: bool,
    ) -> Result<ForwardOutput> {
        let shape = x.shape();
        if shape.len() != 4
            || shape[1] != self.config.n
            || shape[2] != self.config.h
            || shape[3] != self.config.f_in
        {
            return Err(TensorError::Invalid(format!(
                "StwaModel: expected [B, {}, {}, {}], got {shape:?}",
                self.config.n, self.config.h, self.config.f_in
            )));
        }
        let b = shape[0];
        let _span = stwa_observe::span!("forward");

        // Generate ST-aware parameters (or nothing for the agnostic WA).
        // Evaluation collapses the latents to their means (the posterior
        // mean predictor); training samples them.
        let generated = match &self.generator {
            Some(gen) => Some(gen.generate_with_mode(
                graph,
                x,
                rng,
                if training {
                    self.config.latent_mode
                } else {
                    LatentMode::Deterministic
                },
            )?),
            None => None,
        };

        // Stacked window attention with skip connections (Eq. 17–18).
        let mut h = x.clone();
        let mut skip_sum: Option<Var> = None;
        for (l, layer) in self.layers.iter().enumerate() {
            let layer_span = stwa_observe::span!("wa_layer{}", l);
            let proj = generated.as_ref().map(|g| &g.layers[l]);
            let out = layer.forward(graph, &h, proj)?; // [B, N, W, d]
            let w = layer.num_windows();
            let flat = out.reshape(&[b, self.config.n, w * self.config.d])?;
            let skip = self.skips[l].forward(graph, &flat)?; // [B, N, d]
            skip_sum = Some(match skip_sum {
                None => skip,
                Some(acc) => acc.add(&skip)?,
            });
            h = out; // next layer consumes the window summaries
            drop(layer_span);
        }
        let o = skip_sum.expect("at least one layer");

        // Predictor (Eq. 19): [B, N, d] -> [B, N, U * F] -> [B, N, U, F].
        let predictor_span = stwa_observe::span!("predictor");
        let pred = self.predictor.forward(graph, &o)?.reshape(&[
            b,
            self.config.n,
            self.config.u,
            self.config.f_in,
        ])?;
        drop(predictor_span);

        let regularizer = match &generated {
            Some(gp) if self.config.kl_weight > 0.0 => gp
                .kl
                .as_ref()
                .map(|kl| kl.mul_scalar(self.config.kl_weight)),
            _ => None,
        };

        Ok(ForwardOutput { pred, regularizer })
    }

    fn forward_eval(&self, x: &Tensor) -> Result<Tensor> {
        self.forward_nograd(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use stwa_tensor::Tensor;

    fn forward_once(config: StwaConfig, b: usize) -> (StwaModel, ForwardOutput, Graph) {
        let mut rng = StdRng::seed_from_u64(0);
        let model = StwaModel::new(config, &mut rng).unwrap();
        let g = Graph::new();
        let x = g.constant(Tensor::randn(
            &[b, model.config.n, model.config.h, model.config.f_in],
            &mut rng,
        ));
        let out = model.forward(&g, &x, &mut rng, true).unwrap();
        (model, out, g)
    }

    #[test]
    fn default_window_schedules() {
        assert_eq!(default_windows(12), vec![3, 2, 2]);
        assert_eq!(default_windows(36), vec![3, 3, 2, 2]);
        assert_eq!(default_windows(72), vec![6, 3, 2, 2]);
        assert_eq!(default_windows(120), vec![10, 3, 2, 2]);
    }

    #[test]
    fn st_wa_forward_shapes_and_kl() {
        let (_m, out, _g) = forward_once(StwaConfig::st_wa(4, 12, 12), 3);
        assert_eq!(out.pred.shape(), vec![3, 4, 12, 1]);
        assert!(out.regularizer.is_some(), "ST-WA must carry a KL term");
        assert!(!out.pred.value().has_non_finite());
    }

    #[test]
    fn wa_variant_has_no_regularizer() {
        let (_m, out, _g) = forward_once(StwaConfig::wa(4, 12, 6), 2);
        assert_eq!(out.pred.shape(), vec![2, 4, 6, 1]);
        assert!(out.regularizer.is_none());
    }

    #[test]
    fn deterministic_variant_has_no_regularizer() {
        let (_m, out, _g) = forward_once(StwaConfig::deterministic(3, 12, 12), 1);
        assert!(out.regularizer.is_none());
    }

    #[test]
    fn without_kl_builder_disables_regularizer() {
        let (_m, out, _g) = forward_once(StwaConfig::st_wa(3, 12, 12).without_kl(), 1);
        assert!(out.regularizer.is_none());
    }

    #[test]
    fn variant_names() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            StwaModel::new(StwaConfig::st_wa(3, 12, 12), &mut rng)
                .unwrap()
                .name(),
            "ST-WA"
        );
        assert_eq!(
            StwaModel::new(StwaConfig::s_wa(3, 12, 12), &mut rng)
                .unwrap()
                .name(),
            "S-WA"
        );
        assert_eq!(
            StwaModel::new(StwaConfig::wa(3, 12, 12), &mut rng)
                .unwrap()
                .name(),
            "WA"
        );
        assert_eq!(
            StwaModel::new(StwaConfig::wa_1(3, 12, 12), &mut rng)
                .unwrap()
                .name(),
            "WA-1"
        );
        assert_eq!(
            StwaModel::new(StwaConfig::deterministic(3, 12, 12), &mut rng)
                .unwrap()
                .name(),
            "ST-WA (det)"
        );
    }

    #[test]
    fn invalid_window_schedule_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = StwaConfig::st_wa(3, 12, 12).with_windows(&[5, 2]);
        assert!(StwaModel::new(cfg, &mut rng).is_err());
    }

    #[test]
    fn param_count_scales_with_k_not_n_squared() {
        // The generator's per-sensor cost is O(N * k): doubling N adds
        // ~N*k*2 scalars (mu + logvar), far below N * d^2.
        let mut rng = StdRng::seed_from_u64(0);
        let small = StwaModel::new(StwaConfig::st_wa(8, 12, 12), &mut rng).unwrap();
        let big = StwaModel::new(StwaConfig::st_wa(16, 12, 12), &mut rng).unwrap();
        let added = big.store().num_scalars() as isize - small.store().num_scalars() as isize;
        let k = 16isize;
        let d = 16isize;
        // Extra sensors cost latents (2k each) + proxies (W_total * p * d each).
        let w_total: isize = [4isize, 2, 1].iter().sum();
        let per_sensor = 2 * k + w_total * d;
        assert_eq!(
            added,
            8 * per_sensor,
            "unexpected per-sensor parameter cost"
        );
        // And far less than the naive N * 3 * d^2 per sensor.
        assert!(per_sensor < 3 * d * d);
    }

    #[test]
    fn full_model_gradients_reach_everything() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = StwaModel::new(StwaConfig::st_wa(3, 12, 4), &mut rng).unwrap();
        let g = Graph::new();
        let x = g.constant(Tensor::randn(&[2, 3, 12, 1], &mut rng));
        let out = model.forward(&g, &x, &mut rng, true).unwrap();
        let mut loss = out.pred.square().unwrap().mean_all().unwrap();
        if let Some(reg) = out.regularizer {
            loss = loss.add(&reg).unwrap();
        }
        g.backward(&loss).unwrap();
        let missing: Vec<String> = model
            .store()
            .params()
            .iter()
            .filter(|p| p.grad().is_none())
            .map(|p| p.name().to_string())
            .collect();
        assert!(missing.is_empty(), "params without grad: {missing:?}");
    }

    #[test]
    fn stochastic_forward_varies_deterministic_does_not() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = StwaModel::new(StwaConfig::st_wa(3, 12, 4), &mut rng).unwrap();
        let g = Graph::new();
        let x_t = Tensor::randn(&[1, 3, 12, 1], &mut rng);
        let x = g.constant(x_t.clone());
        let a = model.forward(&g, &x, &mut rng, true).unwrap().pred;
        let b = model.forward(&g, &x, &mut rng, true).unwrap().pred;
        assert!(
            !a.value().approx_eq(&b.value(), 1e-7),
            "stochastic passes should differ"
        );

        let det = StwaModel::new(StwaConfig::deterministic(3, 12, 4), &mut rng).unwrap();
        let c = det.forward(&g, &x, &mut rng, true).unwrap().pred;
        let d = det.forward(&g, &x, &mut rng, true).unwrap().pred;
        assert!(
            c.value().approx_eq(&d.value(), 1e-7),
            "deterministic passes must agree"
        );
    }

    #[test]
    fn generated_sca_variant_builds_and_differs() {
        let mut rng = StdRng::seed_from_u64(8);
        let base = StwaModel::new(StwaConfig::st_wa(3, 12, 4), &mut rng).unwrap();
        let mut rng2 = StdRng::seed_from_u64(8);
        let gen_sca =
            StwaModel::new(StwaConfig::st_wa(3, 12, 4).with_generated_sca(), &mut rng2).unwrap();
        // Extra decoders add parameters...
        assert!(gen_sca.store().num_scalars() > base.store().num_scalars());
        // ...and the forward pass still works with gradients everywhere.
        let g = Graph::new();
        let x = g.constant(Tensor::randn(&[2, 3, 12, 1], &mut rng));
        let out = gen_sca.forward(&g, &x, &mut rng, true).unwrap();
        assert_eq!(out.pred.shape(), vec![2, 3, 4, 1]);
        let mut loss = out.pred.square().unwrap().mean_all().unwrap();
        if let Some(reg) = out.regularizer {
            loss = loss.add(&reg).unwrap();
        }
        g.backward(&loss).unwrap();
        let missing: Vec<String> = gen_sca
            .store()
            .params()
            .iter()
            .filter(|p| p.grad().is_none())
            .map(|p| p.name().to_string())
            .collect();
        assert!(missing.is_empty(), "no grad for {missing:?}");
    }

    #[test]
    fn nograd_forward_bitwise_matches_graph_eval_path() {
        // Every variant: the tape-free forward must agree bit-for-bit
        // with the graph path in eval mode (training = false).
        let configs = [
            StwaConfig::st_wa(3, 12, 4),
            StwaConfig::s_wa(3, 12, 4),
            StwaConfig::wa(3, 12, 4),
            StwaConfig::deterministic(3, 12, 4),
            StwaConfig::st_wa(3, 12, 4).with_mean_aggregator(),
            StwaConfig::st_wa(3, 12, 4).with_flow(2),
            StwaConfig::st_wa(3, 12, 4).with_generated_sca(),
            StwaConfig {
                sensor_attention: false,
                ..StwaConfig::st_wa(3, 12, 4)
            },
        ];
        for (i, cfg) in configs.into_iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(40 + i as u64);
            let model = StwaModel::new(cfg, &mut rng).unwrap();
            let x = Tensor::randn(&[2, 3, 12, 1], &mut rng);
            let g = Graph::new();
            let graph_out = model
                .forward(&g, &g.constant(x.clone()), &mut rng, false)
                .unwrap();
            let nograd_out = model.forward_nograd(&x).unwrap();
            assert_eq!(graph_out.pred.shape(), nograd_out.shape());
            assert_eq!(
                graph_out.pred.value().data(),
                nograd_out.data(),
                "variant {i} diverged from the graph eval path"
            );
        }
    }

    #[test]
    fn generated_projection_export_for_visualization() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = StwaModel::new(StwaConfig::st_wa(3, 12, 4), &mut rng).unwrap();
        let x = Tensor::randn(&[2, 3, 12, 1], &mut rng);
        let phi = model.generated_projections(&x, &mut rng).unwrap().unwrap();
        assert_eq!(phi.shape(), &[2, 3, 16]); // F*d = 1*16
        assert!(model.spatial_latent_means().is_some());
        // Agnostic model exports nothing.
        let wa = StwaModel::new(StwaConfig::wa(3, 12, 4), &mut rng).unwrap();
        assert!(wa.generated_projections(&x, &mut rng).unwrap().is_none());
        assert!(wa.spatial_latent_means().is_none());
    }
}
