//! Sensor Correlation Attention (paper Section IV-C, Eq. 15–16):
//! embedded-Gaussian attention across the N sensors within a window.

use rand::Rng;
use std::sync::Arc;
use stwa_autograd::{Graph, Var};
use stwa_nn::layers::Linear;
use stwa_nn::ParamStore;
use stwa_tensor::{linalg, sparse, Result, SensorGraph, Tensor, TensorError};

/// Which sensor pairs the correlation attention scores.
///
/// `Dense` is the paper's Eq. 15–16 verbatim: every sensor attends
/// every sensor, O(N²). `Sparse` restricts attention to an explicit
/// [`SensorGraph`] neighbor list, O(N·k) — the city-scale path. A
/// complete graph (`k = N−1`, self included) makes the sparse path
/// bitwise identical to `Dense` on forward, backward, and frozen
/// inference, which is how the equivalence tests gate it. The graph is
/// `Arc`-shared so shard replicas and frozen snapshots reference one
/// copy.
#[derive(Debug, Clone, Default)]
pub enum SparsityMode {
    #[default]
    Dense,
    Sparse(Arc<SensorGraph>),
}

impl SparsityMode {
    /// The neighbor graph, when sparse.
    pub fn graph(&self) -> Option<&Arc<SensorGraph>> {
        match self {
            SparsityMode::Dense => None,
            SparsityMode::Sparse(g) => Some(g),
        }
    }
}

/// `B(h_i, h_j) = softmax_j( theta1(h_i)^T theta2(h_j) )`, followed by
/// `h̄_i = sum_j B(h_i, h_j) * h_j` — i.e. each sensor re-weights the
/// other sensors' window summaries by learned similarity.
pub struct SensorCorrelationAttention {
    /// Shared embedding transforms; absent when the layer always
    /// receives generated per-sensor transforms (Section IV-C variant),
    /// so no orphan parameters are registered.
    theta1: Option<Linear>,
    theta2: Option<Linear>,
    d: usize,
    mode: SparsityMode,
}

impl SensorCorrelationAttention {
    pub fn new(store: &ParamStore, name: &str, d: usize, rng: &mut impl Rng) -> Self {
        SensorCorrelationAttention {
            theta1: Some(Linear::new_no_bias(
                store,
                &format!("{name}.theta1"),
                d,
                d,
                rng,
            )),
            theta2: Some(Linear::new_no_bias(
                store,
                &format!("{name}.theta2"),
                d,
                d,
                rng,
            )),
            d,
            mode: SparsityMode::Dense,
        }
    }

    /// A variant with no shared transforms — every forward pass must go
    /// through [`SensorCorrelationAttention::forward_with`] with
    /// generated `theta1`/`theta2`.
    pub fn new_generated(d: usize) -> Self {
        SensorCorrelationAttention {
            theta1: None,
            theta2: None,
            d,
            mode: SparsityMode::Dense,
        }
    }

    /// Switch between dense and graph-restricted attention. Parameters
    /// are untouched — the mode only selects which pairs are scored.
    pub fn set_sparsity(&mut self, mode: SparsityMode) {
        self.mode = mode;
    }

    /// The active [`SparsityMode`] — read at freeze time so the
    /// inference mirror serves the same pair set.
    pub fn sparsity(&self) -> &SparsityMode {
        &self.mode
    }

    /// `h` is `[..., N, d]`; returns the correlated representation of the
    /// same shape. The attention (softmax) axis is the *source sensor*
    /// axis `j`.
    pub fn forward(&self, graph: &Graph, h: &Var) -> Result<Var> {
        let shape = h.shape();
        let rank = shape.len();
        if rank < 2 || shape[rank - 1] != self.d {
            return Err(TensorError::Invalid(format!(
                "SensorCorrelationAttention: expected [..., N, {}], got {shape:?}",
                self.d
            )));
        }
        let (Some(theta1), Some(theta2)) = (&self.theta1, &self.theta2) else {
            return Err(TensorError::Invalid(
                "SensorCorrelationAttention built for generated transforms \
                 requires forward_with"
                    .into(),
            ));
        };
        let _span = stwa_observe::span!("sensor_attention");
        let q = theta1.forward(graph, h)?; // [..., N, d]
        let k = theta2.forward(graph, h)?;
        let _ = rank;
        self.attend(&q, &k, h)
    }

    /// Eq. 15–16 with *generated* per-sensor embedding transforms — the
    /// option the paper sketches at the end of Section IV-C ("we can use
    /// the model parameters generation process ... to generate a
    /// distinct set of transformation matrices for each sensor").
    ///
    /// `h` is `[B, N, d]`; `t1`/`t2` are `[B, N, d, d]`.
    pub fn forward_with(&self, _graph: &Graph, h: &Var, t1: &Var, t2: &Var) -> Result<Var> {
        let shape = h.shape();
        if shape.len() != 3 || shape[2] != self.d {
            return Err(TensorError::Invalid(format!(
                "SensorCorrelationAttention::forward_with: expected [B, N, {}], got {shape:?}",
                self.d
            )));
        }
        let _span = stwa_observe::span!("sensor_attention");
        // Per-sensor projections: [B, N, 1, d] @ [B, N, d, d].
        let rows = h.unsqueeze(2)?;
        let q = rows.matmul(t1)?.squeeze(2)?; // [B, N, d]
        let k = rows.matmul(t2)?.squeeze(2)?;
        self.attend(&q, &k, h)
    }

    /// Eq. 15–16 core shared by both transform sources: softmax over the
    /// source-sensor axis of `q k^T / sqrt(d)`, then mix the raw window
    /// summaries. Scaling is a monotone logit rescaling that the softmax
    /// normalization absorbs; it only adds numerical headroom.
    ///
    /// Under [`SparsityMode::Sparse`] the same math runs as one fused
    /// O(N·k) tape entry restricted to the graph's neighbor pairs.
    fn attend(&self, q: &Var, k: &Var, h: &Var) -> Result<Var> {
        let scale = 1.0 / (self.d as f32).sqrt();
        match &self.mode {
            SparsityMode::Dense => {
                let scores = q.matmul_nt(k)?.mul_scalar(scale); // [..., N, N]
                let weights = scores.softmax(scores.shape().len() - 1)?;
                weights.matmul(h)
            }
            SparsityMode::Sparse(graph) => q.sparse_attend(k, h, graph, scale),
        }
    }

    /// Tape-free [`SensorCorrelationAttention::forward`]: identical
    /// kernels and order, no graph nodes.
    pub fn forward_nograd(&self, h: &Tensor) -> Result<Tensor> {
        let shape = h.shape();
        let rank = shape.len();
        if rank < 2 || shape[rank - 1] != self.d {
            return Err(TensorError::Invalid(format!(
                "SensorCorrelationAttention: expected [..., N, {}], got {shape:?}",
                self.d
            )));
        }
        let (Some(theta1), Some(theta2)) = (&self.theta1, &self.theta2) else {
            return Err(TensorError::Invalid(
                "SensorCorrelationAttention built for generated transforms \
                 requires forward_with"
                    .into(),
            ));
        };
        let _span = stwa_observe::span!("sensor_attention");
        let q = theta1.forward_nograd(h)?;
        let k = theta2.forward_nograd(h)?;
        self.attend_nograd(&q, &k, h)
    }

    /// Tape-free [`SensorCorrelationAttention::forward_with`]. `t1`/`t2`
    /// may carry any leading axes that broadcast against `[B, N]` under
    /// batched matmul — per-sensor `[N, d, d]` frozen transforms included.
    pub fn forward_with_nograd(&self, h: &Tensor, t1: &Tensor, t2: &Tensor) -> Result<Tensor> {
        let shape = h.shape();
        if shape.len() != 3 || shape[2] != self.d {
            return Err(TensorError::Invalid(format!(
                "SensorCorrelationAttention::forward_with: expected [B, N, {}], got {shape:?}",
                self.d
            )));
        }
        let _span = stwa_observe::span!("sensor_attention");
        let rows = h.unsqueeze(2)?;
        let q = linalg::matmul(&rows, t1)?.squeeze(2)?;
        let k = linalg::matmul(&rows, t2)?.squeeze(2)?;
        self.attend_nograd(&q, &k, h)
    }

    /// Tape-free twin of [`SensorCorrelationAttention::attend`].
    fn attend_nograd(&self, q: &Tensor, k: &Tensor, h: &Tensor) -> Result<Tensor> {
        let scale = 1.0 / (self.d as f32).sqrt();
        match &self.mode {
            SparsityMode::Dense => {
                let scores = linalg::matmul_nt(q, k)?.mul_scalar(scale);
                let weights = scores.softmax(scores.rank() - 1)?;
                linalg::matmul(&weights, h)
            }
            SparsityMode::Sparse(graph) => {
                Ok(sparse::sparse_attention_forward(q, k, h, graph, scale)?.0)
            }
        }
    }

    /// Shared embedding transforms, when present — read by the inference
    /// engine when packing frozen weights.
    pub fn shared_transforms(&self) -> (Option<&Linear>, Option<&Linear>) {
        (self.theta1.as_ref(), self.theta2.as_ref())
    }

    /// Feature width `d`.
    pub fn dim(&self) -> usize {
        self.d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stwa_tensor::Tensor;

    fn mk(d: usize) -> (ParamStore, SensorCorrelationAttention, StdRng) {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let sca = SensorCorrelationAttention::new(&store, "sca", d, &mut rng);
        (store, sca, rng)
    }

    #[test]
    fn preserves_shape() {
        let (_s, sca, mut rng) = mk(6);
        let g = Graph::new();
        let h = g.constant(Tensor::randn(&[3, 5, 6], &mut rng));
        let out = sca.forward(&g, &h).unwrap();
        assert_eq!(out.shape(), vec![3, 5, 6]);
    }

    #[test]
    fn output_is_convex_combination_of_sensors() {
        let (_s, sca, mut rng) = mk(4);
        let g = Graph::new();
        let h = g.constant(Tensor::randn(&[1, 6, 4], &mut rng));
        let out = sca.forward(&g, &h).unwrap();
        let hv = h.value();
        let ov = out.value();
        for c in 0..4 {
            let lo = (0..6)
                .map(|n| hv.at(&[0, n, c]))
                .fold(f32::INFINITY, f32::min);
            let hi = (0..6)
                .map(|n| hv.at(&[0, n, c]))
                .fold(f32::NEG_INFINITY, f32::max);
            for n in 0..6 {
                let v = ov.at(&[0, n, c]);
                assert!(v >= lo - 1e-5 && v <= hi + 1e-5);
            }
        }
    }

    #[test]
    fn identical_sensors_map_to_identical_outputs() {
        let (_s, sca, _rng) = mk(3);
        let g = Graph::new();
        let row = Tensor::from_vec(vec![1.0, -0.5, 2.0], &[3]).unwrap();
        let h = g.constant(row.broadcast_to(&[1, 4, 3]).unwrap());
        let out = sca.forward(&g, &h).unwrap();
        let ov = out.value();
        for n in 1..4 {
            for c in 0..3 {
                assert!((ov.at(&[0, n, c]) - ov.at(&[0, 0, c])).abs() < 1e-5);
            }
        }
        // And each output equals the (uniform) average = the shared row.
        for c in 0..3 {
            assert!((ov.at(&[0, 0, c]) - row.data()[c]).abs() < 1e-4);
        }
    }

    #[test]
    fn gradients_reach_both_embeddings() {
        let (store, sca, mut rng) = mk(4);
        let g = Graph::new();
        let h = g.constant(Tensor::randn(&[2, 3, 4], &mut rng));
        let loss = sca
            .forward(&g, &h)
            .unwrap()
            .square()
            .unwrap()
            .sum_all()
            .unwrap();
        g.backward(&loss).unwrap();
        assert!(store.params().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    fn wrong_feature_dim_rejected() {
        let (_s, sca, _r) = mk(4);
        let g = Graph::new();
        let h = g.constant(Tensor::zeros(&[1, 3, 5]));
        assert!(sca.forward(&g, &h).is_err());
    }

    #[test]
    fn complete_sparse_graph_matches_dense_bitwise() {
        for n in [1usize, 2, 5, 9] {
            let (store, mut sca, mut rng) = mk(4);
            let x = Tensor::randn(&[2, n, 4], &mut rng);

            let g = Graph::new();
            let h = g.constant(x.clone());
            let dense = sca.forward(&g, &h).unwrap();
            let loss = dense.square().unwrap().sum_all().unwrap();
            g.backward(&loss).unwrap();
            let dense_out = dense.value().data().to_vec();
            let dense_grads: Vec<Vec<f32>> = store
                .params()
                .iter()
                .map(|p| p.grad().unwrap().data().to_vec())
                .collect();

            sca.set_sparsity(SparsityMode::Sparse(Arc::new(SensorGraph::complete(n))));
            for p in store.params() {
                p.unbind();
            }
            let g2 = Graph::new();
            let h2 = g2.constant(x.clone());
            let sparse = sca.forward(&g2, &h2).unwrap();
            let loss2 = sparse.square().unwrap().sum_all().unwrap();
            g2.backward(&loss2).unwrap();

            assert_eq!(
                sparse.value().data(),
                &dense_out[..],
                "forward bits diverge at n={n}"
            );
            for (p, want) in store.params().iter().zip(&dense_grads) {
                assert_eq!(
                    p.grad().unwrap().data(),
                    &want[..],
                    "grad bits diverge at n={n}"
                );
            }

            // Tape-free path must agree with the training-graph forward too.
            assert_eq!(sca.forward_nograd(&x).unwrap().data(), &dense_out[..]);
        }
    }

    #[test]
    fn sparse_graph_restricts_mixing_to_neighbors() {
        let (_s, mut sca, mut rng) = mk(4);
        // Two disconnected cliques: {0, 1} and {2, 3}.
        let graph = SensorGraph::from_neighbor_lists(4, &[
            vec![0, 1],
            vec![0, 1],
            vec![2, 3],
            vec![2, 3],
        ])
        .unwrap();
        sca.set_sparsity(SparsityMode::Sparse(Arc::new(graph)));

        let base = Tensor::randn(&[1, 4, 4], &mut rng);
        let out_a = sca.forward_nograd(&base).unwrap();

        // Perturbing sensors in the other clique must not change rows 0-1.
        let mut data = base.data().to_vec();
        for v in &mut data[8..] {
            *v += 3.0;
        }
        let out_b = sca
            .forward_nograd(&Tensor::from_vec(data, &[1, 4, 4]).unwrap())
            .unwrap();
        assert_eq!(&out_a.data()[..8], &out_b.data()[..8]);
        assert_ne!(&out_a.data()[8..], &out_b.data()[8..]);
    }
}
