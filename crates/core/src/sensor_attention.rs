//! Sensor Correlation Attention (paper Section IV-C, Eq. 15–16):
//! embedded-Gaussian attention across the N sensors within a window.

use rand::Rng;
use stwa_autograd::{Graph, Var};
use stwa_nn::layers::Linear;
use stwa_nn::ParamStore;
use stwa_tensor::{linalg, Result, Tensor, TensorError};

/// `B(h_i, h_j) = softmax_j( theta1(h_i)^T theta2(h_j) )`, followed by
/// `h̄_i = sum_j B(h_i, h_j) * h_j` — i.e. each sensor re-weights the
/// other sensors' window summaries by learned similarity.
pub struct SensorCorrelationAttention {
    /// Shared embedding transforms; absent when the layer always
    /// receives generated per-sensor transforms (Section IV-C variant),
    /// so no orphan parameters are registered.
    theta1: Option<Linear>,
    theta2: Option<Linear>,
    d: usize,
}

impl SensorCorrelationAttention {
    pub fn new(store: &ParamStore, name: &str, d: usize, rng: &mut impl Rng) -> Self {
        SensorCorrelationAttention {
            theta1: Some(Linear::new_no_bias(
                store,
                &format!("{name}.theta1"),
                d,
                d,
                rng,
            )),
            theta2: Some(Linear::new_no_bias(
                store,
                &format!("{name}.theta2"),
                d,
                d,
                rng,
            )),
            d,
        }
    }

    /// A variant with no shared transforms — every forward pass must go
    /// through [`SensorCorrelationAttention::forward_with`] with
    /// generated `theta1`/`theta2`.
    pub fn new_generated(d: usize) -> Self {
        SensorCorrelationAttention {
            theta1: None,
            theta2: None,
            d,
        }
    }

    /// `h` is `[..., N, d]`; returns the correlated representation of the
    /// same shape. The attention (softmax) axis is the *source sensor*
    /// axis `j`.
    pub fn forward(&self, graph: &Graph, h: &Var) -> Result<Var> {
        let shape = h.shape();
        let rank = shape.len();
        if rank < 2 || shape[rank - 1] != self.d {
            return Err(TensorError::Invalid(format!(
                "SensorCorrelationAttention: expected [..., N, {}], got {shape:?}",
                self.d
            )));
        }
        let (Some(theta1), Some(theta2)) = (&self.theta1, &self.theta2) else {
            return Err(TensorError::Invalid(
                "SensorCorrelationAttention built for generated transforms \
                 requires forward_with"
                    .into(),
            ));
        };
        let _span = stwa_observe::span!("sensor_attention");
        let q = theta1.forward(graph, h)?; // [..., N, d]
        let k = theta2.forward(graph, h)?;
        let _ = rank;
        self.attend(&q, &k, h)
    }

    /// Eq. 15–16 with *generated* per-sensor embedding transforms — the
    /// option the paper sketches at the end of Section IV-C ("we can use
    /// the model parameters generation process ... to generate a
    /// distinct set of transformation matrices for each sensor").
    ///
    /// `h` is `[B, N, d]`; `t1`/`t2` are `[B, N, d, d]`.
    pub fn forward_with(&self, _graph: &Graph, h: &Var, t1: &Var, t2: &Var) -> Result<Var> {
        let shape = h.shape();
        if shape.len() != 3 || shape[2] != self.d {
            return Err(TensorError::Invalid(format!(
                "SensorCorrelationAttention::forward_with: expected [B, N, {}], got {shape:?}",
                self.d
            )));
        }
        let _span = stwa_observe::span!("sensor_attention");
        // Per-sensor projections: [B, N, 1, d] @ [B, N, d, d].
        let rows = h.unsqueeze(2)?;
        let q = rows.matmul(t1)?.squeeze(2)?; // [B, N, d]
        let k = rows.matmul(t2)?.squeeze(2)?;
        self.attend(&q, &k, h)
    }

    /// Eq. 15–16 core shared by both transform sources: softmax over the
    /// source-sensor axis of `q k^T / sqrt(d)`, then mix the raw window
    /// summaries. Scaling is a monotone logit rescaling that the softmax
    /// normalization absorbs; it only adds numerical headroom.
    fn attend(&self, q: &Var, k: &Var, h: &Var) -> Result<Var> {
        let scores = q
            .matmul_nt(k)?
            .mul_scalar(1.0 / (self.d as f32).sqrt()); // [..., N, N]
        let weights = scores.softmax(scores.shape().len() - 1)?;
        weights.matmul(h)
    }

    /// Tape-free [`SensorCorrelationAttention::forward`]: identical
    /// kernels and order, no graph nodes.
    pub fn forward_nograd(&self, h: &Tensor) -> Result<Tensor> {
        let shape = h.shape();
        let rank = shape.len();
        if rank < 2 || shape[rank - 1] != self.d {
            return Err(TensorError::Invalid(format!(
                "SensorCorrelationAttention: expected [..., N, {}], got {shape:?}",
                self.d
            )));
        }
        let (Some(theta1), Some(theta2)) = (&self.theta1, &self.theta2) else {
            return Err(TensorError::Invalid(
                "SensorCorrelationAttention built for generated transforms \
                 requires forward_with"
                    .into(),
            ));
        };
        let _span = stwa_observe::span!("sensor_attention");
        let q = theta1.forward_nograd(h)?;
        let k = theta2.forward_nograd(h)?;
        self.attend_nograd(&q, &k, h)
    }

    /// Tape-free [`SensorCorrelationAttention::forward_with`]. `t1`/`t2`
    /// may carry any leading axes that broadcast against `[B, N]` under
    /// batched matmul — per-sensor `[N, d, d]` frozen transforms included.
    pub fn forward_with_nograd(&self, h: &Tensor, t1: &Tensor, t2: &Tensor) -> Result<Tensor> {
        let shape = h.shape();
        if shape.len() != 3 || shape[2] != self.d {
            return Err(TensorError::Invalid(format!(
                "SensorCorrelationAttention::forward_with: expected [B, N, {}], got {shape:?}",
                self.d
            )));
        }
        let _span = stwa_observe::span!("sensor_attention");
        let rows = h.unsqueeze(2)?;
        let q = linalg::matmul(&rows, t1)?.squeeze(2)?;
        let k = linalg::matmul(&rows, t2)?.squeeze(2)?;
        self.attend_nograd(&q, &k, h)
    }

    /// Tape-free twin of [`SensorCorrelationAttention::attend`].
    fn attend_nograd(&self, q: &Tensor, k: &Tensor, h: &Tensor) -> Result<Tensor> {
        let scores = linalg::matmul_nt(q, k)?.mul_scalar(1.0 / (self.d as f32).sqrt());
        let weights = scores.softmax(scores.rank() - 1)?;
        linalg::matmul(&weights, h)
    }

    /// Shared embedding transforms, when present — read by the inference
    /// engine when packing frozen weights.
    pub fn shared_transforms(&self) -> (Option<&Linear>, Option<&Linear>) {
        (self.theta1.as_ref(), self.theta2.as_ref())
    }

    /// Feature width `d`.
    pub fn dim(&self) -> usize {
        self.d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stwa_tensor::Tensor;

    fn mk(d: usize) -> (ParamStore, SensorCorrelationAttention, StdRng) {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let sca = SensorCorrelationAttention::new(&store, "sca", d, &mut rng);
        (store, sca, rng)
    }

    #[test]
    fn preserves_shape() {
        let (_s, sca, mut rng) = mk(6);
        let g = Graph::new();
        let h = g.constant(Tensor::randn(&[3, 5, 6], &mut rng));
        let out = sca.forward(&g, &h).unwrap();
        assert_eq!(out.shape(), vec![3, 5, 6]);
    }

    #[test]
    fn output_is_convex_combination_of_sensors() {
        let (_s, sca, mut rng) = mk(4);
        let g = Graph::new();
        let h = g.constant(Tensor::randn(&[1, 6, 4], &mut rng));
        let out = sca.forward(&g, &h).unwrap();
        let hv = h.value();
        let ov = out.value();
        for c in 0..4 {
            let lo = (0..6)
                .map(|n| hv.at(&[0, n, c]))
                .fold(f32::INFINITY, f32::min);
            let hi = (0..6)
                .map(|n| hv.at(&[0, n, c]))
                .fold(f32::NEG_INFINITY, f32::max);
            for n in 0..6 {
                let v = ov.at(&[0, n, c]);
                assert!(v >= lo - 1e-5 && v <= hi + 1e-5);
            }
        }
    }

    #[test]
    fn identical_sensors_map_to_identical_outputs() {
        let (_s, sca, _rng) = mk(3);
        let g = Graph::new();
        let row = Tensor::from_vec(vec![1.0, -0.5, 2.0], &[3]).unwrap();
        let h = g.constant(row.broadcast_to(&[1, 4, 3]).unwrap());
        let out = sca.forward(&g, &h).unwrap();
        let ov = out.value();
        for n in 1..4 {
            for c in 0..3 {
                assert!((ov.at(&[0, n, c]) - ov.at(&[0, 0, c])).abs() < 1e-5);
            }
        }
        // And each output equals the (uniform) average = the shared row.
        for c in 0..3 {
            assert!((ov.at(&[0, 0, c]) - row.data()[c]).abs() < 1e-4);
        }
    }

    #[test]
    fn gradients_reach_both_embeddings() {
        let (store, sca, mut rng) = mk(4);
        let g = Graph::new();
        let h = g.constant(Tensor::randn(&[2, 3, 4], &mut rng));
        let loss = sca
            .forward(&g, &h)
            .unwrap()
            .square()
            .unwrap()
            .sum_all()
            .unwrap();
        g.backward(&loss).unwrap();
        assert!(store.params().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    fn wrong_feature_dim_rejected() {
        let (_s, sca, _r) = mk(4);
        let g = Graph::new();
        let h = g.constant(Tensor::zeros(&[1, 3, 5]));
        assert!(sca.forward(&g, &h).is_err());
    }
}
