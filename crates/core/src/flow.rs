//! Planar normalizing flows over the latent variables — the paper's
//! stated future work ("it is of interest to explore methods such as
//! normalizing flows for ... non-Gaussian stochastic variables",
//! Section VI), implemented here as an opt-in extension
//! ([`crate::StwaConfig::with_flow`]).
//!
//! Each planar layer transforms a latent `z ∈ R^k` as
//!
//! ```text
//! z' = z + u * tanh(w · z + b)
//! log |det ∂z'/∂z| = ln |1 + (1 - tanh^2(w·z + b)) (u · w)|
//! ```
//!
//! (Rezende & Mohamed, 2015). With flows active, the analytic Gaussian
//! KL of Eq. 20 is replaced by a single-sample Monte-Carlo estimate
//!
//! ```text
//! KL ≈ log q0(theta0) - Σ log|det J| - log p(theta_K)
//! ```
//!
//! where `q0` is the (still Gaussian) base posterior, `theta_K` the
//! flowed sample, and `p = N(0, I)` the prior.

use rand::Rng;
use stwa_autograd::{Graph, Var};
use stwa_nn::{init, Param, ParamStore};
use stwa_tensor::{linalg, Result, Tensor, TensorError};

/// One planar flow layer with learnable `u, w ∈ R^k`, `b ∈ R`.
struct PlanarLayer {
    u: Param,
    w: Param,
    b: Param,
}

/// A stack of planar flow layers sharing a latent dimension `k`.
pub struct FlowStack {
    layers: Vec<PlanarLayer>,
    k: usize,
}

impl FlowStack {
    pub fn new(store: &ParamStore, name: &str, k: usize, depth: usize, rng: &mut impl Rng) -> Self {
        assert!(depth >= 1, "FlowStack: depth must be >= 1");
        let layers = (0..depth)
            .map(|l| PlanarLayer {
                // Small init keeps the initial flow near the identity, so
                // training starts from the plain-Gaussian behaviour.
                u: store.param(format!("{name}.u{l}"), init::normal(&[k], 0.05, rng)),
                w: store.param(format!("{name}.w{l}"), init::normal(&[k], 0.05, rng)),
                b: store.param(format!("{name}.b{l}"), init::zeros(&[1])),
            })
            .collect();
        FlowStack { layers, k }
    }

    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Transform `z` of shape `[..., k]` (rank >= 2 — batched matmul
    /// treats the second-to-last axis as rows); returns the flowed latent
    /// and the accumulated `Σ log |det J|` of shape `[..., 1]`.
    pub fn forward(&self, graph: &Graph, z: &Var) -> Result<(Var, Var)> {
        let shape = z.shape();
        let rank = shape.len();
        if rank < 2 || shape[rank - 1] != self.k {
            return Err(TensorError::Invalid(format!(
                "FlowStack: expected rank >= 2 with last dim {}, got {shape:?}",
                self.k
            )));
        }
        let mut current = z.clone();
        let mut logdet_sum: Option<Var> = None;
        for layer in &self.layers {
            let u_raw = layer.u.leaf(graph); // [k]
            let w = layer.w.leaf(graph); // [k]
            let b = layer.b.leaf(graph); // [1]
                                         // Invertibility (Rezende & Mohamed, appendix): constrain
                                         // u·w >= -1 by reparameterizing
                                         //   u_hat = u + (m(u·w) - u·w) * w / ||w||^2,
                                         //   m(x)  = -1 + softplus(x) = -1 + ln(1 + e^x) > -1.
                                         // Without this, training can push a layer non-invertible and
                                         // the "density" the MC-KL estimates stops being one.
            let w_row = w.reshape(&[1, self.k])?;
            let u_col = u_raw.reshape(&[self.k, 1])?;
            let uw = w_row.matmul(&u_col)?.reshape(&[1])?; // scalar u·w
            let softplus = uw.exp().add_scalar(1.0).ln();
            let m_uw = softplus.add_scalar(-1.0);
            let w_norm_sq = w_row.matmul(&w.reshape(&[self.k, 1])?)?.reshape(&[1])?;
            let coeff = m_uw.sub(&uw)?.div(&w_norm_sq.add_scalar(1e-8))?; // [1]
            let u = u_raw.add(&coeff.mul(&w)?)?; // [k] via broadcasting
                                                 // w · z per row: [..., k] @ [k, 1] -> [..., 1].
                                                 // w . z per row: batched matmul broadcasts [k, 1] over the
                                                 // leading axes, so no manual flattening is needed.
            let w_col = w.reshape(&[self.k, 1])?;
            let pre = current.matmul(&w_col)?.add(&b)?; // [..., 1]
            let t = pre.tanh();
            // z' = z + u * t  (u broadcasts over rows, t over features).
            let step = t.mul(&u)?; // [..., k] via broadcasting
            current = current.add(&step)?;
            // log|det| = ln(1 + (1 - t^2)(u_hat · w)); with the u_hat
            // constraint the argument is strictly positive, the abs is
            // only float-safety.
            let u_dot_w = u.reshape(&[1, self.k])?.matmul(&w_col)?.reshape(&[1])?;
            let psi = t.square()?.neg().add_scalar(1.0); // [..., 1]
            let inner = psi.mul(&u_dot_w)?.add_scalar(1.0);
            let logdet = inner.abs().add_scalar(1e-6).ln();
            logdet_sum = Some(match logdet_sum {
                None => logdet,
                Some(acc) => acc.add(&logdet)?,
            });
        }
        Ok((current, logdet_sum.expect("depth >= 1")))
    }

    /// Tape-free transform: the same `z'` arithmetic as
    /// [`FlowStack::forward`] on plain tensors, with the log-determinant
    /// terms skipped — they feed only the KL, which eval never computes,
    /// and their arithmetic never touches `current`, so dropping them
    /// leaves the transformed latent bitwise identical.
    pub fn transform_nograd(&self, z: &Tensor) -> Result<Tensor> {
        let shape = z.shape();
        let rank = shape.len();
        if rank < 2 || shape[rank - 1] != self.k {
            return Err(TensorError::Invalid(format!(
                "FlowStack: expected rank >= 2 with last dim {}, got {shape:?}",
                self.k
            )));
        }
        let mut current = z.clone();
        for layer in &self.layers {
            let (u, w_col, b) = layer.constrained_nograd(self.k)?;
            let pre = linalg::matmul(&current, &w_col)?.add(&b)?;
            let t = pre.tanh();
            let step = t.mul(&u)?;
            current = current.add(&step)?;
        }
        Ok(current)
    }

    /// Per-layer frozen flow constants for the inference engine: the
    /// constrained `u_hat` (`[k]`), the column weight (`[k, 1]`), and the
    /// bias (`[1]`). These depend only on parameters, so a frozen session
    /// computes them once; per request only `matmul / add / tanh / mul /
    /// add` remain.
    pub fn frozen_layers_nograd(&self) -> Result<Vec<(Tensor, Tensor, Tensor)>> {
        self.layers
            .iter()
            .map(|layer| layer.constrained_nograd(self.k))
            .collect()
    }
}

impl PlanarLayer {
    /// The invertibility-constrained `u_hat`, plus `w` as a `[k, 1]`
    /// column and the bias — the identical tensor expressions the graph
    /// path evaluates, so downstream arithmetic stays bitwise equal.
    fn constrained_nograd(&self, k: usize) -> Result<(Tensor, Tensor, Tensor)> {
        let u_raw = self.u.value(); // [k]
        let w = self.w.value(); // [k]
        let b = self.b.value(); // [1]
        let w_row = w.reshape(&[1, k])?;
        let u_col = u_raw.reshape(&[k, 1])?;
        let uw = linalg::matmul(&w_row, &u_col)?.reshape(&[1])?;
        let softplus = uw.exp().add_scalar(1.0).ln();
        let m_uw = softplus.add_scalar(-1.0);
        let w_norm_sq = linalg::matmul(&w_row, &w.reshape(&[k, 1])?)?.reshape(&[1])?;
        let coeff = m_uw.sub(&uw)?.div(&w_norm_sq.add_scalar(1e-8))?;
        let u = u_raw.add(&coeff.mul(&w)?)?;
        let w_col = w.reshape(&[k, 1])?;
        Ok((u, w_col, b))
    }
}

/// Single-sample Monte-Carlo KL of a flowed Gaussian against `N(0, I)`:
///
/// `theta0` is the base sample from `N(mu, diag(var))`, `theta_k` the
/// flowed sample, `logdet` the accumulated jacobian terms (`[..., 1]`).
/// Returns a scalar (mean over all latent coordinates).
pub fn flow_kl(theta0: &Var, mu: &Var, var: &Var, theta_k: &Var, logdet: &Var) -> Result<Var> {
    // log q0 (up to the 2π constant that cancels against log p):
    //   -0.5 * (ln var + (theta0 - mu)^2 / var), summed over k.
    // `mu`/`var` may be lower-rank than `theta0` (spatial-only moments
    // are [N, k] against a [B, N, k] sample); the sum axis must be the
    // latent axis of the *broadcast* term, so it is taken from the term
    // itself rather than from `var`.
    let dev2 = theta0.sub(mu)?.square()?;
    let term = var.ln().add(&dev2.div(var)?)?;
    let log_q0 = term.sum_axis(last_axis(&term), true)?.mul_scalar(-0.5);
    // log p(theta_K) = -0.5 * theta_K^2 summed over k.
    let log_p = theta_k
        .square()?
        .sum_axis(last_axis(theta_k), true)?
        .mul_scalar(-0.5);
    // KL_mc = log q0 - logdet - log p, averaged over rows; normalize by
    // k so the magnitude matches the analytic KL's mean-per-coordinate
    // convention used elsewhere in the loss.
    let k = theta0.shape()[theta0.shape().len() - 1] as f32;
    log_q0
        .sub(logdet)?
        .sub(&log_p)?
        .mul_scalar(1.0 / k)
        .mean_all()
}

fn last_axis(v: &Var) -> usize {
    v.shape().len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stwa_autograd::check_gradient;
    use stwa_tensor::Tensor;

    #[test]
    fn identity_at_zero_u() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let flow = FlowStack::new(&store, "f", 4, 2, &mut rng);
        // Zero out u AND w: u_hat collapses to 0 (coeff * w = 0), so the
        // transform is the identity with logdet 0.
        for p in store.params() {
            if p.name().contains(".u") || p.name().contains(".w") {
                p.set_value(Tensor::zeros(&[4]));
            }
        }
        let g = Graph::new();
        let z = g.constant(Tensor::randn(&[3, 4], &mut rng));
        let (out, logdet) = flow.forward(&g, &z).unwrap();
        assert!(out.value().approx_eq(&z.value(), 1e-6));
        assert!(logdet.value().abs().max_all() < 1e-4);
    }

    #[test]
    fn output_shapes_any_rank() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let flow = FlowStack::new(&store, "f", 8, 3, &mut rng);
        let g = Graph::new();
        let z = g.constant(Tensor::randn(&[2, 5, 8], &mut rng));
        let (out, logdet) = flow.forward(&g, &z).unwrap();
        assert_eq!(out.shape(), vec![2, 5, 8]);
        assert_eq!(logdet.shape(), vec![2, 5, 1]);
        let bad = g.constant(Tensor::zeros(&[2, 5, 7]));
        assert!(flow.forward(&g, &bad).is_err());
    }

    #[test]
    fn logdet_matches_numeric_jacobian() {
        // For k=1 the planar flow is scalar: z' = z + u tanh(wz + b);
        // dz'/dz = 1 + u w (1 - tanh^2(wz+b)). Verify logdet exactly.
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let flow = FlowStack::new(&store, "f", 1, 1, &mut rng);
        let (u, w, b) = (0.7f32, -0.4f32, 0.2f32);
        store.params()[0].set_value(Tensor::from_vec(vec![u], &[1]).unwrap());
        store.params()[1].set_value(Tensor::from_vec(vec![w], &[1]).unwrap());
        store.params()[2].set_value(Tensor::from_vec(vec![b], &[1]).unwrap());
        let g = Graph::new();
        let z0 = 0.9f32;
        let z = g.constant(Tensor::from_vec(vec![z0], &[1, 1]).unwrap());
        let (out, logdet) = flow.forward(&g, &z).unwrap();
        // Mirror the u_hat reparameterization independently:
        // u_hat = u + (softplus(uw) - 1 - uw) * w / (w^2 + eps).
        let uw = u * w;
        let m_uw = -1.0 + (1.0 + uw.exp()).ln();
        let u_hat = u + (m_uw - uw) * w / (w * w + 1e-8);
        let t = (w * z0 + b).tanh();
        assert!(
            (out.value().data()[0] - (z0 + u_hat * t)).abs() < 1e-4,
            "{} vs {}",
            out.value().data()[0],
            z0 + u_hat * t
        );
        let expect = (1.0 + u_hat * w * (1.0 - t * t)).abs().ln();
        assert!((logdet.value().data()[0] - expect).abs() < 1e-4);
        // The constraint itself: u_hat . w >= -1 guarantees a positive
        // Jacobian argument for any t in (-1, 1).
        assert!(u_hat * w > -1.0);
    }

    #[test]
    fn transform_nograd_bitwise_matches_graph_forward() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(8);
        let flow = FlowStack::new(&store, "f", 6, 3, &mut rng);
        let z = Tensor::randn(&[2, 5, 6], &mut rng);
        let g = Graph::new();
        let (graph_out, _) = flow.forward(&g, &g.constant(z.clone())).unwrap();
        let nograd_out = flow.transform_nograd(&z).unwrap();
        assert_eq!(graph_out.value().data(), nograd_out.data());
    }

    #[test]
    fn flow_gradients_match_numeric() {
        let z = Tensor::rand_uniform(&[2, 3], -1.0, 1.0, &mut StdRng::seed_from_u64(3));
        let report = check_gradient(&z, 1e-2, |v| {
            let store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(4);
            let flow = FlowStack::new(&store, "f", 3, 2, &mut rng);
            let (out, logdet) = flow.forward(v.graph(), v)?;
            out.square()?.mean_all()?.add(&logdet.mean_all()?)
        })
        .unwrap();
        assert!(report.passes(4e-2), "{report:?}");
    }

    #[test]
    fn flow_kl_broadcasts_lower_rank_moments() {
        // Spatial-only case: moments are [N, k], the sample [B, N, k].
        // The reduction must run over k (the last axis of the broadcast
        // term), not over N.
        let g = Graph::new();
        let (b_sz, n, k) = (2usize, 3usize, 4usize);
        let mu = g.constant(Tensor::zeros(&[n, k]));
        let var = g.constant(Tensor::ones(&[n, k]));
        let theta0 = g.constant(Tensor::zeros(&[b_sz, n, k]));
        let logdet = g.constant(Tensor::zeros(&[b_sz, n, 1]));
        // At the prior (mu=0, var=1, theta=0) the MC-KL is exactly 0.
        let kl = flow_kl(&theta0, &mu, &var, &theta0, &logdet)
            .unwrap()
            .value()
            .item()
            .unwrap();
        assert!(kl.abs() < 1e-6, "KL at prior should be 0, got {kl}");
        // Off the prior, the value must match the hand formula
        // mean over k of 0.5 * (theta_k^2 - ln var - dev^2/var)... with
        // var = 1, dev = theta0: 0.5 * mean(theta_k^2 - theta0^2) = 0
        // when theta_k = theta0; use distinct theta_k to see a value.
        let theta_k = g.constant(Tensor::full(&[b_sz, n, k], 2.0));
        let kl2 = flow_kl(&theta0, &mu, &var, &theta_k, &logdet)
            .unwrap()
            .value()
            .item()
            .unwrap();
        assert!((kl2 - 2.0).abs() < 1e-5, "0.5 * 2^2 = 2, got {kl2}");
    }

    #[test]
    fn flow_kl_reduces_to_gaussian_kl_at_identity() {
        // With an identity flow (u = 0), the MC-KL estimator evaluated
        // at theta0 = mu equals the analytic KL at that point:
        // KL_point = 0.5 * mean(-ln var - 0 + mu^2) ... compare against
        // the direct formula.
        let g = Graph::new();
        let mu_t = Tensor::from_vec(vec![0.5, -0.3], &[1, 2]).unwrap();
        let var_t = Tensor::from_vec(vec![0.8, 1.2], &[1, 2]).unwrap();
        let mu = g.constant(mu_t.clone());
        let var = g.constant(var_t.clone());
        let theta0 = g.constant(mu_t.clone()); // sample at the mean
        let logdet = g.constant(Tensor::zeros(&[1, 1]));
        let kl = flow_kl(&theta0, &mu, &var, &theta0, &logdet)
            .unwrap()
            .value()
            .item()
            .unwrap();
        // Manual: mean over k of 0.5 * (-ln var + mu^2).
        let expect: f32 = (0..2)
            .map(|i| 0.5 * (-var_t.data()[i].ln() + mu_t.data()[i].powi(2)))
            .sum::<f32>()
            / 2.0;
        assert!((kl - expect).abs() < 1e-5, "{kl} vs {expect}");
    }
}
