//! The Spatio-Temporal Aware Model Parameter Generator
//! (paper Section IV-A.3 and Figure 5).
//!
//! [`StGenerator`] owns the latent machinery ([`crate::latent`]) and one
//! [`ParamDecoder`] per attention layer; its
//! [`StGenerator::generate`] returns per-sensor, time-varying `K`/`V`
//! projection tensors for every layer, plus the analytic KL regularizer
//! of Eq. 20.
//!
//! Parameter-count accounting (paper Section IV-A.3): the naive
//! per-sensor projections cost `O(N * d^2)`; here the per-sensor cost is
//! only the latent means/log-variances `O(N * k)` while the decoder
//! (`O(k*m1 + m1*m2 + m2*d^2)`) is shared across sensors.

use crate::flow::{flow_kl, FlowStack};
use crate::latent::{GaussianSample, LatentMode, SpatialLatent, TemporalEncoder};
use rand::Rng;
use stwa_autograd::{Graph, Var};
use stwa_nn::layers::{Activation, Mlp};
use stwa_nn::ParamStore;
use stwa_tensor::{Result, Tensor, TensorError};

/// The shared decoder `D_omega` (Eq. 8): a small MLP from the latent
/// space to a flat parameter vector, reshaped by the caller.
pub struct ParamDecoder {
    mlp: Mlp,
    k: usize,
    out_elems: usize,
}

impl ParamDecoder {
    /// `hidden = (m1, m2)` mirrors the paper's 3-layer decoder.
    pub fn new(
        store: &ParamStore,
        name: &str,
        k: usize,
        hidden: (usize, usize),
        out_elems: usize,
        rng: &mut impl Rng,
    ) -> ParamDecoder {
        ParamDecoder {
            mlp: Mlp::new(
                store,
                name,
                &[k, hidden.0, hidden.1, out_elems],
                &[Activation::Relu, Activation::Relu, Activation::Identity],
                rng,
            ),
            k,
            out_elems,
        }
    }

    /// Seed the decoder's output bias with `values` so the *initial*
    /// generated parameters match a conventionally initialized layer
    /// (e.g. Xavier-scaled projections). Without this, generated
    /// projections start near zero — poorly conditioned compared to the
    /// shared-parameter baselines they are meant to replace — and the
    /// ST-aware variants train visibly slower.
    pub fn seed_output_bias(&self, values: stwa_tensor::Tensor) {
        let bias = self
            .mlp
            .last_layer()
            .bias_param()
            .expect("decoder layers carry biases");
        bias.set_value(values);
    }

    pub fn out_elems(&self) -> usize {
        self.out_elems
    }

    /// Decode `theta` `[..., k]` into `[..., out_elems]`.
    pub fn forward(&self, graph: &Graph, theta: &Var) -> Result<Var> {
        if theta.shape().last() != Some(&self.k) {
            return Err(TensorError::Invalid(format!(
                "ParamDecoder: expected latent dim {}, got {:?}",
                self.k,
                theta.shape()
            )));
        }
        self.mlp.forward(graph, theta)
    }

    /// Tape-free [`ParamDecoder::forward`].
    pub fn forward_nograd(&self, theta: &Tensor) -> Result<Tensor> {
        if theta.shape().last() != Some(&self.k) {
            return Err(TensorError::Invalid(format!(
                "ParamDecoder: expected latent dim {}, got {:?}",
                self.k,
                theta.shape()
            )));
        }
        self.mlp.forward_nograd(theta)
    }

    /// The decoder MLP — read when packing frozen inference weights.
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }
}

/// Per-layer generated projections: `K_t^(i)` and `V_t^(i)`, each of
/// shape `[B, N, F_l, d]`, plus (optionally) the sensor-correlation
/// transforms `theta1/theta2` of shape `[B, N, d, d]` (Section IV-C's
/// generated variant).
pub struct GeneratedProjections {
    pub k_proj: Var,
    pub v_proj: Var,
    pub sca_transforms: Option<(Var, Var)>,
}

/// Everything one forward pass needs from the generator.
pub struct GeneratedParams {
    pub layers: Vec<GeneratedProjections>,
    /// Eq. 20's `D_KL[Theta_t || N(0, I)]`, present when the latents are
    /// stochastic.
    pub kl: Option<Var>,
}

/// Tape-free twin of [`GeneratedProjections`]: plain tensors, no graph.
pub struct GeneratedTensors {
    pub k_proj: Tensor,
    pub v_proj: Tensor,
    pub sca_transforms: Option<(Tensor, Tensor)>,
}

/// Configuration of which latent pieces are active — the paper's
/// S-aware / T-aware / ST-aware spectrum (Tables IV, VII, VIII).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AwarenessFlags {
    pub spatial: bool,
    pub temporal: bool,
}

impl AwarenessFlags {
    pub fn st_aware() -> Self {
        AwarenessFlags {
            spatial: true,
            temporal: true,
        }
    }
    pub fn s_aware() -> Self {
        AwarenessFlags {
            spatial: true,
            temporal: false,
        }
    }
    pub fn t_aware() -> Self {
        AwarenessFlags {
            spatial: false,
            temporal: true,
        }
    }
}

/// The full generator: latents + one decoder per target layer.
pub struct StGenerator {
    spatial: Option<SpatialLatent>,
    temporal: Option<TemporalEncoder>,
    decoders: Vec<ParamDecoder>,
    /// Optional normalizing flow over `Theta` (the paper's future-work
    /// extension); replaces the analytic KL with a Monte-Carlo estimate.
    flow: Option<FlowStack>,
    /// Optional per-layer decoders for generated sensor-correlation
    /// transforms (Section IV-C).
    sca_decoders: Option<Vec<ParamDecoder>>,
    /// `(F_l, d)` for each layer, in layer order.
    layer_dims: Vec<(usize, usize)>,
    mode: LatentMode,
    n: usize,
}

impl StGenerator {
    /// `layer_dims` lists `(input_feature_dim, d)` for each attention
    /// layer whose `K`/`V` this generator supplies.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &ParamStore,
        name: &str,
        flags: AwarenessFlags,
        mode: LatentMode,
        n: usize,
        h: usize,
        f: usize,
        k: usize,
        decoder_hidden: (usize, usize),
        layer_dims: &[(usize, usize)],
        flow_depth: Option<usize>,
        generated_sca: bool,
        rng: &mut impl Rng,
    ) -> StGenerator {
        assert!(
            flags.spatial || flags.temporal,
            "StGenerator needs at least one of spatial/temporal awareness"
        );
        let spatial = flags
            .spatial
            .then(|| SpatialLatent::new(store, &format!("{name}.z"), n, k, rng));
        let temporal = flags
            .temporal
            .then(|| TemporalEncoder::new(store, &format!("{name}.enc"), h, f, 32, k, rng));
        let decoders: Vec<ParamDecoder> = layer_dims
            .iter()
            .enumerate()
            .map(|(l, &(fl, d))| {
                let dec = ParamDecoder::new(
                    store,
                    &format!("{name}.dec{l}"),
                    k,
                    decoder_hidden,
                    2 * fl * d,
                    rng,
                );
                // Start every sensor from Xavier-scale K/V (see
                // `seed_output_bias`); the decoder weights then learn
                // per-sensor, per-time deltas around it.
                dec.seed_output_bias(crate::generator::xavier_flat(2, fl, d, rng));
                dec
            })
            .collect();
        let flow =
            flow_depth.map(|depth| FlowStack::new(store, &format!("{name}.flow"), k, depth, rng));
        let sca_decoders = generated_sca.then(|| {
            layer_dims
                .iter()
                .enumerate()
                .map(|(l, &(_fl, d))| {
                    let dec = ParamDecoder::new(
                        store,
                        &format!("{name}.sca{l}"),
                        k,
                        decoder_hidden,
                        2 * d * d,
                        rng,
                    );
                    dec.seed_output_bias(xavier_flat(2, d, d, rng));
                    dec
                })
                .collect()
        });
        StGenerator {
            spatial,
            temporal,
            decoders,
            flow,
            sca_decoders,
            layer_dims: layer_dims.to_vec(),
            mode,
            n,
        }
    }

    /// Whether the generator is temporal-aware.
    pub fn is_temporal(&self) -> bool {
        self.temporal.is_some()
    }

    /// The learned spatial means (Fig. 9(b) visualization), if spatial.
    pub fn spatial_means(&self) -> Option<stwa_tensor::Tensor> {
        self.spatial.as_ref().map(|s| s.means())
    }

    /// Sample `Theta_t = z + z_t` and decode per-layer projections.
    ///
    /// `x` is the normalized recent window `[B, N, H, F]` (the encoder's
    /// conditioning input).
    pub fn generate(&self, graph: &Graph, x: &Var, rng: &mut impl Rng) -> Result<GeneratedParams> {
        self.generate_with_mode(graph, x, rng, self.mode)
    }

    /// [`StGenerator::generate`] with an explicit latent mode — the
    /// trainer passes `Deterministic` at evaluation time so predictions
    /// use the posterior means instead of a random draw.
    pub fn generate_with_mode(
        &self,
        graph: &Graph,
        x: &Var,
        rng: &mut impl Rng,
        mode: LatentMode,
    ) -> Result<GeneratedParams> {
        let shape = x.shape();
        let (b, n) = (shape[0], shape[1]);
        if n != self.n {
            return Err(TensorError::Invalid(format!(
                "StGenerator: built for N={}, got N={n}",
                self.n
            )));
        }
        let _span = stwa_observe::span!("generator");

        let latent_span = stwa_observe::span!("latent");
        let s_sample: Option<GaussianSample> = match &self.spatial {
            Some(s) => Some(s.sample(graph, mode, rng)?),
            None => None,
        };
        let t_sample: Option<GaussianSample> = match &self.temporal {
            Some(t) => Some(t.sample(graph, x, mode, rng)?),
            None => None,
        };
        drop(latent_span);

        // Theta_t^(i) = z^(i) + z_t^(i) (Eq. 4), in [B, N, k].
        let theta0 = combine_theta(s_sample.as_ref(), t_sample.as_ref(), b, self.n)?;

        // Optionally flow Theta to a non-Gaussian posterior (future-work
        // extension); the KL then comes from the flow's MC estimator.
        let (theta, kl_override) = match &self.flow {
            None => (theta0, None),
            Some(flow) => {
                let (theta_k, logdet) = flow.forward(graph, &theta0)?;
                let kl = if mode == LatentMode::Stochastic {
                    let (mu_c, var_c) =
                        combined_moments(s_sample.as_ref(), t_sample.as_ref(), b, self.n)?;
                    Some(flow_kl(&theta0, &mu_c, &var_c, &theta_k, &logdet)?)
                } else {
                    None
                };
                (theta_k, kl)
            }
        };

        // Decode each layer's K/V (and optionally theta1/theta2).
        let decoder_span = stwa_observe::span!("decoder");
        let mut layers = Vec::with_capacity(self.decoders.len());
        for (l, (dec, &(fl, d))) in self.decoders.iter().zip(&self.layer_dims).enumerate() {
            let flat = dec.forward(graph, &theta)?; // [B, N, 2*fl*d]
            let kv = flat.reshape(&[b, self.n, 2, fl, d])?;
            let k_proj = kv.narrow(2, 0, 1)?.squeeze(2)?;
            let v_proj = kv.narrow(2, 1, 1)?.squeeze(2)?;
            let sca_transforms = match &self.sca_decoders {
                None => None,
                Some(decs) => {
                    let flat = decs[l].forward(graph, &theta)?; // [B, N, 2*d*d]
                    let pair = flat.reshape(&[b, self.n, 2, d, d])?;
                    Some((
                        pair.narrow(2, 0, 1)?.squeeze(2)?,
                        pair.narrow(2, 1, 1)?.squeeze(2)?,
                    ))
                }
            };
            layers.push(GeneratedProjections {
                k_proj,
                v_proj,
                sca_transforms,
            });
        }
        drop(decoder_span);

        // Analytic KL of Theta (sum of independent Gaussians) vs N(0, I),
        // unless the flow already produced its MC estimate.
        let kl = match (&self.flow, mode) {
            (Some(_), _) => kl_override,
            (None, LatentMode::Stochastic) => Some(combined_kl(
                s_sample.as_ref(),
                t_sample.as_ref(),
                b,
                self.n,
            )?),
            (None, LatentMode::Deterministic) => None,
        };

        Ok(GeneratedParams { layers, kl })
    }

    /// Tape-free eval-mode generation: latents collapse to their means
    /// (exactly what the graph path does with `Deterministic`), the flow
    /// transform is applied without its log-determinant bookkeeping, and
    /// the dead logvar head is skipped. Decoding runs the same kernels
    /// in the same order as the graph path, so every projection is
    /// bitwise identical to `generate_with_mode(.., Deterministic)`.
    pub fn generate_nograd(&self, x: &Tensor) -> Result<Vec<GeneratedTensors>> {
        let shape = x.shape();
        let (b, n) = (shape[0], shape[1]);
        if n != self.n {
            return Err(TensorError::Invalid(format!(
                "StGenerator: built for N={}, got N={n}",
                self.n
            )));
        }
        let _span = stwa_observe::span!("generator");

        let latent_span = stwa_observe::span!("latent");
        let s_mean: Option<Tensor> = self.spatial.as_ref().map(|s| s.means());
        let t_mean: Option<Tensor> = match &self.temporal {
            Some(t) => Some(t.encode_mean_nograd(x)?),
            None => None,
        };
        drop(latent_span);

        let theta0 = match (&s_mean, &t_mean) {
            (Some(s), Some(t)) => s.unsqueeze(0)?.broadcast_to(t.shape())?.add(t)?,
            (Some(s), None) => {
                let k = s.shape()[1];
                s.unsqueeze(0)?.broadcast_to(&[b, n, k])?
            }
            (None, Some(t)) => t.clone(),
            (None, None) => {
                return Err(TensorError::Invalid(
                    "combine_theta: need at least one latent".into(),
                ))
            }
        };
        let theta = match &self.flow {
            None => theta0,
            Some(flow) => flow.transform_nograd(&theta0)?,
        };

        let decoder_span = stwa_observe::span!("decoder");
        let mut layers = Vec::with_capacity(self.decoders.len());
        for (l, (dec, &(fl, d))) in self.decoders.iter().zip(&self.layer_dims).enumerate() {
            let flat = dec.forward_nograd(&theta)?; // [B, N, 2*fl*d]
            let kv = flat.reshape(&[b, self.n, 2, fl, d])?;
            let k_proj = kv.narrow(2, 0, 1)?.squeeze(2)?;
            let v_proj = kv.narrow(2, 1, 1)?.squeeze(2)?;
            let sca_transforms = match &self.sca_decoders {
                None => None,
                Some(decs) => {
                    let flat = decs[l].forward_nograd(&theta)?; // [B, N, 2*d*d]
                    let pair = flat.reshape(&[b, self.n, 2, d, d])?;
                    Some((
                        pair.narrow(2, 0, 1)?.squeeze(2)?,
                        pair.narrow(2, 1, 1)?.squeeze(2)?,
                    ))
                }
            };
            layers.push(GeneratedTensors {
                k_proj,
                v_proj,
                sca_transforms,
            });
        }
        drop(decoder_span);
        Ok(layers)
    }

    /// The spatial latent, when spatially aware.
    pub fn spatial(&self) -> Option<&SpatialLatent> {
        self.spatial.as_ref()
    }

    /// The temporal encoder, when temporally aware.
    pub fn temporal(&self) -> Option<&TemporalEncoder> {
        self.temporal.as_ref()
    }

    /// Per-layer K/V decoders, in layer order.
    pub fn decoders(&self) -> &[ParamDecoder] {
        &self.decoders
    }

    /// Per-layer sensor-correlation decoders, when generated SCA is on.
    pub fn sca_decoders(&self) -> Option<&[ParamDecoder]> {
        self.sca_decoders.as_deref()
    }

    /// The latent flow, when configured.
    pub fn flow(&self) -> Option<&FlowStack> {
        self.flow.as_ref()
    }

    /// `(F_l, d)` per layer, in layer order.
    pub fn layer_dims(&self) -> &[(usize, usize)] {
        &self.layer_dims
    }
}

/// Xavier-scale flat initialization for `count` stacked `[fan_in, fan_out]`
/// projection matrices (used to seed decoder output biases). Thin wrapper
/// over [`stwa_nn::init::xavier_uniform`] with a flattened shape.
pub(crate) fn xavier_flat(
    count: usize,
    fan_in: usize,
    fan_out: usize,
    rng: &mut impl Rng,
) -> stwa_tensor::Tensor {
    stwa_nn::init::xavier_uniform(&[count * fan_in * fan_out], fan_in, fan_out, rng)
}

/// `Theta_t = z + z_t` (Eq. 4): broadcast the `[N, k]` spatial sample over
/// the batch and add the `[B, N, k]` temporal sample. Either side may be
/// absent (S-only / T-only awareness) but not both.
pub fn combine_theta(
    s: Option<&GaussianSample>,
    t: Option<&GaussianSample>,
    b: usize,
    n: usize,
) -> Result<Var> {
    match (s, t) {
        (Some(s), Some(t)) => {
            let zs = s.z.unsqueeze(0)?; // [1, N, k]
            zs.broadcast_to(&t.z.shape())?.add(&t.z)
        }
        (Some(s), None) => {
            let k = s.z.shape()[1];
            s.z.unsqueeze(0)?.broadcast_to(&[b, n, k])
        }
        (None, Some(t)) => Ok(t.z.clone()),
        (None, None) => Err(TensorError::Invalid(
            "combine_theta: need at least one latent".into(),
        )),
    }
}

/// Analytic KL of `Theta` against `N(0, I)`: `Theta = z + z_t` is
/// Gaussian with mean `mu_s + mu_t` and variance `var_s + var_t`, so the
/// KL is elementwise `0.5 (var + mu^2 - 1 - ln var)` (Eq. 20's
/// regularizer).
pub fn combined_kl(
    s: Option<&GaussianSample>,
    t: Option<&GaussianSample>,
    b: usize,
    n: usize,
) -> Result<Var> {
    let (mu, var) = combined_moments(s, t, b, n)?;
    // 0.5 * mean(var + mu^2 - 1 - ln(var)); var > 0 by construction.
    let term = var.add(&mu.square()?)?.add_scalar(-1.0).sub(&var.ln())?;
    term.mul_scalar(0.5).mean_all()
}

/// Mean and variance of `Theta = z + z_t` (independent Gaussians add).
pub fn combined_moments(
    s: Option<&GaussianSample>,
    t: Option<&GaussianSample>,
    b: usize,
    n: usize,
) -> Result<(Var, Var)> {
    match (s, t) {
        (Some(s), Some(t)) => {
            let k = s.mu.shape()[1];
            let mu_s = s.mu.unsqueeze(0)?.broadcast_to(&[b, n, k])?;
            let var_s = s.logvar.exp().unsqueeze(0)?.broadcast_to(&[b, n, k])?;
            Ok((mu_s.add(&t.mu)?, var_s.add(&t.logvar.exp())?))
        }
        (Some(s), None) => Ok((s.mu.clone(), s.logvar.exp())),
        (None, Some(t)) => Ok((t.mu.clone(), t.logvar.exp())),
        (None, None) => Err(TensorError::Invalid(
            "combined_moments: need at least one latent".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stwa_tensor::Tensor;

    fn mk(flags: AwarenessFlags, mode: LatentMode) -> (ParamStore, StGenerator, StdRng) {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let gen = StGenerator::new(
            &store,
            "g",
            flags,
            mode,
            4, // N
            6, // H
            1, // F
            8, // k
            (16, 16),
            &[(1, 8), (8, 8)],
            None,
            false,
            &mut rng,
        );
        (store, gen, rng)
    }

    #[test]
    fn generates_per_layer_projections() {
        let (_s, gen, mut rng) = mk(AwarenessFlags::st_aware(), LatentMode::Stochastic);
        let g = Graph::new();
        let x = g.constant(Tensor::randn(&[3, 4, 6, 1], &mut rng));
        let out = gen.generate(&g, &x, &mut rng).unwrap();
        assert_eq!(out.layers.len(), 2);
        assert_eq!(out.layers[0].k_proj.shape(), vec![3, 4, 1, 8]);
        assert_eq!(out.layers[1].v_proj.shape(), vec![3, 4, 8, 8]);
        assert!(out.kl.is_some());
    }

    #[test]
    fn deterministic_mode_has_no_kl() {
        let (_s, gen, mut rng) = mk(AwarenessFlags::st_aware(), LatentMode::Deterministic);
        let g = Graph::new();
        let x = g.constant(Tensor::randn(&[2, 4, 6, 1], &mut rng));
        let out = gen.generate(&g, &x, &mut rng).unwrap();
        assert!(out.kl.is_none());
    }

    #[test]
    fn spatial_only_projections_ignore_input_content() {
        // S-aware generation must not vary with the window content —
        // that's the definition of the S-WA ablation.
        let (_s, gen, mut rng) = mk(AwarenessFlags::s_aware(), LatentMode::Deterministic);
        let g = Graph::new();
        let a = g.constant(Tensor::randn(&[1, 4, 6, 1], &mut rng));
        let b = g.constant(Tensor::randn(&[1, 4, 6, 1], &mut rng));
        let pa = gen.generate(&g, &a, &mut rng).unwrap();
        let pb = gen.generate(&g, &b, &mut rng).unwrap();
        assert!(pa.layers[0]
            .k_proj
            .value()
            .approx_eq(&pb.layers[0].k_proj.value(), 1e-6));
    }

    #[test]
    fn temporal_projections_vary_with_input() {
        let (_s, gen, mut rng) = mk(AwarenessFlags::st_aware(), LatentMode::Deterministic);
        let g = Graph::new();
        let a = g.constant(Tensor::from_fn(&[1, 4, 6, 1], |i| i[2] as f32 * 0.2));
        let b = g.constant(Tensor::from_fn(&[1, 4, 6, 1], |i| 1.0 - i[2] as f32 * 0.2));
        let pa = gen.generate(&g, &a, &mut rng).unwrap();
        let pb = gen.generate(&g, &b, &mut rng).unwrap();
        assert!(!pa.layers[0]
            .k_proj
            .value()
            .approx_eq(&pb.layers[0].k_proj.value(), 1e-5));
    }

    #[test]
    fn different_sensors_get_different_projections() {
        let (_s, gen, mut rng) = mk(AwarenessFlags::s_aware(), LatentMode::Deterministic);
        let g = Graph::new();
        let x = g.constant(Tensor::zeros(&[1, 4, 6, 1]));
        let p = gen.generate(&g, &x, &mut rng).unwrap();
        let k0 = p.layers[0].k_proj.value().narrow(1, 0, 1).unwrap();
        let k1 = p.layers[0].k_proj.value().narrow(1, 1, 1).unwrap();
        assert!(
            !k0.approx_eq(&k1, 1e-6),
            "sensors must have distinct params"
        );
    }

    #[test]
    fn kl_decreases_as_latents_approach_prior() {
        let (store, gen, mut rng) = mk(AwarenessFlags::s_aware(), LatentMode::Stochastic);
        let g = Graph::new();
        let x = g.constant(Tensor::zeros(&[1, 4, 6, 1]));
        let far = gen.generate(&g, &x, &mut rng).unwrap().kl.unwrap();
        let far_val = far.value().item().unwrap();
        // Move mu to 0 and logvar to 0 (exactly the prior).
        store.params()[0].set_value(Tensor::zeros(&[4, 8]));
        store.params()[1].set_value(Tensor::zeros(&[4, 8]));
        let near = gen.generate(&g, &x, &mut rng).unwrap().kl.unwrap();
        let near_val = near.value().item().unwrap();
        assert!(
            near_val.abs() < 1e-6,
            "KL at prior should be 0, got {near_val}"
        );
        assert!(far_val > near_val);
    }

    #[test]
    fn kl_gradients_reach_latent_parameters() {
        let (store, gen, mut rng) = mk(AwarenessFlags::st_aware(), LatentMode::Stochastic);
        let g = Graph::new();
        let x = g.constant(Tensor::randn(&[2, 4, 6, 1], &mut rng));
        let out = gen.generate(&g, &x, &mut rng).unwrap();
        g.backward(&out.kl.unwrap()).unwrap();
        // Spatial mu/logvar are the first two registered params.
        assert!(store.params()[0].grad().is_some());
        assert!(store.params()[1].grad().is_some());
    }

    #[test]
    fn generate_nograd_bitwise_matches_deterministic_graph_path() {
        for flags in [
            AwarenessFlags::st_aware(),
            AwarenessFlags::s_aware(),
            AwarenessFlags::t_aware(),
        ] {
            let (_s, gen, mut rng) = mk(flags, LatentMode::Stochastic);
            let x = Tensor::randn(&[3, 4, 6, 1], &mut rng);
            let g = Graph::new();
            let graph_out = gen
                .generate_with_mode(
                    &g,
                    &g.constant(x.clone()),
                    &mut rng,
                    LatentMode::Deterministic,
                )
                .unwrap();
            let nograd_out = gen.generate_nograd(&x).unwrap();
            assert_eq!(graph_out.layers.len(), nograd_out.len());
            for (gl, nl) in graph_out.layers.iter().zip(nograd_out.iter()) {
                assert_eq!(gl.k_proj.value().data(), nl.k_proj.data());
                assert_eq!(gl.v_proj.value().data(), nl.v_proj.data());
            }
        }
    }

    #[test]
    fn wrong_sensor_count_rejected() {
        let (_s, gen, mut rng) = mk(AwarenessFlags::st_aware(), LatentMode::Stochastic);
        let g = Graph::new();
        let x = g.constant(Tensor::zeros(&[1, 5, 6, 1]));
        assert!(gen.generate(&g, &x, &mut rng).is_err());
    }
}
