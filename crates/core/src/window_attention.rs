//! Window Attention with proxies (paper Section IV-B, Figure 6(b)).
//!
//! The input series of length `T` is split into `W = T / S` windows.
//! Each window owns `p` learnable *proxy* vectors that replace the Query
//! of canonical attention: every timestamp computes one score per proxy
//! instead of one per timestamp, dropping the complexity from `O(T^2)`
//! to `O(p * T) = O(T)`.
//!
//! Three paper mechanisms live here:
//!
//! - Eq. 10–11: per-window proxy attention (`h_w`),
//! - Eq. 12–13: the learned gate that collapses the `p` proxies into one
//!   window representation (`ĥ_w`),
//! - Eq. 14: fusing the previous window's output into the current
//!   window's proxies, restoring cross-window information flow that the
//!   windowing would otherwise sever.
//!
//! The output is `[B, N, W, d]` — one summary per window — so stacking
//! layers shrinks the time axis geometrically (Figure 8), keeping the
//! whole stack linear in `T` (Section IV-D complexity analysis).

use crate::generator::{GeneratedProjections, GeneratedTensors};
use crate::sensor_attention::SensorCorrelationAttention;
use rand::Rng;
use stwa_autograd::{concat, Graph, Var};
use stwa_nn::layers::attention::{scaled_dot_attention, scaled_dot_attention_nograd};
use stwa_nn::layers::{Activation, Linear};
use stwa_nn::{init, Param, ParamStore};
use stwa_tensor::{linalg, manip, Result, Tensor, TensorError};

/// How the `p` proxies of a window are collapsed into one vector —
/// the paper's learned gate (Eq. 12–13) vs. the mean-aggregator ablation
/// (Table XIV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregatorKind {
    /// `A = sigmoid(W2 tanh(W1 h))`, `ĥ = sum_j A_j ⊙ h_j`.
    Learned,
    /// Uniform weights `1/p`.
    Mean,
}

/// One window-attention layer.
pub struct WindowAttentionLayer {
    /// Learnable proxy tensor, stored `[N, W, p, d]` (the paper writes
    /// `P ∈ R^{W×N×p×d}`; the axis order here just matches our batch
    /// layout).
    proxies: Param,
    /// Eq. 14 fusion `theta`: `[ĥ_{w-1} || P_w] -> P_w'`. Absent when
    /// there is only one window (nothing to fuse).
    fusion: Option<Linear>,
    /// Shared projections, present only when the layer is built for the
    /// ST-agnostic mode (a generator-fed layer never uses them, so
    /// creating them would inflate the paper's "# Para" accounting).
    k_shared: Option<Linear>,
    v_shared: Option<Linear>,
    /// Eq. 12 weighting network.
    agg_w1: Param,
    agg_w2: Param,
    aggregator: AggregatorKind,
    sensor_attention: Option<SensorCorrelationAttention>,
    n: usize,
    t_in: usize,
    s: usize,
    w: usize,
    p: usize,
    f_in: usize,
    d: usize,
    heads: usize,
}

impl WindowAttentionLayer {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &ParamStore,
        name: &str,
        n: usize,
        t_in: usize,
        s: usize,
        p: usize,
        f_in: usize,
        d: usize,
        heads: usize,
        aggregator: AggregatorKind,
        use_sensor_attention: bool,
        shared_kv: bool,
        rng: &mut impl Rng,
    ) -> Result<WindowAttentionLayer> {
        Self::new_with_sca_mode(
            store,
            name,
            n,
            t_in,
            s,
            p,
            f_in,
            d,
            heads,
            aggregator,
            use_sensor_attention,
            shared_kv,
            false,
            rng,
        )
    }

    /// [`WindowAttentionLayer::new`] with control over whether the
    /// sensor-correlation transforms come from the generator (in which
    /// case no shared theta parameters are created).
    #[allow(clippy::too_many_arguments)]
    pub fn new_with_sca_mode(
        store: &ParamStore,
        name: &str,
        n: usize,
        t_in: usize,
        s: usize,
        p: usize,
        f_in: usize,
        d: usize,
        heads: usize,
        aggregator: AggregatorKind,
        use_sensor_attention: bool,
        shared_kv: bool,
        generated_sca: bool,
        rng: &mut impl Rng,
    ) -> Result<WindowAttentionLayer> {
        if s == 0 || !t_in.is_multiple_of(s) {
            return Err(TensorError::Invalid(format!(
                "WindowAttentionLayer: window size {s} must divide input length {t_in}"
            )));
        }
        if p == 0 {
            return Err(TensorError::Invalid("need at least one proxy".into()));
        }
        if heads == 0 || !d.is_multiple_of(heads) {
            return Err(TensorError::Invalid(format!(
                "WindowAttentionLayer: heads {heads} must divide d {d}"
            )));
        }
        let w = t_in / s;
        Ok(WindowAttentionLayer {
            proxies: store.param(format!("{name}.P"), init::normal(&[n, w, p, d], 0.2, rng)),
            fusion: (w > 1).then(|| Linear::new(store, &format!("{name}.fusion"), 2 * d, d, rng)),
            k_shared: shared_kv
                .then(|| Linear::new_no_bias(store, &format!("{name}.K"), f_in, d, rng)),
            v_shared: shared_kv
                .then(|| Linear::new_no_bias(store, &format!("{name}.V"), f_in, d, rng)),
            agg_w1: store.param(
                format!("{name}.aggW1"),
                init::xavier_uniform(&[d, d], d, d, rng),
            ),
            agg_w2: store.param(
                format!("{name}.aggW2"),
                init::xavier_uniform(&[d, d], d, d, rng),
            ),
            aggregator,
            sensor_attention: use_sensor_attention.then(|| {
                if generated_sca {
                    SensorCorrelationAttention::new_generated(d)
                } else {
                    SensorCorrelationAttention::new(store, &format!("{name}.sca"), d, rng)
                }
            }),
            n,
            t_in,
            s,
            w,
            p,
            f_in,
            d,
            heads,
        })
    }

    /// Number of windows = the output time length.
    pub fn num_windows(&self) -> usize {
        self.w
    }

    pub fn out_dim(&self) -> usize {
        self.d
    }

    /// Forward: `x` is `[B, N, T, F_in]`; `generated` optionally carries
    /// the ST-aware `K_t^(i)`/`V_t^(i)` (each `[B, N, F_in, d]`) from the
    /// [`crate::StGenerator`]. Returns `[B, N, W, d]`.
    pub fn forward(
        &self,
        graph: &Graph,
        x: &Var,
        generated: Option<&GeneratedProjections>,
    ) -> Result<Var> {
        let shape = x.shape();
        if shape.len() != 4 || shape[1] != self.n || shape[2] != self.t_in || shape[3] != self.f_in
        {
            return Err(TensorError::Invalid(format!(
                "WindowAttentionLayer: expected [B, {}, {}, {}], got {shape:?}",
                self.n, self.t_in, self.f_in
            )));
        }
        let b = shape[0];
        let (w, s, p, d) = (self.w, self.s, self.p, self.d);

        // Project keys/values for all windows in one shot:
        // [B, N, W, S, F] @ proj -> [B, N, W, S, d].
        let x_win = x.reshape(&[b, self.n, w, s, self.f_in])?;
        let (keys, values) = match generated {
            Some(gp) => {
                // [B, N, F, d] -> [B, N, 1, F, d] broadcasts over windows.
                let kp = gp.k_proj.unsqueeze(2)?;
                let vp = gp.v_proj.unsqueeze(2)?;
                (x_win.matmul(&kp)?, x_win.matmul(&vp)?)
            }
            None => {
                let (Some(ks), Some(vs)) = (&self.k_shared, &self.v_shared) else {
                    return Err(TensorError::Invalid(
                        "WindowAttentionLayer built without shared projections \
                         requires generated K/V"
                            .into(),
                    ));
                };
                (ks.forward(graph, &x_win)?, vs.forward(graph, &x_win)?)
            }
        };

        let proxies = self.proxies.leaf(graph); // [N, W, p, d]
        let agg_w1 = self.agg_w1.leaf(graph);
        let agg_w2 = self.agg_w2.leaf(graph);

        let mut prev: Option<Var> = None;
        let mut outputs: Vec<Var> = Vec::with_capacity(w);
        for wi in 0..w {
            let k_w = keys.narrow(2, wi, 1)?.squeeze(2)?; // [B, N, S, d]
            let v_w = values.narrow(2, wi, 1)?.squeeze(2)?;
            // Proxy block for this window, broadcast over the batch.
            let p_base = proxies
                .narrow(1, wi, 1)?
                .squeeze(1)?
                .unsqueeze(0)?
                .broadcast_to(&[b, self.n, p, d])?;
            // Eq. 14: fold the previous window's summary into the proxies.
            let p_q = match &prev {
                None => p_base,
                Some(h_prev) => {
                    let fusion = self.fusion.as_ref().expect("w > 1 implies fusion");
                    let tiled = h_prev.unsqueeze(2)?.broadcast_to(&[b, self.n, p, d])?;
                    let stacked = concat(&[&tiled, &p_base], 3)?; // [B,N,p,2d]
                    fusion.forward_act(graph, &stacked, Activation::Tanh)?
                }
            };
            // Eq. 10: each timestamp attends to each proxy.
            let h_w = scaled_dot_attention(&p_q, &k_w, &v_w, self.heads)?; // [B,N,p,d]
                                                                           // Eq. 12–13 (or the mean ablation): collapse proxies.
            let h_hat = match self.aggregator {
                AggregatorKind::Learned => {
                    let gate = h_w.matmul(&agg_w1)?.tanh().matmul(&agg_w2)?.sigmoid();
                    gate.mul(&h_w)?.sum_axis(2, false)? // [B,N,d]
                }
                AggregatorKind::Mean => h_w.mean_axis(2, false)?,
            };
            // Eq. 15–16: sensor correlation within the window, with
            // generated per-sensor transforms when the generator
            // supplies them (Section IV-C's generated variant).
            let h_bar = match (
                &self.sensor_attention,
                generated.and_then(|g| g.sca_transforms.as_ref()),
            ) {
                (Some(sca), Some((t1, t2))) => sca.forward_with(graph, &h_hat, t1, t2)?,
                (Some(sca), None) => sca.forward(graph, &h_hat)?,
                (None, _) => h_hat,
            };
            prev = Some(h_bar.clone());
            outputs.push(h_bar.unsqueeze(2)?);
        }
        let refs: Vec<&Var> = outputs.iter().collect();
        concat(&refs, 2) // [B, N, W, d]
    }

    /// Tape-free [`WindowAttentionLayer::forward`]: the same kernel
    /// sequence on raw tensors, no autograd nodes. `generated` carries
    /// pre-decoded (or freshly decoded) K/V projections — any leading
    /// axes that broadcast against `[B, N]` work, so the inference
    /// engine's frozen `[N, 1, F, d]` caches slot straight in.
    pub fn forward_nograd(
        &self,
        x: &Tensor,
        generated: Option<&GeneratedTensors>,
    ) -> Result<Tensor> {
        let shape = x.shape();
        if shape.len() != 4 || shape[1] != self.n || shape[2] != self.t_in || shape[3] != self.f_in
        {
            return Err(TensorError::Invalid(format!(
                "WindowAttentionLayer: expected [B, {}, {}, {}], got {shape:?}",
                self.n, self.t_in, self.f_in
            )));
        }
        let b = shape[0];
        let (w, s, p, d) = (self.w, self.s, self.p, self.d);

        let x_win = x.reshape(&[b, self.n, w, s, self.f_in])?;
        let (keys, values) = match generated {
            Some(gp) => {
                let kp = gp.k_proj.unsqueeze(gp.k_proj.rank() - 2)?;
                let vp = gp.v_proj.unsqueeze(gp.v_proj.rank() - 2)?;
                (
                    linalg::matmul(&x_win, &kp)?,
                    linalg::matmul(&x_win, &vp)?,
                )
            }
            None => {
                let (Some(ks), Some(vs)) = (&self.k_shared, &self.v_shared) else {
                    return Err(TensorError::Invalid(
                        "WindowAttentionLayer built without shared projections \
                         requires generated K/V"
                            .into(),
                    ));
                };
                (ks.forward_nograd(&x_win)?, vs.forward_nograd(&x_win)?)
            }
        };

        let proxies = self.proxies.value(); // [N, W, p, d]
        let agg_w1 = self.agg_w1.value();
        let agg_w2 = self.agg_w2.value();

        let mut prev: Option<Tensor> = None;
        let mut outputs: Vec<Tensor> = Vec::with_capacity(w);
        for wi in 0..w {
            let k_w = keys.narrow(2, wi, 1)?.squeeze(2)?; // [B, N, S, d]
            let v_w = values.narrow(2, wi, 1)?.squeeze(2)?;
            let p_base = proxies
                .narrow(1, wi, 1)?
                .squeeze(1)?
                .unsqueeze(0)?
                .broadcast_to(&[b, self.n, p, d])?;
            let p_q = match &prev {
                None => p_base,
                Some(h_prev) => {
                    let fusion = self.fusion.as_ref().expect("w > 1 implies fusion");
                    let tiled = h_prev.unsqueeze(2)?.broadcast_to(&[b, self.n, p, d])?;
                    let stacked = manip::concat(&[&tiled, &p_base], 3)?; // [B,N,p,2d]
                    fusion.forward_act_nograd(&stacked, Activation::Tanh)?
                }
            };
            let h_w = scaled_dot_attention_nograd(&p_q, &k_w, &v_w, self.heads)?; // [B,N,p,d]
            let h_hat = match self.aggregator {
                AggregatorKind::Learned => {
                    let gate = linalg::matmul(&h_w, &agg_w1)?
                        .tanh();
                    let gate = linalg::matmul(&gate, &agg_w2)?.sigmoid();
                    gate.mul(&h_w)?.sum_axis(2, false)? // [B,N,d]
                }
                AggregatorKind::Mean => h_w.mean_axis(2, false)?,
            };
            let h_bar = match (
                &self.sensor_attention,
                generated.and_then(|g| g.sca_transforms.as_ref()),
            ) {
                (Some(sca), Some((t1, t2))) => sca.forward_with_nograd(&h_hat, t1, t2)?,
                (Some(sca), None) => sca.forward_nograd(&h_hat)?,
                (None, _) => h_hat,
            };
            prev = Some(h_bar.clone());
            outputs.push(h_bar.unsqueeze(2)?);
        }
        let refs: Vec<&Tensor> = outputs.iter().collect();
        manip::concat(&refs, 2) // [B, N, W, d]
    }

    /// Learnable proxy tensor `[N, W, p, d]` — read by the inference
    /// engine when snapshotting frozen weights.
    pub fn proxies(&self) -> &Param {
        &self.proxies
    }

    /// Eq. 14 fusion layer, absent when there is a single window.
    pub fn fusion(&self) -> Option<&Linear> {
        self.fusion.as_ref()
    }

    /// Shared K/V projections, present only in ST-agnostic mode.
    pub fn shared_projections(&self) -> (Option<&Linear>, Option<&Linear>) {
        (self.k_shared.as_ref(), self.v_shared.as_ref())
    }

    /// Eq. 12 gate weights `(W1, W2)`.
    pub fn agg_weights(&self) -> (&Param, &Param) {
        (&self.agg_w1, &self.agg_w2)
    }

    pub fn aggregator_kind(&self) -> AggregatorKind {
        self.aggregator
    }

    pub fn sensor_attention(&self) -> Option<&SensorCorrelationAttention> {
        self.sensor_attention.as_ref()
    }

    /// Select dense or sparse sensor attention; a no-op when the layer has no
    /// sensor-correlation stage.
    pub fn set_sparsity(&mut self, mode: crate::sensor_attention::SparsityMode) {
        if let Some(sca) = &mut self.sensor_attention {
            sca.set_sparsity(mode);
        }
    }

    /// `(N, T_in, S, p, F_in, d, heads)` — the layer's full geometry.
    pub fn dims(&self) -> (usize, usize, usize, usize, usize, usize, usize) {
        (
            self.n, self.t_in, self.s, self.p, self.f_in, self.d, self.heads,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stwa_tensor::Tensor;

    fn layer(
        n: usize,
        t: usize,
        s: usize,
        p: usize,
        agg: AggregatorKind,
        sca: bool,
    ) -> (ParamStore, WindowAttentionLayer) {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let l =
            WindowAttentionLayer::new(&store, "wa", n, t, s, p, 1, 8, 2, agg, sca, true, &mut rng)
                .unwrap();
        (store, l)
    }

    #[test]
    fn output_shape_is_windows_by_d() {
        let (_s, l) = layer(3, 12, 3, 2, AggregatorKind::Learned, true);
        assert_eq!(l.num_windows(), 4);
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(1);
        let x = g.constant(Tensor::randn(&[2, 3, 12, 1], &mut rng));
        let y = l.forward(&g, &x, None).unwrap();
        assert_eq!(y.shape(), vec![2, 3, 4, 8]);
        assert!(!y.value().has_non_finite());
    }

    #[test]
    fn invalid_configs_rejected() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        // S doesn't divide T.
        assert!(WindowAttentionLayer::new(
            &store,
            "a",
            2,
            10,
            3,
            1,
            1,
            8,
            1,
            AggregatorKind::Learned,
            true,
            true,
            &mut rng
        )
        .is_err());
        // Zero proxies.
        assert!(WindowAttentionLayer::new(
            &store,
            "b",
            2,
            12,
            3,
            0,
            1,
            8,
            1,
            AggregatorKind::Learned,
            true,
            true,
            &mut rng
        )
        .is_err());
        // Heads don't divide d.
        assert!(WindowAttentionLayer::new(
            &store,
            "c",
            2,
            12,
            3,
            1,
            1,
            8,
            3,
            AggregatorKind::Learned,
            true,
            true,
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn wrong_input_shape_rejected() {
        let (_s, l) = layer(3, 12, 3, 1, AggregatorKind::Learned, false);
        let g = Graph::new();
        assert!(l
            .forward(&g, &g.constant(Tensor::zeros(&[2, 3, 10, 1])), None)
            .is_err());
        assert!(l
            .forward(&g, &g.constant(Tensor::zeros(&[2, 4, 12, 1])), None)
            .is_err());
    }

    #[test]
    fn later_windows_see_earlier_content() {
        // Eq. 14's cross-window flow: changing the first window's input
        // must change the last window's output.
        let (_s, l) = layer(2, 12, 3, 2, AggregatorKind::Learned, false);
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(3);
        let base = Tensor::randn(&[1, 2, 12, 1], &mut rng);
        let mut modified = base.clone();
        modified.data_mut()[0] += 2.5; // perturb timestamp 0 of sensor 0
        let ya = l.forward(&g, &g.constant(base), None).unwrap();
        let yb = l.forward(&g, &g.constant(modified), None).unwrap();
        let last_a = ya.value().narrow(2, 3, 1).unwrap();
        let last_b = yb.value().narrow(2, 3, 1).unwrap();
        assert!(
            !last_a.approx_eq(&last_b, 1e-7),
            "cross-window fusion failed to propagate information"
        );
    }

    #[test]
    fn mean_aggregator_differs_from_learned() {
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::randn(&[1, 2, 12, 1], &mut rng);
        let (_s1, learned) = layer(2, 12, 3, 2, AggregatorKind::Learned, false);
        let (_s2, mean) = layer(2, 12, 3, 2, AggregatorKind::Mean, false);
        let ya = learned.forward(&g, &g.constant(x.clone()), None).unwrap();
        let yb = mean.forward(&g, &g.constant(x), None).unwrap();
        assert!(!ya.value().approx_eq(&yb.value(), 1e-6));
    }

    #[test]
    fn generated_projections_change_output_per_sensor() {
        let (_s, l) = layer(2, 12, 3, 1, AggregatorKind::Learned, false);
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(5);
        // Same series for both sensors; distinct generated projections
        // must yield distinct outputs — spatial awareness in action.
        let one = Tensor::randn(&[1, 1, 12, 1], &mut rng);
        let x = g.constant(one.broadcast_to(&[1, 2, 12, 1]).unwrap());
        let kv = GeneratedProjections {
            k_proj: g.constant(Tensor::randn(&[1, 2, 1, 8], &mut rng)),
            v_proj: g.constant(Tensor::randn(&[1, 2, 1, 8], &mut rng)),
            sca_transforms: None,
        };
        let y = l.forward(&g, &x, Some(&kv)).unwrap();
        let s0 = y.value().narrow(1, 0, 1).unwrap();
        let s1 = y.value().narrow(1, 1, 1).unwrap();
        assert!(!s0.approx_eq(&s1, 1e-6));

        // Identical projections for both sensors -> identical outputs.
        let shared_k = Tensor::randn(&[1, 1, 1, 8], &mut rng);
        let shared_v = Tensor::randn(&[1, 1, 1, 8], &mut rng);
        let kv_same = GeneratedProjections {
            k_proj: g.constant(shared_k.broadcast_to(&[1, 2, 1, 8]).unwrap()),
            v_proj: g.constant(shared_v.broadcast_to(&[1, 2, 1, 8]).unwrap()),
            sca_transforms: None,
        };
        // But proxies differ per sensor, so outputs may still differ;
        // equality only holds if proxies match too. Overwrite proxies to
        // be identical across sensors for this check.
        let mut proxies = _s.params()[0].value();
        let half = proxies.len() / 2;
        let first_half: Vec<f32> = proxies.data()[..half].to_vec();
        proxies.data_mut()[half..].copy_from_slice(&first_half);
        _s.params()[0].set_value(proxies);
        let y2 = l.forward(&g, &x, Some(&kv_same)).unwrap();
        let t0 = y2.value().narrow(1, 0, 1).unwrap();
        let t1 = y2.value().narrow(1, 1, 1).unwrap();
        assert!(t0.approx_eq(&t1, 1e-5));
    }

    #[test]
    fn gradients_flow_to_proxies_and_aggregator() {
        let (store, l) = layer(2, 12, 3, 2, AggregatorKind::Learned, true);
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(6);
        let x = g.constant(Tensor::randn(&[2, 2, 12, 1], &mut rng));
        let loss = l
            .forward(&g, &x, None)
            .unwrap()
            .square()
            .unwrap()
            .sum_all()
            .unwrap();
        g.backward(&loss).unwrap();
        let missing: Vec<String> = store
            .params()
            .iter()
            .filter(|p| p.grad().is_none())
            .map(|p| p.name().to_string())
            .collect();
        assert!(missing.is_empty(), "no grad for {missing:?}");
    }

    #[test]
    fn nograd_forward_bitwise_matches_graph_path() {
        for (agg, sca) in [
            (AggregatorKind::Learned, true),
            (AggregatorKind::Learned, false),
            (AggregatorKind::Mean, true),
        ] {
            let (_s, l) = layer(3, 12, 3, 2, agg, sca);
            let g = Graph::new();
            let mut rng = StdRng::seed_from_u64(11);
            let x = Tensor::randn(&[2, 3, 12, 1], &mut rng);
            let graph_out = l.forward(&g, &g.constant(x.clone()), None).unwrap();
            let nograd_out = l.forward_nograd(&x, None).unwrap();
            assert_eq!(graph_out.value().data(), nograd_out.data());
        }

        // Generated-projection path: Var projections vs the same raw
        // tensors through the nograd mirror.
        let (_s, l) = layer(2, 12, 3, 1, AggregatorKind::Learned, false);
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(12);
        let x = Tensor::randn(&[2, 2, 12, 1], &mut rng);
        let k = Tensor::randn(&[2, 2, 1, 8], &mut rng);
        let v = Tensor::randn(&[2, 2, 1, 8], &mut rng);
        let graph_out = l
            .forward(
                &g,
                &g.constant(x.clone()),
                Some(&GeneratedProjections {
                    k_proj: g.constant(k.clone()),
                    v_proj: g.constant(v.clone()),
                    sca_transforms: None,
                }),
            )
            .unwrap();
        let nograd_out = l
            .forward_nograd(
                &x,
                Some(&GeneratedTensors {
                    k_proj: k,
                    v_proj: v,
                    sca_transforms: None,
                }),
            )
            .unwrap();
        assert_eq!(graph_out.value().data(), nograd_out.data());
    }

    #[test]
    fn single_window_layer_works() {
        // S = T: one window, no fusion step — the Table IX "1 layer,
        // S=12" configuration.
        let (_s, l) = layer(2, 12, 12, 2, AggregatorKind::Learned, true);
        assert_eq!(l.num_windows(), 1);
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(8);
        let x = g.constant(Tensor::randn(&[1, 2, 12, 1], &mut rng));
        assert_eq!(l.forward(&g, &x, None).unwrap().shape(), vec![1, 2, 1, 8]);
    }
}
