//! Stochastic latent variables (paper Section IV-A.2).
//!
//! Two pieces:
//!
//! - [`SpatialLatent`]: one learnable Gaussian per sensor,
//!   `z^(i) ~ N(mu^(i), Sigma^(i))` with directly learnable `mu`/`Sigma`
//!   (Eq. 5). Captures each location's *general, prominent* pattern.
//! - [`TemporalEncoder`]: the variational encoder `E_psi` mapping the
//!   most recent `H` observations of each sensor to
//!   `z_t^(i) ~ N(mu_t^(i), Sigma_t^(i))` (Eq. 6–7). Captures the
//!   *current deviation* from the general pattern.
//!
//! Covariances are diagonal and parameterized as log-variances, which
//! keeps them positive and makes the KL of Eq. 20 analytic. Sampling uses
//! the reparameterization trick so gradients flow into `mu`/`logvar`.

use rand::Rng;
use stwa_autograd::{Graph, Var};
use stwa_nn::layers::{Activation, Mlp};
use stwa_nn::{Param, ParamStore};
use stwa_tensor::{Result, Tensor};

/// Whether latents are sampled (the paper's model) or collapsed to their
/// means (the "Deterministic ST-WA" ablation of Table XI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatentMode {
    Stochastic,
    Deterministic,
}

/// A Gaussian sampled (or collapsed) on the graph: mean, log-variance,
/// and a realization `z`.
pub struct GaussianSample {
    pub mu: Var,
    pub logvar: Var,
    pub z: Var,
}

/// Reparameterized sample: `z = mu + exp(logvar / 2) * eps`,
/// `eps ~ N(0, I)` entering the graph as a constant.
fn reparameterize(
    graph: &Graph,
    mu: &Var,
    logvar: &Var,
    mode: LatentMode,
    rng: &mut impl Rng,
) -> Result<Var> {
    match mode {
        LatentMode::Deterministic => Ok(mu.clone()),
        LatentMode::Stochastic => {
            let eps = graph.constant(Tensor::randn(&mu.shape(), rng));
            let std = logvar.mul_scalar(0.5).exp();
            mu.add(&std.mul(&eps)?)
        }
    }
}

/// The spatial-aware latent `z^(i)`: `mu` and `logvar` are plain
/// learnable parameters of shape `[N, k]` — no encoder, purely
/// data-driven, exactly as the paper argues (no POI features needed).
pub struct SpatialLatent {
    mu: Param,
    logvar: Param,
    n: usize,
    k: usize,
}

impl SpatialLatent {
    pub fn new(store: &ParamStore, name: &str, n: usize, k: usize, rng: &mut impl Rng) -> Self {
        SpatialLatent {
            // Small random means separate sensors from the start; small
            // negative log-variance starts sampling tight around them.
            mu: store.param(
                format!("{name}.mu"),
                Tensor::rand_normal(&[n, k], 0.0, 0.1, rng),
            ),
            logvar: store.param(format!("{name}.logvar"), Tensor::full(&[n, k], -2.0)),
            n,
            k,
        }
    }

    pub fn n(&self) -> usize {
        self.n
    }

    pub fn k(&self) -> usize {
        self.k
    }

    /// Sample `z^(i)` for every sensor: returns `[N, k]` on the graph.
    pub fn sample(
        &self,
        graph: &Graph,
        mode: LatentMode,
        rng: &mut impl Rng,
    ) -> Result<GaussianSample> {
        let mu = self.mu.leaf(graph);
        let logvar = self.logvar.leaf(graph);
        let z = reparameterize(graph, &mu, &logvar, mode, rng)?;
        Ok(GaussianSample { mu, logvar, z })
    }

    /// The learned means, for the latent-space visualization (Fig. 9(b)).
    pub fn means(&self) -> Tensor {
        self.mu.value()
    }
}

/// The variational temporal encoder `E_psi` (paper: a 3-layer fully
/// connected network): recent window `[B, N, H, F]` → `mu_t, logvar_t`
/// of shape `[B, N, k]`.
pub struct TemporalEncoder {
    body: Mlp,
    head_mu: stwa_nn::layers::Linear,
    head_logvar: stwa_nn::layers::Linear,
    h: usize,
    f: usize,
    k: usize,
}

impl TemporalEncoder {
    pub fn new(
        store: &ParamStore,
        name: &str,
        h: usize,
        f: usize,
        hidden: usize,
        k: usize,
        rng: &mut impl Rng,
    ) -> Self {
        // Paper: 3-layer FC with ReLU producing a k-dim Gaussian; we use
        // a 2-layer trunk plus separate mu / logvar heads (the standard
        // VAE factorization of the same architecture).
        let body = Mlp::new(
            store,
            &format!("{name}.body"),
            &[h * f, hidden, hidden],
            &[Activation::Relu, Activation::Relu],
            rng,
        );
        let head_mu = stwa_nn::layers::Linear::new(store, &format!("{name}.mu"), hidden, k, rng);
        let head_logvar =
            stwa_nn::layers::Linear::new(store, &format!("{name}.logvar"), hidden, k, rng);
        TemporalEncoder {
            body,
            head_mu,
            head_logvar,
            h,
            f,
            k,
        }
    }

    pub fn k(&self) -> usize {
        self.k
    }

    /// Encode and sample `z_t^(i)`: input `[B, N, H, F]`, output sample
    /// tensors of shape `[B, N, k]`.
    pub fn sample(
        &self,
        graph: &Graph,
        x: &Var,
        mode: LatentMode,
        rng: &mut impl Rng,
    ) -> Result<GaussianSample> {
        let shape = x.shape();
        let (b, n) = (shape[0], shape[1]);
        debug_assert_eq!(shape[2], self.h, "TemporalEncoder: H mismatch");
        debug_assert_eq!(shape[3], self.f, "TemporalEncoder: F mismatch");
        let flat = x.reshape(&[b, n, self.h * self.f])?;
        let hidden = self.body.forward(graph, &flat)?;
        let mu = self.head_mu.forward(graph, &hidden)?;
        // Clamp-free logvar: tanh keeps it in a numerically safe band
        // (variance between e^-4 and e^4) without branching.
        let logvar = self
            .head_logvar
            .forward(graph, &hidden)?
            .tanh()
            .mul_scalar(4.0);
        let z = reparameterize(graph, &mu, &logvar, mode, rng)?;
        Ok(GaussianSample { mu, logvar, z })
    }

    /// Tape-free deterministic encoding: `mu_t` only, the value the
    /// graph path's `z` collapses to in eval mode. The logvar head —
    /// dead at eval time (no KL, no sampling) — is skipped entirely.
    pub fn encode_mean_nograd(&self, x: &Tensor) -> Result<Tensor> {
        let shape = x.shape();
        let (b, n) = (shape[0], shape[1]);
        debug_assert_eq!(shape[2], self.h, "TemporalEncoder: H mismatch");
        debug_assert_eq!(shape[3], self.f, "TemporalEncoder: F mismatch");
        let flat = x.reshape(&[b, n, self.h * self.f])?;
        let hidden = self.body.forward_nograd(&flat)?;
        self.head_mu.forward_nograd(&hidden)
    }

    /// Input window length `H`.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Input feature width `F`.
    pub fn f(&self) -> usize {
        self.f
    }

    /// The encoder trunk — read when packing frozen inference weights.
    pub fn body(&self) -> &Mlp {
        &self.body
    }

    /// The mean head — read when packing frozen inference weights.
    pub fn head_mu(&self) -> &stwa_nn::layers::Linear {
        &self.head_mu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn spatial_sample_shape_and_grad() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let lat = SpatialLatent::new(&store, "z", 5, 4, &mut rng);
        let g = Graph::new();
        let s = lat.sample(&g, LatentMode::Stochastic, &mut rng).unwrap();
        assert_eq!(s.z.shape(), vec![5, 4]);
        let loss = s.z.square().unwrap().sum_all().unwrap();
        g.backward(&loss).unwrap();
        // Both mu and logvar receive gradients through the
        // reparameterization.
        assert!(store.params()[0].grad().is_some());
        assert!(store.params()[1].grad().is_some());
    }

    #[test]
    fn deterministic_mode_returns_mean() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let lat = SpatialLatent::new(&store, "z", 3, 2, &mut rng);
        let g = Graph::new();
        let s = lat.sample(&g, LatentMode::Deterministic, &mut rng).unwrap();
        assert_eq!(s.z.value().data(), lat.means().data());
    }

    #[test]
    fn stochastic_samples_differ_between_draws() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let lat = SpatialLatent::new(&store, "z", 3, 2, &mut rng);
        let g = Graph::new();
        let a = lat.sample(&g, LatentMode::Stochastic, &mut rng).unwrap();
        let b = lat.sample(&g, LatentMode::Stochastic, &mut rng).unwrap();
        assert_ne!(a.z.value().data(), b.z.value().data());
    }

    #[test]
    fn sampling_concentrates_as_variance_shrinks() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let lat = SpatialLatent::new(&store, "z", 1, 64, &mut rng);
        // Force a very small variance.
        store.params()[1].set_value(Tensor::full(&[1, 64], -12.0));
        let g = Graph::new();
        let s = lat.sample(&g, LatentMode::Stochastic, &mut rng).unwrap();
        let spread = s.z.value().sub(&s.mu.value()).unwrap().abs().max_all();
        assert!(spread < 0.05, "low-variance sample strayed {spread}");
    }

    #[test]
    fn encoder_shapes_and_grads() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let enc = TemporalEncoder::new(&store, "e", 6, 1, 16, 8, &mut rng);
        let g = Graph::new();
        let x = g.constant(Tensor::randn(&[2, 3, 6, 1], &mut rng));
        let s = enc
            .sample(&g, &x, LatentMode::Stochastic, &mut rng)
            .unwrap();
        assert_eq!(s.z.shape(), vec![2, 3, 8]);
        assert_eq!(s.mu.shape(), vec![2, 3, 8]);
        let loss = s.z.square().unwrap().sum_all().unwrap();
        g.backward(&loss).unwrap();
        assert!(store.params().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    fn encoder_logvar_is_bounded() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let enc = TemporalEncoder::new(&store, "e", 4, 1, 8, 4, &mut rng);
        let g = Graph::new();
        // Extreme inputs cannot blow the log-variance past +-4.
        let x = g.constant(Tensor::full(&[1, 2, 4, 1], 1e4));
        let s = enc
            .sample(&g, &x, LatentMode::Stochastic, &mut rng)
            .unwrap();
        assert!(s.logvar.value().data().iter().all(|v| v.abs() <= 4.0));
        assert!(!s.z.value().has_non_finite());
    }

    #[test]
    fn encode_mean_nograd_bitwise_matches_deterministic_sample() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(9);
        let enc = TemporalEncoder::new(&store, "e", 6, 2, 16, 8, &mut rng);
        let x = Tensor::randn(&[3, 4, 6, 2], &mut rng);
        let g = Graph::new();
        let s = enc
            .sample(&g, &g.constant(x.clone()), LatentMode::Deterministic, &mut rng)
            .unwrap();
        let mu = enc.encode_mean_nograd(&x).unwrap();
        assert_eq!(s.z.value().data(), mu.data());
    }

    #[test]
    fn encoder_distinguishes_inputs() {
        // Different recent windows must produce different mu_t — that is
        // the whole point of temporal awareness.
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(6);
        let enc = TemporalEncoder::new(&store, "e", 4, 1, 16, 4, &mut rng);
        let g = Graph::new();
        let rising = g.constant(Tensor::from_fn(&[1, 1, 4, 1], |i| i[2] as f32));
        let falling = g.constant(Tensor::from_fn(&[1, 1, 4, 1], |i| 3.0 - i[2] as f32));
        let a = enc
            .sample(&g, &rising, LatentMode::Deterministic, &mut rng)
            .unwrap();
        let b = enc
            .sample(&g, &falling, LatentMode::Deterministic, &mut rng)
            .unwrap();
        assert!(!a.mu.value().approx_eq(&b.mu.value(), 1e-4));
    }
}
