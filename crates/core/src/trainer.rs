//! Training and evaluation harness shared by every model in the
//! workspace (ST-WA, its ablations, and all baselines).
//!
//! Optimizes the paper's Eq. 20 objective — Huber prediction loss plus
//! an optional (already `alpha`-weighted) regularizer the model returns —
//! with Adam, early stopping on validation MAE, epoch timing (Table VIII,
//! Fig. 10) and peak-memory tracking (Tables VI, VIII).

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::path::PathBuf;
use std::time::Instant;
use stwa_autograd::{Graph, Var};
use stwa_ckpt::checkpoint::capture_params;
use stwa_ckpt::{CkptError, NamedTensor, Registry, TrainCheckpoint};
use stwa_observe::{EpochRecord, RunManifest};
use stwa_nn::batch::{prefetched_shuffled, BatchIter};
use stwa_nn::loss::huber;
use stwa_nn::optim::{Adam, AdamState, Optimizer};
use stwa_nn::ParamStore;
use stwa_tensor::{memory, Result, Tensor};
use stwa_traffic::{Metrics, Scaler, SplitTensors, TrafficDataset};

/// What a model forward pass returns.
pub struct ForwardOutput {
    /// Normalized-scale predictions `[B, N, U, F]`.
    pub pred: Var,
    /// Optional extra loss term (e.g. `alpha * KL`), already weighted.
    pub regularizer: Option<Var>,
}

impl ForwardOutput {
    /// Output with no extra loss term — what every non-variational model
    /// returns.
    pub fn plain(pred: Var) -> ForwardOutput {
        ForwardOutput {
            pred,
            regularizer: None,
        }
    }
}

/// A deferred model constructor that can cross a thread boundary.
///
/// The data-parallel trainer ships one of these to each shard worker;
/// the replica is built *on* the worker thread (tensors and tapes are
/// thread-confined, so the model itself can never be sent). Replica
/// initialization values are irrelevant — every shard step overwrites
/// them from a [`stwa_nn::ParamSnapshot`] of the live store — but the
/// replica must register parameters in the same order and shapes as the
/// original, i.e. be built from the same config.
pub type ReplicaFactory = Box<dyn FnOnce() -> Result<Box<dyn ForecastModel>> + Send>;

/// Anything the [`Trainer`] can optimize.
pub trait ForecastModel {
    /// Display name for tables.
    fn name(&self) -> String;
    /// The model's parameters.
    fn store(&self) -> &ParamStore;
    /// One forward pass over a normalized batch `[B, N, H, F]`.
    ///
    /// `training` distinguishes the stochastic training pass (latents
    /// sampled via reparameterization) from evaluation (posterior means,
    /// the standard variational-inference prediction rule). Models
    /// without stochastic parts ignore it.
    fn forward(
        &self,
        graph: &Graph,
        x: &Var,
        rng: &mut StdRng,
        training: bool,
    ) -> Result<ForwardOutput>;

    /// Eval-mode forward on a raw normalized tensor, returning the
    /// normalized predictions `[B, N, U, F]`.
    ///
    /// The default implementation runs the graph path with
    /// `training == false` and discards the tape. Evaluation never
    /// samples latents (posterior means), so the RNG is not consulted
    /// and the fixed seed below is inert. Models with a tape-free
    /// mirror (e.g. `StwaModel::forward_nograd`) override this to skip
    /// graph construction entirely; overrides must stay bitwise
    /// identical to the graph path.
    fn forward_eval(&self, x: &Tensor) -> Result<Tensor> {
        let graph = Graph::new();
        let xv = graph.constant(x.clone());
        let mut rng = StdRng::seed_from_u64(0);
        let out = self.forward(&graph, &xv, &mut rng, false)?;
        Ok(out.pred.value().as_ref().clone())
    }

    /// A factory that rebuilds this model's architecture on another
    /// thread, enabling data-parallel training (`STWA_SHARDS > 1`).
    ///
    /// The default is `None`: the trainer falls back to the sequential
    /// step and behaves exactly as before. Models opting in return a
    /// fresh factory per call (the trainer requests one per worker).
    fn replica_builder(&self) -> Option<ReplicaFactory> {
        None
    }
}

/// Training hyperparameters (paper Section V-A defaults, scaled down in
/// epoch count for the synthetic reruns).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    pub grad_clip: Option<f32>,
    /// Early-stopping patience in epochs (paper: 15).
    pub patience: usize,
    pub huber_delta: f32,
    pub seed: u64,
    /// Window-origin stride when building training samples (1 = paper
    /// protocol; larger = faster reruns).
    pub train_stride: usize,
    /// Stride for validation/test samples.
    pub eval_stride: usize,
    /// Print progress lines.
    pub verbose: bool,
    /// When set, write the JSON run manifest (config, per-epoch
    /// trajectory, span tree, counters) to this path after training.
    /// The manifest is always built and returned on [`TrainReport`];
    /// this only controls the on-disk copy.
    pub manifest_path: Option<PathBuf>,
    /// Data-parallel shard count. `1` trains sequentially (the exact
    /// pre-existing code path, bit for bit); `k > 1` splits each
    /// mini-batch across `k` worker threads with their own tapes and
    /// reduces gradients in fixed shard order (see [`crate::sharded`]).
    /// Defaults to `STWA_SHARDS` when set, else the configured pool
    /// size (`STWA_THREADS` / available parallelism, read once at
    /// startup — deliberately *not* the live pool cap, which tests
    /// retune mid-process). Models without a
    /// [`ForecastModel::replica_builder`] always train sequentially.
    pub shards: usize,
    /// Publish a checkpoint to the registry every `save_every` epochs
    /// (`0` disables checkpointing). Requires `registry_root`.
    pub save_every: usize,
    /// Root directory of the model registry checkpoints are published
    /// to.
    pub registry_root: Option<PathBuf>,
    /// Registry model name to publish under; defaults to
    /// [`ForecastModel::name`].
    pub registry_name: Option<String>,
    /// Resume from this checkpoint version directory (e.g.
    /// `Registry::latest_dir`). The checkpoint's seed and config
    /// fingerprint must match this run; the resumed run is **bitwise
    /// identical** to one that was never interrupted.
    pub resume_from: Option<PathBuf>,
    /// After each publish, prune old versions keeping the newest this
    /// many (`0` keeps everything).
    pub keep_checkpoints: usize,
    /// Cut batch `t+1` on a background thread while batch `t` trains
    /// (see [`stwa_nn::batch::prefetched_shuffled`]). Bitwise
    /// identical to the non-prefetched path — the gather copies the
    /// same rows and the epoch RNG advances identically — so this is
    /// deliberately *excluded* from the resume fingerprint. Defaults
    /// to on; `STWA_PREFETCH=0` disables it.
    pub prefetch: bool,
}

/// Default for [`TrainConfig::shards`]: `STWA_SHARDS` env override,
/// else the startup pool size.
fn default_shards() -> usize {
    match std::env::var("STWA_SHARDS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => stwa_pool::configured_threads(),
        },
        Err(_) => stwa_pool::configured_threads(),
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 12,
            batch_size: 32,
            lr: 1e-3,
            grad_clip: Some(5.0),
            patience: 15,
            huber_delta: 1.0,
            seed: 1,
            train_stride: 3,
            eval_stride: 3,
            verbose: false,
            manifest_path: None,
            shards: default_shards(),
            save_every: 0,
            registry_root: None,
            registry_name: None,
            resume_from: None,
            keep_checkpoints: 0,
            prefetch: default_prefetch(),
        }
    }
}

/// Default for [`TrainConfig::prefetch`]: on unless `STWA_PREFETCH=0`.
fn default_prefetch() -> bool {
    !matches!(
        std::env::var("STWA_PREFETCH").as_deref(),
        Ok("0") | Ok("false") | Ok("off")
    )
}

/// Map a checkpoint-layer error into the trainer's error type without
/// losing the typed detail (it stays in the message).
fn ckpt_invalid(e: CkptError) -> stwa_tensor::TensorError {
    stwa_tensor::TensorError::Invalid(format!("trainer checkpoint: {e}"))
}

/// Fingerprint of every configuration knob that shapes the training
/// trajectory bit for bit. Resume refuses a checkpoint whose fingerprint
/// disagrees — silently continuing under a different batch size or shard
/// count would *run*, but the "bitwise identical to uninterrupted"
/// contract would be broken without any signal. `epochs` is deliberately
/// excluded: extending a finished run is a legitimate resume.
fn config_fingerprint(cfg: &TrainConfig, shards: usize, h: usize, u: usize) -> u64 {
    let clip = match cfg.grad_clip {
        Some(c) => format!("{:08x}", c.to_bits()),
        None => "none".to_string(),
    };
    let canon = format!(
        "bs={};lr={:08x};clip={clip};delta={:08x};patience={};ts={};es={};shards={shards};h={h};u={u}",
        cfg.batch_size,
        cfg.lr.to_bits(),
        cfg.huber_delta.to_bits(),
        cfg.patience,
        cfg.train_stride,
        cfg.eval_stride,
    );
    stwa_ckpt::fnv1a64(canon.as_bytes())
}

/// Everything a paper table needs about one training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    pub model: String,
    pub dataset: String,
    pub epochs_run: usize,
    /// Mean wall-clock seconds per training epoch.
    pub epoch_seconds: f64,
    /// Peak live tensor bytes observed during training.
    pub peak_bytes: usize,
    /// Total scalar parameter count.
    pub param_count: usize,
    /// Best validation MAE seen (early-stopping criterion).
    pub best_val_mae: f32,
    /// Test metrics at the best validation epoch.
    pub test: Metrics,
    /// `(train_loss, val_mae)` per epoch.
    pub history: Vec<(f32, f32)>,
    /// The run manifest: config, seed, per-epoch trajectory, and —
    /// when `stwa_observe` recording was enabled — the span tree and
    /// counter/gauge snapshot.
    pub manifest: RunManifest,
}

/// Model-agnostic trainer.
pub struct Trainer {
    pub config: TrainConfig,
}

impl Trainer {
    pub fn new(config: TrainConfig) -> Trainer {
        Trainer { config }
    }

    /// Train `model` on `dataset` for horizon `(h, u)` and report the
    /// paper's measurements.
    pub fn train(
        &self,
        model: &dyn ForecastModel,
        dataset: &TrafficDataset,
        h: usize,
        u: usize,
    ) -> Result<TrainReport> {
        let cfg = &self.config;
        let trainer_span = stwa_observe::span!("trainer");
        let train = dataset.train(h, u, cfg.train_stride)?;
        let val = dataset.val(h, u, cfg.eval_stride)?;
        let test = dataset.test(h, u, cfg.eval_stride)?;
        let scaler = dataset.scaler();

        let mut manifest = RunManifest::new(model.name(), cfg.seed);
        manifest
            .config_str("model", &model.name())
            .config_str("dataset", &dataset.config().name)
            .config_num("epochs", cfg.epochs as f64)
            .config_num("batch_size", cfg.batch_size as f64)
            .config_num("lr", cfg.lr as f64)
            .config_num("huber_delta", cfg.huber_delta as f64)
            .config_num("h", h as f64)
            .config_num("u", u as f64)
            .config_num("train_stride", cfg.train_stride as f64)
            .config_num("eval_stride", cfg.eval_stride as f64);

        // Data-parallel engine: only built when the config asks for more
        // than one shard AND the model can replicate itself onto worker
        // threads. When `engine` is `None` every batch goes through the
        // unchanged sequential `train_step`.
        let engine = crate::sharded::ShardEngine::new(model, cfg.shards);
        manifest.config_num(
            "shards",
            engine.as_ref().map_or(1, |e| e.shards()) as f64,
        );

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut opt = Adam::new(model.store(), cfg.lr);
        if let Some(clip) = cfg.grad_clip {
            opt = opt.with_clip(clip);
        }

        // --- Checkpointing & resume ------------------------------------
        let config_hash =
            config_fingerprint(cfg, engine.as_ref().map_or(1, |e| e.shards()), h, u);
        let registry = match (&cfg.registry_root, cfg.save_every > 0) {
            (Some(root), true) => Some(Registry::open(root).map_err(ckpt_invalid)?),
            (None, true) => {
                return Err(stwa_tensor::TensorError::Invalid(
                    "trainer: save_every > 0 requires registry_root".into(),
                ))
            }
            _ => None,
        };
        let registry_name = cfg
            .registry_name
            .clone()
            .unwrap_or_else(|| model.name());

        memory::reset_peak();
        let mut best_val = f32::INFINITY;
        let mut best_params: Option<Vec<Tensor>> = None;
        let mut since_best = 0usize;
        let mut history = Vec::with_capacity(cfg.epochs);
        let mut start_epoch = 0usize;

        if let Some(dir) = &cfg.resume_from {
            let ckpt = TrainCheckpoint::load_dir(dir).map_err(ckpt_invalid)?;
            if ckpt.seed != cfg.seed {
                return Err(stwa_tensor::TensorError::Invalid(format!(
                    "trainer resume: checkpoint seed {} != configured seed {}",
                    ckpt.seed, cfg.seed
                )));
            }
            if ckpt.config_hash != config_hash {
                return Err(stwa_tensor::TensorError::Invalid(format!(
                    "trainer resume: config fingerprint {:#018x} != checkpoint's {:#018x} \
                     (a different batch size/lr/stride/shard count would break the \
                     bitwise-resume contract)",
                    config_hash, ckpt.config_hash
                )));
            }
            if !ckpt.has_optimizer() {
                return Err(stwa_tensor::TensorError::Invalid(
                    "trainer resume: checkpoint carries no optimizer state \
                     (params-only publishes are for serving, not resuming)"
                        .into(),
                ));
            }
            if ckpt.rng == [0; 4] {
                return Err(stwa_tensor::TensorError::Invalid(
                    "trainer resume: checkpoint RNG state is all-zero (corrupt or \
                     params-only)"
                        .into(),
                ));
            }
            ckpt.load_params_into(model.store()).map_err(ckpt_invalid)?;
            let moments = |v: &[NamedTensor]| -> Result<Vec<(String, Tensor)>> {
                v.iter()
                    .map(|t| Ok((t.name.clone(), Tensor::from_vec(t.data.clone(), &t.shape)?)))
                    .collect()
            };
            opt.import_state(AdamState {
                t: ckpt.step,
                m: moments(&ckpt.opt_m)?,
                v: moments(&ckpt.opt_v)?,
            })?;
            rng = StdRng::from_state(ckpt.rng);
            best_val = ckpt.best_val;
            since_best = ckpt.since_best;
            history = ckpt.history.clone();
            start_epoch = ckpt.epoch;
            if !ckpt.best_params.is_empty() {
                let restored = model
                    .store()
                    .params()
                    .iter()
                    .map(|p| {
                        let t = ckpt
                            .best_params
                            .iter()
                            .find(|t| t.name == p.name())
                            .ok_or_else(|| {
                                stwa_tensor::TensorError::Invalid(format!(
                                    "trainer resume: best-params blob has no '{}'",
                                    p.name()
                                ))
                            })?;
                        Tensor::from_vec(t.data.clone(), &t.shape)
                    })
                    .collect::<Result<Vec<Tensor>>>()?;
                best_params = Some(restored);
            }
            if cfg.verbose {
                eprintln!(
                    "[{}] resumed from {} at epoch {start_epoch} (step {})",
                    model.name(),
                    dir.display(),
                    ckpt.step
                );
            }
        }
        let mut epoch_times = Vec::with_capacity(cfg.epochs);
        let mut epochs_run = start_epoch;

        for epoch in start_epoch..cfg.epochs {
            let epoch_span = stwa_observe::span!("epoch");
            let started = Instant::now();
            let mut epoch_loss = 0.0f64;
            let mut epoch_kl = 0.0f64;
            let mut kl_batches = 0usize;
            let mut batches = 0usize;
            let mut shuffle_rng = StdRng::seed_from_u64(cfg.seed ^ (epoch as u64 + 1));
            let mut step = |bx: Tensor, by: Tensor| -> Result<()> {
                let (loss_val, kl_val) = match &engine {
                    Some(engine) => {
                        // One RNG draw per batch seeds every shard's
                        // stream (see `sharded::shard_seed`), keeping
                        // the whole run a pure function of (seed, k).
                        let batch_seed = rng.next_u64();
                        self.sharded_train_step(
                            model, engine, &mut opt, &scaler, bx, by, batch_seed,
                        )?
                    }
                    None => self.train_step(model, &mut opt, &scaler, bx, by, &mut rng)?,
                };
                epoch_loss += loss_val as f64;
                if let Some(kl) = kl_val {
                    epoch_kl += kl as f64;
                    kl_batches += 1;
                }
                batches += 1;
                Ok(())
            };
            if cfg.prefetch {
                // Same batches, same bits: the background gather copies
                // the rows `index_select` would, overlapped with the
                // train step (see `prefetched_batches_match_batchiter_
                // bitwise` and the trainer's prefetch parity test).
                prefetched_shuffled(&train.x, &train.y, cfg.batch_size, &mut shuffle_rng, step)?;
            } else {
                for (bx, by) in
                    BatchIter::shuffled(&train.x, &train.y, cfg.batch_size, &mut shuffle_rng)?
                {
                    step(bx, by)?;
                }
            }
            let wall = started.elapsed().as_secs_f64();
            epoch_times.push(wall);
            epochs_run = epoch + 1;
            drop(epoch_span);

            let eval_span = stwa_observe::span!("evaluate");
            let val_metrics = self.evaluate(model, &val, &scaler, &mut rng)?;
            drop(eval_span);
            let train_loss = (epoch_loss / batches.max(1) as f64) as f32;
            history.push((train_loss, val_metrics.mae));
            stwa_observe::gauge!("trainer.lr").set(cfg.lr as f64);
            stwa_observe::gauge!("trainer.train_loss").set(train_loss as f64);
            stwa_observe::gauge!("trainer.val_mae").set(val_metrics.mae as f64);
            manifest.epochs.push(EpochRecord {
                epoch,
                train_loss: train_loss as f64,
                val_metric: Some(val_metrics.mae as f64),
                kl: (kl_batches > 0).then(|| epoch_kl / kl_batches as f64),
                lr: cfg.lr as f64,
                wall_seconds: wall,
            });
            if cfg.verbose {
                eprintln!(
                    "[{}] epoch {epoch}: train loss {train_loss:.4}, val {val_metrics}",
                    model.name()
                );
            }
            if val_metrics.mae < best_val {
                best_val = val_metrics.mae;
                best_params = Some(model.store().params().iter().map(|p| p.value()).collect());
                since_best = 0;
            } else {
                since_best += 1;
            }
            let stop = since_best > 0 && since_best >= cfg.patience;

            // Publish a checkpoint at the epoch boundary. Everything a
            // bitwise resume needs is captured *after* the evaluation
            // (which never draws from `rng`, so this state is exactly
            // what the next epoch would start from).
            if let Some(reg) = &registry {
                if (epoch + 1) % cfg.save_every == 0 {
                    let state = opt.export_state();
                    let to_named = |v: Vec<(String, Tensor)>| -> Vec<NamedTensor> {
                        v.into_iter()
                            .map(|(name, t)| NamedTensor {
                                name,
                                shape: t.shape().to_vec(),
                                data: t.into_vec(),
                            })
                            .collect()
                    };
                    let best_named: Vec<NamedTensor> = match &best_params {
                        Some(ts) => model
                            .store()
                            .params()
                            .iter()
                            .zip(ts)
                            .map(|(p, t)| NamedTensor {
                                name: p.name().to_string(),
                                shape: t.shape().to_vec(),
                                data: t.data().to_vec(),
                            })
                            .collect(),
                        None => Vec::new(),
                    };
                    let ckpt = TrainCheckpoint {
                        model: model.name(),
                        seed: cfg.seed,
                        config_hash,
                        epoch: epoch + 1,
                        step: state.t,
                        rng: rng.state(),
                        best_val,
                        since_best,
                        history: history.clone(),
                        params: capture_params(model.store()),
                        opt_m: to_named(state.m),
                        opt_v: to_named(state.v),
                        best_params: best_named,
                    };
                    let version =
                        reg.publish(&registry_name, &ckpt).map_err(ckpt_invalid)?;
                    if cfg.keep_checkpoints > 0 {
                        reg.prune(&registry_name, cfg.keep_checkpoints)
                            .map_err(ckpt_invalid)?;
                    }
                    stwa_observe::counter!("train.checkpoints").incr();
                    if cfg.verbose {
                        eprintln!(
                            "[{}] epoch {epoch}: published checkpoint '{registry_name}' v{version}",
                            model.name()
                        );
                    }
                }
            }
            if stop {
                break;
            }
        }

        // Restore the best-validation weights before the test pass.
        if let Some(best) = best_params {
            for (p, v) in model.store().params().iter().zip(best) {
                p.set_value(v);
            }
        }
        let peak = memory::peak_bytes();
        let test_metrics = self.evaluate(model, &test, &scaler, &mut rng)?;

        // Close the trainer span before snapshotting so its own timing
        // (not just a synthesized zero-count parent) lands in the tree.
        drop(trainer_span);
        manifest.capture_runtime();
        if let Some(path) = &cfg.manifest_path {
            manifest
                .write_to(path)
                .map_err(|e| stwa_tensor::TensorError::Invalid(format!(
                    "trainer: failed to write manifest to {}: {e}",
                    path.display()
                )))?;
        }

        Ok(TrainReport {
            model: model.name(),
            dataset: dataset.config().name.clone(),
            epochs_run,
            epoch_seconds: epoch_times.iter().sum::<f64>() / epoch_times.len().max(1) as f64,
            peak_bytes: peak,
            param_count: model.store().num_scalars(),
            best_val_mae: best_val,
            test: test_metrics,
            history,
            manifest,
        })
    }

    fn train_step(
        &self,
        model: &dyn ForecastModel,
        opt: &mut Adam,
        scaler: &Scaler,
        bx: Tensor,
        by: Tensor,
        rng: &mut StdRng,
    ) -> Result<(f32, Option<f32>)> {
        let _span = stwa_observe::span!("train_step");
        let graph = Graph::new();
        let x = graph.constant(bx);
        let out = model.forward(&graph, &x, rng, true)?;
        // De-normalize predictions so the Huber loss lives in the raw
        // flow scale, like the paper's reported metrics.
        let pred_raw = out.pred.mul_scalar(scaler.std).add_scalar(scaler.mean);
        let target = graph.constant(by);
        let mut loss = huber(&pred_raw, &target, self.config.huber_delta)?;
        let kl_val = match out.regularizer {
            Some(reg) => {
                let kl = reg.value().item()?;
                loss = loss.add(&reg)?;
                Some(kl)
            }
            None => None,
        };
        let loss_val = loss.value().item()?;
        graph.backward(&loss)?;
        let opt_span = stwa_observe::span!("optimizer");
        opt.step();
        opt.finish_step();
        drop(opt_span);
        Ok((loss_val, kl_val))
    }

    /// One data-parallel step: the engine shards the batch, reduces
    /// gradients in fixed order into the live parameters, and this
    /// method runs the same optimizer sequence as the sequential step.
    #[allow(clippy::too_many_arguments)]
    fn sharded_train_step(
        &self,
        model: &dyn ForecastModel,
        engine: &crate::sharded::ShardEngine,
        opt: &mut Adam,
        scaler: &Scaler,
        bx: Tensor,
        by: Tensor,
        batch_seed: u64,
    ) -> Result<(f32, Option<f32>)> {
        let _span = stwa_observe::span!("train_step");
        let (loss_val, kl_val) = engine.train_batch(
            model,
            bx,
            by,
            batch_seed,
            self.config.huber_delta,
            scaler.mean,
            scaler.std,
        )?;
        let opt_span = stwa_observe::span!("optimizer");
        opt.step();
        opt.finish_step();
        drop(opt_span);
        Ok((loss_val, kl_val))
    }

    /// Evaluate on a split: batched forward passes, de-normalized
    /// predictions vs. raw targets.
    pub fn evaluate(
        &self,
        model: &dyn ForecastModel,
        split: &SplitTensors,
        scaler: &Scaler,
        rng: &mut StdRng,
    ) -> Result<Metrics> {
        let preds = self.predict(model, &split.x, scaler, rng)?;
        Ok(Metrics::compute(&preds, &split.y))
    }

    /// Monte-Carlo predictive distribution from a stochastic model:
    /// run `samples` sampling forward passes (training-mode latents) and
    /// return the per-element mean and standard deviation of the
    /// raw-scale predictions.
    ///
    /// For deterministic models every draw coincides, so the returned
    /// std is ~0 — callers can use that as a capability probe. This is a
    /// capability the paper's stochastic design enables but never
    /// exercises: the latent `Theta_t^(i)` induces a distribution over
    /// model parameters and therefore over forecasts.
    pub fn predict_with_uncertainty(
        &self,
        model: &dyn ForecastModel,
        x: &Tensor,
        scaler: &Scaler,
        rng: &mut StdRng,
        samples: usize,
    ) -> Result<(Tensor, Tensor)> {
        if samples == 0 {
            return Err(stwa_tensor::TensorError::Invalid(
                "predict_with_uncertainty: need at least one sample".into(),
            ));
        }
        let mut sum: Option<Tensor> = None;
        let mut sum_sq: Option<Tensor> = None;
        for _ in 0..samples {
            // training = true: latents are *sampled*, which is the whole
            // point here.
            let draw = self.batched_forward(model, x, scaler, rng, true)?;
            sum = Some(match sum {
                None => draw.clone(),
                Some(acc) => acc.add(&draw)?,
            });
            let sq = draw.square();
            sum_sq = Some(match sum_sq {
                None => sq,
                Some(acc) => acc.add(&sq)?,
            });
        }
        let mean = sum.expect("samples >= 1").mul_scalar(1.0 / samples as f32);
        // Var = E[x^2] - E[x]^2, floored at 0 against float cancellation.
        let var = sum_sq
            .expect("samples >= 1")
            .mul_scalar(1.0 / samples as f32)
            .sub(&mean.square())?
            .relu();
        Ok((mean, var.sqrt()))
    }

    /// Raw-scale predictions for a whole normalized input tensor.
    pub fn predict(
        &self,
        model: &dyn ForecastModel,
        x: &Tensor,
        scaler: &Scaler,
        rng: &mut StdRng,
    ) -> Result<Tensor> {
        self.batched_forward(model, x, scaler, rng, false)
    }

    /// One full pass over `x` in batches of `batch_size`, de-normalized
    /// into a single preallocated output — the shared engine of
    /// [`Trainer::predict`] and [`Trainer::predict_with_uncertainty`].
    ///
    /// Batch axis 0 is contiguous in row-major layout, so each chunk's
    /// prediction lands at `start * row_len` by a straight
    /// `copy_from_slice`; the result is bitwise identical to the old
    /// collect-then-`concat` formulation while skipping the
    /// per-chunk `Vec<Tensor>` and the final concatenation copy.
    fn batched_forward(
        &self,
        model: &dyn ForecastModel,
        x: &Tensor,
        scaler: &Scaler,
        rng: &mut StdRng,
        training: bool,
    ) -> Result<Tensor> {
        let num = x.shape()[0];
        let bs = self.config.batch_size;
        if num == 0 {
            return Err(stwa_tensor::TensorError::Invalid(
                "batched_forward: empty input".into(),
            ));
        }
        // Output geometry is only known after the first forward pass.
        let mut out: Vec<f32> = Vec::new();
        let mut out_shape: Vec<usize> = Vec::new();
        let mut row_len = 0usize;
        let mut start = 0;
        while start < num {
            let take = bs.min(num - start);
            let bx = x.narrow(0, start, take)?;
            let pred = if training {
                let graph = Graph::new();
                let xv = graph.constant(bx);
                let out = model.forward(&graph, &xv, rng, training)?;
                out.pred.value().as_ref().clone()
            } else {
                // Evaluation takes the tape-free path: no autograd
                // nodes, same kernels, bitwise-identical predictions.
                model.forward_eval(&bx)?
            };
            let raw = scaler.inverse(&pred);
            if out_shape.is_empty() {
                out_shape = raw.shape().to_vec();
                out_shape[0] = num;
                row_len = raw.data().len() / take;
                out = vec![0f32; num * row_len];
            } else if raw.shape()[1..] != out_shape[1..] {
                return Err(stwa_tensor::TensorError::Invalid(format!(
                    "batched_forward: chunk shape {:?} disagrees with {:?}",
                    raw.shape(),
                    out_shape
                )));
            }
            out[start * row_len..start * row_len + raw.data().len()]
                .copy_from_slice(raw.data());
            start += take;
        }
        Tensor::from_vec(out, &out_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{StwaConfig, StwaModel};
    use stwa_traffic::DatasetConfig;

    fn quick_trainer(epochs: usize) -> Trainer {
        Trainer::new(TrainConfig {
            epochs,
            batch_size: 16,
            train_stride: 6,
            eval_stride: 6,
            ..TrainConfig::default()
        })
    }

    #[test]
    fn training_reduces_loss_and_reports() {
        let dataset = TrafficDataset::generate(DatasetConfig::small());
        let n = dataset.num_sensors();
        let mut rng = StdRng::seed_from_u64(0);
        let model = StwaModel::new(StwaConfig::wa(n, 12, 3), &mut rng).unwrap();
        let report = quick_trainer(4).train(&model, &dataset, 12, 3).unwrap();
        assert_eq!(report.model, "WA");
        assert_eq!(report.dataset, "SMALL");
        assert!(report.epochs_run >= 1 && report.epochs_run <= 4);
        assert!(report.epoch_seconds > 0.0);
        assert!(report.param_count > 0);
        assert!(report.peak_bytes > 0);
        let first = report.history.first().unwrap().0;
        let last = report.history.last().unwrap().0;
        assert!(last < first, "training loss should fall: {first} -> {last}");
        assert!(report.test.mae.is_finite() && report.test.mae > 0.0);
    }

    #[test]
    fn st_wa_trains_end_to_end() {
        let dataset = TrafficDataset::generate(DatasetConfig::small());
        let n = dataset.num_sensors();
        let mut rng = StdRng::seed_from_u64(1);
        let model = StwaModel::new(StwaConfig::st_wa(n, 12, 3), &mut rng).unwrap();
        let report = quick_trainer(3).train(&model, &dataset, 12, 3).unwrap();
        assert!(report.test.mae.is_finite());
        assert!(report
            .history
            .iter()
            .all(|(l, v)| l.is_finite() && v.is_finite()));
    }

    #[test]
    fn prefetched_training_is_bitwise_identical() {
        // The double-buffered loader must not change a single bit of
        // the trajectory: same batches, same RNG draws, same params.
        let dataset = TrafficDataset::generate(DatasetConfig::small());
        let n = dataset.num_sensors();
        let run = |prefetch: bool| -> (Vec<(f32, f32)>, Vec<Vec<f32>>) {
            let mut rng = StdRng::seed_from_u64(3);
            let model = StwaModel::new(StwaConfig::wa(n, 12, 3), &mut rng).unwrap();
            let trainer = Trainer::new(TrainConfig {
                epochs: 2,
                batch_size: 16,
                train_stride: 6,
                eval_stride: 6,
                shards: 1,
                prefetch,
                ..TrainConfig::default()
            });
            let report = trainer.train(&model, &dataset, 12, 3).unwrap();
            let params = model
                .store()
                .params()
                .iter()
                .map(|p| p.value().data().to_vec())
                .collect();
            (report.history, params)
        };
        let (hist_on, params_on) = run(true);
        let (hist_off, params_off) = run(false);
        assert_eq!(hist_on, hist_off, "loss histories diverged");
        assert_eq!(params_on, params_off, "trained parameters diverged");
    }

    #[test]
    fn predictions_beat_naive_zero_after_training() {
        // A trained model must at least outperform predicting 0 flow.
        let dataset = TrafficDataset::generate(DatasetConfig::small());
        let n = dataset.num_sensors();
        let mut rng = StdRng::seed_from_u64(2);
        let model = StwaModel::new(StwaConfig::wa(n, 12, 3), &mut rng).unwrap();
        let trainer = quick_trainer(5);
        let report = trainer.train(&model, &dataset, 12, 3).unwrap();
        let test = dataset.test(12, 3, 6).unwrap();
        let zero = Tensor::zeros(test.y.shape());
        let zero_mae = stwa_traffic::mae(&zero, &test.y);
        assert!(
            report.test.mae < zero_mae * 0.6,
            "model MAE {} vs zero-predictor {zero_mae}",
            report.test.mae
        );
    }

    #[test]
    fn uncertainty_zero_for_deterministic_positive_for_stochastic() {
        let dataset = TrafficDataset::generate(DatasetConfig::small());
        let n = dataset.num_sensors();
        let trainer = quick_trainer(1);
        let split = dataset.test(12, 3, 8).unwrap();
        let mut rng = StdRng::seed_from_u64(5);

        let det = StwaModel::new(StwaConfig::deterministic(n, 12, 3), &mut rng).unwrap();
        let (mean_d, std_d) = trainer
            .predict_with_uncertainty(&det, &split.x, &dataset.scaler(), &mut rng, 4)
            .unwrap();
        assert_eq!(mean_d.shape(), split.y.shape());
        assert!(
            std_d.max_all() < 1e-3,
            "deterministic spread {}",
            std_d.max_all()
        );

        let sto = StwaModel::new(StwaConfig::st_wa(n, 12, 3), &mut rng).unwrap();
        let (_, std_s) = trainer
            .predict_with_uncertainty(&sto, &split.x, &dataset.scaler(), &mut rng, 4)
            .unwrap();
        assert!(
            std_s.max_all() > 1e-3,
            "stochastic spread {}",
            std_s.max_all()
        );
        assert!(!std_s.has_non_finite());
        // Zero samples rejected.
        assert!(trainer
            .predict_with_uncertainty(&sto, &split.x, &dataset.scaler(), &mut rng, 0)
            .is_err());
    }

    #[test]
    fn evaluate_uses_nograd_path_with_bitwise_identical_metrics() {
        // Rewiring evaluation onto the tape-free forward must not move
        // a single bit of the reported metrics: compare against a
        // manual graph-path evaluation of the same split.
        let dataset = TrafficDataset::generate(DatasetConfig::small());
        let n = dataset.num_sensors();
        let mut rng = StdRng::seed_from_u64(9);
        let model = StwaModel::new(StwaConfig::st_wa(n, 12, 3), &mut rng).unwrap();
        let trainer = quick_trainer(1);
        let split = dataset.test(12, 3, 6).unwrap();
        let scaler = dataset.scaler();

        let via_eval = trainer.evaluate(&model, &split, &scaler, &mut rng).unwrap();

        // Manual graph-path reference, batched identically.
        let num = split.x.shape()[0];
        let bs = trainer.config.batch_size;
        let mut chunks: Vec<Tensor> = Vec::new();
        let mut start = 0;
        while start < num {
            let take = bs.min(num - start);
            let bx = split.x.narrow(0, start, take).unwrap();
            let graph = Graph::new();
            let xv = graph.constant(bx);
            let out = model.forward(&graph, &xv, &mut rng, false).unwrap();
            chunks.push(scaler.inverse(&out.pred.value()));
            start += take;
        }
        let refs: Vec<&Tensor> = chunks.iter().collect();
        let graph_preds = stwa_tensor::manip::concat(&refs, 0).unwrap();
        let via_graph = Metrics::compute(&graph_preds, &split.y);

        assert_eq!(via_eval.mae.to_bits(), via_graph.mae.to_bits());
        assert_eq!(via_eval.rmse.to_bits(), via_graph.rmse.to_bits());
        assert_eq!(via_eval.mape.to_bits(), via_graph.mape.to_bits());
    }

    #[test]
    fn predict_writes_in_place_bitwise_equal_to_concat() {
        // The preallocated batched_forward must reproduce the old
        // collect-then-concat output bit for bit, including on a split
        // whose last batch is ragged.
        let dataset = TrafficDataset::generate(DatasetConfig::small());
        let n = dataset.num_sensors();
        let mut rng = StdRng::seed_from_u64(13);
        let model = StwaModel::new(StwaConfig::st_wa(n, 12, 3), &mut rng).unwrap();
        let trainer = quick_trainer(1);
        let split = dataset.test(12, 3, 6).unwrap();
        let scaler = dataset.scaler();
        let num = split.x.shape()[0];
        let bs = trainer.config.batch_size;
        assert!(
            !num.is_multiple_of(bs),
            "want a ragged tail batch, got {num} % {bs}"
        );

        let in_place = trainer
            .predict(&model, &split.x, &scaler, &mut rng)
            .unwrap();

        // Old formulation as the reference.
        let mut chunks: Vec<Tensor> = Vec::new();
        let mut start = 0;
        while start < num {
            let take = bs.min(num - start);
            let bx = split.x.narrow(0, start, take).unwrap();
            chunks.push(scaler.inverse(&model.forward_eval(&bx).unwrap()));
            start += take;
        }
        let refs: Vec<&Tensor> = chunks.iter().collect();
        let concatenated = stwa_tensor::manip::concat(&refs, 0).unwrap();

        assert_eq!(in_place.shape(), concatenated.shape());
        for (a, b) in in_place.data().iter().zip(concatenated.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // Empty inputs are rejected instead of producing a 0-row tensor.
        let empty = Tensor::zeros(&[0, n, 12, 1]);
        assert!(trainer.predict(&model, &empty, &scaler, &mut rng).is_err());
    }

    #[test]
    fn predict_covers_all_samples() {
        let dataset = TrafficDataset::generate(DatasetConfig::small());
        let n = dataset.num_sensors();
        let mut rng = StdRng::seed_from_u64(3);
        let model = StwaModel::new(StwaConfig::wa(n, 12, 3), &mut rng).unwrap();
        let trainer = quick_trainer(1);
        let split = dataset.test(12, 3, 6).unwrap();
        let preds = trainer
            .predict(&model, &split.x, &dataset.scaler(), &mut rng)
            .unwrap();
        assert_eq!(preds.shape(), split.y.shape());
    }
}
