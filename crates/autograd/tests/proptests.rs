//! Property-based verification of the autodiff engine: every public op
//! composition must match central differences on arbitrary inputs, and
//! the tape must obey basic calculus identities.

use proptest::prelude::*;
use stwa_autograd::{check_gradient, Graph};
use stwa_tensor::Tensor;

fn bounded(len: usize, lo: f32, hi: f32) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(lo..hi, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chain_rule_matches_numeric(data in bounded(6, -1.0, 1.0)) {
        let x = Tensor::from_vec(data, &[6]).unwrap();
        let r = check_gradient(&x, 1e-2, |v| {
            v.mul_scalar(1.5).tanh().exp().mean_all()
        }).unwrap();
        prop_assert!(r.passes(3e-2), "{r:?}");
    }

    #[test]
    fn product_rule_matches_numeric(data in bounded(4, 0.2, 1.5)) {
        let x = Tensor::from_vec(data, &[4]).unwrap();
        let r = check_gradient(&x, 1e-2, |v| {
            // f = x * ln(x) — both factors depend on x.
            v.mul(&v.ln())?.sum_all()
        }).unwrap();
        prop_assert!(r.passes(3e-2), "{r:?}");
    }

    #[test]
    fn matmul_grad_matches_numeric(data in bounded(6, -1.0, 1.0)) {
        let x = Tensor::from_vec(data, &[2, 3]).unwrap();
        let r = check_gradient(&x, 1e-2, |v| {
            let w = v.graph().constant(Tensor::from_fn(&[3, 3], |i| {
                0.2 * (i[0] as f32) - 0.3 * (i[1] as f32) + 0.1
            }));
            v.matmul(&w)?.square()?.mean_all()
        }).unwrap();
        prop_assert!(r.passes(3e-2), "{r:?}");
    }

    #[test]
    fn softmax_composite_grad(data in bounded(8, -2.0, 2.0)) {
        let x = Tensor::from_vec(data, &[2, 4]).unwrap();
        let r = check_gradient(&x, 1e-2, |v| {
            let w = v.graph().constant(Tensor::from_fn(&[2, 4], |i| (i[1] + 1) as f32));
            v.softmax(1)?.mul(&w)?.sum_all()
        }).unwrap();
        prop_assert!(r.passes(3e-2), "{r:?}");
    }

    #[test]
    fn gradient_of_constant_branch_is_exact_value(data in bounded(3, -2.0, 2.0), c in -3.0f32..3.0) {
        // d/dx sum(c * x) = c exactly, independent of x.
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(data, &[3]).unwrap());
        let cv = g.constant(Tensor::full(&[3], c));
        let loss = x.mul(&cv).unwrap().sum_all().unwrap();
        g.backward(&loss).unwrap();
        let dx = g.grad(&x).unwrap();
        prop_assert!(dx.approx_eq(&Tensor::full(&[3], c), 1e-6));
    }

    #[test]
    fn backward_twice_accumulates(data in bounded(3, -2.0, 2.0)) {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(data.clone(), &[3]).unwrap());
        let loss = x.square().unwrap().sum_all().unwrap();
        g.backward(&loss).unwrap();
        let once = g.grad(&x).unwrap();
        g.backward(&loss).unwrap();
        let twice = g.grad(&x).unwrap();
        prop_assert!(twice.approx_eq(&once.mul_scalar(2.0), 1e-5));
        // zero_grads resets the accumulation.
        g.zero_grads();
        prop_assert!(g.grad(&x).is_none());
    }

    #[test]
    fn sum_then_grad_is_ones_everywhere(shape_rows in 1usize..4, shape_cols in 1usize..4) {
        let g = Graph::new();
        let x = g.leaf(Tensor::zeros(&[shape_rows, shape_cols]));
        let loss = x.sum_all().unwrap();
        g.backward(&loss).unwrap();
        prop_assert!(g.grad(&x).unwrap().approx_eq(&Tensor::ones(&[shape_rows, shape_cols]), 0.0));
    }

    #[test]
    fn concat_then_split_grad_is_partition(a_len in 1usize..4, b_len in 1usize..4) {
        let g = Graph::new();
        let a = g.leaf(Tensor::zeros(&[a_len]));
        let b = g.leaf(Tensor::zeros(&[b_len]));
        let joined = stwa_autograd::concat(&[&a, &b], 0).unwrap();
        let loss = joined.mul_scalar(2.0).sum_all().unwrap();
        g.backward(&loss).unwrap();
        prop_assert!(g.grad(&a).unwrap().approx_eq(&Tensor::full(&[a_len], 2.0), 0.0));
        prop_assert!(g.grad(&b).unwrap().approx_eq(&Tensor::full(&[b_len], 2.0), 0.0));
    }

    #[test]
    fn broadcast_grad_counts_uses(rows in 1usize..5, data in bounded(3, -1.0, 1.0)) {
        // x: [3] broadcast over `rows` rows; each element used `rows`
        // times, so d sum / dx = rows.
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(data, &[3]).unwrap());
        let big = x.broadcast_to(&[rows, 3]).unwrap();
        let loss = big.sum_all().unwrap();
        g.backward(&loss).unwrap();
        prop_assert!(g
            .grad(&x)
            .unwrap()
            .approx_eq(&Tensor::full(&[3], rows as f32), 1e-6));
    }
}
