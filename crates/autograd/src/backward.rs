//! The backward sweep: one VJP per recorded op.
//!
//! Two memory disciplines matter here. Gradients accumulate **in
//! place**: every contribution lands via `add_assign` (an axpy into the
//! existing buffer) and the only clone left is the unavoidable one that
//! materializes the first contribution into an empty slot. And the hot
//! elementwise VJPs have **fused** forms — single `zip` passes spelling
//! the same per-element expressions as the reference chains — dispatched
//! when [`stwa_tensor::memory::fused_enabled`] is on. The reference
//! chains stay in-tree as the `else` branches; the equality proptests
//! toggle the flag and assert bitwise-identical gradients.

use crate::graph::{ActKind, Graph, Id, Node, Op, Var};
use std::rc::Rc;
use stwa_tensor::memory::fused_enabled;
use stwa_tensor::{linalg, Result, Tensor, TensorError};

impl Graph {
    /// Run reverse-mode differentiation from `loss` (which must hold a
    /// single element), filling each reachable gradient-requiring node's
    /// `grad`.
    ///
    /// *Leaf* gradients accumulate across calls (PyTorch-style); use
    /// [`Graph::zero_grads`] to reset them. Intermediate gradients are
    /// per-sweep scratch and are cleared at the start of each call.
    pub fn backward(&self, loss: &Var) -> Result<()> {
        if !Rc::ptr_eq(&self.inner, &loss.graph.inner) {
            return Err(TensorError::Invalid(
                "backward: loss belongs to a different graph".into(),
            ));
        }
        {
            let nodes = self.inner.borrow();
            let value = &nodes[loss.id].value;
            if value.len() != 1 {
                return Err(TensorError::Invalid(format!(
                    "backward: loss must be a single element, got shape {:?}",
                    value.shape()
                )));
            }
        }
        let _span = stwa_observe::span!("backward");
        stwa_observe::counter!("backward.calls").incr();
        let mut nodes = self.inner.borrow_mut();
        // Leaf gradients accumulate across backward calls (PyTorch-style),
        // but *intermediate* gradients are per-sweep scratch: stale values
        // from a previous backward would re-propagate and double-count.
        // The buffers themselves are retained (marked stale) so this
        // sweep's first contribution to each node lands as an in-place
        // overwrite instead of a fresh pool allocation.
        for node in nodes.iter_mut() {
            if !matches!(node.op, Op::Leaf) && node.grad.is_some() {
                node.grad_stale = true;
            }
        }
        seed(&mut nodes, loss.id);
        // Node ids are a topological order (ops only reference earlier
        // ids), so a reverse sweep visits every node after all of its
        // consumers.
        for id in (0..=loss.id).rev() {
            if !nodes[id].requires_grad || nodes[id].grad_stale {
                continue;
            }
            // Take the gradient out instead of cloning it: this node is
            // fully accumulated (all consumers have higher ids and were
            // already visited), and `propagate` only writes to lower ids.
            let Some(grad) = nodes[id].grad.take() else {
                continue;
            };
            let op = nodes[id].op.clone();
            let out_value = Rc::clone(&nodes[id].value);
            // Per-op-kind grad timing: spans aggregate by path, so e.g.
            // every matmul VJP of this sweep folds into "backward/matmul".
            let op_span = stwa_observe::scope(op.kind_name());
            propagate(&mut nodes, &op, &grad, &out_value)?;
            drop(op_span);
            nodes[id].grad = Some(grad);
        }
        Ok(())
    }
}

fn seed(nodes: &mut [Node], id: Id) {
    let shape = nodes[id].value.shape().to_vec();
    // A stale slot is logically empty, and overwriting its retained
    // buffer with 1.0 is bit-for-bit the seed tensor — no allocation.
    if reuse_stale(&mut nodes[id], &shape, |buf| buf.fill(1.0)) {
        return;
    }
    // Accumulate rather than overwrite: when the loss node is itself a
    // leaf, its gradient must keep accumulating across backward calls
    // like every other leaf (non-leaf losses were just cleared, so this
    // is equivalent to assignment for them).
    let ones = Tensor::ones(&shape);
    match &mut nodes[id].grad {
        Some(existing) => {
            existing.add_assign(&ones).expect("seed shape matches");
        }
        slot @ None => *slot = Some(ones),
    }
}

/// Try to serve a "first write" into `node`'s stale gradient buffer by
/// overwriting it in place via `write`. Returns false (after clearing
/// the slot) when there is no reusable buffer of the right shape, in
/// which case the caller materializes a fresh gradient as if the slot
/// had been `None`. Overwriting is a plain store of the incoming bits,
/// so the result is bitwise-identical to dropping the buffer and
/// inserting a new tensor.
fn reuse_stale(node: &mut Node, shape: &[usize], write: impl FnOnce(&mut [f32])) -> bool {
    if !node.grad_stale {
        return false;
    }
    node.grad_stale = false;
    if let Some(existing) = node.grad.as_mut() {
        if existing.shape() == shape {
            write(existing.data_mut());
            stwa_observe::counter!("alloc.grad_reuse").incr();
            return true;
        }
    }
    node.grad = None;
    false
}

/// Accumulate an owned gradient contribution: axpy into the existing
/// buffer, or move the tensor into an empty slot (no copy at all).
fn accumulate(nodes: &mut [Node], id: Id, grad: Tensor) -> Result<()> {
    if !nodes[id].requires_grad {
        return Ok(());
    }
    let shape = grad.shape().to_vec();
    if reuse_stale(&mut nodes[id], &shape, |buf| buf.copy_from_slice(grad.data())) {
        return Ok(());
    }
    match &mut nodes[id].grad {
        Some(existing) => existing.add_assign(&grad),
        slot @ None => {
            *slot = Some(grad);
            Ok(())
        }
    }
}

/// Accumulate a borrowed gradient contribution in place. Cloning happens
/// only when the slot is empty (the buffer has to come from somewhere —
/// and then it comes from the pool); an occupied slot takes the in-place
/// axpy, and a stale slot is overwritten in place.
fn accumulate_ref(nodes: &mut [Node], id: Id, grad: &Tensor) -> Result<()> {
    if !nodes[id].requires_grad {
        return Ok(());
    }
    let shape = grad.shape().to_vec();
    if reuse_stale(&mut nodes[id], &shape, |buf| buf.copy_from_slice(grad.data())) {
        return Ok(());
    }
    match &mut nodes[id].grad {
        Some(existing) => existing.add_assign(grad),
        slot @ None => {
            *slot = Some(grad.clone());
            Ok(())
        }
    }
}

/// Reduce `grad` down to `id`'s value shape (inverting broadcasting) and
/// accumulate it. The common case — shapes already equal — takes the
/// by-reference path with no intermediate tensor; only genuinely
/// broadcast ops pay for the summed reduction.
fn accumulate_reduced(nodes: &mut [Node], id: Id, grad: &Tensor) -> Result<()> {
    if !nodes[id].requires_grad {
        return Ok(());
    }
    let target = Rc::clone(&nodes[id].value);
    if grad.shape() == target.shape() {
        accumulate_ref(nodes, id, grad)
    } else {
        let g = reduce_to_shape(grad, target.shape())?;
        accumulate(nodes, id, g)
    }
}

/// Sum `grad` down to `shape`, inverting broadcasting: extra leading axes
/// are summed away and axes that were expanded from length 1 are summed
/// back to length 1.
fn reduce_to_shape(grad: &Tensor, shape: &[usize]) -> Result<Tensor> {
    if grad.shape() == shape {
        return Ok(grad.clone());
    }
    let mut g = grad.clone();
    while g.rank() > shape.len() {
        g = g.sum_axis(0, false)?;
    }
    for (axis, (&gs, &ts)) in g.shape().to_vec().iter().zip(shape.iter()).enumerate() {
        if ts == 1 && gs != 1 {
            g = g.sum_axis(axis, true)?;
        }
    }
    if g.shape() != shape {
        // Ranks matched but some axis disagreed without being 1: the
        // forward op would have failed, so this indicates a bug.
        return Err(TensorError::ShapeMismatch {
            op: "reduce_to_shape",
            lhs: grad.shape().to_vec(),
            rhs: shape.to_vec(),
        });
    }
    Ok(g)
}

fn value_of(nodes: &[Node], id: Id) -> Rc<Tensor> {
    Rc::clone(&nodes[id].value)
}

fn propagate(nodes: &mut [Node], op: &Op, grad: &Tensor, out: &Tensor) -> Result<()> {
    match *op {
        Op::Leaf => Ok(()),

        Op::Add(a, b) => {
            accumulate_reduced(nodes, a, grad)?;
            accumulate_reduced(nodes, b, grad)
        }

        Op::Sub(a, b) => {
            accumulate_reduced(nodes, a, grad)?;
            accumulate_reduced(nodes, b, &grad.neg())
        }

        Op::Mul(a, b) => {
            let av = value_of(nodes, a);
            let bv = value_of(nodes, b);
            accumulate_reduced(nodes, a, &grad.mul(&bv)?)?;
            accumulate_reduced(nodes, b, &grad.mul(&av)?)
        }

        Op::Div(a, b) => {
            let av = value_of(nodes, a);
            let bv = value_of(nodes, b);
            // d(a/b)/da = 1/b ; d(a/b)/db = -a/b^2
            accumulate_reduced(nodes, a, &grad.div(&bv)?)?;
            let b2 = bv.square();
            let gb_full = grad.mul(&av)?.div(&b2)?.neg();
            accumulate_reduced(nodes, b, &gb_full)
        }

        Op::Neg(x) => accumulate(nodes, x, grad.neg()),

        // exp'(x) = exp(x) = out
        Op::Exp(x) => accumulate(nodes, x, grad.mul(out)?),

        // ln'(x) = 1/x
        Op::Ln(x) => {
            let xv = value_of(nodes, x);
            accumulate(nodes, x, grad.div(&xv)?)
        }

        // sqrt'(x) = 1 / (2 sqrt(x)) = 1 / (2 out)
        Op::Sqrt(x) => {
            let gx = grad.div(&out.mul_scalar(2.0))?;
            accumulate(nodes, x, gx)
        }

        // tanh'(x) = 1 - out^2. Fused: one zip spelling the reference's
        // exact expression g * ((y*y)*(-1) + 1), replacing the
        // square/affine/mul three-tensor chain.
        Op::Tanh(x) => {
            let gx = if fused_enabled() {
                grad.zip(out, "tanh_vjp", |g, y| g * (-(y * y) + 1.0))?
            } else {
                grad.mul(&out.square().affine(-1.0, 1.0))?
            };
            accumulate(nodes, x, gx)
        }

        // sigmoid'(x) = out (1 - out)
        Op::Sigmoid(x) => {
            let gx = if fused_enabled() {
                grad.zip(out, "sigmoid_vjp", |g, y| g * (y * (-y + 1.0)))?
            } else {
                grad.mul(&out.mul(&out.affine(-1.0, 1.0))?)?
            };
            accumulate(nodes, x, gx)
        }

        Op::Relu(x) => {
            let xv = value_of(nodes, x);
            let gx = if fused_enabled() {
                grad.zip(&xv, "relu_vjp", |g, v| {
                    g * (if v > 0.0 { 1.0 } else { 0.0 })
                })?
            } else {
                let mask = xv.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                grad.mul(&mask)?
            };
            accumulate(nodes, x, gx)
        }

        Op::Abs(x) => {
            let xv = value_of(nodes, x);
            let sign_of = |v: f32| {
                if v > 0.0 {
                    1.0
                } else if v < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            };
            let gx = if fused_enabled() {
                grad.zip(&xv, "abs_vjp", |g, v| g * sign_of(v))?
            } else {
                let sign = xv.map(sign_of);
                grad.mul(&sign)?
            };
            accumulate(nodes, x, gx)
        }

        Op::Square(x) => {
            let xv = value_of(nodes, x);
            let gx = if fused_enabled() {
                grad.zip(&xv, "square_vjp", |g, v| g * (v * 2.0))?
            } else {
                grad.mul(&xv.mul_scalar(2.0))?
            };
            accumulate(nodes, x, gx)
        }

        Op::AddScalar(x) => accumulate_ref(nodes, x, grad),

        Op::MulScalar(x, s) => accumulate(nodes, x, grad.mul_scalar(s)),

        Op::Matmul(a, b) => {
            let av = value_of(nodes, a);
            let bv = value_of(nodes, b);
            // dA = g @ Bᵀ and dB = Aᵀ @ g, both through the fused
            // transposed kernels (no materialized transpose copies),
            // reduced over broadcast batch dims.
            let ga_full = linalg::matmul_nt(grad, &bv)?;
            accumulate_reduced(nodes, a, &ga_full)?;
            drop(ga_full);
            let gb_full = linalg::matmul_tn(&av, grad)?;
            accumulate_reduced(nodes, b, &gb_full)
        }

        Op::MatmulNT(a, b) => {
            let av = value_of(nodes, a);
            let bv = value_of(nodes, b);
            // C = A @ Bᵀ with B stored [..., n, k]:
            // dA = g @ B (the transposes cancel), dB = gᵀ @ A.
            let ga_full = linalg::matmul(grad, &bv)?;
            accumulate_reduced(nodes, a, &ga_full)?;
            drop(ga_full);
            let gb_full = linalg::matmul_tn(grad, &av)?;
            accumulate_reduced(nodes, b, &gb_full)
        }

        Op::SumAxis { x, axis, keepdim } => {
            let xv = value_of(nodes, x);
            let g = if keepdim {
                grad.broadcast_to(xv.shape())?
            } else {
                grad.unsqueeze(axis)?.broadcast_to(xv.shape())?
            };
            accumulate(nodes, x, g)
        }

        Op::MeanAxis { x, axis, keepdim } => {
            let xv = value_of(nodes, x);
            let n = xv.shape()[axis] as f32;
            let g = if keepdim {
                grad.broadcast_to(xv.shape())?
            } else {
                grad.unsqueeze(axis)?.broadcast_to(xv.shape())?
            };
            accumulate(nodes, x, g.mul_scalar(1.0 / n))
        }

        Op::SumAll(x) => {
            let xv = value_of(nodes, x);
            let g = grad.item()?;
            accumulate(nodes, x, Tensor::full(xv.shape(), g))
        }

        Op::MeanAll(x) => {
            let xv = value_of(nodes, x);
            let g = grad.item()? / xv.len() as f32;
            accumulate(nodes, x, Tensor::full(xv.shape(), g))
        }

        // Softmax Jacobian-vector product:
        //   dx = y * (g - sum(g * y, axis))
        // The last axis — every attention softmax — takes the fused row
        // kernel; other axes (and fused-off mode) run the reference
        // four-tensor chain. Bitwise identical either way.
        Op::Softmax { x, axis } => {
            let gx = if axis + 1 == out.rank() && fused_enabled() {
                out.softmax_vjp_lastdim(grad)?
            } else {
                let gy = grad.mul(out)?;
                let s = gy.sum_axis(axis, true)?;
                out.mul(&grad.sub(&s.broadcast_to(grad.shape())?)?)?
            };
            accumulate(nodes, x, gx)
        }

        Op::Reshape(x) => {
            let xv = value_of(nodes, x);
            accumulate(nodes, x, grad.reshape(xv.shape())?)
        }

        Op::Permute { x, ref perm } => {
            // Invert the permutation: output axis i came from input axis
            // perm[i], so grad axis perm[i] must go back to axis i.
            let mut inverse = vec![0usize; perm.len()];
            for (i, &p) in perm.iter().enumerate() {
                inverse[p] = i;
            }
            accumulate(nodes, x, grad.permute(&inverse)?)
        }

        Op::Concat { ref xs, axis } => {
            let mut start = 0;
            for &x in xs {
                let len = value_of(nodes, x).shape()[axis];
                let gx = grad.narrow(axis, start, len)?;
                accumulate(nodes, x, gx)?;
                start += len;
            }
            Ok(())
        }

        Op::Narrow { x, axis, start } => {
            // Scatter the gradient back into the input's gradient at the
            // narrowed range.
            let xv = value_of(nodes, x);
            let len = grad.shape()[axis];
            let axis_len = xv.shape()[axis];
            let outer: usize = xv.shape()[..axis].iter().product();
            let inner: usize = xv.shape()[axis + 1..].iter().product();
            // Fused path: when a gradient buffer already exists (windows
            // overlap, so most narrow VJPs land on a live buffer), add the
            // slice straight into it instead of materializing a full-size
            // zero tensor and paying a whole-volume axpy for a sliver of
            // nonzeros. A *stale* buffer holds retired values and must
            // not be added into; it takes the generic overwrite path.
            if fused_enabled()
                && nodes[x].requires_grad
                && nodes[x].grad.is_some()
                && !nodes[x].grad_stale
            {
                let src = grad.data();
                let existing = nodes[x].grad.as_mut().expect("checked above");
                let dst = existing.data_mut();
                for o in 0..outer {
                    let src_base = o * len * inner;
                    let dst_base = o * axis_len * inner + start * inner;
                    for (d, &s) in dst[dst_base..dst_base + len * inner]
                        .iter_mut()
                        .zip(src[src_base..src_base + len * inner].iter())
                    {
                        *d += s;
                    }
                }
                return Ok(());
            }
            let mut gx = Tensor::zeros(xv.shape());
            let dst = gx.data_mut();
            for o in 0..outer {
                let src_base = o * len * inner;
                let dst_base = o * axis_len * inner + start * inner;
                dst[dst_base..dst_base + len * inner]
                    .copy_from_slice(&grad.data()[src_base..src_base + len * inner]);
            }
            accumulate(nodes, x, gx)
        }

        Op::IndexSelect {
            x,
            axis,
            ref indices,
        } => {
            // Scatter-add: repeated indices accumulate their gradients.
            let xv = value_of(nodes, x);
            let axis_len = xv.shape()[axis];
            let outer: usize = xv.shape()[..axis].iter().product();
            let inner: usize = xv.shape()[axis + 1..].iter().product();
            let mut gx = Tensor::zeros(xv.shape());
            let dst = gx.data_mut();
            for o in 0..outer {
                for (j, &i) in indices.iter().enumerate() {
                    let src_base = (o * indices.len() + j) * inner;
                    let dst_base = (o * axis_len + i) * inner;
                    for t in 0..inner {
                        dst[dst_base + t] += grad.data()[src_base + t];
                    }
                }
            }
            accumulate(nodes, x, gx)
        }

        Op::BroadcastTo(x) => accumulate_reduced(nodes, x, grad),

        Op::WhereMask { ref mask, a, b } => {
            let ga = grad.mul(mask)?;
            accumulate_reduced(nodes, a, &ga)?;
            drop(ga);
            let inv = mask.affine(-1.0, 1.0);
            let gb = grad.mul(&inv)?;
            accumulate_reduced(nodes, b, &gb)
        }

        // Fused Huber VJP: replays the reference chain's reverse sweep
        // (mean → where-mask → {·0.5 → square, ·δ → +c → abs} → sub)
        // node by node per element, in the same accumulation order —
        // quadratic-branch contribution first, then linear-branch — so
        // gradients are bitwise-equal to the unfused chain's.
        Op::Huber {
            pred,
            target,
            delta,
        } => {
            let pv = value_of(nodes, pred);
            let tv = value_of(nodes, target);
            let g0 = grad.item()? / pv.len() as f32;
            let ddiff = pv.zip(&tv, "huber_vjp", |p, t| {
                let d = p - t;
                let ad = d.abs();
                let m = if ad <= delta { 1.0 } else { 0.0 };
                let ga = g0 * m;
                let gb = g0 * (-m + 1.0);
                let sign = if d > 0.0 {
                    1.0
                } else if d < 0.0 {
                    -1.0
                } else {
                    0.0
                };
                // Square-branch (via ·0.5 then ·2d) + abs-branch (via ·δ
                // then sign), summed in the reverse-sweep's visit order.
                (ga * 0.5) * (d * 2.0) + (gb * delta) * sign
            })?;
            accumulate_ref(nodes, pred, &ddiff)?;
            accumulate(nodes, target, ddiff.neg())
        }

        // Fused bias+activation VJP: g_pre = g * act'(out) in one zip
        // (expressions matching each activation's standalone VJP), then
        // the Add node's reduce-to-operand-shape accumulation.
        Op::BiasAddAct { x, b, act } => {
            let g_pre = match act {
                ActKind::Identity => None,
                ActKind::Tanh => Some(grad.zip(out, "tanh_vjp", |g, y| {
                    g * (-(y * y) + 1.0)
                })?),
                ActKind::Sigmoid => Some(grad.zip(out, "sigmoid_vjp", |g, y| {
                    g * (y * (-y + 1.0))
                })?),
                // relu(s) > 0 iff s > 0, so the output doubles as the
                // pre-activation mask.
                ActKind::Relu => Some(grad.zip(out, "relu_vjp", |g, y| {
                    g * (if y > 0.0 { 1.0 } else { 0.0 })
                })?),
            };
            let g_pre = g_pre.as_ref().unwrap_or(grad);
            accumulate_reduced(nodes, x, g_pre)?;
            accumulate_reduced(nodes, b, g_pre)
        }

        // Fused sparse-attention VJP: one kernel produces all three
        // input gradients from the saved per-edge softmax weights. `h`'s
        // contribution lands first — the position the dense chain's
        // `weights @ h` node gives it — so shared-embedding accumulation
        // order (and therefore bits) match the unfused chain.
        Op::SparseAttention {
            q,
            k,
            h,
            ref graph,
            scale,
            ref weights,
        } => {
            let qv = value_of(nodes, q);
            let kv = value_of(nodes, k);
            let hv = value_of(nodes, h);
            let (dq, dk, dh) = stwa_tensor::sparse::sparse_attention_vjp(
                grad, &qv, &kv, &hv, weights, graph, scale,
            )?;
            accumulate(nodes, h, dh)?;
            accumulate(nodes, q, dq)?;
            accumulate(nodes, k, dk)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn sum_of_squares_gradient() {
        let g = Graph::new();
        let x = g.leaf(t(&[1.0, -2.0, 3.0], &[3]));
        let loss = x.square().unwrap().sum_all().unwrap();
        g.backward(&loss).unwrap();
        assert_eq!(g.grad(&x).unwrap().data(), &[2.0, -4.0, 6.0]);
    }

    #[test]
    fn constants_get_no_grad() {
        let g = Graph::new();
        let x = g.leaf(t(&[2.0], &[1]));
        let c = g.constant(t(&[3.0], &[1]));
        let loss = x.mul(&c).unwrap().sum_all().unwrap();
        g.backward(&loss).unwrap();
        assert_eq!(g.grad(&x).unwrap().data(), &[3.0]);
        assert!(g.grad(&c).is_none());
    }

    #[test]
    fn broadcast_add_reduces_grad() {
        // loss = sum(x + b) with x: [2,3], b: [3] -> db = [2, 2, 2]
        let g = Graph::new();
        let x = g.leaf(Tensor::zeros(&[2, 3]));
        let b = g.leaf(Tensor::zeros(&[3]));
        let loss = x.add(&b).unwrap().sum_all().unwrap();
        g.backward(&loss).unwrap();
        assert_eq!(g.grad(&b).unwrap().data(), &[2.0, 2.0, 2.0]);
        assert_eq!(g.grad(&x).unwrap().shape(), &[2, 3]);
    }

    #[test]
    fn matmul_gradients() {
        // loss = sum(A @ B); dA = 1 @ B^T (row sums of B broadcast), etc.
        let g = Graph::new();
        let a = g.leaf(t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = g.leaf(t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]));
        let loss = a.matmul(&b).unwrap().sum_all().unwrap();
        g.backward(&loss).unwrap();
        // dA[i, p] = sum_j B[p, j]
        assert_eq!(g.grad(&a).unwrap().data(), &[11.0, 15.0, 11.0, 15.0]);
        // dB[p, j] = sum_i A[i, p]
        assert_eq!(g.grad(&b).unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn sparse_attend_complete_graph_matches_dense_chain_bitwise() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use std::sync::Arc;
        use stwa_tensor::SensorGraph;

        let (n, d) = (5usize, 3usize);
        let scale = 1.0 / (d as f32).sqrt();
        let mut rng = StdRng::seed_from_u64(77);
        let hv = Tensor::randn(&[2, n, d], &mut rng);
        let qv = Tensor::randn(&[2, n, d], &mut rng);
        let kv = Tensor::randn(&[2, n, d], &mut rng);

        // Dense: the exact chain SensorCorrelationAttention::attend runs.
        let gd = Graph::new();
        let (h1, q1, k1) = (gd.leaf(hv.clone()), gd.leaf(qv.clone()), gd.leaf(kv.clone()));
        let scores = q1.matmul_nt(&k1).unwrap().mul_scalar(scale);
        let w = scores.softmax(2).unwrap();
        let out_dense = w.matmul(&h1).unwrap();
        let loss_d = out_dense.square().unwrap().sum_all().unwrap();
        gd.backward(&loss_d).unwrap();

        // Sparse over the complete graph: one fused tape entry.
        let gs = Graph::new();
        let (h2, q2, k2) = (gs.leaf(hv.clone()), gs.leaf(qv.clone()), gs.leaf(kv.clone()));
        let graph = Arc::new(SensorGraph::complete(n));
        let out_sparse = q2.sparse_attend(&k2, &h2, &graph, scale).unwrap();
        let loss_s = out_sparse.square().unwrap().sum_all().unwrap();
        gs.backward(&loss_s).unwrap();

        let bits = |t: &Tensor| t.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&out_dense.value()), bits(&out_sparse.value()));
        for ((a, b), name) in [(&q1, &q2), (&k1, &k2), (&h1, &h2)]
            .iter()
            .zip(["q", "k", "h"])
        {
            assert_eq!(
                bits(&gd.grad(a).unwrap()),
                bits(&gs.grad(b).unwrap()),
                "grad {name} diverged"
            );
        }
    }

    #[test]
    fn sparse_attend_isolated_sensor_backward_is_finite() {
        use std::sync::Arc;
        use stwa_tensor::SensorGraph;

        let (n, d) = (3usize, 2usize);
        let graph = Arc::new(
            SensorGraph::from_neighbor_lists(n, &[vec![0, 2], vec![], vec![0, 2]]).unwrap(),
        );
        let g = Graph::new();
        let h = g.leaf(Tensor::from_fn(&[1, n, d], |i| (i[1] * d + i[2]) as f32));
        let out = h.sparse_attend(&h, &h, &graph, 1.0).unwrap();
        let loss = out.square().unwrap().sum_all().unwrap();
        g.backward(&loss).unwrap();
        let grad = g.grad(&h).unwrap();
        assert!(out.value().data().iter().all(|x| x.is_finite()));
        assert!(grad.data().iter().all(|x| x.is_finite()));
        // The isolated sensor's output row is zero, not NaN.
        assert_eq!(out.value().at(&[0, 1, 0]), 0.0);
    }

    #[test]
    fn grad_accumulates_over_reuse() {
        // loss = sum(x * x_detached + x) uses x twice: grads add.
        let g = Graph::new();
        let x = g.leaf(t(&[3.0], &[1]));
        let y = x.add(&x).unwrap(); // dy/dx = 2
        let loss = y.sum_all().unwrap();
        g.backward(&loss).unwrap();
        assert_eq!(g.grad(&x).unwrap().data(), &[2.0]);
    }

    #[test]
    fn repeated_backward_reuses_grad_buffers_bitwise() {
        // Same tape, backward twice: leaf grads double exactly, the
        // intermediate grads are recomputed into their retained buffers,
        // and the reuse counter proves no fresh buffers were drawn.
        let g = Graph::new();
        let x = g.leaf(t(&[1.5, -2.0, 0.25], &[3]));
        let y = x.square().unwrap().mul_scalar(3.0);
        let loss = y.sum_all().unwrap();
        g.backward(&loss).unwrap();
        let first = g.grad(&x).unwrap();
        let doubled: Vec<u32> = first.data().iter().map(|v| (v + v).to_bits()).collect();

        stwa_observe::set_enabled(true);
        stwa_observe::reset();
        g.backward(&loss).unwrap();
        let reused = stwa_observe::counters_snapshot()
            .iter()
            .find(|(name, _)| name == "alloc.grad_reuse")
            .map(|&(_, v)| v)
            .unwrap_or(0);
        stwa_observe::set_enabled(false);
        assert!(reused > 0, "second sweep must reuse stale buffers");

        let second = g.grad(&x).unwrap();
        let bits: Vec<u32> = second.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, doubled, "leaf grad must accumulate exactly");
    }

    #[test]
    fn zero_grads_then_backward_matches_first_sweep_bitwise() {
        let g = Graph::new();
        let x = g.leaf(t(&[0.5, 2.0, -1.25, 3.0], &[4]));
        let loss = x.square().unwrap().mean_all().unwrap();
        g.backward(&loss).unwrap();
        let first: Vec<u32> = g.grad(&x).unwrap().data().iter().map(|v| v.to_bits()).collect();
        g.zero_grads();
        assert!(g.grad(&x).is_none(), "stale grads read as empty");
        g.backward(&loss).unwrap();
        let second: Vec<u32> = g.grad(&x).unwrap().data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn leaf_loss_gradient_accumulates_across_backwards() {
        // Degenerate but contract-bearing: backward on a leaf directly.
        let g = Graph::new();
        let x = g.leaf(Tensor::scalar(2.0));
        g.backward(&x).unwrap();
        g.backward(&x).unwrap();
        assert_eq!(g.grad(&x).unwrap().data(), &[2.0]);
    }

    #[test]
    fn backward_requires_single_element_loss() {
        let g = Graph::new();
        let x = g.leaf(Tensor::zeros(&[2]));
        assert!(g.backward(&x).is_err());
    }

    #[test]
    fn mean_all_scales_gradient() {
        let g = Graph::new();
        let x = g.leaf(Tensor::zeros(&[4]));
        let loss = x.mean_all().unwrap();
        g.backward(&loss).unwrap();
        assert_eq!(g.grad(&x).unwrap().data(), &[0.25; 4]);
    }

    #[test]
    fn softmax_grad_sums_to_zero() {
        // For loss = sum(w * softmax(x)), sum of dx over the softmax axis
        // is 0 because softmax output sums to a constant.
        let g = Graph::new();
        let x = g.leaf(t(&[0.5, -1.0, 2.0], &[1, 3]));
        let w = g.constant(t(&[1.0, 2.0, 3.0], &[1, 3]));
        let loss = x.softmax(1).unwrap().mul(&w).unwrap().sum_all().unwrap();
        g.backward(&loss).unwrap();
        let dx = g.grad(&x).unwrap();
        let s: f32 = dx.data().iter().sum();
        assert!(s.abs() < 1e-6, "softmax grad should sum to ~0, got {s}");
    }

    #[test]
    fn narrow_grad_scatters() {
        let g = Graph::new();
        let x = g.leaf(Tensor::zeros(&[4]));
        let loss = x.narrow(0, 1, 2).unwrap().sum_all().unwrap();
        g.backward(&loss).unwrap();
        assert_eq!(g.grad(&x).unwrap().data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn index_select_grad_accumulates_repeats() {
        let g = Graph::new();
        let x = g.leaf(Tensor::zeros(&[3]));
        let loss = x.index_select(0, &[1, 1, 2]).unwrap().sum_all().unwrap();
        g.backward(&loss).unwrap();
        assert_eq!(g.grad(&x).unwrap().data(), &[0.0, 2.0, 1.0]);
    }

    #[test]
    fn concat_grad_splits() {
        let g = Graph::new();
        let a = g.leaf(Tensor::zeros(&[2]));
        let b = g.leaf(Tensor::zeros(&[3]));
        let c = crate::ops::concat(&[&a, &b], 0).unwrap();
        let w = g.constant(t(&[1.0, 2.0, 3.0, 4.0, 5.0], &[5]));
        let loss = c.mul(&w).unwrap().sum_all().unwrap();
        g.backward(&loss).unwrap();
        assert_eq!(g.grad(&a).unwrap().data(), &[1.0, 2.0]);
        assert_eq!(g.grad(&b).unwrap().data(), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn where_mask_routes_gradients() {
        let g = Graph::new();
        let a = g.leaf(t(&[1.0, 1.0], &[2]));
        let b = g.leaf(t(&[2.0, 2.0], &[2]));
        let mask = t(&[1.0, 0.0], &[2]);
        let out = a.where_mask(&mask, &b).unwrap();
        assert_eq!(out.value().data(), &[1.0, 2.0]);
        let loss = out.sum_all().unwrap();
        g.backward(&loss).unwrap();
        assert_eq!(g.grad(&a).unwrap().data(), &[1.0, 0.0]);
        assert_eq!(g.grad(&b).unwrap().data(), &[0.0, 1.0]);
    }

    #[test]
    fn permute_grad_inverts() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_fn(&[2, 3], |i| (i[0] * 3 + i[1]) as f32));
        let w = g.constant(Tensor::from_fn(&[3, 2], |i| (i[0] * 2 + i[1]) as f32));
        let loss = x
            .permute(&[1, 0])
            .unwrap()
            .mul(&w)
            .unwrap()
            .sum_all()
            .unwrap();
        g.backward(&loss).unwrap();
        // Gradient of x[i,j] is w[j,i].
        let dx = g.grad(&x).unwrap();
        assert_eq!(dx.at(&[0, 1]), w.value().at(&[1, 0]));
        assert_eq!(dx.at(&[1, 2]), w.value().at(&[2, 1]));
    }

    #[test]
    fn detach_stops_gradient_flow() {
        let g = Graph::new();
        let x = g.leaf(t(&[2.0], &[1]));
        let d = x.detach();
        let loss = x.mul(&d).unwrap().sum_all().unwrap();
        g.backward(&loss).unwrap();
        // Through the detached branch the value acts as constant 2.0.
        assert_eq!(g.grad(&x).unwrap().data(), &[2.0]);
    }
}
