//! Forward operations on [`Var`]: each computes its value eagerly and
//! records the op on the tape for the backward sweep.

use crate::graph::{ActKind, Op, Var};
use std::rc::Rc;
use stwa_tensor::{linalg, manip, Result, Tensor, TensorError};

impl Var {
    fn unary(&self, value: Tensor, op: Op) -> Var {
        self.graph.push(value, op, self.requires_grad())
    }

    fn binary(&self, rhs: &Var, value: Tensor, op: Op) -> Var {
        self.graph
            .push(value, op, self.requires_grad() || rhs.requires_grad())
    }

    // ---------------------------------------------------------------
    // Elementwise binary (broadcasting)
    // ---------------------------------------------------------------

    pub fn add(&self, rhs: &Var) -> Result<Var> {
        self.same_graph(rhs, "add")?;
        let v = self.value().add(&rhs.value())?;
        Ok(self.binary(rhs, v, Op::Add(self.id, rhs.id)))
    }

    pub fn sub(&self, rhs: &Var) -> Result<Var> {
        self.same_graph(rhs, "sub")?;
        let v = self.value().sub(&rhs.value())?;
        Ok(self.binary(rhs, v, Op::Sub(self.id, rhs.id)))
    }

    pub fn mul(&self, rhs: &Var) -> Result<Var> {
        self.same_graph(rhs, "mul")?;
        let v = self.value().mul(&rhs.value())?;
        Ok(self.binary(rhs, v, Op::Mul(self.id, rhs.id)))
    }

    pub fn div(&self, rhs: &Var) -> Result<Var> {
        self.same_graph(rhs, "div")?;
        let v = self.value().div(&rhs.value())?;
        Ok(self.binary(rhs, v, Op::Div(self.id, rhs.id)))
    }

    // ---------------------------------------------------------------
    // Elementwise unary
    // ---------------------------------------------------------------

    pub fn neg(&self) -> Var {
        self.unary(self.value().neg(), Op::Neg(self.id))
    }

    pub fn exp(&self) -> Var {
        self.unary(self.value().exp(), Op::Exp(self.id))
    }

    /// Natural log. The caller is responsible for keeping inputs positive
    /// (e.g. via [`Var::add_scalar`] with an epsilon).
    pub fn ln(&self) -> Var {
        self.unary(self.value().ln(), Op::Ln(self.id))
    }

    pub fn sqrt(&self) -> Var {
        self.unary(self.value().sqrt(), Op::Sqrt(self.id))
    }

    pub fn tanh(&self) -> Var {
        self.unary(self.value().tanh(), Op::Tanh(self.id))
    }

    pub fn sigmoid(&self) -> Var {
        self.unary(self.value().sigmoid(), Op::Sigmoid(self.id))
    }

    pub fn relu(&self) -> Var {
        self.unary(self.value().relu(), Op::Relu(self.id))
    }

    pub fn abs(&self) -> Var {
        self.unary(self.value().abs(), Op::Abs(self.id))
    }

    pub fn square(&self) -> Result<Var> {
        Ok(self.unary(self.value().square(), Op::Square(self.id)))
    }

    pub fn add_scalar(&self, s: f32) -> Var {
        self.unary(self.value().add_scalar(s), Op::AddScalar(self.id))
    }

    pub fn mul_scalar(&self, s: f32) -> Var {
        self.unary(self.value().mul_scalar(s), Op::MulScalar(self.id, s))
    }

    // ---------------------------------------------------------------
    // Linear algebra
    // ---------------------------------------------------------------

    /// Batched matrix product; see [`stwa_tensor::linalg::matmul`] for
    /// the shape rules.
    pub fn matmul(&self, rhs: &Var) -> Result<Var> {
        self.same_graph(rhs, "matmul")?;
        let v = linalg::matmul(&self.value(), &rhs.value())?;
        Ok(self.binary(rhs, v, Op::Matmul(self.id, rhs.id)))
    }

    /// Fused `self · rhsᵀ` over the trailing two axes: `rhs` keeps its
    /// `[..., n, k]` layout and is read transposed inside the kernel,
    /// bitwise identical to `self.matmul(&rhs.transpose_last2()?)` but
    /// without materializing the transposed copy. This is the natural
    /// form of attention scores (`Q · Kᵀ`).
    pub fn matmul_nt(&self, rhs: &Var) -> Result<Var> {
        self.same_graph(rhs, "matmul_nt")?;
        let v = linalg::matmul_nt(&self.value(), &rhs.value())?;
        Ok(self.binary(rhs, v, Op::MatmulNT(self.id, rhs.id)))
    }

    /// Fused sparse sensor attention over a neighbor graph:
    /// `out_i = Σ_{j ∈ nbr(i)} softmax_j(q_i·k_j · scale) · h_j`
    /// with `self` as `q`. One tape entry replaces the dense
    /// matmul_nt → mul_scalar → softmax → matmul chain; per-edge
    /// softmax weights are saved for the exact VJP. With a complete
    /// graph the forward value and every input gradient are bitwise
    /// identical to the dense chain (see [`stwa_tensor::sparse`]).
    pub fn sparse_attend(
        &self,
        k: &Var,
        h: &Var,
        graph: &std::sync::Arc<stwa_tensor::SensorGraph>,
        scale: f32,
    ) -> Result<Var> {
        self.same_graph(k, "sparse_attend")?;
        self.same_graph(h, "sparse_attend")?;
        let (out, weights) = stwa_tensor::sparse::sparse_attention_forward(
            &self.value(),
            &k.value(),
            &h.value(),
            graph,
            scale,
        )?;
        let requires = self.requires_grad() || k.requires_grad() || h.requires_grad();
        Ok(self.graph.push(
            out,
            Op::SparseAttention {
                q: self.id,
                k: k.id,
                h: h.id,
                graph: std::sync::Arc::clone(graph),
                scale,
                weights: Rc::new(weights),
            },
            requires,
        ))
    }

    // ---------------------------------------------------------------
    // Reductions
    // ---------------------------------------------------------------

    pub fn sum_axis(&self, axis: usize, keepdim: bool) -> Result<Var> {
        let v = self.value().sum_axis(axis, keepdim)?;
        Ok(self.unary(
            v,
            Op::SumAxis {
                x: self.id,
                axis,
                keepdim,
            },
        ))
    }

    pub fn mean_axis(&self, axis: usize, keepdim: bool) -> Result<Var> {
        let v = self.value().mean_axis(axis, keepdim)?;
        Ok(self.unary(
            v,
            Op::MeanAxis {
                x: self.id,
                axis,
                keepdim,
            },
        ))
    }

    pub fn sum_all(&self) -> Result<Var> {
        if self.value().is_empty() {
            return Err(TensorError::Invalid(
                "sum_all: cannot reduce an empty tensor into a loss".into(),
            ));
        }
        Ok(self.unary(self.value().sum_all(), Op::SumAll(self.id)))
    }

    pub fn mean_all(&self) -> Result<Var> {
        if self.value().is_empty() {
            return Err(TensorError::Invalid(
                "mean_all: cannot reduce an empty tensor into a loss".into(),
            ));
        }
        Ok(self.unary(self.value().mean_all(), Op::MeanAll(self.id)))
    }

    /// Numerically stable softmax along `axis`.
    pub fn softmax(&self, axis: usize) -> Result<Var> {
        let v = self.value().softmax(axis)?;
        Ok(self.unary(v, Op::Softmax { x: self.id, axis }))
    }

    // ---------------------------------------------------------------
    // Shape manipulation
    // ---------------------------------------------------------------

    pub fn reshape(&self, shape: &[usize]) -> Result<Var> {
        let v = self.value().reshape(shape)?;
        Ok(self.unary(v, Op::Reshape(self.id)))
    }

    pub fn unsqueeze(&self, axis: usize) -> Result<Var> {
        let v = self.value().unsqueeze(axis)?;
        Ok(self.unary(v, Op::Reshape(self.id)))
    }

    pub fn squeeze(&self, axis: usize) -> Result<Var> {
        let v = self.value().squeeze(axis)?;
        Ok(self.unary(v, Op::Reshape(self.id)))
    }

    pub fn permute(&self, perm: &[usize]) -> Result<Var> {
        let v = self.value().permute(perm)?;
        Ok(self.unary(
            v,
            Op::Permute {
                x: self.id,
                perm: perm.to_vec(),
            },
        ))
    }

    pub fn swap_axes(&self, a: usize, b: usize) -> Result<Var> {
        let rank = self.value().rank();
        let mut perm: Vec<usize> = (0..rank).collect();
        if a >= rank || b >= rank {
            return Err(TensorError::InvalidAxis {
                op: "swap_axes",
                axis: a.max(b),
                rank,
            });
        }
        perm.swap(a, b);
        self.permute(&perm)
    }

    /// Transpose the last two axes.
    pub fn transpose_last2(&self) -> Result<Var> {
        let rank = self.value().rank();
        if rank < 2 {
            return Err(TensorError::RankTooSmall {
                op: "transpose_last2",
                required: 2,
                actual: rank,
            });
        }
        self.swap_axes(rank - 2, rank - 1)
    }

    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Result<Var> {
        let v = self.value().narrow(axis, start, len)?;
        Ok(self.unary(
            v,
            Op::Narrow {
                x: self.id,
                axis,
                start,
            },
        ))
    }

    pub fn index_select(&self, axis: usize, indices: &[usize]) -> Result<Var> {
        let v = self.value().index_select(axis, indices)?;
        Ok(self.unary(
            v,
            Op::IndexSelect {
                x: self.id,
                axis,
                indices: indices.to_vec(),
            },
        ))
    }

    pub fn broadcast_to(&self, shape: &[usize]) -> Result<Var> {
        let v = self.value().broadcast_to(shape)?;
        Ok(self.unary(v, Op::BroadcastTo(self.id)))
    }

    /// `mask * self + (1 - mask) * other`, with `mask` a constant tensor
    /// of zeros and ones. This is the differentiable branch selector used
    /// by the Huber loss (the mask itself gets no gradient, which matches
    /// the loss being non-differentiable only on a measure-zero set).
    pub fn where_mask(&self, mask: &Tensor, other: &Var) -> Result<Var> {
        self.same_graph(other, "where_mask")?;
        let a = self.value();
        let b = other.value();
        let picked_a = a.mul(mask)?;
        let inv = mask.affine(-1.0, 1.0);
        let picked_b = b.mul(&inv)?;
        let v = picked_a.add(&picked_b)?;
        Ok(self.binary(
            other,
            v,
            Op::WhereMask {
                mask: Rc::new(mask.clone()),
                a: self.id,
                b: other.id,
            },
        ))
    }

    // ---------------------------------------------------------------
    // Fused ops
    // ---------------------------------------------------------------

    /// Fused mean Huber loss: one pass over `pred`/`target` computing
    /// the per-element branch and the sequential mean, recorded as a
    /// single tape node. Shapes must match exactly (the loss chains it
    /// replaces always compare like with like).
    ///
    /// Each element evaluates exactly the expressions of the reference
    /// chain `where(|d|<=δ, 0.5 d², δ|d| - 0.5 δ²).mean()` in the same
    /// order, and the mean folds sequentially in index order — so the
    /// fused loss is bitwise-equal to the unfused one.
    pub fn huber_loss(&self, target: &Var, delta: f32) -> Result<Var> {
        self.same_graph(target, "huber_loss")?;
        let p = self.value();
        let t = target.value();
        if p.shape() != t.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "huber_loss",
                lhs: p.shape().to_vec(),
                rhs: t.shape().to_vec(),
            });
        }
        if p.is_empty() {
            return Err(TensorError::Invalid(
                "huber_loss: cannot reduce an empty tensor into a loss".into(),
            ));
        }
        // Sequential fold, like `mean_all` (a parallel sum would
        // reassociate f32 addition and change bits).
        let mut sum = 0.0f32;
        for (&pv, &tv) in p.data().iter().zip(t.data().iter()) {
            sum += huber_point(pv, tv, delta);
        }
        let v = Tensor::scalar(sum / p.len() as f32);
        Ok(self.binary(
            target,
            v,
            Op::Huber {
                pred: self.id,
                target: target.id,
                delta,
            },
        ))
    }

    /// Fused `act(self + bias)`: the bias add (broadcast) and the
    /// activation evaluate in one elementwise pass and record one node.
    /// Bitwise-identical to `self.add(bias)` followed by the activation
    /// op — same per-element expressions, same broadcast pairing.
    pub fn bias_add_act(&self, bias: &Var, act: ActKind) -> Result<Var> {
        self.same_graph(bias, "bias_add_act")?;
        let v = self
            .value()
            .zip(&bias.value(), "bias_add_act", |a, b| act.apply(a + b))?;
        Ok(self.binary(
            bias,
            v,
            Op::BiasAddAct {
                x: self.id,
                b: bias.id,
                act,
            },
        ))
    }
}

/// The per-element Huber value, spelled as the exact expression sequence
/// of the reference chain (sub → abs → mask → 0.5·d² → δ|d|−0.5δ² →
/// where-mask select).
#[inline]
pub(crate) fn huber_point(p: f32, t: f32, delta: f32) -> f32 {
    let d = p - t;
    let ad = d.abs();
    let m = if ad <= delta { 1.0 } else { 0.0 };
    let quad = (d * d) * 0.5;
    let lin = ad * delta + (-0.5 * delta * delta);
    quad * m + lin * (-m + 1.0)
}

/// Concatenate variables along `axis`.
pub fn concat(vars: &[&Var], axis: usize) -> Result<Var> {
    let first = vars
        .first()
        .ok_or_else(|| TensorError::Invalid("concat: need at least one Var".into()))?;
    for v in vars.iter().skip(1) {
        first.same_graph(v, "concat")?;
    }
    let values: Vec<Rc<Tensor>> = vars.iter().map(|v| v.value()).collect();
    let refs: Vec<&Tensor> = values.iter().map(|v| v.as_ref()).collect();
    let out = manip::concat(&refs, axis)?;
    let requires = vars.iter().any(|v| v.requires_grad());
    Ok(first.graph.push(
        out,
        Op::Concat {
            xs: vars.iter().map(|v| v.id).collect(),
            axis,
        },
        requires,
    ))
}

/// Stack equal-shape variables along a new axis.
pub fn stack(vars: &[&Var], axis: usize) -> Result<Var> {
    let unsqueezed: Vec<Var> = vars
        .iter()
        .map(|v| v.unsqueeze(axis))
        .collect::<Result<_>>()?;
    let refs: Vec<&Var> = unsqueezed.iter().collect();
    concat(&refs, axis)
}
