//! The tape: graph storage, nodes, and `Var` handles.

use std::cell::RefCell;
use std::rc::Rc;
use stwa_tensor::{Result, Tensor, TensorError};

/// Node id within a graph. Ids increase in creation order, which is a
/// valid topological order of the dataflow DAG.
pub(crate) type Id = usize;

/// Activation applied inside the fused bias-add ([`Var::bias_add_act`]).
///
/// The closed set matches `stwa_nn`'s `Activation`; each variant's
/// forward expression and VJP replicate the corresponding standalone op
/// bit for bit, so fusing is invisible to loss trajectories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActKind {
    Identity,
    Relu,
    Tanh,
    Sigmoid,
}

impl ActKind {
    /// The scalar forward function — exactly the expression the unfused
    /// elementwise ops apply. Public so tape-free forwards (the
    /// inference path) can reuse the identical scalar expression.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            ActKind::Identity => x,
            ActKind::Relu => x.max(0.0),
            ActKind::Tanh => stwa_tensor::mathfn::tanh_f32(x),
            ActKind::Sigmoid => stwa_tensor::mathfn::sigmoid_f32(x),
        }
    }
}

/// The recorded operation that produced a node.
///
/// Each variant stores the input ids plus whatever metadata the backward
/// pass needs. Output values are available from the node itself, so ops
/// like `Exp` or `Softmax` don't duplicate saved tensors.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Input tensor; `Leaf` nodes are where gradients are read out.
    Leaf,
    Add(Id, Id),
    Sub(Id, Id),
    Mul(Id, Id),
    Div(Id, Id),
    Neg(Id),
    Exp(Id),
    Ln(Id),
    Sqrt(Id),
    Tanh(Id),
    Sigmoid(Id),
    Relu(Id),
    Abs(Id),
    Square(Id),
    AddScalar(Id),
    MulScalar(Id, f32),
    Matmul(Id, Id),
    /// Fused `A · Bᵀ` (see [`stwa_tensor::linalg::matmul_nt`]): `b` is
    /// stored `[..., n, k]` and never materialized transposed.
    MatmulNT(Id, Id),
    SumAxis {
        x: Id,
        axis: usize,
        keepdim: bool,
    },
    MeanAxis {
        x: Id,
        axis: usize,
        keepdim: bool,
    },
    SumAll(Id),
    MeanAll(Id),
    Softmax {
        x: Id,
        axis: usize,
    },
    Reshape(Id),
    Permute {
        x: Id,
        perm: Vec<usize>,
    },
    Concat {
        xs: Vec<Id>,
        axis: usize,
    },
    Narrow {
        x: Id,
        axis: usize,
        start: usize,
    },
    IndexSelect {
        x: Id,
        axis: usize,
        indices: Vec<usize>,
    },
    BroadcastTo(Id),
    /// `mask * a + (1 - mask) * b` with the mask treated as a constant.
    WhereMask {
        mask: Rc<Tensor>,
        a: Id,
        b: Id,
    },
    /// Fused mean Huber loss over equal-shape `pred`/`target`; forward
    /// and VJP replicate the reference sub/abs/square/where/mean chain
    /// bit for bit without materializing its intermediates.
    Huber {
        pred: Id,
        target: Id,
        delta: f32,
    },
    /// Fused `act(x + bias)` (bias broadcast against `x`), replacing an
    /// Add node plus an activation node with a single tape entry.
    BiasAddAct {
        x: Id,
        b: Id,
        act: ActKind,
    },
    /// Fused sparse sensor attention (gather scores → scatter-softmax →
    /// gather mix) over a [`stwa_tensor::SensorGraph`] neighbor list.
    /// Replaces the dense matmul_nt/mul_scalar/softmax/matmul chain with
    /// one O(N·k) tape entry; the saved per-edge `weights` are the
    /// softmax output the VJP needs. On complete graphs forward and
    /// backward are bitwise identical to the dense chain.
    SparseAttention {
        q: Id,
        k: Id,
        h: Id,
        graph: std::sync::Arc<stwa_tensor::SensorGraph>,
        scale: f32,
        weights: Rc<Tensor>,
    },
}

impl Op {
    /// Stable kind label for observability (per-op-kind backward timing).
    pub(crate) fn kind_name(&self) -> &'static str {
        match self {
            Op::Leaf => "leaf",
            Op::Add(..) => "add",
            Op::Sub(..) => "sub",
            Op::Mul(..) => "mul",
            Op::Div(..) => "div",
            Op::Neg(..) => "neg",
            Op::Exp(..) => "exp",
            Op::Ln(..) => "ln",
            Op::Sqrt(..) => "sqrt",
            Op::Tanh(..) => "tanh",
            Op::Sigmoid(..) => "sigmoid",
            Op::Relu(..) => "relu",
            Op::Abs(..) => "abs",
            Op::Square(..) => "square",
            Op::AddScalar(..) => "add_scalar",
            Op::MulScalar(..) => "mul_scalar",
            Op::Matmul(..) => "matmul",
            Op::MatmulNT(..) => "matmul_nt",
            Op::SumAxis { .. } => "sum_axis",
            Op::MeanAxis { .. } => "mean_axis",
            Op::SumAll(..) => "sum_all",
            Op::MeanAll(..) => "mean_all",
            Op::Softmax { .. } => "softmax",
            Op::Reshape(..) => "reshape",
            Op::Permute { .. } => "permute",
            Op::Concat { .. } => "concat",
            Op::Narrow { .. } => "narrow",
            Op::IndexSelect { .. } => "index_select",
            Op::BroadcastTo(..) => "broadcast_to",
            Op::WhereMask { .. } => "where_mask",
            Op::Huber { .. } => "huber",
            Op::BiasAddAct { .. } => "bias_add_act",
            Op::SparseAttention { .. } => "sparse_attention",
        }
    }
}

pub(crate) struct Node {
    pub value: Rc<Tensor>,
    pub grad: Option<Tensor>,
    /// When set, `grad` holds a *retired* buffer rather than a live
    /// gradient: readers treat the slot as empty, and the next
    /// contribution overwrites the buffer in place instead of drawing a
    /// fresh one from the pool. Clearing a gradient marks it stale
    /// instead of dropping it, so repeated backward sweeps over one
    /// tape recycle their own gradient storage.
    pub grad_stale: bool,
    pub requires_grad: bool,
    pub op: Op,
}

/// A reverse-mode autodiff tape.
///
/// Cloning a `Graph` is cheap (it is an `Rc` handle); all clones append
/// to the same tape. Graphs are single-threaded by design — a training
/// step builds and consumes one graph on one thread, while data-level
/// parallelism lives inside the tensor kernels.
#[derive(Clone)]
pub struct Graph {
    pub(crate) inner: Rc<RefCell<Vec<Node>>>,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// An empty tape.
    pub fn new() -> Graph {
        Graph {
            inner: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a gradient-requiring leaf (a parameter or an input we want
    /// gradients for).
    pub fn leaf(&self, value: Tensor) -> Var {
        self.push(value, Op::Leaf, true)
    }

    /// Insert a constant leaf (no gradient tracked).
    pub fn constant(&self, value: Tensor) -> Var {
        self.push(value, Op::Leaf, false)
    }

    pub(crate) fn push(&self, value: Tensor, op: Op, requires_grad: bool) -> Var {
        let mut nodes = self.inner.borrow_mut();
        let id = nodes.len();
        nodes.push(Node {
            value: Rc::new(value),
            grad: None,
            grad_stale: false,
            requires_grad,
            op,
        });
        Var {
            graph: self.clone(),
            id,
        }
    }

    pub(crate) fn value_of(&self, id: Id) -> Rc<Tensor> {
        Rc::clone(&self.inner.borrow()[id].value)
    }

    pub(crate) fn requires_grad_of(&self, id: Id) -> bool {
        self.inner.borrow()[id].requires_grad
    }

    /// The accumulated gradient of `var` after [`Graph::backward`], if
    /// any path from the loss reached it.
    pub fn grad(&self, var: &Var) -> Option<Tensor> {
        assert!(
            Rc::ptr_eq(&self.inner, &var.graph.inner),
            "grad: Var belongs to a different graph"
        );
        let nodes = self.inner.borrow();
        let node = &nodes[var.id];
        if node.grad_stale {
            return None;
        }
        node.grad.clone()
    }

    /// Squared L2 norm of `var`'s gradient, computed in place — the
    /// gradient-clipping measurement without cloning the tensor. Large
    /// gradients reduce through the pool's fixed-chunk lanes (see
    /// [`stwa_tensor::reduce::sq_norm`]), so the result is identical at
    /// any thread count.
    pub fn grad_sq_norm(&self, var: &Var) -> Option<f32> {
        assert!(
            Rc::ptr_eq(&self.inner, &var.graph.inner),
            "grad_sq_norm: Var belongs to a different graph"
        );
        let nodes = self.inner.borrow();
        let node = &nodes[var.id];
        if node.grad_stale {
            return None;
        }
        node.grad
            .as_ref()
            .map(|g| stwa_tensor::reduce::sq_norm(g.data()))
    }

    /// Drop all recorded gradients (e.g. between gradient checks on a
    /// shared tape). Buffers are retained and marked stale rather than
    /// freed: readers see an empty slot, and the next backward sweep
    /// overwrites them in place instead of drawing fresh pool buffers.
    pub fn zero_grads(&self) {
        for node in self.inner.borrow_mut().iter_mut() {
            if node.grad.is_some() {
                node.grad_stale = true;
            }
        }
    }
}

/// A handle to one node of a [`Graph`].
///
/// All forward operations live on `Var` (see the `ops` module); each call
/// appends a node to the owning graph and returns a handle to it.
#[derive(Clone)]
pub struct Var {
    pub(crate) graph: Graph,
    pub(crate) id: Id,
}

impl Var {
    /// The node's value. Cheap: values are behind `Rc`.
    pub fn value(&self) -> Rc<Tensor> {
        self.graph.value_of(self.id)
    }

    /// Shape of the node's value.
    pub fn shape(&self) -> Vec<usize> {
        self.value().shape().to_vec()
    }

    /// Whether gradients flow into this node.
    pub fn requires_grad(&self) -> bool {
        self.graph.requires_grad_of(self.id)
    }

    /// A constant copy of this value on the same graph: gradients do not
    /// flow through the returned `Var`.
    pub fn detach(&self) -> Var {
        self.graph.constant(self.value().as_ref().clone())
    }

    /// The owning graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Whether this `Var` lives on `graph` (same tape identity).
    pub fn belongs_to(&self, graph: &Graph) -> bool {
        Rc::ptr_eq(&self.graph.inner, &graph.inner)
    }

    pub(crate) fn same_graph(&self, other: &Var, op: &'static str) -> Result<()> {
        if Rc::ptr_eq(&self.graph.inner, &other.graph.inner) {
            Ok(())
        } else {
            Err(TensorError::Invalid(format!(
                "{op}: operands belong to different graphs"
            )))
        }
    }
}

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Var(id={}, shape={:?})", self.id, self.value().shape())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_and_constant_flags() {
        let g = Graph::new();
        let p = g.leaf(Tensor::ones(&[2]));
        let c = g.constant(Tensor::ones(&[2]));
        assert!(p.requires_grad());
        assert!(!c.requires_grad());
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn ids_are_creation_order() {
        let g = Graph::new();
        let a = g.constant(Tensor::zeros(&[1]));
        let b = g.constant(Tensor::zeros(&[1]));
        assert!(a.id < b.id);
    }

    #[test]
    fn detach_blocks_grad() {
        let g = Graph::new();
        let p = g.leaf(Tensor::ones(&[2]));
        let d = p.detach();
        assert!(!d.requires_grad());
        assert_eq!(d.value().data(), p.value().data());
    }

    #[test]
    fn cross_graph_ops_rejected() {
        let g1 = Graph::new();
        let g2 = Graph::new();
        let a = g1.leaf(Tensor::ones(&[2]));
        let b = g2.leaf(Tensor::ones(&[2]));
        assert!(a.add(&b).is_err());
    }
}
