//! # stwa-autograd
//!
//! Tape-based reverse-mode automatic differentiation over
//! [`stwa_tensor::Tensor`].
//!
//! A [`Graph`] is an append-only tape of nodes; each forward operation on
//! a [`Var`] records the op and its inputs, so node ids are already a
//! topological order and the backward pass is a single reverse sweep.
//! One training step builds one fresh graph: parameters are inserted as
//! gradient-requiring leaves, the loss is computed, [`Graph::backward`]
//! fills in gradients, and the optimizer reads them back out.
//!
//! ```
//! use stwa_autograd::Graph;
//! use stwa_tensor::Tensor;
//!
//! let g = Graph::new();
//! let x = g.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
//! let loss = x.square().unwrap().sum_all().unwrap();   // sum(x^2)
//! g.backward(&loss).unwrap();
//! let dx = g.grad(&x).unwrap();                        // 2x
//! assert_eq!(dx.data(), &[2.0, 4.0]);
//! ```

mod backward;
mod check;
mod graph;
mod ops;

pub use check::{check_gradient, GradCheckReport};
pub use graph::{ActKind, Graph, Var};
pub use ops::{concat, stack};
