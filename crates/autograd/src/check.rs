//! Finite-difference gradient verification.
//!
//! Every layer and every autograd op in the workspace is validated against
//! central differences through this utility. Tolerances are loose-ish
//! because everything is `f32`.

use crate::graph::{Graph, Var};
use stwa_tensor::{Result, Tensor};

/// Outcome of a gradient check for a single input tensor.
#[derive(Debug)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric partials.
    pub max_abs_err: f32,
    /// Largest relative difference (scaled by `max(1, |numeric|)`).
    pub max_rel_err: f32,
    /// Number of partials compared.
    pub count: usize,
}

impl GradCheckReport {
    /// Whether the analytic gradient matched within `tol` (relative).
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_err <= tol
    }
}

/// Check the analytic gradient of `f` at `input` against central
/// differences with step `eps`.
///
/// `f` must build a scalar loss from a gradient-requiring leaf on the
/// provided graph. Typical usage:
///
/// ```
/// use stwa_autograd::check_gradient;
/// use stwa_tensor::Tensor;
///
/// let x = Tensor::from_vec(vec![0.3, -0.7, 1.2], &[3]).unwrap();
/// let report = check_gradient(&x, 1e-3, |v| {
///     v.tanh().square()?.sum_all()
/// })
/// .unwrap();
/// assert!(report.passes(1e-2), "{report:?}");
/// ```
pub fn check_gradient(
    input: &Tensor,
    eps: f32,
    f: impl Fn(&Var) -> Result<Var>,
) -> Result<GradCheckReport> {
    // Analytic gradient.
    let graph = Graph::new();
    let x = graph.leaf(input.clone());
    let loss = f(&x)?;
    graph.backward(&loss)?;
    let analytic = graph
        .grad(&x)
        .unwrap_or_else(|| Tensor::zeros(input.shape()));

    // Numeric gradient by central differences, one coordinate at a time.
    let eval = |t: &Tensor| -> Result<f32> {
        let g = Graph::new();
        let v = g.constant(t.clone());
        f(&v)?.value().item()
    };
    let mut max_abs_err = 0.0f32;
    let mut max_rel_err = 0.0f32;
    let n = input.len();
    for i in 0..n {
        let mut plus = input.clone();
        plus.data_mut()[i] += eps;
        let mut minus = input.clone();
        minus.data_mut()[i] -= eps;
        let numeric = (eval(&plus)? - eval(&minus)?) / (2.0 * eps);
        let a = analytic.data()[i];
        let abs = (a - numeric).abs();
        let rel = abs / numeric.abs().max(1.0);
        max_abs_err = max_abs_err.max(abs);
        max_rel_err = max_rel_err.max(rel);
    }
    Ok(GradCheckReport {
        max_abs_err,
        max_rel_err,
        count: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const EPS: f32 = 1e-2;
    const TOL: f32 = 2e-2;

    fn input(shape: &[usize], seed: u64) -> Tensor {
        // Keep away from 0 so abs/relu/ln kinks and division are safe.
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::rand_uniform(shape, 0.3, 1.5, &mut rng)
    }

    fn signed_input(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::rand_uniform(shape, 0.2, 1.2, &mut rng);
        // Flip alternate signs to exercise negative regions, still away
        // from the origin.
        let mut v = t.into_vec();
        for (i, x) in v.iter_mut().enumerate() {
            if i % 2 == 0 {
                *x = -*x;
            }
        }
        Tensor::from_vec(v, shape).unwrap()
    }

    macro_rules! grad_test {
        ($name:ident, $input:expr, $build:expr) => {
            #[test]
            fn $name() {
                let x = $input;
                let report = check_gradient(&x, EPS, $build).unwrap();
                assert!(report.passes(TOL), "{}: {report:?}", stringify!($name));
            }
        };
    }

    grad_test!(gc_exp, signed_input(&[6], 1), |v| v.exp().sum_all());
    grad_test!(gc_ln, input(&[6], 2), |v| v.ln().sum_all());
    grad_test!(gc_sqrt, input(&[6], 3), |v| v.sqrt().sum_all());
    grad_test!(gc_tanh, signed_input(&[6], 4), |v| v.tanh().sum_all());
    grad_test!(gc_sigmoid, signed_input(&[6], 5), |v| v.sigmoid().sum_all());
    grad_test!(gc_relu, signed_input(&[6], 6), |v| v.relu().sum_all());
    grad_test!(gc_abs, signed_input(&[6], 7), |v| v.abs().sum_all());
    grad_test!(gc_square, signed_input(&[6], 8), |v| v.square()?.sum_all());
    grad_test!(gc_neg, signed_input(&[6], 9), |v| v.neg().sum_all());
    grad_test!(gc_scalar_ops, signed_input(&[6], 10), |v| {
        v.mul_scalar(3.0).add_scalar(1.0).square()?.sum_all()
    });

    grad_test!(gc_mean_all, signed_input(&[8], 11), |v| {
        v.square()?.mean_all()
    });

    grad_test!(gc_sum_axis, signed_input(&[3, 4], 12), |v| {
        v.sum_axis(1, false)?.square()?.sum_all()
    });

    grad_test!(gc_mean_axis_keepdim, signed_input(&[3, 4], 13), |v| {
        v.mean_axis(0, true)?.square()?.sum_all()
    });

    grad_test!(gc_softmax, signed_input(&[2, 5], 14), |v| {
        // Weighted sum of softmax keeps the loss sensitive to x.
        let w = v
            .graph()
            .constant(Tensor::from_fn(&[2, 5], |i| (i[1] + 1) as f32));
        v.softmax(1)?.mul(&w)?.sum_all()
    });

    grad_test!(gc_matmul_chain, input(&[2, 3], 15), |v| {
        let w = v.graph().constant(Tensor::from_fn(&[3, 2], |i| {
            0.3 * (i[0] as f32) - 0.2 * (i[1] as f32)
        }));
        v.matmul(&w)?.tanh().sum_all()
    });

    grad_test!(gc_div, input(&[6], 16), |v| {
        let c = v
            .graph()
            .constant(Tensor::from_fn(&[6], |i| 1.0 + i[0] as f32));
        // both numerator and denominator depend on v: v / (v + c)
        let denom = v.add(&c.mul_scalar(0.5))?;
        v.div(&denom)?.sum_all()
    });

    grad_test!(gc_broadcast_mul, input(&[3], 17), |v| {
        let m = v
            .graph()
            .constant(Tensor::from_fn(&[2, 3], |i| (i[0] + i[1]) as f32));
        // v broadcasts over rows of m.
        m.mul(v)?.square()?.sum_all()
    });

    grad_test!(gc_reshape_permute, signed_input(&[2, 6], 18), |v| {
        v.reshape(&[3, 4])?.permute(&[1, 0])?.square()?.sum_all()
    });

    grad_test!(gc_narrow_concat, signed_input(&[5], 19), |v| {
        let head = v.narrow(0, 0, 2)?;
        let tail = v.narrow(0, 2, 3)?;
        let swapped = crate::ops::concat(&[&tail, &head], 0)?;
        swapped.square()?.sum_all()
    });

    grad_test!(gc_index_select, signed_input(&[4, 2], 20), |v| {
        v.index_select(0, &[3, 0, 0, 2])?.square()?.sum_all()
    });

    grad_test!(gc_broadcast_to, signed_input(&[1, 3], 21), |v| {
        v.broadcast_to(&[4, 3])?.square()?.sum_all()
    });

    grad_test!(gc_batched_matmul, input(&[2, 2, 3], 22), |v| {
        let w = v.graph().constant(Tensor::from_fn(&[2, 3, 2], |i| {
            0.1 * (i[0] as f32 + 1.0) * (i[1] as f32 - i[2] as f32)
        }));
        v.matmul(&w)?.square()?.sum_all()
    });

    grad_test!(gc_matmul_nt, input(&[2, 4, 3], 24), |v| {
        // Both operands depend on v so the check exercises the dA and
        // dB paths of the fused A·Bᵀ backward at once.
        let w = v.graph().constant(Tensor::from_fn(&[2, 5, 3], |i| {
            0.2 * (i[0] as f32 + 1.0) - 0.1 * (i[1] as f32) + 0.05 * (i[2] as f32)
        }));
        let scores = v.matmul_nt(&w)?; // [2, 4, 5]
        let self_scores = v.matmul_nt(v)?; // [2, 4, 4]
        scores.square()?.sum_all()?.add(&self_scores.tanh().sum_all()?)
    });

    grad_test!(gc_huber_like, signed_input(&[6], 23), |v| {
        // Same structure as the Huber loss in stwa-nn: mask from values,
        // quadratic inside, linear outside.
        let delta = 0.5;
        let absd = v.abs();
        let mask = absd.value().map(|x| if x <= delta { 1.0 } else { 0.0 });
        let quad = v.square()?.mul_scalar(0.5);
        let lin = absd.mul_scalar(delta).add_scalar(-0.5 * delta * delta);
        quad.where_mask(&mask, &lin)?.sum_all()
    });

    #[test]
    fn report_counts_partials() {
        let x = input(&[7], 30);
        let r = check_gradient(&x, EPS, |v| v.square()?.sum_all()).unwrap();
        assert_eq!(r.count, 7);
    }
}
