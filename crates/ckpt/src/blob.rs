//! Checksummed named-tensor blobs — the binary payload of a checkpoint.
//!
//! Format (little-endian):
//!
//! ```text
//! magic "STWB" | u32 format | u64 tensor_count |
//!   per tensor: u64 name_len | name utf8 |
//!               u64 rank     | u64 dims[rank] |
//!               u64 data_bytes | f32 data[...] |
//!               u64 checksum   (FNV-1a over name, dims, and data bytes)
//! ```
//!
//! Two integrity layers: the manifest stores a byte count and an FNV-1a
//! checksum over the *whole file* (catches truncation and bit flips in
//! one comparison), and every tensor record carries its own checksum
//! (localizes the damage and survives manifest-less inspection).

use crate::{io_err, CkptError};
use std::path::Path;

/// Blob format version written by this build.
pub const BLOB_FORMAT: u32 = 1;

const MAGIC: &[u8; 4] = b"STWB";
/// Ranks above this are structurally implausible for this workspace and
/// treated as corruption rather than allocated.
const MAX_RANK: usize = 8;

/// One tensor with its registration name — the unit the checkpoint
/// layer moves between [`stwa_nn::ParamStore`]s and disk.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedTensor {
    pub name: String,
    pub shape: Vec<usize>,
    pub data: Vec<f32>,
}

impl NamedTensor {
    /// Number of scalar elements implied by the shape.
    pub fn len(&self) -> usize {
        self.shape.iter().product()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// FNV-1a 64-bit over `bytes` — the content checksum used throughout
/// the checkpoint layer. Not cryptographic; it detects truncation and
/// random corruption (a single flipped bit always changes the sum).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Per-tensor checksum: name bytes, then dims as LE u64s, then raw data
/// bytes, so renames and reshapes are detected, not just value edits.
fn tensor_checksum(t: &NamedTensor) -> u64 {
    let mut buf = Vec::with_capacity(t.name.len() + t.shape.len() * 8 + t.data.len() * 4);
    buf.extend_from_slice(t.name.as_bytes());
    for &d in &t.shape {
        buf.extend_from_slice(&(d as u64).to_le_bytes());
    }
    for &v in &t.data {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    fnv1a64(&buf)
}

/// Serialize `tensors` into the blob byte format.
pub fn encode(tensors: &[NamedTensor]) -> Vec<u8> {
    let payload: usize = tensors
        .iter()
        .map(|t| 8 + t.name.len() + 8 + t.shape.len() * 8 + 8 + t.data.len() * 4 + 8)
        .sum();
    let mut out = Vec::with_capacity(4 + 4 + 8 + payload);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&BLOB_FORMAT.to_le_bytes());
    out.extend_from_slice(&(tensors.len() as u64).to_le_bytes());
    for t in tensors {
        out.extend_from_slice(&(t.name.len() as u64).to_le_bytes());
        out.extend_from_slice(t.name.as_bytes());
        out.extend_from_slice(&(t.shape.len() as u64).to_le_bytes());
        for &d in &t.shape {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        out.extend_from_slice(&((t.data.len() * 4) as u64).to_le_bytes());
        for &v in &t.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&tensor_checksum(t).to_le_bytes());
    }
    out
}

/// Bounds-checked cursor over an in-memory blob; every read that would
/// run off the end becomes a typed `Truncated` error.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
    path: &'a Path,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.at + n > self.bytes.len() {
            return Err(CkptError::Truncated {
                path: self.path.to_path_buf(),
                detail: format!(
                    "need {n} bytes at offset {}, file has {}",
                    self.at,
                    self.bytes.len()
                ),
            });
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

/// Parse a blob from raw bytes, validating structure and every
/// per-tensor checksum. `path` is only used for error messages.
pub fn decode(path: &Path, bytes: &[u8]) -> Result<Vec<NamedTensor>, CkptError> {
    let mut cur = Cursor { bytes, at: 0, path };
    let format_err = |detail: String| CkptError::Format {
        path: path.to_path_buf(),
        detail,
    };
    if cur.take(4)? != MAGIC {
        return Err(format_err("bad blob magic (expected 'STWB')".into()));
    }
    let format = cur.u32()?;
    if format != BLOB_FORMAT {
        return Err(CkptError::VersionSkew {
            path: path.to_path_buf(),
            found: format,
            supported: BLOB_FORMAT,
        });
    }
    let count = cur.u64()? as usize;
    // A count that cannot possibly fit in the remaining bytes is
    // corruption; refuse before reserving anything.
    if count > bytes.len() {
        return Err(format_err(format!("implausible tensor count {count}")));
    }
    let mut tensors = Vec::with_capacity(count);
    for i in 0..count {
        let name_len = cur.u64()? as usize;
        if name_len > bytes.len() {
            return Err(format_err(format!("tensor {i}: implausible name length {name_len}")));
        }
        let name = String::from_utf8(cur.take(name_len)?.to_vec())
            .map_err(|_| format_err(format!("tensor {i}: non-utf8 name")))?;
        let rank = cur.u64()? as usize;
        if rank > MAX_RANK {
            return Err(format_err(format!("tensor '{name}': implausible rank {rank}")));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(cur.u64()? as usize);
        }
        let data_bytes = cur.u64()? as usize;
        let elems: usize = shape.iter().product();
        if data_bytes != elems * 4 {
            return Err(format_err(format!(
                "tensor '{name}': shape {shape:?} implies {} data bytes, record says {data_bytes}",
                elems * 4
            )));
        }
        let raw = cur.take(data_bytes)?;
        let data: Vec<f32> = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        let stored = cur.u64()?;
        let tensor = NamedTensor { name, shape, data };
        let actual = tensor_checksum(&tensor);
        if stored != actual {
            return Err(CkptError::ChecksumMismatch {
                path: path.to_path_buf(),
                tensor: Some(tensor.name),
                expected: stored,
                actual,
            });
        }
        tensors.push(tensor);
    }
    if cur.at != bytes.len() {
        return Err(format_err(format!(
            "{} trailing bytes after the last tensor record",
            bytes.len() - cur.at
        )));
    }
    Ok(tensors)
}

/// Write `tensors` to `path` and return `(bytes, checksum)` — the
/// manifest entry for the file.
pub fn write_file(path: &Path, tensors: &[NamedTensor]) -> Result<(u64, u64), CkptError> {
    let bytes = encode(tensors);
    std::fs::write(path, &bytes).map_err(|e| io_err(path, e))?;
    stwa_observe::counter!("ckpt.bytes_written").add(bytes.len() as u64);
    Ok((bytes.len() as u64, fnv1a64(&bytes)))
}

/// Read and fully verify a blob file: the manifest's recorded byte
/// count and file checksum first (truncation / bit flips), then the
/// per-tensor records.
pub fn read_file(
    path: &Path,
    expected_bytes: u64,
    expected_checksum: u64,
) -> Result<Vec<NamedTensor>, CkptError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(CkptError::MissingBlob(path.to_path_buf()))
        }
        Err(e) => return Err(io_err(path, e)),
    };
    if bytes.len() as u64 != expected_bytes {
        return Err(CkptError::Truncated {
            path: path.to_path_buf(),
            detail: format!(
                "manifest records {expected_bytes} bytes, file has {}",
                bytes.len()
            ),
        });
    }
    let actual = fnv1a64(&bytes);
    if actual != expected_checksum {
        return Err(CkptError::ChecksumMismatch {
            path: path.to_path_buf(),
            tensor: None,
            expected: expected_checksum,
            actual,
        });
    }
    stwa_observe::counter!("ckpt.bytes_read").add(bytes.len() as u64);
    decode(path, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<NamedTensor> {
        vec![
            NamedTensor {
                name: "layer.w".into(),
                shape: vec![2, 3],
                data: vec![1.0, -2.5, 3.25, 0.0, f32::MIN_POSITIVE, -0.0],
            },
            NamedTensor {
                name: "layer.b".into(),
                shape: vec![3],
                data: vec![0.5, 1.5, -9.75],
            },
        ]
    }

    #[test]
    fn roundtrip_is_bitwise() {
        let tensors = sample();
        let bytes = encode(&tensors);
        let back = decode(Path::new("mem"), &bytes).unwrap();
        assert_eq!(back.len(), tensors.len());
        for (a, b) in tensors.iter().zip(&back) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.shape, b.shape);
            for (x, y) in a.data.iter().zip(&b.data) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn bad_magic_is_format_error() {
        let mut bytes = encode(&sample());
        bytes[0] = b'X';
        assert!(matches!(
            decode(Path::new("mem"), &bytes),
            Err(CkptError::Format { .. })
        ));
    }

    #[test]
    fn unknown_format_is_version_skew() {
        let mut bytes = encode(&sample());
        bytes[4] = 0xEE;
        assert!(matches!(
            decode(Path::new("mem"), &bytes),
            Err(CkptError::VersionSkew { .. })
        ));
    }

    #[test]
    fn every_truncation_point_is_typed() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            let res = decode(Path::new("mem"), &bytes[..cut]);
            assert!(
                matches!(
                    res,
                    Err(CkptError::Truncated { .. })
                        | Err(CkptError::Format { .. })
                        | Err(CkptError::ChecksumMismatch { .. })
                ),
                "cut at {cut} must fail with a typed error"
            );
        }
    }

    #[test]
    fn flipped_data_bit_fails_tensor_checksum() {
        let bytes = encode(&sample());
        // Flip one bit somewhere in the middle (inside tensor data).
        let mut bad = bytes.clone();
        let at = bytes.len() / 2;
        bad[at] ^= 0x10;
        let res = decode(Path::new("mem"), &bad);
        assert!(res.is_err(), "corruption must not decode");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode(&sample());
        bytes.extend_from_slice(b"junk");
        assert!(matches!(
            decode(Path::new("mem"), &bytes),
            Err(CkptError::Format { .. })
        ));
    }

    #[test]
    fn fnv_detects_single_bit_flips() {
        let data = b"the quick brown fox".to_vec();
        let base = fnv1a64(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(base, fnv1a64(&flipped));
            }
        }
    }
}
