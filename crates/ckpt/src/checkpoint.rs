//! The full training checkpoint: parameters, Adam moments, RNG state,
//! counters, and the loss trajectory — everything a killed run needs to
//! resume bitwise identically to an uninterrupted one.

use crate::blob::{self, NamedTensor};
use crate::manifest::{BlobEntry, Manifest, FORMAT_VERSION, MANIFEST_FILE};
use crate::CkptError;
use std::path::Path;
use stwa_nn::ParamStore;
use stwa_tensor::Tensor;

/// Blob holding the live model parameters.
pub const PARAMS_BLOB: &str = "params.bin";
/// Blob holding the Adam first/second moments (`m.<param>`, `v.<param>`).
pub const OPTIM_BLOB: &str = "optim.bin";
/// Blob holding the best-validation parameters (absent when no
/// evaluation has improved on the initial `inf`).
pub const BEST_BLOB: &str = "best.bin";

/// A complete training checkpoint, in memory.
///
/// Produced either by capturing a live trainer at an epoch boundary
/// ([`TrainCheckpoint::load_dir`] reverses it) or by
/// [`TrainCheckpoint::params_only`] for serving publishes that carry no
/// optimizer state.
#[derive(Debug, Clone)]
pub struct TrainCheckpoint {
    /// Model name ([`stwa_core`-level] `ForecastModel::name`).
    pub model: String,
    /// Training seed; resume refuses a different one.
    pub seed: u64,
    /// Fingerprint of the training configuration.
    pub config_hash: u64,
    /// Completed epochs.
    pub epoch: usize,
    /// Optimizer steps taken (Adam's bias-correction `t`).
    pub step: u64,
    /// Trainer RNG stream state (xoshiro256++) at the epoch boundary.
    pub rng: [u64; 4],
    /// Best validation MAE so far (`inf` before the first improvement).
    pub best_val: f32,
    /// Epochs since `best_val` improved (early-stopping counter).
    pub since_best: usize,
    /// `(train_loss, val_mae)` per completed epoch.
    pub history: Vec<(f32, f32)>,
    /// Live parameters, in registration order.
    pub params: Vec<NamedTensor>,
    /// Adam first moments, aligned with `params` (empty when the
    /// checkpoint carries no optimizer state).
    pub opt_m: Vec<NamedTensor>,
    /// Adam second moments, aligned with `params`.
    pub opt_v: Vec<NamedTensor>,
    /// Best-validation parameters (empty when never captured).
    pub best_params: Vec<NamedTensor>,
}

/// Copy every parameter of `store` into named tensors, in registration
/// order.
pub fn capture_params(store: &ParamStore) -> Vec<NamedTensor> {
    store
        .params()
        .iter()
        .map(|p| NamedTensor {
            name: p.name().to_string(),
            shape: p.shape(),
            data: p.value().into_vec(),
        })
        .collect()
}

impl TrainCheckpoint {
    /// A parameters-only checkpoint — what a serving publish carries.
    /// Epoch/step/RNG are zeroed and the optimizer blobs are empty;
    /// resuming *training* from one of these is refused at the trainer
    /// level (no optimizer state), but [`TrainCheckpoint::load_params_into`]
    /// and freeze-from-registry work unchanged.
    pub fn params_only(model: impl Into<String>, store: &ParamStore) -> TrainCheckpoint {
        TrainCheckpoint {
            model: model.into(),
            seed: 0,
            config_hash: 0,
            epoch: 0,
            step: 0,
            rng: [0; 4],
            best_val: f32::INFINITY,
            since_best: 0,
            history: Vec::new(),
            params: capture_params(store),
            opt_m: Vec::new(),
            opt_v: Vec::new(),
            best_params: Vec::new(),
        }
    }

    /// Whether the checkpoint carries Adam moments (a training resume
    /// needs them; a serving publish does not).
    pub fn has_optimizer(&self) -> bool {
        !self.opt_m.is_empty() || !self.opt_v.is_empty()
    }

    /// Write the checkpoint into `dir` (which must exist) as blobs plus
    /// `manifest.json`, recording `version` in the manifest. Returns the
    /// manifest that was written.
    ///
    /// Atomicity is the *caller's* job: the registry saves into a temp
    /// directory and renames it into place. `save_dir` itself writes the
    /// manifest last, so a torn write inside the directory leaves either
    /// no manifest (→ `MissingManifest`) or a manifest whose checksums
    /// expose the damage.
    pub fn save_dir(&self, dir: &Path, version: u32) -> Result<Manifest, CkptError> {
        let _span = stwa_observe::span!("ckpt.save");
        let mut blobs = Vec::new();
        let mut write = |file: &str, tensors: &[NamedTensor]| -> Result<(), CkptError> {
            let (bytes, checksum) = blob::write_file(&dir.join(file), tensors)?;
            blobs.push(BlobEntry {
                file: file.to_string(),
                bytes,
                checksum,
            });
            Ok(())
        };
        write(PARAMS_BLOB, &self.params)?;
        if self.has_optimizer() {
            let mut moments =
                Vec::with_capacity(self.opt_m.len() + self.opt_v.len());
            for t in &self.opt_m {
                moments.push(NamedTensor {
                    name: format!("m.{}", t.name),
                    shape: t.shape.clone(),
                    data: t.data.clone(),
                });
            }
            for t in &self.opt_v {
                moments.push(NamedTensor {
                    name: format!("v.{}", t.name),
                    shape: t.shape.clone(),
                    data: t.data.clone(),
                });
            }
            write(OPTIM_BLOB, &moments)?;
        }
        if !self.best_params.is_empty() {
            write(BEST_BLOB, &self.best_params)?;
        }
        let manifest = Manifest {
            format: FORMAT_VERSION,
            model: self.model.clone(),
            version,
            seed: self.seed,
            config_hash: self.config_hash,
            epoch: self.epoch,
            step: self.step,
            rng: self.rng,
            best_val: self.best_val,
            since_best: self.since_best,
            loss_trajectory: self.history.clone(),
            blobs,
        };
        manifest.write(&dir.join(MANIFEST_FILE))?;
        stwa_observe::counter!("ckpt.saves").incr();
        Ok(manifest)
    }

    /// Load and fully verify a checkpoint directory: manifest first,
    /// then every blob against its recorded byte count and checksum,
    /// then each tensor record's own checksum. Any corruption is a
    /// typed [`CkptError`].
    pub fn load_dir(dir: &Path) -> Result<TrainCheckpoint, CkptError> {
        let _span = stwa_observe::span!("ckpt.load");
        let manifest = Manifest::read(&dir.join(MANIFEST_FILE))?;
        let read = |file: &str| -> Result<Vec<NamedTensor>, CkptError> {
            match manifest.blob(file) {
                Some(entry) => blob::read_file(&dir.join(file), entry.bytes, entry.checksum),
                None => Ok(Vec::new()),
            }
        };
        let params = read(PARAMS_BLOB)?;
        if manifest.blob(PARAMS_BLOB).is_none() {
            return Err(CkptError::Format {
                path: dir.join(MANIFEST_FILE),
                detail: format!("manifest has no '{PARAMS_BLOB}' entry"),
            });
        }
        let moments = read(OPTIM_BLOB)?;
        let mut opt_m = Vec::new();
        let mut opt_v = Vec::new();
        for t in moments {
            if let Some(name) = t.name.strip_prefix("m.") {
                opt_m.push(NamedTensor {
                    name: name.to_string(),
                    shape: t.shape,
                    data: t.data,
                });
            } else if let Some(name) = t.name.strip_prefix("v.") {
                opt_v.push(NamedTensor {
                    name: name.to_string(),
                    shape: t.shape,
                    data: t.data,
                });
            } else {
                return Err(CkptError::Format {
                    path: dir.join(OPTIM_BLOB),
                    detail: format!(
                        "optimizer tensor '{}' has neither 'm.' nor 'v.' prefix",
                        t.name
                    ),
                });
            }
        }
        let best_params = read(BEST_BLOB)?;
        stwa_observe::counter!("ckpt.loads").incr();
        Ok(TrainCheckpoint {
            model: manifest.model,
            seed: manifest.seed,
            config_hash: manifest.config_hash,
            epoch: manifest.epoch,
            step: manifest.step,
            rng: manifest.rng,
            best_val: manifest.best_val,
            since_best: manifest.since_best,
            history: manifest.loss_trajectory,
            params,
            opt_m,
            opt_v,
            best_params,
        })
    }

    /// Overwrite `store`'s parameters from the checkpoint's `params`,
    /// matched **by name** and shape-checked — registration order may
    /// differ between the saving and loading build.
    pub fn load_params_into(&self, store: &ParamStore) -> Result<(), CkptError> {
        load_named(&self.params, store)
    }

    /// Overwrite `store` from the best-validation parameters instead
    /// (what a serving load wants when both are present).
    pub fn load_best_into(&self, store: &ParamStore) -> Result<(), CkptError> {
        if self.best_params.is_empty() {
            return self.load_params_into(store);
        }
        load_named(&self.best_params, store)
    }
}

/// Name-matched, shape-checked bulk load into a store.
fn load_named(tensors: &[NamedTensor], store: &ParamStore) -> Result<(), CkptError> {
    for p in store.params() {
        let t = tensors
            .iter()
            .find(|t| t.name == p.name())
            .ok_or_else(|| {
                CkptError::Mismatch(format!("checkpoint has no tensor named '{}'", p.name()))
            })?;
        if t.shape != p.shape() {
            return Err(CkptError::Mismatch(format!(
                "shape mismatch for '{}': checkpoint {:?}, model {:?}",
                p.name(),
                t.shape,
                p.shape()
            )));
        }
        let tensor = Tensor::from_vec(t.data.clone(), &t.shape)
            .map_err(|e| CkptError::Mismatch(format!("'{}': {e}", t.name)))?;
        p.set_value(tensor);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "stwa_ckpt_test_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_store() -> ParamStore {
        let store = ParamStore::new();
        store.param(
            "enc.w",
            Tensor::from_vec(vec![1.0, -2.5, 3.25, 0.125], &[2, 2]).unwrap(),
        );
        store.param("enc.b", Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap());
        store
    }

    fn sample_ckpt() -> TrainCheckpoint {
        let store = sample_store();
        let mut ckpt = TrainCheckpoint::params_only("ST-WA", &store);
        ckpt.seed = 21;
        ckpt.config_hash = 0xABCD;
        ckpt.epoch = 3;
        ckpt.step = 51;
        ckpt.rng = [1, 2, 3, 4];
        ckpt.best_val = 18.5;
        ckpt.since_best = 1;
        ckpt.history = vec![(30.0, 20.0), (25.0, 18.5), (24.0, 19.0)];
        ckpt.opt_m = ckpt
            .params
            .iter()
            .map(|t| NamedTensor {
                name: t.name.clone(),
                shape: t.shape.clone(),
                data: vec![0.01; t.data.len()],
            })
            .collect();
        ckpt.opt_v = ckpt
            .params
            .iter()
            .map(|t| NamedTensor {
                name: t.name.clone(),
                shape: t.shape.clone(),
                data: vec![0.001; t.data.len()],
            })
            .collect();
        ckpt.best_params = ckpt.params.clone();
        ckpt
    }

    #[test]
    fn save_load_roundtrip_is_bitwise() {
        let dir = temp_dir("roundtrip");
        let ckpt = sample_ckpt();
        ckpt.save_dir(&dir, 1).unwrap();
        let back = TrainCheckpoint::load_dir(&dir).unwrap();
        assert_eq!(back.model, ckpt.model);
        assert_eq!(back.seed, ckpt.seed);
        assert_eq!(back.config_hash, ckpt.config_hash);
        assert_eq!(back.epoch, ckpt.epoch);
        assert_eq!(back.step, ckpt.step);
        assert_eq!(back.rng, ckpt.rng);
        assert_eq!(back.best_val.to_bits(), ckpt.best_val.to_bits());
        assert_eq!(back.since_best, ckpt.since_best);
        assert_eq!(back.history.len(), ckpt.history.len());
        for (a, b) in ckpt.history.iter().zip(&back.history) {
            assert_eq!(a.0.to_bits(), b.0.to_bits());
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        for (a, b) in ckpt.params.iter().zip(&back.params) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.shape, b.shape);
            for (x, y) in a.data.iter().zip(&b.data) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(back.opt_m.len(), ckpt.opt_m.len());
        assert_eq!(back.opt_v.len(), ckpt.opt_v.len());
        assert_eq!(back.best_params.len(), ckpt.best_params.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn params_only_skips_optimizer_blob() {
        let dir = temp_dir("params_only");
        let store = sample_store();
        let ckpt = TrainCheckpoint::params_only("ST-WA", &store);
        assert!(!ckpt.has_optimizer());
        ckpt.save_dir(&dir, 1).unwrap();
        assert!(!dir.join(OPTIM_BLOB).exists());
        assert!(!dir.join(BEST_BLOB).exists());
        let back = TrainCheckpoint::load_dir(&dir).unwrap();
        assert!(!back.has_optimizer());
        assert!(back.best_params.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_params_into_restores_store_values() {
        let dir = temp_dir("load_into");
        sample_ckpt().save_dir(&dir, 1).unwrap();
        let back = TrainCheckpoint::load_dir(&dir).unwrap();
        let fresh = ParamStore::new();
        fresh.param("enc.w", Tensor::zeros(&[2, 2]));
        fresh.param("enc.b", Tensor::zeros(&[2]));
        back.load_params_into(&fresh).unwrap();
        assert_eq!(
            fresh.params()[0].value().data(),
            &[1.0, -2.5, 3.25, 0.125]
        );
        assert_eq!(fresh.params()[1].value().data(), &[0.5, -0.5]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_into_mismatched_store_is_typed() {
        let dir = temp_dir("mismatch");
        sample_ckpt().save_dir(&dir, 1).unwrap();
        let back = TrainCheckpoint::load_dir(&dir).unwrap();

        let missing = ParamStore::new();
        missing.param("other.w", Tensor::zeros(&[2, 2]));
        assert!(matches!(
            back.load_params_into(&missing),
            Err(CkptError::Mismatch(_))
        ));

        let wrong_shape = ParamStore::new();
        wrong_shape.param("enc.w", Tensor::zeros(&[3, 3]));
        assert!(matches!(
            back.load_params_into(&wrong_shape),
            Err(CkptError::Mismatch(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
