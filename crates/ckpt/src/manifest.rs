//! The checkpoint manifest: a small JSON document describing one
//! checkpoint version — identity (model, version, seed, config hash),
//! resume counters (epoch, optimizer step, RNG stream state,
//! early-stopping bookkeeping), the loss trajectory, and an integrity
//! entry `{file, bytes, checksum}` for every tensor blob in the
//! directory.
//!
//! The manifest is the root of trust for a load: blobs are only read
//! after their recorded byte count and checksum verify. 64-bit fields
//! (seed, config hash, RNG lanes, checksums) are serialized as hex
//! strings because JSON numbers are `f64` and cannot carry a full u64.

use crate::{CkptError, io_err};
use std::path::Path;
use stwa_observe::{parse_json, Json};

/// Manifest format version written by this build. Readers refuse
/// anything else with [`CkptError::VersionSkew`] — guessing at an
/// unknown layout risks a silently-wrong model.
pub const FORMAT_VERSION: u32 = 1;

/// File name of the manifest inside a checkpoint version directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Integrity record for one blob file in the checkpoint directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlobEntry {
    pub file: String,
    pub bytes: u64,
    pub checksum: u64,
}

/// Everything `manifest.json` carries.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    pub format: u32,
    pub model: String,
    /// Registry version this manifest was published as (0 for a
    /// checkpoint saved outside a registry).
    pub version: u32,
    pub seed: u64,
    /// Fingerprint of the training configuration that produced the
    /// checkpoint; resume refuses on mismatch.
    pub config_hash: u64,
    /// Completed epochs.
    pub epoch: usize,
    /// Optimizer steps taken (Adam's `t`).
    pub step: u64,
    /// xoshiro256++ state of the trainer's RNG stream at the epoch
    /// boundary.
    pub rng: [u64; 4],
    /// Best validation MAE so far (`inf` → serialized as null).
    pub best_val: f32,
    /// Epochs since the best validation MAE (early-stopping counter).
    pub since_best: usize,
    /// `(train_loss, val_mae)` per completed epoch.
    pub loss_trajectory: Vec<(f32, f32)>,
    pub blobs: Vec<BlobEntry>,
}

fn hex(v: u64) -> Json {
    Json::Str(format!("{v:#018x}"))
}

fn f32_num(v: f32) -> Json {
    // f32 -> f64 is exact; the writer's shortest-round-trip formatting
    // makes the full trip bitwise for finite values. Non-finite floats
    // serialize as null and are restored by `parse_f32`.
    Json::Num(v as f64)
}

impl Manifest {
    /// Serialize to the on-disk JSON document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("format".into(), Json::Num(self.format as f64)),
            ("model".into(), Json::Str(self.model.clone())),
            ("version".into(), Json::Num(self.version as f64)),
            ("seed".into(), hex(self.seed)),
            ("config_hash".into(), hex(self.config_hash)),
            ("epoch".into(), Json::Num(self.epoch as f64)),
            ("step".into(), Json::Num(self.step as f64)),
            (
                "rng".into(),
                Json::Arr(self.rng.iter().map(|&l| hex(l)).collect()),
            ),
            ("best_val".into(), f32_num(self.best_val)),
            ("since_best".into(), Json::Num(self.since_best as f64)),
            (
                "loss_trajectory".into(),
                Json::Arr(
                    self.loss_trajectory
                        .iter()
                        .map(|&(l, v)| Json::Arr(vec![f32_num(l), f32_num(v)]))
                        .collect(),
                ),
            ),
            (
                "blobs".into(),
                Json::Arr(
                    self.blobs
                        .iter()
                        .map(|b| {
                            Json::Obj(vec![
                                ("file".into(), Json::Str(b.file.clone())),
                                ("bytes".into(), Json::Num(b.bytes as f64)),
                                ("checksum".into(), hex(b.checksum)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Write the manifest to `path` (pretty-printed, trailing newline).
    pub fn write(&self, path: &Path) -> Result<(), CkptError> {
        std::fs::write(path, self.to_json().pretty()).map_err(|e| io_err(path, e))
    }

    /// Read and validate a manifest. Distinguishes the three failure
    /// families the fault-injection suite cares about: the file not
    /// existing ([`CkptError::MissingManifest`]), unparseable or
    /// structurally wrong content ([`CkptError::Format`]), and a format
    /// version this build does not read ([`CkptError::VersionSkew`]).
    pub fn read(path: &Path) -> Result<Manifest, CkptError> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(CkptError::MissingManifest(path.to_path_buf()))
            }
            Err(e) => return Err(io_err(path, e)),
        };
        let doc = parse_json(&text).map_err(|e| CkptError::Format {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })?;
        Manifest::from_json(path, &doc)
    }

    /// Decode a parsed JSON document into a manifest.
    pub fn from_json(path: &Path, doc: &Json) -> Result<Manifest, CkptError> {
        let err = |detail: String| CkptError::Format {
            path: path.to_path_buf(),
            detail,
        };
        let num = |key: &str| -> Result<f64, CkptError> {
            doc.get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| err(format!("missing numeric field '{key}'")))
        };
        let format = num("format")? as u32;
        if format != FORMAT_VERSION {
            return Err(CkptError::VersionSkew {
                path: path.to_path_buf(),
                found: format,
                supported: FORMAT_VERSION,
            });
        }
        let model = doc
            .get("model")
            .and_then(Json::as_str)
            .ok_or_else(|| err("missing string field 'model'".into()))?
            .to_string();
        let rng_arr = doc
            .get("rng")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("missing array field 'rng'".into()))?;
        if rng_arr.len() != 4 {
            return Err(err(format!("rng must have 4 lanes, found {}", rng_arr.len())));
        }
        let mut rng = [0u64; 4];
        for (lane, j) in rng.iter_mut().zip(rng_arr) {
            *lane = parse_hex(path, j)?;
        }
        let trajectory = doc
            .get("loss_trajectory")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("missing array field 'loss_trajectory'".into()))?
            .iter()
            .map(|pair| {
                let pair = pair
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| err("loss_trajectory entries must be [train, val]".into()))?;
                Ok((parse_f32(&pair[0]), parse_f32(&pair[1])))
            })
            .collect::<Result<Vec<_>, CkptError>>()?;
        let blobs = doc
            .get("blobs")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("missing array field 'blobs'".into()))?
            .iter()
            .map(|b| {
                let file = b
                    .get("file")
                    .and_then(Json::as_str)
                    .ok_or_else(|| err("blob entry missing 'file'".into()))?;
                if file.contains('/') || file.contains('\\') || file.starts_with('.') {
                    return Err(err(format!("blob file name '{file}' escapes the directory")));
                }
                let bytes = b
                    .get("bytes")
                    .and_then(Json::as_num)
                    .ok_or_else(|| err("blob entry missing 'bytes'".into()))?;
                let checksum = b
                    .get("checksum")
                    .ok_or_else(|| err("blob entry missing 'checksum'".into()))?;
                Ok(BlobEntry {
                    file: file.to_string(),
                    bytes: bytes as u64,
                    checksum: parse_hex(path, checksum)?,
                })
            })
            .collect::<Result<Vec<_>, CkptError>>()?;
        Ok(Manifest {
            format,
            model,
            version: num("version")? as u32,
            seed: parse_hex(
                path,
                doc.get("seed").ok_or_else(|| err("missing 'seed'".into()))?,
            )?,
            config_hash: parse_hex(
                path,
                doc.get("config_hash")
                    .ok_or_else(|| err("missing 'config_hash'".into()))?,
            )?,
            epoch: num("epoch")? as usize,
            step: num("step")? as u64,
            rng,
            best_val: doc.get("best_val").map_or(f32::INFINITY, parse_f32),
            since_best: num("since_best")? as usize,
            loss_trajectory: trajectory,
            blobs,
        })
    }

    /// The integrity entry for `file`, if the manifest has one.
    pub fn blob(&self, file: &str) -> Option<&BlobEntry> {
        self.blobs.iter().find(|b| b.file == file)
    }
}

/// Non-finite floats serialize as JSON null; restore `inf` (the only
/// non-finite value the trainer produces, as the pre-first-eval
/// `best_val` sentinel).
fn parse_f32(j: &Json) -> f32 {
    match j {
        Json::Num(n) => *n as f32,
        _ => f32::INFINITY,
    }
}

fn parse_hex(path: &Path, j: &Json) -> Result<u64, CkptError> {
    let s = j.as_str().ok_or_else(|| CkptError::Format {
        path: path.to_path_buf(),
        detail: "expected a hex string".into(),
    })?;
    let digits = s.strip_prefix("0x").unwrap_or(s);
    u64::from_str_radix(digits, 16).map_err(|_| CkptError::Format {
        path: path.to_path_buf(),
        detail: format!("'{s}' is not a hex integer"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            format: FORMAT_VERSION,
            model: "ST-WA".into(),
            version: 3,
            seed: 21,
            config_hash: 0xDEAD_BEEF_CAFE_F00D,
            epoch: 2,
            step: 34,
            rng: [u64::MAX, 1, 0x9E37_79B9_7F4A_7C15, 7],
            best_val: 17.25,
            since_best: 1,
            loss_trajectory: vec![(30.125, 19.5), (24.0625, 17.25)],
            blobs: vec![BlobEntry {
                file: "params.bin".into(),
                bytes: 1024,
                checksum: 0x0123_4567_89AB_CDEF,
            }],
        }
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let m = sample();
        let text = m.to_json().pretty();
        let doc = parse_json(&text).unwrap();
        let back = Manifest::from_json(Path::new("mem"), &doc).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn infinite_best_val_survives_as_null() {
        let mut m = sample();
        m.best_val = f32::INFINITY;
        let text = m.to_json().pretty();
        assert!(text.contains("null"));
        let doc = parse_json(&text).unwrap();
        let back = Manifest::from_json(Path::new("mem"), &doc).unwrap();
        assert!(back.best_val.is_infinite());
    }

    #[test]
    fn format_skew_is_typed() {
        let mut m = sample();
        m.format = 99;
        let doc = parse_json(&m.to_json().pretty()).unwrap();
        assert!(matches!(
            Manifest::from_json(Path::new("mem"), &doc),
            Err(CkptError::VersionSkew {
                found: 99,
                supported: FORMAT_VERSION,
                ..
            })
        ));
    }

    #[test]
    fn traversal_blob_names_are_rejected() {
        let mut m = sample();
        m.blobs[0].file = "../evil.bin".into();
        let doc = parse_json(&m.to_json().pretty()).unwrap();
        assert!(matches!(
            Manifest::from_json(Path::new("mem"), &doc),
            Err(CkptError::Format { .. })
        ));
    }

    #[test]
    fn missing_manifest_is_typed() {
        let path = std::env::temp_dir().join("stwa_ckpt_no_such_manifest.json");
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            Manifest::read(&path),
            Err(CkptError::MissingManifest(_))
        ));
    }
}
