//! The model registry: immutable checkpoint versions under
//! `<root>/<name>/<version>/` with an atomic publish and a `LATEST`
//! pointer.
//!
//! # Atomicity
//!
//! A publish writes the whole checkpoint into a hidden temp directory
//! (`.tmp-<version>`) next to its final location and then `rename`s it
//! into place. On POSIX filesystems the rename is atomic, so a reader
//! never observes a half-written version: either the directory is
//! absent, or it is complete. The `LATEST` pointer file is updated the
//! same way (write temp, rename). A crash mid-publish leaves at worst a
//! `.tmp-*` directory, which the next publish sweeps away; hidden
//! directories are never listed as versions.

use crate::checkpoint::TrainCheckpoint;
use crate::{io_err, CkptError};
use std::path::{Path, PathBuf};

/// Name of the pointer file holding the newest published version.
const LATEST_FILE: &str = "LATEST";

/// A directory tree of published model versions.
pub struct Registry {
    root: PathBuf,
}

/// Registry model names become directory names; refuse anything that
/// could escape the root or collide with the registry's own files.
fn validate_name(name: &str) -> Result<(), CkptError> {
    let ok = !name.is_empty()
        && name.len() <= 128
        && !name.starts_with('.')
        && name != LATEST_FILE
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | ' '));
    if ok {
        Ok(())
    } else {
        Err(CkptError::Registry(format!("invalid model name '{name}'")))
    }
}

impl Registry {
    /// Open (creating if needed) a registry rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Registry, CkptError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| io_err(&root, e))?;
        Ok(Registry { root })
    }

    /// The registry's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Directory of one published version.
    pub fn version_dir(&self, name: &str, version: u32) -> PathBuf {
        self.root.join(name).join(version.to_string())
    }

    /// Published versions of `name`, ascending. Empty when the model is
    /// unknown. Hidden (`.tmp-*`) and non-numeric entries are ignored.
    pub fn versions(&self, name: &str) -> Result<Vec<u32>, CkptError> {
        validate_name(name)?;
        let dir = self.root.join(name);
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(io_err(&dir, e)),
        };
        let mut versions: Vec<u32> = entries
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_dir())
            .filter_map(|e| e.file_name().to_str().and_then(|s| s.parse().ok()))
            .collect();
        versions.sort_unstable();
        Ok(versions)
    }

    /// Newest published version of `name`, per the `LATEST` pointer.
    /// Falls back to the highest version directory when the pointer is
    /// missing or unreadable (a crash between rename and pointer
    /// update).
    pub fn latest(&self, name: &str) -> Result<u32, CkptError> {
        validate_name(name)?;
        if let Ok(text) = std::fs::read_to_string(self.root.join(name).join(LATEST_FILE)) {
            if let Ok(v) = text.trim().parse::<u32>() {
                if self.version_dir(name, v).is_dir() {
                    return Ok(v);
                }
            }
        }
        self.versions(name)?
            .last()
            .copied()
            .ok_or_else(|| CkptError::Registry(format!("no published versions of '{name}'")))
    }

    /// Directory of the newest published version.
    pub fn latest_dir(&self, name: &str) -> Result<PathBuf, CkptError> {
        Ok(self.version_dir(name, self.latest(name)?))
    }

    /// Publish `ckpt` as the next version of `name` and return the
    /// version number. Write-temp-then-rename: readers never see a
    /// partial version.
    pub fn publish(&self, name: &str, ckpt: &TrainCheckpoint) -> Result<u32, CkptError> {
        validate_name(name)?;
        let _span = stwa_observe::span!("ckpt.publish");
        let model_dir = self.root.join(name);
        std::fs::create_dir_all(&model_dir).map_err(|e| io_err(&model_dir, e))?;
        // Sweep leftovers from a crashed publish before picking a slot.
        if let Ok(entries) = std::fs::read_dir(&model_dir) {
            for e in entries.filter_map(|e| e.ok()) {
                if e.file_name().to_string_lossy().starts_with(".tmp-") {
                    let _ = std::fs::remove_dir_all(e.path());
                }
            }
        }
        let version = self.versions(name)?.last().copied().unwrap_or(0) + 1;
        let tmp = model_dir.join(format!(".tmp-{version}"));
        std::fs::create_dir_all(&tmp).map_err(|e| io_err(&tmp, e))?;
        ckpt.save_dir(&tmp, version)?;
        let final_dir = self.version_dir(name, version);
        std::fs::rename(&tmp, &final_dir).map_err(|e| io_err(&final_dir, e))?;
        self.point_latest(name, version)?;
        stwa_observe::counter!("ckpt.publishes").incr();
        Ok(version)
    }

    /// Update the `LATEST` pointer atomically (write temp, rename).
    fn point_latest(&self, name: &str, version: u32) -> Result<(), CkptError> {
        let model_dir = self.root.join(name);
        let tmp = model_dir.join(".tmp-LATEST");
        std::fs::write(&tmp, format!("{version}\n")).map_err(|e| io_err(&tmp, e))?;
        let ptr = model_dir.join(LATEST_FILE);
        std::fs::rename(&tmp, &ptr).map_err(|e| io_err(&ptr, e))
    }

    /// Load a checkpoint: the given version, or the latest when `None`.
    pub fn load(&self, name: &str, version: Option<u32>) -> Result<TrainCheckpoint, CkptError> {
        validate_name(name)?;
        let version = match version {
            Some(v) => v,
            None => self.latest(name)?,
        };
        let dir = self.version_dir(name, version);
        if !dir.is_dir() {
            return Err(CkptError::Registry(format!(
                "'{name}' has no version {version}"
            )));
        }
        TrainCheckpoint::load_dir(&dir)
    }

    /// Delete old versions of `name`, keeping the newest `keep` (and
    /// always the version `LATEST` points at). `keep == 0` keeps
    /// everything. Returns the versions removed.
    pub fn prune(&self, name: &str, keep: usize) -> Result<Vec<u32>, CkptError> {
        validate_name(name)?;
        if keep == 0 {
            return Ok(Vec::new());
        }
        let versions = self.versions(name)?;
        let latest = self.latest(name).ok();
        let cut = versions.len().saturating_sub(keep);
        let mut removed = Vec::new();
        for &v in &versions[..cut] {
            if Some(v) == latest {
                continue;
            }
            let dir = self.version_dir(name, v);
            std::fs::remove_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
            stwa_observe::counter!("ckpt.prunes").incr();
            removed.push(v);
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stwa_nn::ParamStore;
    use stwa_tensor::Tensor;

    fn temp_registry(tag: &str) -> Registry {
        let root = std::env::temp_dir().join(format!(
            "stwa_registry_test_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        Registry::open(root).unwrap()
    }

    fn ckpt(fill: f32) -> TrainCheckpoint {
        let store = ParamStore::new();
        store.param("w", Tensor::full(&[2, 2], fill));
        TrainCheckpoint::params_only("demo", &store)
    }

    #[test]
    fn publish_assigns_sequential_versions_and_tracks_latest() {
        let reg = temp_registry("sequential");
        assert_eq!(reg.publish("demo", &ckpt(1.0)).unwrap(), 1);
        assert_eq!(reg.publish("demo", &ckpt(2.0)).unwrap(), 2);
        assert_eq!(reg.publish("demo", &ckpt(3.0)).unwrap(), 3);
        assert_eq!(reg.versions("demo").unwrap(), vec![1, 2, 3]);
        assert_eq!(reg.latest("demo").unwrap(), 3);
        let loaded = reg.load("demo", None).unwrap();
        assert_eq!(loaded.params[0].data, vec![3.0; 4]);
        let pinned = reg.load("demo", Some(1)).unwrap();
        assert_eq!(pinned.params[0].data, vec![1.0; 4]);
        std::fs::remove_dir_all(reg.root()).unwrap();
    }

    #[test]
    fn no_tmp_dirs_survive_a_publish() {
        let reg = temp_registry("tmp_swept");
        reg.publish("demo", &ckpt(1.0)).unwrap();
        // Simulate a crashed publish...
        std::fs::create_dir_all(reg.root().join("demo").join(".tmp-9")).unwrap();
        reg.publish("demo", &ckpt(2.0)).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(reg.root().join("demo"))
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "publish must sweep temp dirs");
        // ...and the hidden dir never counted as a version.
        assert_eq!(reg.versions("demo").unwrap(), vec![1, 2]);
        std::fs::remove_dir_all(reg.root()).unwrap();
    }

    #[test]
    fn prune_keeps_newest_and_latest() {
        let reg = temp_registry("prune");
        for i in 1..=5 {
            reg.publish("demo", &ckpt(i as f32)).unwrap();
        }
        let removed = reg.prune("demo", 2).unwrap();
        assert_eq!(removed, vec![1, 2, 3]);
        assert_eq!(reg.versions("demo").unwrap(), vec![4, 5]);
        assert_eq!(reg.latest("demo").unwrap(), 5);
        // keep=0 disables pruning.
        assert!(reg.prune("demo", 0).unwrap().is_empty());
        std::fs::remove_dir_all(reg.root()).unwrap();
    }

    #[test]
    fn unknown_model_and_version_are_typed() {
        let reg = temp_registry("unknown");
        assert!(matches!(
            reg.load("ghost", None),
            Err(CkptError::Registry(_))
        ));
        reg.publish("demo", &ckpt(1.0)).unwrap();
        assert!(matches!(
            reg.load("demo", Some(7)),
            Err(CkptError::Registry(_))
        ));
        std::fs::remove_dir_all(reg.root()).unwrap();
    }

    #[test]
    fn hostile_names_are_rejected() {
        let reg = temp_registry("names");
        for bad in ["", "../up", "a/b", ".hidden", "LATEST"] {
            assert!(
                matches!(reg.versions(bad), Err(CkptError::Registry(_))),
                "name '{bad}' must be rejected"
            );
        }
        std::fs::remove_dir_all(reg.root()).unwrap();
    }

    #[test]
    fn missing_latest_pointer_falls_back_to_highest_dir() {
        let reg = temp_registry("fallback");
        reg.publish("demo", &ckpt(1.0)).unwrap();
        reg.publish("demo", &ckpt(2.0)).unwrap();
        std::fs::remove_file(reg.root().join("demo").join(LATEST_FILE)).unwrap();
        assert_eq!(reg.latest("demo").unwrap(), 2);
        std::fs::remove_dir_all(reg.root()).unwrap();
    }
}
