//! Versioned on-disk checkpoints and a small model registry.
//!
//! This crate is the durability layer under the training and serving
//! engines: [`TrainCheckpoint`] captures everything a run needs to
//! resume **bitwise identically** (parameters, Adam moments, RNG stream
//! state, step/epoch counters, the loss trajectory, and the
//! early-stopping bookkeeping), and [`Registry`] stores checkpoints as
//! immutable versions under `registry/<name>/<version>/` with an atomic
//! write-temp-then-rename publish, a `LATEST` pointer, and a prune
//! policy.
//!
//! # On-disk layout
//!
//! ```text
//! <root>/<name>/LATEST            newest published version number
//! <root>/<name>/<version>/
//!     manifest.json               format, seed, config hash, counters,
//!                                 RNG state, loss trajectory, and one
//!                                 {file, bytes, checksum} entry per blob
//!     params.bin                  named tensor blob (checksummed)
//!     optim.bin                   Adam moments, "m.<param>"/"v.<param>"
//!     best.bin                    best-validation parameters (optional)
//! ```
//!
//! # Integrity contract
//!
//! Every load is verified before a single value reaches a model: the
//! manifest must parse and carry a supported format version, each blob
//! file must match its manifest byte count and FNV-1a content checksum,
//! and each tensor record inside a blob carries its own checksum. Any
//! violation is a typed [`CkptError`] — corruption is never a panic and
//! never a silently-wrong model. The fault-injection suite in
//! `tests/corruption.rs` holds this line.

pub mod blob;
pub mod checkpoint;
pub mod manifest;
pub mod registry;

pub use blob::{fnv1a64, NamedTensor};
pub use checkpoint::{TrainCheckpoint, BEST_BLOB, OPTIM_BLOB, PARAMS_BLOB};
pub use manifest::{BlobEntry, Manifest, FORMAT_VERSION, MANIFEST_FILE};
pub use registry::Registry;

use std::path::PathBuf;

/// Everything that can go wrong saving, loading, or resolving a
/// checkpoint. Each corruption mode gets its own variant so callers
/// (and the fault-injection tests) can tell a truncated file from a
/// bit-flip from a format skew.
#[derive(Debug)]
pub enum CkptError {
    /// Filesystem failure opening/creating/renaming (not content).
    Io { path: PathBuf, source: std::io::Error },
    /// `manifest.json` does not exist where a checkpoint should be.
    MissingManifest(PathBuf),
    /// The manifest names a blob file that is not on disk.
    MissingBlob(PathBuf),
    /// Unparseable or structurally invalid manifest/blob content.
    Format { path: PathBuf, detail: String },
    /// The manifest's format version is not one this build reads.
    VersionSkew { path: PathBuf, found: u32, supported: u32 },
    /// A blob is shorter (or longer) than the manifest recorded.
    Truncated { path: PathBuf, detail: String },
    /// Stored checksum and recomputed checksum disagree — the content
    /// was altered after it was written (e.g. a flipped bit).
    ChecksumMismatch {
        path: PathBuf,
        /// The tensor whose record failed, when the file-level sum
        /// passed but a per-tensor sum did not.
        tensor: Option<String>,
        expected: u64,
        actual: u64,
    },
    /// The checkpoint does not fit the model/optimizer it is being
    /// loaded into (missing parameter, shape mismatch, config skew).
    Mismatch(String),
    /// Registry-level failure: unknown model, unknown version, invalid
    /// name.
    Registry(String),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io { path, source } => {
                write!(f, "checkpoint io error at {}: {source}", path.display())
            }
            CkptError::MissingManifest(p) => {
                write!(f, "missing checkpoint manifest {}", p.display())
            }
            CkptError::MissingBlob(p) => write!(f, "missing checkpoint blob {}", p.display()),
            CkptError::Format { path, detail } => {
                write!(f, "malformed checkpoint file {}: {detail}", path.display())
            }
            CkptError::VersionSkew {
                path,
                found,
                supported,
            } => write!(
                f,
                "checkpoint format version skew in {}: found {found}, this build reads {supported}",
                path.display()
            ),
            CkptError::Truncated { path, detail } => {
                write!(f, "truncated checkpoint blob {}: {detail}", path.display())
            }
            CkptError::ChecksumMismatch {
                path,
                tensor,
                expected,
                actual,
            } => match tensor {
                Some(name) => write!(
                    f,
                    "checksum mismatch in {} (tensor '{name}'): stored {expected:#018x}, \
                     recomputed {actual:#018x}",
                    path.display()
                ),
                None => write!(
                    f,
                    "checksum mismatch in {}: manifest says {expected:#018x}, \
                     file hashes to {actual:#018x}",
                    path.display()
                ),
            },
            CkptError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
            CkptError::Registry(m) => write!(f, "registry error: {m}"),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Attach a path to a raw IO error.
pub(crate) fn io_err(path: &std::path::Path, source: std::io::Error) -> CkptError {
    CkptError::Io {
        path: path.to_path_buf(),
        source,
    }
}
