//! Fault-injection corpus for the checkpoint layer.
//!
//! Contract under test: **every** way a checkpoint directory can be
//! damaged — truncation, bit flips, missing files, format skew,
//! structural garbage — must surface as a *typed* [`CkptError`], never
//! a panic and never a silently-wrong model. Each test builds a healthy
//! checkpoint, injects one fault, and asserts both the error variant
//! and that a subsequent load of an undamaged copy still succeeds (the
//! reader holds no global state that a failed load could corrupt).

use stwa_ckpt::{
    CkptError, NamedTensor, Registry, TrainCheckpoint, MANIFEST_FILE, OPTIM_BLOB, PARAMS_BLOB,
};
use stwa_nn::ParamStore;
use stwa_tensor::Tensor;

/// A fresh checkpoint directory with parameters, optimizer moments, and
/// best-params — every blob the format supports.
fn healthy(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "stwa_corruption_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let store = ParamStore::new();
    store.param(
        "enc.w",
        Tensor::from_vec((0..24).map(|i| i as f32 * 0.25 - 3.0).collect(), &[4, 6]).unwrap(),
    );
    store.param("dec.b", Tensor::from_vec(vec![1.5, -2.5, 0.125], &[3]).unwrap());

    let mut ckpt = TrainCheckpoint::params_only("ST-WA", &store);
    ckpt.seed = 21;
    ckpt.config_hash = 0xC0FF_EE00;
    ckpt.epoch = 2;
    ckpt.step = 34;
    ckpt.rng = [11, 22, 33, 44];
    ckpt.best_val = 17.25;
    ckpt.history = vec![(30.0, 19.5), (24.0, 17.25)];
    ckpt.opt_m = ckpt
        .params
        .iter()
        .map(|t| NamedTensor {
            name: t.name.clone(),
            shape: t.shape.clone(),
            data: vec![0.01; t.data.len()],
        })
        .collect();
    ckpt.opt_v = ckpt.opt_m.clone();
    ckpt.best_params = ckpt.params.clone();
    ckpt.save_dir(&dir, 1).unwrap();
    dir
}

fn cleanup(dir: &std::path::Path) {
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn healthy_fixture_loads() {
    let dir = healthy("healthy");
    let ckpt = TrainCheckpoint::load_dir(&dir).unwrap();
    assert_eq!(ckpt.model, "ST-WA");
    assert_eq!(ckpt.params.len(), 2);
    assert!(ckpt.has_optimizer());
    cleanup(&dir);
}

#[test]
fn truncated_blob_is_typed() {
    // Cut the params blob at several depths; all must fail typed, none
    // may panic or load.
    for cut_frac in [0.0, 0.3, 0.7, 0.99] {
        let dir = healthy("truncated");
        let path = dir.join(PARAMS_BLOB);
        let bytes = std::fs::read(&path).unwrap();
        let keep = ((bytes.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &bytes[..keep]).unwrap();

        match TrainCheckpoint::load_dir(&dir) {
            Err(CkptError::Truncated { .. }) => {}
            other => panic!("cut at {cut_frac}: expected Truncated, got {other:?}"),
        }
        cleanup(&dir);
    }
}

#[test]
fn bit_flipped_tensor_is_checksum_mismatch() {
    // Flip a single bit at every eighth byte of the params blob. The
    // file-level checksum catches all of them (same length, different
    // content).
    let reference = std::fs::read(healthy("flip_ref").join(PARAMS_BLOB)).unwrap();
    for at in (0..reference.len()).step_by(8) {
        let dir = healthy("bitflip");
        let path = dir.join(PARAMS_BLOB);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[at] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();

        match TrainCheckpoint::load_dir(&dir) {
            Err(CkptError::ChecksumMismatch { .. }) => {}
            other => panic!("flip at byte {at}: expected ChecksumMismatch, got {other:?}"),
        }
        cleanup(&dir);
    }
}

#[test]
fn bit_flip_in_optimizer_blob_is_caught_too() {
    let dir = healthy("optflip");
    let path = dir.join(OPTIM_BLOB);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x80;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        TrainCheckpoint::load_dir(&dir),
        Err(CkptError::ChecksumMismatch { .. })
    ));
    cleanup(&dir);
}

#[test]
fn missing_manifest_is_typed() {
    let dir = healthy("no_manifest");
    std::fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();
    assert!(matches!(
        TrainCheckpoint::load_dir(&dir),
        Err(CkptError::MissingManifest(_))
    ));
    cleanup(&dir);
}

#[test]
fn missing_blob_is_typed() {
    let dir = healthy("no_blob");
    std::fs::remove_file(dir.join(PARAMS_BLOB)).unwrap();
    assert!(matches!(
        TrainCheckpoint::load_dir(&dir),
        Err(CkptError::MissingBlob(_))
    ));
    cleanup(&dir);
}

#[test]
fn version_skew_manifest_is_typed() {
    let dir = healthy("skew");
    let path = dir.join(MANIFEST_FILE);
    let text = std::fs::read_to_string(&path).unwrap();
    let skewed = text.replacen("\"format\": 1", "\"format\": 9", 1);
    assert_ne!(text, skewed, "fixture must contain the format field");
    std::fs::write(&path, skewed).unwrap();
    match TrainCheckpoint::load_dir(&dir) {
        Err(CkptError::VersionSkew {
            found, supported, ..
        }) => {
            assert_eq!(found, 9);
            assert_eq!(supported, stwa_ckpt::FORMAT_VERSION);
        }
        other => panic!("expected VersionSkew, got {other:?}"),
    }
    cleanup(&dir);
}

#[test]
fn garbage_manifest_is_format_error() {
    for garbage in [
        "",                      // empty file
        "not json at all",       // unparseable
        "{}",                    // parseable, structurally empty
        "{\"format\": 1}",       // format ok, fields missing
        "[1, 2, 3]",             // wrong top-level shape
    ] {
        let dir = healthy("garbage");
        std::fs::write(dir.join(MANIFEST_FILE), garbage).unwrap();
        match TrainCheckpoint::load_dir(&dir) {
            Err(CkptError::Format { .. }) => {}
            other => panic!("manifest {garbage:?}: expected Format, got {other:?}"),
        }
        cleanup(&dir);
    }
}

#[test]
fn manifest_blob_entry_lying_about_size_is_truncation() {
    // The blob on disk is intact; the manifest's byte count disagrees.
    // The reader must trust neither side and refuse.
    let dir = healthy("size_lie");
    // Append a byte to the params blob: the manifest's recorded size no
    // longer matches the file, exactly as if the manifest lied.
    let blob = dir.join(PARAMS_BLOB);
    let mut bytes = std::fs::read(&blob).unwrap();
    bytes.push(0u8);
    std::fs::write(&blob, &bytes).unwrap();
    assert!(matches!(
        TrainCheckpoint::load_dir(&dir),
        Err(CkptError::Truncated { .. })
    ));
    cleanup(&dir);
}

#[test]
fn corrupt_checkpoint_never_reaches_a_store() {
    // End-to-end: a bit-flipped checkpoint must leave a loading store
    // completely untouched — the typed error fires before any value is
    // written.
    let dir = healthy("no_partial_load");
    let path = dir.join(PARAMS_BLOB);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let store = ParamStore::new();
    store.param("enc.w", Tensor::full(&[4, 6], 7.0));
    store.param("dec.b", Tensor::full(&[3], 7.0));
    let before = store.version();

    assert!(TrainCheckpoint::load_dir(&dir).is_err());
    assert_eq!(store.version(), before, "store must be untouched");
    for p in store.params() {
        assert!(p.value().data().iter().all(|&v| v == 7.0));
    }
    cleanup(&dir);
}

#[test]
fn registry_load_propagates_corruption_errors() {
    // Publish through the registry, corrupt the published version, and
    // load through the registry path — the typed error must survive the
    // indirection.
    let root = std::env::temp_dir().join(format!(
        "stwa_corruption_registry_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    let registry = Registry::open(&root).unwrap();

    let store = ParamStore::new();
    store.param("w", Tensor::full(&[2, 2], 1.0));
    let version = registry
        .publish("demo", &TrainCheckpoint::params_only("demo", &store))
        .unwrap();

    let blob = registry.version_dir("demo", version).join(PARAMS_BLOB);
    let mut bytes = std::fs::read(&blob).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&blob, &bytes).unwrap();

    assert!(matches!(
        registry.load("demo", None),
        Err(CkptError::ChecksumMismatch { .. })
    ));
    let _ = std::fs::remove_dir_all(&root);
}
