//! Hand-rolled incremental HTTP/1.1 parser and response writer.
//!
//! Scope is exactly what the forecast front-end needs: request line +
//! headers + optional `Content-Length` body, keep-alive (the HTTP/1.1
//! default) with pipelining, and nothing more — no chunked encoding,
//! no multipart, no TLS. The parser is incremental over a connection's
//! read buffer: [`parse_request`] either consumes one complete request
//! (returning it plus the bytes consumed), reports that more bytes are
//! needed, or rejects the stream with a status code to answer with
//! before closing.

use std::collections::HashMap;

/// Don't let a single request head or body grow without bound.
pub const MAX_HEAD: usize = 8 * 1024;
pub const MAX_BODY: usize = 1024 * 1024;

/// One parsed request. Header names are lowercased; the query string
/// is split off the target but left unparsed (see [`Request::query`]).
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path without the query string, e.g. `/forecast`.
    pub path: String,
    /// Raw query string without the `?`, possibly empty.
    pub query_raw: String,
    pub headers: HashMap<String, String>,
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// Look up one query parameter (`a=1&b=2` style, no percent
    /// decoding — tokens in this protocol are numbers and identifiers).
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query_raw.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Outcome of one incremental parse step.
#[derive(Debug)]
pub enum Parse {
    /// A full request plus how many buffer bytes it consumed.
    Complete(Request, usize),
    /// The buffer holds only a prefix; read more and retry.
    Partial,
    /// Malformed or over-limit stream: answer with this status/reason
    /// and close the connection.
    Bad(u16, &'static str),
}

/// Try to parse one request from the front of `buf`.
pub fn parse_request(buf: &[u8]) -> Parse {
    // Head = everything up to the blank line.
    let head_end = match find_double_crlf(buf) {
        Some(i) => i,
        None => {
            if buf.len() > MAX_HEAD {
                return Parse::Bad(431, "Request Header Fields Too Large");
            }
            return Parse::Partial;
        }
    };
    if head_end > MAX_HEAD {
        return Parse::Bad(431, "Request Header Fields Too Large");
    }
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(s) => s,
        Err(_) => return Parse::Bad(400, "Bad Request"),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if parts.next().is_none() && !m.is_empty() => {
            (m.to_string(), t, v)
        }
        _ => return Parse::Bad(400, "Bad Request"),
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Parse::Bad(505, "HTTP Version Not Supported"),
    };

    let mut headers = HashMap::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Parse::Bad(400, "Bad Request");
        };
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }

    if headers.contains_key("transfer-encoding") {
        // Chunked bodies are out of scope; refusing beats misparsing.
        return Parse::Bad(501, "Not Implemented");
    }
    let content_length = match headers.get("content-length") {
        None => 0,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n <= MAX_BODY => n,
            Ok(_) => return Parse::Bad(413, "Payload Too Large"),
            Err(_) => return Parse::Bad(400, "Bad Request"),
        },
    };

    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Parse::Partial;
    }
    let body = buf[body_start..body_start + content_length].to_vec();

    // Keep-alive: HTTP/1.1 defaults open, 1.0 defaults closed; an
    // explicit Connection header overrides either way.
    let keep_alive = match headers.get("connection").map(|v| v.to_ascii_lowercase()) {
        Some(v) if v == "close" => false,
        Some(v) if v == "keep-alive" => true,
        _ => http11,
    };

    let (path, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    Parse::Complete(
        Request {
            method,
            path,
            query_raw,
            headers,
            body,
            keep_alive,
        },
        body_start + content_length,
    )
}

fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Serialize one response onto `out`. `content_type` is usually
/// `application/json`; the body is written as-is with an exact
/// `Content-Length` so pipelined peers can frame replies.
pub fn write_response(
    out: &mut Vec<u8>,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) {
    use std::io::Write;
    let _ = write!(
        out,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    out.extend_from_slice(body);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(buf: &[u8]) -> (Request, usize) {
        match parse_request(buf) {
            Parse::Complete(r, n) => (r, n),
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn get_with_query_and_keep_alive_default() {
        let raw = b"GET /forecast?sensor=3&horizon=2 HTTP/1.1\r\nHost: x\r\n\r\n";
        let (req, n) = complete(raw);
        assert_eq!(n, raw.len());
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/forecast");
        assert_eq!(req.query("sensor"), Some("3"));
        assert_eq!(req.query("horizon"), Some("2"));
        assert_eq!(req.query("missing"), None);
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn post_body_framed_by_content_length() {
        let raw = b"POST /observe HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"frame\":1}";
        let (req, n) = complete(raw);
        assert_eq!(n, raw.len());
        assert_eq!(req.body, b"{\"frame\":1}");
    }

    #[test]
    fn incremental_feed_across_every_chunk_boundary() {
        // The parser must give Partial at every prefix and a bitwise
        // identical request at the end, no matter where reads split.
        let raw: &[u8] =
            b"POST /observe HTTP/1.1\r\nContent-Length: 5\r\nConnection: close\r\n\r\nhello";
        for cut in 0..raw.len() {
            match parse_request(&raw[..cut]) {
                Parse::Partial => {}
                other => panic!("prefix {cut} should be Partial, got {other:?}"),
            }
        }
        let (req, n) = complete(raw);
        assert_eq!(n, raw.len());
        assert_eq!(req.body, b"hello");
        assert!(!req.keep_alive, "Connection: close overrides 1.1 default");
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (r1, n1) = complete(raw);
        assert_eq!(r1.path, "/a");
        let (r2, n2) = complete(&raw[n1..]);
        assert_eq!(r2.path, "/b");
        assert_eq!(n1 + n2, raw.len());
    }

    #[test]
    fn malformed_and_oversized_requests_are_rejected() {
        for (raw, want) in [
            (&b"BOGUS\r\n\r\n"[..], 400u16),
            (&b"GET / HTTP/2.0\r\n\r\n"[..], 505),
            (&b"GET / HTTP/1.1\r\nbadheader\r\n\r\n"[..], 400),
            (&b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..], 400),
            (
                &b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..],
                501,
            ),
        ] {
            match parse_request(raw) {
                Parse::Bad(status, _) => assert_eq!(status, want),
                other => panic!("expected Bad({want}), got {other:?}"),
            }
        }
        // Over-limit Content-Length.
        let big = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(parse_request(big.as_bytes()), Parse::Bad(413, _)));
        // A head that never terminates trips the size guard.
        let mut endless = b"GET / HTTP/1.1\r\n".to_vec();
        endless.extend(std::iter::repeat_n(b'a', MAX_HEAD + 1));
        assert!(matches!(parse_request(&endless), Parse::Bad(431, _)));
    }

    #[test]
    fn http10_defaults_to_close_unless_keep_alive() {
        let (req, _) = complete(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!req.keep_alive);
        let (req, _) = complete(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(req.keep_alive);
    }

    #[test]
    fn response_writer_frames_exactly() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", "application/json", b"{}", true);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
