//! Network serving front-end for the frozen ST-WA forecaster.
//!
//! The inference engine (`stwa-infer`) is deliberately single-threaded:
//! tensors are `Rc` copy-on-write, so a model, its frozen session, and
//! the micro-batching [`stwa_infer::InferQueue`] all live on one
//! thread. This crate puts a network in front of a **pool** of such
//! threads — each replica freezes its own `FrozenStwa` on-thread from
//! the same registry version, so nothing `!Send` ever crosses a thread
//! boundary — without adding any dependency:
//!
//! - [`reactor`] — a minimal epoll readiness loop (the three epoll
//!   syscalls glibc already links, wrapped safely) plus a socket-pair
//!   [`reactor::Waker`] for cross-thread wakeups.
//! - [`http`] — an incremental HTTP/1.1 keep-alive parser with
//!   pipelining and a response writer. No chunked encoding, no TLS.
//! - [`cache`] — a sharded per-sensor forecast cache keyed on (model
//!   version, sensor, horizon, window fingerprint) with TTL tied to
//!   the forecast step.
//! - [`proto`] — JSON request/response bodies over
//!   `stwa_observe::Json`; f32 forecasts survive the wire bitwise.
//! - [`server`] — N IO worker threads (epoll + HTTP + cache) in front
//!   of a replica pool of model threads (per-replica `InferQueue`,
//!   mirrored rolling window, coordinated registry hot swap); cache
//!   misses are dispatched by sensor affinity with least-queue-depth
//!   spill, and plain `Vec<f32>` jobs cross threads over `mpsc`.
//! - [`client`] — a blocking pipelining client for tests and the load
//!   generator.
//!
//! Endpoints: `GET /forecast?sensor=I&horizon=U`, `POST /observe`
//! (`{"frame": [N*F floats]}` appended to the rolling window),
//! `GET /healthz`, `GET /stats`, `POST /admin/swap` (force a registry
//! poll). Every forecast response names the snapshot version and the
//! exact window fingerprint it answers for, so clients can verify any
//! response — cache hit or miss — bitwise against a direct
//! [`stwa_infer::InferSession`] evaluation of that window.

pub mod cache;
pub mod client;
pub mod http;
pub mod proto;
#[cfg(target_os = "linux")]
pub mod reactor;
#[cfg(target_os = "linux")]
pub mod server;

pub use cache::{CacheKey, ForecastCache};
pub use client::{Client, Response};
#[cfg(target_os = "linux")]
pub use server::{Dims, ServeConfig, Server};
