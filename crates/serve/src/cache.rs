//! Sharded per-sensor forecast cache with TTL expiry.
//!
//! A served forecast is a pure function of (model version, sensor,
//! horizon, window contents), so the cache key is exactly that tuple —
//! the window enters as a 64-bit FNV-1a fingerprint of its f32 bits.
//! Any of the three invalidation events changes the key or removes the
//! entry: a new observation changes the fingerprint, a hot swap changes
//! the version (plus an explicit [`ForecastCache::purge_version`]
//! sweep to free the dead entries), and wall-clock expiry is enforced
//! on read because a forecast for step t+1 stops being useful once
//! step t+1 has arrived — the TTL is tied to the forecast step length.
//! Reads only *check* expiry; reclamation happens in the periodic
//! [`ForecastCache::sweep`] the reactor loop drives, keeping removal
//! (and its shard-lock write traffic) off the request path.
//!
//! Shards are independent `Mutex<HashMap>`s picked by key hash, so IO
//! workers serving different sensors rarely contend on one lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Cache key: everything a forecast depends on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// `FrozenStwa::frozen_at` store version of the serving snapshot.
    pub version: u64,
    pub sensor: u32,
    pub horizon: u32,
    /// FNV-1a over the input window's f32 bit patterns.
    pub window_fp: u64,
}

struct Entry {
    values: Arc<Vec<f32>>,
    expires: Instant,
}

/// The sharded cache. Cheap to clone-by-Arc at the server level; all
/// methods take `&self`.
pub struct ForecastCache {
    shards: Vec<Mutex<HashMap<CacheKey, Entry>>>,
    ttl: Duration,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ForecastCache {
    /// `shards` is rounded up to a power of two so shard selection is a
    /// mask, not a division.
    pub fn new(shards: usize, ttl: Duration) -> ForecastCache {
        let n = shards.max(1).next_power_of_two();
        ForecastCache {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            ttl,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<HashMap<CacheKey, Entry>> {
        let mut h = fnv1a64(&key.window_fp.to_le_bytes());
        h ^= (key.sensor as u64) << 32 | key.horizon as u64;
        h ^= key.version.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.shards[(h as usize) & (self.shards.len() - 1)]
    }

    /// Fetch a live entry. An expired entry counts as a miss but is
    /// *not* removed here — the periodic [`ForecastCache::sweep`]
    /// reclaims it, so the hot read path never mutates a shard.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<f32>>> {
        let shard = self.shard(key).lock().unwrap();
        match shard.get(key) {
            Some(e) if e.expires > Instant::now() => {
                let v = Arc::clone(&e.values);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    pub fn put(&self, key: CacheKey, values: Arc<Vec<f32>>) {
        let entry = Entry {
            values,
            expires: Instant::now() + self.ttl,
        };
        self.shard(&key).lock().unwrap().insert(key, entry);
    }

    /// Drop every entry frozen under `version` — called after a hot
    /// swap so dead-version entries don't sit around until TTL.
    pub fn purge_version(&self, version: u64) {
        for shard in &self.shards {
            shard.lock().unwrap().retain(|k, _| k.version != version);
        }
    }

    /// Drop expired entries everywhere and return how many were
    /// reclaimed (maintenance; correctness never depends on it because
    /// `get` checks expiry).
    pub fn sweep(&self) -> usize {
        let now = Instant::now();
        let mut removed = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap();
            let before = shard.len();
            shard.retain(|_, e| e.expires > now);
            removed += before - shard.len();
        }
        removed
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// FNV-1a over arbitrary bytes — the window fingerprint hash. Stable
/// across runs (unlike `DefaultHasher`), so fingerprints are
/// reproducible in logs and tests.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint an f32 window by its exact bit patterns: two windows
/// collide only if every sample is bitwise identical, which is exactly
/// the cache-correctness condition for a bitwise-deterministic model.
pub fn fingerprint_f32(values: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(version: u64, sensor: u32, horizon: u32, fp: u64) -> CacheKey {
        CacheKey {
            version,
            sensor,
            horizon,
            window_fp: fp,
        }
    }

    #[test]
    fn hit_after_put_miss_after_ttl() {
        let cache = ForecastCache::new(4, Duration::from_millis(30));
        let k = key(1, 3, 2, 0xabc);
        assert!(cache.get(&k).is_none());
        cache.put(k, Arc::new(vec![1.0, 2.0]));
        assert_eq!(cache.get(&k).unwrap().as_slice(), &[1.0, 2.0]);
        std::thread::sleep(Duration::from_millis(40));
        assert!(cache.get(&k).is_none(), "expired entry must not serve");
        assert_eq!(cache.len(), 1, "reads never remove; the sweep does");
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 2));
        assert_eq!(cache.sweep(), 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn expired_entries_stop_counting_as_hits_before_any_sweep() {
        let cache = ForecastCache::new(2, Duration::from_millis(20));
        for s in 0..6u32 {
            cache.put(key(1, s, 1, 9), Arc::new(vec![s as f32]));
        }
        std::thread::sleep(Duration::from_millis(30));
        // No sweep has run: every entry is still resident, yet none may
        // serve — each read is a miss, counted as such.
        assert_eq!(cache.len(), 6);
        for s in 0..6u32 {
            assert!(cache.get(&key(1, s, 1, 9)).is_none());
        }
        assert_eq!(cache.stats(), (0, 6));
        assert_eq!(cache.sweep(), 6);
        assert!(cache.is_empty());
    }

    #[test]
    fn keys_differ_by_every_component() {
        let cache = ForecastCache::new(4, Duration::from_secs(60));
        let base = key(1, 0, 1, 7);
        cache.put(base, Arc::new(vec![1.0]));
        for other in [
            key(2, 0, 1, 7),
            key(1, 1, 1, 7),
            key(1, 0, 2, 7),
            key(1, 0, 1, 8),
        ] {
            assert!(
                cache.get(&other).is_none(),
                "{other:?} must not alias {base:?}"
            );
        }
        assert!(cache.get(&base).is_some());
    }

    #[test]
    fn purge_version_removes_only_that_version() {
        let cache = ForecastCache::new(2, Duration::from_secs(60));
        for s in 0..10u32 {
            cache.put(key(1, s, 1, 5), Arc::new(vec![s as f32]));
            cache.put(key(2, s, 1, 5), Arc::new(vec![s as f32]));
        }
        assert_eq!(cache.len(), 20);
        cache.purge_version(1);
        assert_eq!(cache.len(), 10);
        for s in 0..10u32 {
            assert!(cache.get(&key(1, s, 1, 5)).is_none());
            assert!(cache.get(&key(2, s, 1, 5)).is_some());
        }
    }

    #[test]
    fn sweep_reaps_expired_entries() {
        let cache = ForecastCache::new(2, Duration::from_millis(20));
        for s in 0..8u32 {
            cache.put(key(1, s, 1, 5), Arc::new(vec![0.0]));
        }
        std::thread::sleep(Duration::from_millis(30));
        cache.sweep();
        assert!(cache.is_empty());
    }

    #[test]
    fn fingerprint_is_bit_exact() {
        let a = fingerprint_f32(&[1.0, 2.0, 3.0]);
        let b = fingerprint_f32(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
        assert_ne!(a, fingerprint_f32(&[1.0, 2.0, 3.000001]));
        // 0.0 and -0.0 compare equal as floats but are different bits —
        // the fingerprint must distinguish them (the model may not).
        assert_ne!(fingerprint_f32(&[0.0]), fingerprint_f32(&[-0.0]));
        // Stable constant: locks the hash against accidental change.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn shards_are_safe_under_concurrent_mixed_traffic() {
        let cache = Arc::new(ForecastCache::new(8, Duration::from_secs(60)));
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..500u32 {
                        let k = key(1, (t * 500 + i) % 64, 1 + i % 3, i as u64);
                        cache.put(k, Arc::new(vec![t as f32, i as f32]));
                        let got = cache.get(&k).expect("just inserted");
                        assert_eq!(got[0], t as f32);
                    }
                });
            }
        });
        assert!(cache.len() <= 64 * 3 * 500);
    }
}
