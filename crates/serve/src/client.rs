//! Minimal blocking HTTP/1.1 keep-alive client with pipelining —
//! enough to drive the server from tests and the load generator
//! without any external dependency. One [`Client`] owns one
//! connection; `send_*` methods write requests back-to-back and
//! [`Client::recv`] reads the responses in order.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    /// Requests written minus responses read — the pipeline depth.
    pub outstanding: usize,
}

#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub body: Vec<u8>,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(Client {
            stream,
            buf: Vec::new(),
            outstanding: 0,
        })
    }

    /// Queue a GET without reading the response (pipelining).
    pub fn send_get(&mut self, target: &str) -> io::Result<()> {
        let req = format!("GET {target} HTTP/1.1\r\nHost: stwa\r\n\r\n");
        self.stream.write_all(req.as_bytes())?;
        self.outstanding += 1;
        Ok(())
    }

    /// Queue a POST without reading the response (pipelining).
    pub fn send_post(&mut self, target: &str, body: &[u8]) -> io::Result<()> {
        let head = format!(
            "POST {target} HTTP/1.1\r\nHost: stwa\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.outstanding += 1;
        Ok(())
    }

    /// Round trip: GET and read the response.
    pub fn get(&mut self, target: &str) -> io::Result<Response> {
        self.send_get(target)?;
        self.recv()
    }

    /// Round trip: POST and read the response.
    pub fn post(&mut self, target: &str, body: &[u8]) -> io::Result<Response> {
        self.send_post(target, body)?;
        self.recv()
    }

    /// Read the next pipelined response.
    pub fn recv(&mut self) -> io::Result<Response> {
        loop {
            if let Some((resp, consumed)) = parse_response(&self.buf)? {
                self.buf.drain(..consumed);
                self.outstanding = self.outstanding.saturating_sub(1);
                return Ok(resp);
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed mid-response",
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Parse one complete response off the front of `buf`, or `None` if
/// more bytes are needed.
fn parse_response(buf: &[u8]) -> io::Result<Option<(Response, usize)>> {
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line: {status_line:?}"),
            )
        })?;
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                })?;
            }
        }
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(None);
    }
    Ok(Some((
        Response {
            status,
            body: buf[body_start..body_start + content_length].to_vec(),
        },
        body_start + content_length,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_parse_incrementally_and_in_sequence() {
        let raw: &[u8] = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhiHTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n";
        for cut in 0..37 {
            assert!(parse_response(&raw[..cut]).unwrap().is_none(), "cut {cut}");
        }
        let (r1, n1) = parse_response(raw).unwrap().unwrap();
        assert_eq!((r1.status, r1.body.as_slice()), (200, &b"hi"[..]));
        let (r2, n2) = parse_response(&raw[n1..]).unwrap().unwrap();
        assert_eq!((r2.status, r2.body.len()), (404, 0));
        assert_eq!(n1 + n2, raw.len());
    }
}
