//! The serving front-end: IO worker threads over an epoll reactor, a
//! pool of model replica threads each owning its own frozen snapshot,
//! and the channels between them.
//!
//! Tensors are single-threaded (`Rc` copy-on-write storage), so a
//! model, its frozen session, and its micro-batching queue all live on
//! exactly one thread. PR 9 put *one* such thread behind N IO workers;
//! on a many-core host that single evaluator is the bottleneck. The
//! replica pool fixes it the same way `ShardEngine` parallelizes
//! training: the builder closure runs once *per replica thread* (a
//! `!Send` model can be built anywhere but moved nowhere), every
//! replica freezes the same pinned registry version, and each owns a
//! private `InferQueue`, plan arena, and memo LRU. IO workers still
//! own the sockets, parse HTTP, and serve cache hits inline; misses
//! are sharded across replicas by sensor-affinity hashing
//! (`sensor % n` keeps a sensor's window-fingerprint coalescing and
//! memo hot on one replica) with least-queue-depth spill when the
//! affinity target backs up.
//!
//! Correctness invariants:
//! - **In-order responses per connection.** HTTP/1.1 pipelining means
//!   responses must leave in request order even when a cache hit (an
//!   inline reply) overtakes a replica round trip. Every parsed
//!   request takes a per-connection sequence number and completed
//!   responses wait in a `BTreeMap` until their turn.
//! - **Identical windows on every replica.** Observations broadcast to
//!   all replicas under one lock, so every replica channel sees them
//!   in the same order; each replica applies the same frames to the
//!   same zero-initialized window and their fingerprints never
//!   diverge. A forecast dispatched to any replica therefore answers
//!   for the same window the others would.
//! - **Read-your-writes per connection.** A forecast pipelined behind
//!   an observation on the same connection skips the cache and lands
//!   on some replica's channel *behind* that replica's copy of the
//!   observe (one mpsc producer per worker ⇒ FIFO), so it is
//!   evaluated against the new window.
//! - **Version stamps are registry versions.** Responses name the
//!   registry version they were computed under (0 = the builder's
//!   weights, which can never be swapped). Unlike per-thread store
//!   counters, registry versions are identical across replicas by
//!   construction, so a (version, window_fp) stamp is
//!   bitwise-verifiable against direct eval no matter which replica
//!   answered.
//! - **Coordinated swaps, zero drops.** A swap broadcasts like an
//!   observe; each replica flips between settled bursts (queue empty
//!   by construction), pinned to one target version. The shared
//!   version is published and old-version cache entries are purged
//!   only after the *last* replica flips; until then hits serve the
//!   old version and misses truthfully stamp whichever version their
//!   replica is on. Shutdown stops accepting, drains every in-flight
//!   job, flushes every write buffer, and only then lets threads exit.

use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use stwa_core::StwaModel;
use stwa_infer::{FrozenStwa, InferQueue, InferSession, QueueConfig};
use stwa_observe::Json;
use stwa_tensor::quant::Precision;
use stwa_tensor::Tensor;

use crate::cache::{fingerprint_f32, CacheKey, ForecastCache};
use crate::http::{self, Parse, Request};
use crate::proto;
use crate::reactor::{Epoll, Event, WakeReader, Waker, EPOLLIN, EPOLLOUT};

/// Everything tunable about a server.
#[derive(Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS pick.
    pub addr: String,
    /// IO worker threads (model replicas always get their own threads).
    pub io_threads: usize,
    /// Model replica threads. Each runs the builder closure itself,
    /// freezes the same pinned registry version, and owns a private
    /// `InferQueue` + memo. 1 reproduces the PR 9 single-evaluator
    /// path bit for bit.
    pub model_threads: usize,
    /// Micro-batching knobs forwarded to [`InferQueue`].
    pub max_batch: usize,
    pub max_wait: Duration,
    /// Forecast cache TTL — tie this to the forecast step length so an
    /// entry never outlives the step it predicts.
    pub ttl: Duration,
    pub cache_shards: usize,
    /// How often replica 0 checks the registry for a newer published
    /// version (hot swap). Ignored without a registry.
    pub registry_poll: Duration,
    /// How often IO worker 0 sweeps expired cache entries. Expiry is
    /// checked on every read; the sweep only reclaims memory.
    pub sweep_interval: Duration,
    /// Panel precision for the frozen serving snapshot.
    pub precision: Precision,
    /// Per-replica memo of recent full forwards, keyed by window
    /// fingerprint (small: each entry is one `[N, U, F]` output).
    pub memo_cap: usize,
    /// Registry root + model name. With a registry the server freezes
    /// from the latest published version and hot-swaps when a newer
    /// one appears; without one it serves the builder's weights as-is.
    pub registry: Option<(PathBuf, String)>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            io_threads: stwa_pool::configured_threads().max(1),
            model_threads: 1,
            max_batch: 32,
            max_wait: Duration::from_millis(2),
            ttl: Duration::from_secs(300),
            cache_shards: 16,
            registry_poll: Duration::from_millis(200),
            sweep_interval: Duration::from_secs(5),
            precision: Precision::F32,
            memo_cap: 8,
            registry: None,
        }
    }
}

/// Model dimensions published once by the replica pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dims {
    pub sensors: usize,
    pub history: usize,
    pub horizon: usize,
    pub features: usize,
}

/// Coordinated-swap barrier: the last replica to flip to `target`
/// publishes the shared version and purges the old one's cache
/// entries.
struct SwapState {
    /// Public version the pool is flipping to (0 = no swap yet).
    target: u64,
    /// Replicas that have flipped to `target`.
    flipped: usize,
    /// Public version being retired, recorded by the first flipper.
    old_version: u64,
    started: Option<Instant>,
}

/// Counters and snapshot state shared by every thread.
struct Shared {
    shutdown: AtomicBool,
    /// Registry version of the pool-wide published snapshot (0 =
    /// builder weights; cache key part).
    version: AtomicU64,
    /// Fingerprint of the current input window (cache key part).
    window_fp: AtomicU64,
    cache: ForecastCache,
    requests: AtomicU64,
    responses: AtomicU64,
    inline_hits: AtomicU64,
    model_jobs: AtomicU64,
    swaps: AtomicU64,
    swap_errors: AtomicU64,
    client_aborts: AtomicU64,
    conns: AtomicU64,
    /// Duration of the last coordinated swap, first close to last flip.
    swap_us: AtomicU64,
    /// In-flight jobs per replica channel (dispatch heuristic input).
    replica_depth: Vec<AtomicUsize>,
    /// Full window evaluations per replica.
    replica_evals: Vec<AtomicU64>,
    /// Serializes observe/swap broadcasts so every replica channel
    /// receives them in the same order — the invariant that keeps
    /// replica windows (and their fingerprints) identical.
    broadcast: Mutex<()>,
    swap_state: Mutex<SwapState>,
}

#[derive(Clone)]
enum JobKind {
    Forecast { sensor: u32, horizon: u32 },
    Observe { frame: Vec<f32> },
    /// Pin to a specific registry version (poll broadcasts resolve the
    /// target once so every replica loads the same version exactly
    /// once); `None` (admin) resolves latest on each replica.
    Swap { target: Option<u32> },
}

/// Where a reply must go. Broadcast jobs carry a route only on
/// replica 0's copy — it is the sole responder.
#[derive(Clone, Copy)]
struct Route {
    worker: usize,
    conn: u64,
    seq: u64,
    keep_alive: bool,
}

struct Job {
    route: Option<Route>,
    kind: JobKind,
}

/// What a replica reports once its snapshot is frozen: `(dims, public
/// version, window fingerprint)` on success — cross-checked for
/// equality across the pool before the server accepts traffic.
type ReadyInfo = (Dims, u64, u64);
type ReplicaReady = (usize, Result<ReadyInfo, String>);

struct Reply {
    conn: u64,
    seq: u64,
    bytes: Vec<u8>,
    close_after: bool,
    /// Reply to an observe — pairs the worker's `inflight_observes`
    /// decrement exactly (replica replies are not in per-connection
    /// submission order once misses shard across replicas).
    observe: bool,
}

/// A running server. Dropping without [`Server::shutdown`] leaks the
/// threads; call shutdown for a clean drain.
pub struct Server {
    addr: std::net::SocketAddr,
    dims: Dims,
    shared: Arc<Shared>,
    wakers: Vec<Waker>,
    workers: Vec<std::thread::JoinHandle<()>>,
    replicas: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the replica pool (each replica runs `build` and
    /// freezes its own serving snapshot on-thread, because tensors are
    /// not `Send`), wait until every replica is ready and agrees on
    /// dims/version/window, then spawn the IO workers.
    pub fn start<F>(config: ServeConfig, build: F) -> std::io::Result<Server>
    where
        F: Fn() -> stwa_tensor::Result<StwaModel> + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let n_replicas = config.model_threads.max(1);
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            version: AtomicU64::new(0),
            window_fp: AtomicU64::new(0),
            cache: ForecastCache::new(config.cache_shards, config.ttl),
            requests: AtomicU64::new(0),
            responses: AtomicU64::new(0),
            inline_hits: AtomicU64::new(0),
            model_jobs: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            swap_errors: AtomicU64::new(0),
            client_aborts: AtomicU64::new(0),
            conns: AtomicU64::new(0),
            swap_us: AtomicU64::new(0),
            replica_depth: (0..n_replicas).map(|_| AtomicUsize::new(0)).collect(),
            replica_evals: (0..n_replicas).map(|_| AtomicU64::new(0)).collect(),
            broadcast: Mutex::new(()),
            swap_state: Mutex::new(SwapState {
                target: 0,
                flipped: 0,
                old_version: 0,
                started: None,
            }),
        });

        // Resolve the initial registry version once, so every replica
        // loads the same pinned version even if a publish races
        // startup.
        let pinned_version: u32 = match &config.registry {
            None => 0,
            Some((root, name)) => {
                let reg = stwa_ckpt::Registry::open(root)
                    .map_err(|e| std::io::Error::other(format!("open registry: {e}")))?;
                let versions = reg
                    .versions(name)
                    .map_err(|e| std::io::Error::other(format!("registry versions: {e}")))?;
                if versions.is_empty() {
                    0
                } else {
                    reg.latest(name)
                        .map_err(|e| std::io::Error::other(format!("registry latest: {e}")))?
                }
            }
        };

        let io_threads = config.io_threads.max(1);
        let mut reply_txs = Vec::with_capacity(io_threads);
        let mut worker_parts = Vec::with_capacity(io_threads);
        for _ in 0..io_threads {
            let (reply_tx, reply_rx) = std::sync::mpsc::channel::<Reply>();
            let (waker, wake_reader) = Waker::pair()?;
            reply_txs.push((reply_tx, waker.clone()));
            worker_parts.push((reply_rx, wake_reader, waker));
        }

        // Replica pool first: workers must not accept until dims and
        // the initial version are published. Replica 0 additionally
        // holds senders to its peers for registry-poll swap broadcasts;
        // teardown cascades through it (workers drop their senders →
        // replica 0 exits and drops the peer senders → peers exit).
        let build = Arc::new(build);
        let mut job_txs: Vec<Sender<Job>> = Vec::with_capacity(n_replicas);
        let mut job_rxs: Vec<Receiver<Job>> = Vec::with_capacity(n_replicas);
        for _ in 0..n_replicas {
            let (tx, rx) = std::sync::mpsc::channel::<Job>();
            job_txs.push(tx);
            job_rxs.push(rx);
        }
        let (ready_tx, ready_rx) = std::sync::mpsc::channel::<ReplicaReady>();
        let mut replicas = Vec::with_capacity(n_replicas);
        for (idx, job_rx) in job_rxs.into_iter().enumerate() {
            let peer_txs: Vec<Sender<Job>> = if idx == 0 {
                job_txs[1..].to_vec()
            } else {
                Vec::new()
            };
            let cfg = config.clone();
            let build = Arc::clone(&build);
            let shared = Arc::clone(&shared);
            let reply_txs = reply_txs.clone();
            let ready_tx = ready_tx.clone();
            replicas.push(
                std::thread::Builder::new()
                    .name(format!("stwa-serve-model{idx}"))
                    .spawn(move || {
                        replica_main(
                            idx,
                            n_replicas,
                            cfg,
                            build,
                            shared,
                            job_rx,
                            peer_txs,
                            reply_txs,
                            ready_tx,
                            pinned_version,
                        )
                    })?,
            );
        }
        drop(ready_tx);

        let abort = |job_txs: Vec<Sender<Job>>, replicas: Vec<std::thread::JoinHandle<()>>| {
            drop(job_txs);
            for replica in replicas {
                let _ = replica.join();
            }
        };
        let mut infos: Vec<Option<ReadyInfo>> = vec![None; n_replicas];
        for _ in 0..n_replicas {
            match ready_rx.recv() {
                Ok((idx, Ok(info))) => infos[idx] = Some(info),
                Ok((idx, Err(e))) => {
                    abort(job_txs, replicas);
                    return Err(std::io::Error::other(format!("replica {idx} failed: {e}")));
                }
                Err(_) => {
                    abort(job_txs, replicas);
                    return Err(std::io::Error::other("replica died before ready"));
                }
            }
        }
        let (dims, version, window_fp) = infos[0].expect("replica 0 reported ready");
        for (idx, info) in infos.iter().enumerate() {
            let (d, v, fp) = info.expect("replica reported ready");
            if d != dims || v != version || fp != window_fp {
                abort(job_txs, replicas);
                return Err(std::io::Error::other(format!(
                    "replica {idx} diverged at startup: \
                     ({d:?}, v{v}, fp {fp:#x}) vs ({dims:?}, v{version}, fp {window_fp:#x})"
                )));
            }
        }
        shared.version.store(version, Ordering::Release);
        shared.window_fp.store(window_fp, Ordering::Release);

        let mut wakers = Vec::with_capacity(io_threads);
        let mut workers = Vec::with_capacity(io_threads);
        for (idx, (reply_rx, wake_reader, waker)) in worker_parts.into_iter().enumerate() {
            wakers.push(waker);
            let listener = listener.try_clone()?;
            let shared = Arc::clone(&shared);
            let job_txs = job_txs.clone();
            let sweep_interval = config.sweep_interval;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("stwa-serve-io{idx}"))
                    .spawn(move || {
                        worker_main(
                            idx,
                            listener,
                            shared,
                            dims,
                            job_txs,
                            reply_rx,
                            wake_reader,
                            sweep_interval,
                        )
                    })?,
            );
        }
        drop(job_txs); // replicas exit once every worker is gone

        Ok(Server {
            addr,
            dims,
            shared,
            wakers,
            workers,
            replicas,
        })
    }

    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Pool-wide published snapshot version: the registry version every
    /// replica currently serves (0 = builder weights, never swapped).
    pub fn version(&self) -> u64 {
        self.shared.version.load(Ordering::Acquire)
    }

    /// Completed (pool-wide) hot swaps so far.
    pub fn swaps(&self) -> u64 {
        self.shared.swaps.load(Ordering::Relaxed)
    }

    /// Model replica threads serving this instance.
    pub fn replicas(&self) -> usize {
        self.shared.replica_depth.len()
    }

    /// (requests parsed, responses sent) so far.
    pub fn traffic(&self) -> (u64, u64) {
        (
            self.shared.requests.load(Ordering::Relaxed),
            self.shared.responses.load(Ordering::Relaxed),
        )
    }

    /// Graceful drain: stop accepting, serve everything in flight,
    /// flush every socket, join every thread.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for waker in &self.wakers {
            waker.wake();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        for replica in self.replicas.drain(..) {
            let _ = replica.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Replica dispatch
// ---------------------------------------------------------------------------

/// Queue depth at which the affinity replica is considered backed up.
const SPILL_DEPTH: usize = 32;

/// Pick a replica for a cache-miss forecast: sensor-affinity hashing
/// (`sensor % n` keeps one sensor's fingerprint coalescing and memo
/// hot on one replica) with least-depth spill only when the affinity
/// target is backed up *and* meaningfully deeper than the least-loaded
/// replica — the hysteresis keeps affinity sticky under jitter.
fn pick_replica(sensor: u32, depths: &[usize]) -> usize {
    let n = depths.len();
    let affinity = sensor as usize % n;
    if n == 1 || depths[affinity] < SPILL_DEPTH {
        return affinity;
    }
    let (mut min_idx, mut min_depth) = (affinity, depths[affinity]);
    for (idx, &depth) in depths.iter().enumerate() {
        if depth < min_depth {
            min_idx = idx;
            min_depth = depth;
        }
    }
    if depths[affinity] - min_depth >= SPILL_DEPTH / 2 {
        min_idx
    } else {
        affinity
    }
}

/// Send a forecast miss to its replica. Returns false when the pool is
/// gone (shutdown).
fn dispatch_forecast(
    job_txs: &[Sender<Job>],
    shared: &Shared,
    route: Route,
    sensor: u32,
    horizon: u32,
) -> bool {
    let idx = if job_txs.len() == 1 {
        0
    } else {
        let depths: Vec<usize> = shared
            .replica_depth
            .iter()
            .map(|d| d.load(Ordering::Relaxed))
            .collect();
        pick_replica(sensor, &depths)
    };
    shared.replica_depth[idx].fetch_add(1, Ordering::Relaxed);
    let job = Job {
        route: Some(route),
        kind: JobKind::Forecast { sensor, horizon },
    };
    if job_txs[idx].send(job).is_ok() {
        true
    } else {
        shared.replica_depth[idx].fetch_sub(1, Ordering::Relaxed);
        false
    }
}

/// Send an observe/swap to every replica in one atomic order (the
/// broadcast lock is what keeps replica windows identical). Replica 0
/// gets the route and answers; the rest apply silently. Returns false
/// when the responder channel is gone.
fn broadcast(job_txs: &[Sender<Job>], shared: &Shared, route: Route, kind: JobKind) -> bool {
    let _order = shared.broadcast.lock().unwrap();
    let mut routed_ok = false;
    for (idx, tx) in job_txs.iter().enumerate() {
        let job = Job {
            route: (idx == 0).then_some(route),
            kind: kind.clone(),
        };
        shared.replica_depth[idx].fetch_add(1, Ordering::Relaxed);
        if tx.send(job).is_ok() {
            if idx == 0 {
                routed_ok = true;
            }
        } else {
            shared.replica_depth[idx].fetch_sub(1, Ordering::Relaxed);
        }
    }
    routed_ok
}

// ---------------------------------------------------------------------------
// IO worker
// ---------------------------------------------------------------------------

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_CONN0: u64 = 2;

struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Next sequence number to assign to a parsed request.
    next_seq: u64,
    /// Next sequence number whose response may be written.
    next_flush: u64,
    /// Completed responses waiting for their turn.
    done: BTreeMap<u64, (Vec<u8>, bool)>,
    /// Requests handed to the replica pool, not yet replied.
    inflight: usize,
    /// Observations handed to the pool, not yet replied — while
    /// nonzero, forecasts on this connection bypass the cache so their
    /// replica orders them after the observe.
    inflight_observes: usize,
    /// Stop reading (a `Connection: close` request or a fatal parse
    /// error); the connection dies once fully flushed.
    closing: bool,
    /// Registered epoll interest, to skip redundant `EPOLL_CTL_MOD`s.
    interest: u32,
}

#[allow(clippy::too_many_arguments)]
fn worker_main(
    worker_idx: usize,
    listener: TcpListener,
    shared: Arc<Shared>,
    dims: Dims,
    job_txs: Vec<Sender<Job>>,
    reply_rx: Receiver<Reply>,
    wake_reader: WakeReader,
    sweep_interval: Duration,
) {
    let mut epoll = match Epoll::new() {
        Ok(e) => e,
        Err(_) => return,
    };
    use std::os::unix::io::AsRawFd;
    if epoll.add(listener.as_raw_fd(), TOKEN_LISTENER, EPOLLIN).is_err() {
        return;
    }
    let _ = epoll.add(wake_reader.fd(), TOKEN_WAKER, EPOLLIN);

    // Per-worker accept counter; the leak is one short name per worker
    // thread for the process lifetime.
    let conns_counter =
        stwa_observe::counter(Box::leak(format!("serve.io{worker_idx}.conns").into_boxed_str()));

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = TOKEN_CONN0;
    let mut events: Vec<Event> = Vec::new();
    let mut accepting = true;
    let mut last_sweep = Instant::now();

    loop {
        let shutting_down = shared.shutdown.load(Ordering::SeqCst);
        if shutting_down {
            if accepting {
                // Drain the accept backlog once: connections whose
                // handshake finished before the shutdown signal get
                // served, not reset when the listener closes.
                accept_all(&listener, &epoll, &shared, conns_counter, &mut conns, &mut next_token);
                let _ = epoll.delete(listener.as_raw_fd());
                accepting = false;
            }
            // Final read pass before judging idleness: requests that
            // reached the kernel buffer before the shutdown signal are
            // parsed and served, not reset.
            let tokens: Vec<u64> = conns.keys().copied().collect();
            for token in tokens {
                let conn = conns.get_mut(&token).unwrap();
                if !conn.closing
                    && read_and_dispatch(worker_idx, token, conn, &shared, &dims, &job_txs)
                {
                    let _ = epoll.delete(conn.stream.as_raw_fd());
                    conns.remove(&token);
                }
            }
            // Close connections with nothing left to serve; exit once
            // none remain. Busy connections finish their responses.
            conns.retain(|_, c| {
                !(c.inflight == 0 && c.done.is_empty() && c.wbuf.is_empty())
            });
            if conns.is_empty() {
                return;
            }
        }

        // TTL reclamation off the request path: expiry is enforced on
        // every read, the sweep only frees memory, so one worker doing
        // it at a coarse interval is plenty.
        if worker_idx == 0 && !shutting_down && last_sweep.elapsed() >= sweep_interval {
            last_sweep = Instant::now();
            let removed = shared.cache.sweep();
            if removed > 0 {
                stwa_observe::counter!("serve.cache_swept").add(removed as u64);
            }
        }

        let timeout = Some(if shutting_down {
            Duration::from_millis(10)
        } else {
            Duration::from_millis(500).min(sweep_interval)
        });
        if epoll.wait(&mut events, timeout).is_err() {
            return;
        }

        let fired = std::mem::take(&mut events);
        for ev in &fired {
            match ev.token {
                TOKEN_LISTENER => {
                    if !accepting || shutting_down {
                        continue;
                    }
                    // Level-triggered and shared across workers: accept
                    // until WouldBlock, whoever wakes first wins.
                    accept_all(&listener, &epoll, &shared, conns_counter, &mut conns, &mut next_token);
                }
                TOKEN_WAKER => wake_reader.drain(),
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    let mut dead = false;
                    if ev.readable && !conn.closing {
                        dead = read_and_dispatch(
                            worker_idx, token, conn, &shared, &dims, &job_txs,
                        );
                    }
                    if ev.writable && !dead {
                        dead = flush_wbuf(conn);
                    }
                    if ev.closed && conn.inflight == 0 && conn.wbuf.is_empty() {
                        dead = true;
                    }
                    if dead {
                        if conn.inflight > 0 {
                            // Peer vanished with requests in flight;
                            // their replies will be discarded.
                            shared
                                .client_aborts
                                .fetch_add(conn.inflight as u64, Ordering::Relaxed);
                            stwa_observe::counter!("serve.client_aborts")
                                .add(conn.inflight as u64);
                        }
                        let _ = epoll.delete(conn.stream.as_raw_fd());
                        conns.remove(&token);
                    } else {
                        update_interest(&epoll, token, conns.get_mut(&token).unwrap());
                    }
                }
            }
        }

        // Replica replies (the waker fired, or we woke anyway).
        while let Ok(reply) = reply_rx.try_recv() {
            let Some(conn) = conns.get_mut(&reply.conn) else {
                // Client hung up before its answer came back; the abort
                // was counted when the connection died.
                continue;
            };
            conn.inflight -= 1;
            if reply.observe {
                // Exact pairing: replies are tagged, because with
                // several replicas they no longer arrive in
                // per-connection submission order.
                conn.inflight_observes = conn.inflight_observes.saturating_sub(1);
            }
            complete(conn, reply.seq, reply.bytes, reply.close_after);
            shared.responses.fetch_add(1, Ordering::Relaxed);
            let dead = flush_wbuf(conn);
            let done = conn.closing
                && conn.inflight == 0
                && conn.done.is_empty()
                && conn.wbuf.is_empty();
            if dead || done {
                let _ = epoll.delete(conn.stream.as_raw_fd());
                conns.remove(&reply.conn);
            } else {
                let token = reply.conn;
                update_interest(&epoll, token, conns.get_mut(&token).unwrap());
            }
        }
        events = fired;
    }
}

/// Accept every queued connection and register it for reads.
fn accept_all(
    listener: &TcpListener,
    epoll: &Epoll,
    shared: &Shared,
    conns_counter: &'static stwa_observe::Counter,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
) {
    use std::os::unix::io::AsRawFd;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                if epoll.add(stream.as_raw_fd(), token, EPOLLIN).is_ok() {
                    shared.conns.fetch_add(1, Ordering::Relaxed);
                    stwa_observe::counter!("serve.conns").incr();
                    conns_counter.incr();
                    conns.insert(
                        token,
                        Conn {
                            stream,
                            rbuf: Vec::new(),
                            wbuf: Vec::new(),
                            next_seq: 0,
                            next_flush: 0,
                            done: BTreeMap::new(),
                            inflight: 0,
                            inflight_observes: 0,
                            closing: false,
                            interest: EPOLLIN,
                        },
                    );
                }
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
}

/// Read everything available, parse pipelined requests, answer inline
/// or dispatch to the replica pool. Returns true when the connection
/// is dead.
fn read_and_dispatch(
    worker_idx: usize,
    token: u64,
    conn: &mut Conn,
    shared: &Shared,
    dims: &Dims,
    job_txs: &[Sender<Job>],
) -> bool {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                // Orderly close; serve what was already parsed.
                conn.closing = true;
                break;
            }
            Ok(n) => conn.rbuf.extend_from_slice(&chunk[..n]),
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }

    let mut consumed = 0;
    while !conn.closing {
        match http::parse_request(&conn.rbuf[consumed..]) {
            Parse::Partial => break,
            Parse::Bad(status, reason) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                let seq = conn.next_seq;
                conn.next_seq += 1;
                let mut out = Vec::new();
                http::write_response(
                    &mut out,
                    status,
                    reason,
                    "application/json",
                    &proto::error_body(reason),
                    false,
                );
                complete(conn, seq, out, true);
                shared.responses.fetch_add(1, Ordering::Relaxed);
                conn.closing = true;
            }
            Parse::Complete(req, n) => {
                consumed += n;
                shared.requests.fetch_add(1, Ordering::Relaxed);
                stwa_observe::counter!("serve.requests").incr();
                let seq = conn.next_seq;
                conn.next_seq += 1;
                if !req.keep_alive {
                    conn.closing = true;
                }
                match route(worker_idx, token, seq, &req, conn, shared, dims, job_txs) {
                    Routed::Inline(bytes) => {
                        complete(conn, seq, bytes, !req.keep_alive);
                        shared.responses.fetch_add(1, Ordering::Relaxed);
                    }
                    Routed::Dispatched => {
                        conn.inflight += 1;
                        shared.model_jobs.fetch_add(1, Ordering::Relaxed);
                        stwa_observe::counter!("serve.model_jobs").incr();
                    }
                }
            }
        }
    }
    conn.rbuf.drain(..consumed);
    flush_wbuf(conn)
        || (conn.closing && conn.inflight == 0 && conn.done.is_empty() && conn.wbuf.is_empty())
}

enum Routed {
    Inline(Vec<u8>),
    Dispatched,
}

#[allow(clippy::too_many_arguments)]
fn route(
    worker_idx: usize,
    token: u64,
    seq: u64,
    req: &Request,
    conn: &mut Conn,
    shared: &Shared,
    dims: &Dims,
    job_txs: &[Sender<Job>],
) -> Routed {
    let inline = |status: u16, reason: &str, body: Vec<u8>| {
        let mut out = Vec::new();
        http::write_response(&mut out, status, reason, "application/json", &body, req.keep_alive);
        Routed::Inline(out)
    };
    let route = Route {
        worker: worker_idx,
        conn: token,
        seq,
        keep_alive: req.keep_alive,
    };

    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => inline(200, "OK", b"{\"ok\": true}".to_vec()),
        ("GET", "/stats") => {
            let (hits, misses) = shared.cache.stats();
            let evals: Vec<Json> = shared
                .replica_evals
                .iter()
                .map(|e| Json::Num(e.load(Ordering::Relaxed) as f64))
                .collect();
            let depths: Vec<Json> = shared
                .replica_depth
                .iter()
                .map(|d| Json::Num(d.load(Ordering::Relaxed) as f64))
                .collect();
            let doc = Json::Obj(vec![
                ("version".into(), Json::Num(shared.version.load(Ordering::Acquire) as f64)),
                ("requests".into(), Json::Num(shared.requests.load(Ordering::Relaxed) as f64)),
                ("responses".into(), Json::Num(shared.responses.load(Ordering::Relaxed) as f64)),
                ("conns".into(), Json::Num(shared.conns.load(Ordering::Relaxed) as f64)),
                ("inline_hits".into(), Json::Num(shared.inline_hits.load(Ordering::Relaxed) as f64)),
                ("model_jobs".into(), Json::Num(shared.model_jobs.load(Ordering::Relaxed) as f64)),
                ("cache_hits".into(), Json::Num(hits as f64)),
                ("cache_misses".into(), Json::Num(misses as f64)),
                ("cache_entries".into(), Json::Num(shared.cache.len() as f64)),
                ("replicas".into(), Json::Num(shared.replica_depth.len() as f64)),
                ("replica_evals".into(), Json::Arr(evals)),
                ("replica_depth".into(), Json::Arr(depths)),
                ("swaps".into(), Json::Num(shared.swaps.load(Ordering::Relaxed) as f64)),
                ("swap_errors".into(), Json::Num(shared.swap_errors.load(Ordering::Relaxed) as f64)),
                ("swap_ms".into(), Json::Num(shared.swap_us.load(Ordering::Relaxed) as f64 / 1000.0)),
                ("client_aborts".into(), Json::Num(shared.client_aborts.load(Ordering::Relaxed) as f64)),
            ]);
            inline(200, "OK", doc.to_string().into_bytes())
        }
        ("GET", "/forecast") => {
            let sensor = req.query("sensor").and_then(|v| v.parse::<u32>().ok());
            let horizon = req
                .query("horizon")
                .map_or(Some(dims.horizon as u32), |v| v.parse::<u32>().ok());
            let (Some(sensor), Some(horizon)) = (sensor, horizon) else {
                return inline(400, "Bad Request", proto::error_body("sensor/horizon must be integers"));
            };
            if sensor as usize >= dims.sensors {
                return inline(
                    400,
                    "Bad Request",
                    proto::error_body(&format!("sensor {sensor} out of range (N={})", dims.sensors)),
                );
            }
            if horizon == 0 || horizon as usize > dims.horizon {
                return inline(
                    400,
                    "Bad Request",
                    proto::error_body(&format!("horizon {horizon} out of range (U={})", dims.horizon)),
                );
            }
            // Cache lookup under a snapshot of (version, window). Both
            // can move before a replica would evaluate, which is
            // exactly why misses carry the authoritative values back.
            // Skip the cache while an observe from this connection is
            // in flight so the replica orders forecast-after-observe
            // (read-your-writes per connection).
            if conn.inflight_observes == 0 {
                let key = CacheKey {
                    version: shared.version.load(Ordering::Acquire),
                    sensor,
                    horizon,
                    window_fp: shared.window_fp.load(Ordering::Acquire),
                };
                if let Some(values) = shared.cache.get(&key) {
                    shared.inline_hits.fetch_add(1, Ordering::Relaxed);
                    stwa_observe::counter!("serve.cache_hits").incr();
                    return inline(
                        200,
                        "OK",
                        proto::forecast_body(
                            sensor,
                            horizon,
                            key.version,
                            key.window_fp,
                            "hit",
                            &values,
                        ),
                    );
                }
            }
            if dispatch_forecast(job_txs, shared, route, sensor, horizon) {
                Routed::Dispatched
            } else {
                inline(503, "Service Unavailable", proto::error_body("replica pool is gone"))
            }
        }
        ("POST", "/observe") => {
            match proto::parse_observe(&req.body, dims.sensors * dims.features) {
                Err(e) => inline(400, "Bad Request", proto::error_body(&e)),
                Ok(frame) => {
                    if broadcast(job_txs, shared, route, JobKind::Observe { frame }) {
                        conn.inflight_observes += 1;
                        Routed::Dispatched
                    } else {
                        inline(503, "Service Unavailable", proto::error_body("replica pool is gone"))
                    }
                }
            }
        }
        ("POST", "/admin/swap") => {
            if broadcast(job_txs, shared, route, JobKind::Swap { target: None }) {
                Routed::Dispatched
            } else {
                inline(503, "Service Unavailable", proto::error_body("replica pool is gone"))
            }
        }
        _ => inline(404, "Not Found", proto::error_body("unknown endpoint")),
    }
}

/// File a finished response under its sequence number and move every
/// now-unblocked response into the write buffer.
fn complete(conn: &mut Conn, seq: u64, bytes: Vec<u8>, close_after: bool) {
    conn.done.insert(seq, (bytes, close_after));
    while let Some((bytes, close)) = conn.done.remove(&conn.next_flush) {
        conn.wbuf.extend_from_slice(&bytes);
        conn.next_flush += 1;
        if close {
            conn.closing = true;
        }
    }
}

/// Push the write buffer to the socket. Returns true when the
/// connection is dead (write error).
fn flush_wbuf(conn: &mut Conn) -> bool {
    while !conn.wbuf.is_empty() {
        match conn.stream.write(&conn.wbuf) {
            Ok(0) => return true,
            Ok(n) => {
                conn.wbuf.drain(..n);
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => return false,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    false
}

fn update_interest(epoll: &Epoll, token: u64, conn: &mut Conn) {
    let want = if conn.wbuf.is_empty() {
        EPOLLIN
    } else {
        EPOLLIN | EPOLLOUT
    };
    if want != conn.interest {
        use std::os::unix::io::AsRawFd;
        if epoll.modify(conn.stream.as_raw_fd(), token, want).is_ok() {
            conn.interest = want;
        }
    }
}

// ---------------------------------------------------------------------------
// Model replica
// ---------------------------------------------------------------------------

struct ModelState {
    model: StwaModel,
    queue: InferQueue,
    registry: Option<(stwa_ckpt::Registry, String)>,
    /// Registry version currently loaded (0 = builder weights). This
    /// *is* the public version stamp — identical across replicas by
    /// construction, unlike per-thread store counters.
    registry_version: u32,
    precision: Precision,
    queue_cfg: QueueConfig,
    dims: Dims,
    /// Rolling input window `[N, H, F]` shared by every sensor query.
    window: Vec<f32>,
    window_fp: u64,
    /// Recent full forwards keyed by window fingerprint (version is
    /// implicit: the memo is cleared on swap). Front = most recent.
    memo: Vec<(u64, Arc<Vec<f32>>)>,
    memo_cap: usize,
    replica_idx: usize,
    n_replicas: usize,
    /// Per-replica eval counter (leaked name, one per replica).
    evals_counter: &'static stwa_observe::Counter,
    depth_gauge: &'static stwa_observe::Gauge,
}

fn public_version(state: &ModelState) -> u64 {
    state.registry_version as u64
}

#[allow(clippy::too_many_arguments)]
fn replica_main<F>(
    replica_idx: usize,
    n_replicas: usize,
    config: ServeConfig,
    build: Arc<F>,
    shared: Arc<Shared>,
    job_rx: Receiver<Job>,
    peer_txs: Vec<Sender<Job>>,
    reply_txs: Vec<(Sender<Reply>, Waker)>,
    ready_tx: Sender<ReplicaReady>,
    pinned_version: u32,
) where
    F: Fn() -> stwa_tensor::Result<StwaModel> + Send + Sync + 'static,
{
    // With several replicas the thread is the unit of parallelism:
    // keep tensor kernels inline instead of contending for the global
    // pool (kernel chunking depends only on shapes, so inline execution
    // is bitwise identical to pooled — same contract ShardEngine uses).
    let _seq = (n_replicas > 1).then(stwa_pool::sequential_scope);
    let mut state =
        match init_replica(replica_idx, n_replicas, &config, &*build, pinned_version) {
            Ok(s) => s,
            Err(e) => {
                let _ = ready_tx.send((replica_idx, Err(e)));
                return;
            }
        };
    let _ = ready_tx.send((
        replica_idx,
        Ok((state.dims, public_version(&state), state.window_fp)),
    ));
    drop(ready_tx);

    let mut last_poll = Instant::now();
    let mut burst: Vec<Job> = Vec::new();
    loop {
        burst.clear();
        match job_rx.recv_timeout(config.registry_poll) {
            Ok(job) => {
                burst.push(job);
                // Drain whatever queued behind it — one settle per
                // burst amortizes flushes across pipelined traffic.
                while burst.len() < 256 {
                    match job_rx.try_recv() {
                        Ok(job) => burst.push(job),
                        Err(_) => break,
                    }
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                // Every sender is gone (workers drained at shutdown;
                // for peers, replica 0 exited too); nothing can be in
                // flight anymore.
                let _ = state.queue.close();
                return;
            }
        }

        if !burst.is_empty() {
            process_burst(&mut state, &burst, &shared, &reply_txs);
            let was = shared.replica_depth[replica_idx].fetch_sub(burst.len(), Ordering::Relaxed);
            state.depth_gauge.set((was - burst.len()) as f64);
        }

        // Only replica 0 polls the registry. It resolves the target
        // version once and broadcasts a pinned swap to its peers, so
        // every replica loads the same version exactly once.
        if replica_idx == 0 && state.registry.is_some() && last_poll.elapsed() >= config.registry_poll
        {
            last_poll = Instant::now();
            let latest = {
                let (registry, name) = state.registry.as_ref().unwrap();
                registry.latest(name).ok()
            };
            if let Some(latest) = latest {
                if latest > state.registry_version {
                    {
                        let _order = shared.broadcast.lock().unwrap();
                        for (peer, tx) in peer_txs.iter().enumerate() {
                            shared.replica_depth[peer + 1].fetch_add(1, Ordering::Relaxed);
                            let job = Job {
                                route: None,
                                kind: JobKind::Swap {
                                    target: Some(latest),
                                },
                            };
                            if tx.send(job).is_err() {
                                shared.replica_depth[peer + 1].fetch_sub(1, Ordering::Relaxed);
                            }
                        }
                    }
                    try_swap(&mut state, &shared, Some(latest));
                }
            }
        }
    }
}

fn init_replica<F>(
    replica_idx: usize,
    n_replicas: usize,
    config: &ServeConfig,
    build: &F,
    pinned_version: u32,
) -> Result<ModelState, String>
where
    F: Fn() -> stwa_tensor::Result<StwaModel>,
{
    let model = build().map_err(|e| format!("build model: {e}"))?;
    let registry = match &config.registry {
        None => None,
        Some((root, name)) => {
            let reg = stwa_ckpt::Registry::open(root).map_err(|e| format!("open registry: {e}"))?;
            Some((reg, name.clone()))
        }
    };
    let frozen = match &registry {
        Some((reg, name)) if pinned_version > 0 => FrozenStwa::freeze_from_registry_at(
            &model,
            reg,
            name,
            Some(pinned_version),
            config.precision,
        )
        .map_err(|e| format!("freeze from registry: {e}"))?,
        _ => FrozenStwa::freeze_at(&model, config.precision).map_err(|e| format!("freeze: {e}"))?,
    };
    let dims = Dims {
        sensors: frozen.num_sensors(),
        history: frozen.input_len(),
        horizon: frozen.horizon(),
        features: frozen.features(),
    };
    let queue = InferQueue::new(
        InferSession::from_frozen(frozen),
        QueueConfig {
            max_batch: config.max_batch,
            max_wait: config.max_wait,
        },
    )
    .map_err(|e| format!("queue: {e}"))?;
    let window = vec![0.0f32; dims.sensors * dims.history * dims.features];
    let window_fp = fingerprint_f32(&window);
    let evals_counter =
        stwa_observe::counter(Box::leak(format!("serve.replica{replica_idx}.evals").into_boxed_str()));
    let depth_gauge = stwa_observe::gauge(Box::leak(
        format!("serve.replica{replica_idx}.queue_depth").into_boxed_str(),
    ));
    Ok(ModelState {
        model,
        queue,
        registry,
        registry_version: pinned_version,
        precision: config.precision,
        queue_cfg: QueueConfig {
            max_batch: config.max_batch,
            max_wait: config.max_wait,
        },
        dims,
        window,
        window_fp,
        memo: Vec::new(),
        memo_cap: config.memo_cap.max(1),
        replica_idx,
        n_replicas,
        evals_counter,
        depth_gauge,
    })
}

/// Forecast jobs waiting on one submitted window evaluation.
struct PendingEval {
    fp: u64,
    ticket: stwa_infer::RequestId,
    jobs: Vec<(Route, u32, u32)>, // route, sensor, horizon
}

fn process_burst(
    state: &mut ModelState,
    burst: &[Job],
    shared: &Shared,
    reply_txs: &[(Sender<Reply>, Waker)],
) {
    let mut pending: Vec<PendingEval> = Vec::new();
    for job in burst {
        match &job.kind {
            JobKind::Forecast { sensor, horizon } => {
                let Some(route) = job.route else { continue };
                let fp = state.window_fp;
                if let Some(values) = memo_get(state, fp) {
                    answer_forecast(
                        state, shared, reply_txs, route, *sensor, *horizon, fp, "memo", &values,
                    );
                    continue;
                }
                if let Some(p) = pending.iter_mut().find(|p| p.fp == fp) {
                    p.jobs.push((route, *sensor, *horizon));
                    continue;
                }
                let x = Tensor::from_vec(
                    state.window.clone(),
                    &[state.dims.sensors, state.dims.history, state.dims.features],
                );
                match x.and_then(|x| state.queue.submit(x)) {
                    Ok(ticket) => pending.push(PendingEval {
                        fp,
                        ticket,
                        jobs: vec![(route, *sensor, *horizon)],
                    }),
                    Err(e) => send_reply(
                        reply_txs,
                        route,
                        error_response(500, &format!("submit: {e}"), route.keep_alive),
                        false,
                    ),
                }
            }
            JobKind::Observe { frame } => {
                // Settle first: submitted forecasts answer for the
                // window they saw, never a newer one.
                settle(state, shared, reply_txs, &mut pending);
                apply_observe(state, frame);
                if state.replica_idx == 0 {
                    shared.window_fp.store(state.window_fp, Ordering::Release);
                }
                if let Some(route) = job.route {
                    let body = proto::observe_ack(public_version(state), state.window_fp);
                    send_reply(reply_txs, route, ok_response(body, route.keep_alive), true);
                }
            }
            JobKind::Swap { target } => {
                settle(state, shared, reply_txs, &mut pending);
                let before = state.registry_version;
                try_swap(state, shared, *target);
                let swapped = state.registry_version != before;
                if let Some(route) = job.route {
                    if swapped {
                        // The responder answers only after the whole
                        // pool has flipped — no mixed-version serving
                        // once the admin call returns.
                        wait_for_pool_flip(shared, public_version(state), state.n_replicas);
                    }
                    let doc = Json::Obj(vec![
                        ("swapped".into(), Json::Bool(swapped)),
                        ("version".into(), Json::Num(public_version(state) as f64)),
                        (
                            "registry_version".into(),
                            Json::Num(state.registry_version as f64),
                        ),
                    ]);
                    send_reply(
                        reply_txs,
                        route,
                        ok_response(doc.to_string().into_bytes(), route.keep_alive),
                        false,
                    );
                }
            }
        }
    }
    settle(state, shared, reply_txs, &mut pending);
}

/// Flush the queue and answer every job waiting on an evaluation.
fn settle(
    state: &mut ModelState,
    shared: &Shared,
    reply_txs: &[(Sender<Reply>, Waker)],
    pending: &mut Vec<PendingEval>,
) {
    if pending.is_empty() {
        return;
    }
    if let Err(e) = state.queue.flush() {
        // A failed flush re-queued the batch inside the queue; answer
        // the jobs with an error rather than stranding the clients.
        // (Unreachable in normal operation: swaps rebuild the queue on
        // this same thread, so the session can't go stale mid-burst.)
        let msg = format!("flush: {e}");
        for p in pending.drain(..) {
            for (route, _, _) in p.jobs {
                send_reply(reply_txs, route, error_response(500, &msg, route.keep_alive), false);
            }
        }
        return;
    }
    let version = public_version(state);
    for p in pending.drain(..) {
        match state.queue.take(p.ticket) {
            Some(out) => {
                state.evals_counter.incr();
                stwa_observe::counter!("serve.replica.evals").incr();
                shared.replica_evals[state.replica_idx].fetch_add(1, Ordering::Relaxed);
                // `[1, N, U, F]` → owned row-major values.
                let values = Arc::new(out.data().to_vec());
                memo_put(state, p.fp, Arc::clone(&values));
                for (route, sensor, horizon) in p.jobs {
                    let sliced = slice_forecast(state, &values, sensor, horizon);
                    // Prime the shared cache so repeats hit inline at
                    // the workers.
                    shared.cache.put(
                        CacheKey {
                            version,
                            sensor,
                            horizon,
                            window_fp: p.fp,
                        },
                        Arc::new(sliced.clone()),
                    );
                    let body =
                        proto::forecast_body(sensor, horizon, version, p.fp, "miss", &sliced);
                    send_reply(reply_txs, route, ok_response(body, route.keep_alive), false);
                }
            }
            None => {
                for (route, _, _) in p.jobs {
                    send_reply(
                        reply_txs,
                        route,
                        error_response(500, "evaluation lost its result", route.keep_alive),
                        false,
                    );
                }
            }
        }
    }
}

fn memo_get(state: &ModelState, fp: u64) -> Option<Arc<Vec<f32>>> {
    state
        .memo
        .iter()
        .find(|(k, _)| *k == fp)
        .map(|(_, v)| Arc::clone(v))
}

fn memo_put(state: &mut ModelState, fp: u64, values: Arc<Vec<f32>>) {
    state.memo.retain(|(k, _)| *k != fp);
    state.memo.insert(0, (fp, values));
    state.memo.truncate(state.memo_cap);
}

/// Extract sensor `s`, steps `0..horizon` from a full `[N, U, F]`
/// output (contiguous: the row-major slice `[s*U*F, s*U*F + h*F)`).
fn slice_forecast(state: &ModelState, full: &[f32], sensor: u32, horizon: u32) -> Vec<f32> {
    let (u, f) = (state.dims.horizon, state.dims.features);
    let start = sensor as usize * u * f;
    full[start..start + horizon as usize * f].to_vec()
}

/// Shift the rolling window one step left and append the new frame at
/// `t = H-1` for every sensor.
fn apply_observe(state: &mut ModelState, frame: &[f32]) {
    let (n, h, f) = (state.dims.sensors, state.dims.history, state.dims.features);
    for s in 0..n {
        let row = &mut state.window[s * h * f..(s + 1) * h * f];
        row.copy_within(f.., 0);
        row[(h - 1) * f..].copy_from_slice(&frame[s * f..(s + 1) * f]);
    }
    state.window_fp = fingerprint_f32(&state.window);
}

#[allow(clippy::too_many_arguments)]
fn answer_forecast(
    state: &ModelState,
    shared: &Shared,
    reply_txs: &[(Sender<Reply>, Waker)],
    route: Route,
    sensor: u32,
    horizon: u32,
    fp: u64,
    source: &str,
    full: &Arc<Vec<f32>>,
) {
    let version = public_version(state);
    let sliced = slice_forecast(state, full, sensor, horizon);
    shared.cache.put(
        CacheKey {
            version,
            sensor,
            horizon,
            window_fp: fp,
        },
        Arc::new(sliced.clone()),
    );
    let body = proto::forecast_body(sensor, horizon, version, fp, source, &sliced);
    send_reply(reply_txs, route, ok_response(body, route.keep_alive), false);
}

/// Swap this replica's serving snapshot to a newer registry version
/// (pinned, or latest when `target` is `None`). The flip happens
/// between settled bursts — the queue is empty by construction — and
/// reports to the pool-wide barrier; the *last* replica to flip
/// publishes the shared version and purges the old one's cache
/// entries, so the cache never loses both versions mid-swap.
fn try_swap(state: &mut ModelState, shared: &Shared, target: Option<u32>) {
    let Some((registry, name)) = &state.registry else {
        return;
    };
    let latest = match target {
        Some(v) => v,
        None => match registry.latest(name) {
            Ok(v) => v,
            Err(_) => return, // nothing published yet
        },
    };
    if latest <= state.registry_version {
        return;
    }
    let old_version = public_version(state);
    // Drain the (empty) queue and reject any stray submit from here on.
    let _ = state.queue.close();
    let rebuilt = FrozenStwa::freeze_from_registry_at(
        &state.model,
        registry,
        name,
        Some(latest),
        state.precision,
    )
    .and_then(|frozen| InferQueue::new(InferSession::from_frozen(frozen), state.queue_cfg));
    match rebuilt {
        Ok(queue) => {
            state.queue = queue;
            state.registry_version = latest;
            state.memo.clear();
            report_flip(state, shared, old_version);
        }
        Err(_) => {
            // Registry load failed (partial publish, IO error): keep
            // serving the old version. Restore its exact weights by
            // re-loading it from the registry (the failed load may have
            // touched the store); builder weights (version 0) were
            // never overwritten by a *fully validated* load, so a plain
            // re-freeze suffices.
            shared.swap_errors.fetch_add(1, Ordering::Relaxed);
            stwa_observe::counter!("serve.swap_errors").incr();
            let restored = if state.registry_version > 0 {
                FrozenStwa::freeze_from_registry_at(
                    &state.model,
                    registry,
                    name,
                    Some(state.registry_version),
                    state.precision,
                )
            } else {
                FrozenStwa::freeze_at(&state.model, state.precision)
            };
            if let Ok(queue) = restored
                .and_then(|frozen| InferQueue::new(InferSession::from_frozen(frozen), state.queue_cfg))
            {
                state.queue = queue;
                state.memo.clear();
            }
        }
    }
}

/// Pool-wide swap barrier. Each replica reports here after flipping;
/// the last one publishes the new version, purges the retired
/// version's cache entries, and records the swap duration.
fn report_flip(state: &ModelState, shared: &Shared, old_version: u64) {
    let new_version = public_version(state);
    let mut st = shared.swap_state.lock().unwrap();
    if st.target != new_version {
        st.target = new_version;
        st.flipped = 0;
        st.old_version = old_version;
        st.started = Some(Instant::now());
    }
    st.flipped += 1;
    if st.flipped == state.n_replicas {
        shared.version.store(new_version, Ordering::Release);
        shared.cache.purge_version(st.old_version);
        shared.swaps.fetch_add(1, Ordering::Relaxed);
        stwa_observe::counter!("serve.swaps").incr();
        if let Some(started) = st.started {
            let us = started.elapsed().as_micros() as u64;
            shared.swap_us.store(us, Ordering::Relaxed);
            stwa_observe::gauge!("serve.swap_ms").set(us as f64 / 1000.0);
        }
    }
}

/// Block until every replica has flipped to `target` (the admin-swap
/// responder uses this so "swapped: true" means the whole pool moved).
/// Bounded: a replica whose load failed reports `swap_errors` instead
/// of flipping, and the wait gives up rather than deadlocking.
fn wait_for_pool_flip(shared: &Shared, target: u64, n_replicas: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        {
            let st = shared.swap_state.lock().unwrap();
            if st.target == target && st.flipped >= n_replicas {
                return;
            }
        }
        if Instant::now() >= deadline {
            return;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
}

fn ok_response(body: Vec<u8>, keep_alive: bool) -> (Vec<u8>, bool) {
    let mut out = Vec::new();
    http::write_response(&mut out, 200, "OK", "application/json", &body, keep_alive);
    (out, !keep_alive)
}

fn error_response(status: u16, message: &str, keep_alive: bool) -> (Vec<u8>, bool) {
    let reason = match status {
        400 => "Bad Request",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let mut out = Vec::new();
    http::write_response(
        &mut out,
        status,
        reason,
        "application/json",
        &proto::error_body(message),
        keep_alive,
    );
    (out, !keep_alive)
}

fn send_reply(
    reply_txs: &[(Sender<Reply>, Waker)],
    route: Route,
    packaged: (Vec<u8>, bool),
    observe: bool,
) {
    let (bytes, close_after) = packaged;
    if let Some((tx, waker)) = reply_txs.get(route.worker) {
        if tx
            .send(Reply {
                conn: route.conn,
                seq: route.seq,
                bytes,
                close_after,
                observe,
            })
            .is_ok()
        {
            waker.wake();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{pick_replica, SPILL_DEPTH};

    #[test]
    fn affinity_is_sensor_mod_n_when_unloaded() {
        let depths = [0usize, 0, 0, 0];
        for sensor in 0..32u32 {
            assert_eq!(pick_replica(sensor, &depths), sensor as usize % 4);
        }
    }

    #[test]
    fn single_replica_always_wins() {
        assert_eq!(pick_replica(7, &[usize::MAX - 1]), 0);
    }

    #[test]
    fn spills_to_least_loaded_when_affinity_backed_up() {
        let mut depths = [0usize; 4];
        depths[1] = SPILL_DEPTH + 8; // sensor 5's affinity replica
        assert_eq!(pick_replica(5, &depths), 0, "spill to the least-loaded");
    }

    #[test]
    fn hysteresis_keeps_affinity_under_mild_imbalance() {
        // Affinity is over the spill threshold but the rest of the pool
        // is nearly as deep: stay put rather than flap.
        let mut depths = [SPILL_DEPTH; 4];
        depths[1] = SPILL_DEPTH + SPILL_DEPTH / 2 - 1;
        assert_eq!(pick_replica(5, &depths), 1);
        // Once the gap reaches the hysteresis margin, move.
        depths[1] = SPILL_DEPTH + SPILL_DEPTH / 2;
        depths[2] = SPILL_DEPTH - 1;
        assert_eq!(pick_replica(5, &depths), 2);
    }
}
