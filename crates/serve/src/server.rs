//! The serving front-end: IO worker threads over an epoll reactor,
//! one model thread owning the `InferQueue`, and the channels between
//! them.
//!
//! Tensors are single-threaded (`Rc` copy-on-write storage), so the
//! model, its frozen session, and the micro-batching queue all live on
//! exactly one thread. Concurrency lives *in front of* it: N IO
//! workers own the sockets, parse HTTP, and serve cache hits inline;
//! everything that needs the model crosses to the model thread as a
//! plain-`Vec<f32>` job over an `mpsc` channel and comes back as
//! serialized response bytes plus an epoll wakeup.
//!
//! Correctness invariants:
//! - **In-order responses per connection.** HTTP/1.1 pipelining means
//!   responses must leave in request order even when a cache hit (an
//!   inline reply) overtakes a model-thread round trip. Every parsed
//!   request takes a per-connection sequence number and completed
//!   responses wait in a `BTreeMap` until their turn.
//! - **Read-your-writes per connection.** A forecast pipelined behind
//!   an observation on the same connection skips the cache and rides
//!   the same channel, so the model thread applies them in order.
//!   Across connections, freshness is bounded by the cache TTL (tied
//!   to the forecast step — an entry never outlives the step it
//!   predicts) and every response names the exact window fingerprint
//!   it answers for.
//! - **Zero dropped requests at swap and shutdown.** A hot swap only
//!   happens on the model thread between bursts, when the queue is
//!   empty by construction; the old queue is `close()`d (drain +
//!   reject), the new snapshot is frozen from the registry, and the
//!   old version's cache entries are purged. Shutdown stops accepting,
//!   drains every in-flight job, flushes every write buffer, and only
//!   then lets threads exit.

use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use stwa_core::StwaModel;
use stwa_infer::{FrozenStwa, InferQueue, InferSession, QueueConfig};
use stwa_observe::Json;
use stwa_tensor::quant::Precision;
use stwa_tensor::Tensor;

use crate::cache::{fingerprint_f32, CacheKey, ForecastCache};
use crate::http::{self, Parse, Request};
use crate::proto;
use crate::reactor::{Epoll, Event, WakeReader, Waker, EPOLLIN, EPOLLOUT};

/// Everything tunable about a server.
#[derive(Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS pick.
    pub addr: String,
    /// IO worker threads (the model always gets its own thread).
    pub io_threads: usize,
    /// Micro-batching knobs forwarded to [`InferQueue`].
    pub max_batch: usize,
    pub max_wait: Duration,
    /// Forecast cache TTL — tie this to the forecast step length so an
    /// entry never outlives the step it predicts.
    pub ttl: Duration,
    pub cache_shards: usize,
    /// How often the model thread checks the registry for a newer
    /// published version (hot swap). Ignored without a registry.
    pub registry_poll: Duration,
    /// Panel precision for the frozen serving snapshot.
    pub precision: Precision,
    /// Model-thread memo of recent full forwards, keyed by window
    /// fingerprint (small: each entry is one `[N, U, F]` output).
    pub memo_cap: usize,
    /// Registry root + model name. With a registry the server freezes
    /// from the latest published version and hot-swaps when a newer
    /// one appears; without one it serves the builder's weights as-is.
    pub registry: Option<(PathBuf, String)>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            io_threads: stwa_pool::configured_threads().max(1),
            max_batch: 32,
            max_wait: Duration::from_millis(2),
            ttl: Duration::from_secs(300),
            cache_shards: 16,
            registry_poll: Duration::from_millis(200),
            precision: Precision::F32,
            memo_cap: 8,
            registry: None,
        }
    }
}

/// Model dimensions published once by the model thread.
#[derive(Clone, Copy, Debug)]
pub struct Dims {
    pub sensors: usize,
    pub history: usize,
    pub horizon: usize,
    pub features: usize,
}

/// Counters and snapshot state shared by every thread.
struct Shared {
    shutdown: AtomicBool,
    /// `FrozenStwa::frozen_at` of the live snapshot (cache key part).
    version: AtomicU64,
    /// Fingerprint of the current input window (cache key part).
    window_fp: AtomicU64,
    cache: ForecastCache,
    requests: AtomicU64,
    responses: AtomicU64,
    inline_hits: AtomicU64,
    model_jobs: AtomicU64,
    swaps: AtomicU64,
    swap_errors: AtomicU64,
    client_aborts: AtomicU64,
}

enum JobKind {
    Forecast { sensor: u32, horizon: u32 },
    Observe { frame: Vec<f32> },
    Swap,
}

struct Job {
    worker: usize,
    conn: u64,
    seq: u64,
    keep_alive: bool,
    kind: JobKind,
}

struct Reply {
    conn: u64,
    seq: u64,
    bytes: Vec<u8>,
    close_after: bool,
}

/// A running server. Dropping without [`Server::shutdown`] leaks the
/// threads; call shutdown for a clean drain.
pub struct Server {
    addr: std::net::SocketAddr,
    dims: Dims,
    shared: Arc<Shared>,
    wakers: Vec<Waker>,
    workers: Vec<std::thread::JoinHandle<()>>,
    model_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the model thread (which runs `build` and freezes a
    /// serving snapshot), wait until it is ready, then spawn the IO
    /// workers. `build` runs *on the model thread* because tensors are
    /// not `Send`.
    pub fn start<F>(config: ServeConfig, build: F) -> std::io::Result<Server>
    where
        F: FnOnce() -> stwa_tensor::Result<StwaModel> + Send + 'static,
    {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            version: AtomicU64::new(0),
            window_fp: AtomicU64::new(0),
            cache: ForecastCache::new(config.cache_shards, config.ttl),
            requests: AtomicU64::new(0),
            responses: AtomicU64::new(0),
            inline_hits: AtomicU64::new(0),
            model_jobs: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            swap_errors: AtomicU64::new(0),
            client_aborts: AtomicU64::new(0),
        });

        let io_threads = config.io_threads.max(1);
        let (job_tx, job_rx) = std::sync::mpsc::channel::<Job>();
        let mut reply_txs = Vec::with_capacity(io_threads);
        let mut worker_parts = Vec::with_capacity(io_threads);
        for _ in 0..io_threads {
            let (reply_tx, reply_rx) = std::sync::mpsc::channel::<Reply>();
            let (waker, wake_reader) = Waker::pair()?;
            reply_txs.push((reply_tx, waker.clone()));
            worker_parts.push((reply_rx, wake_reader, waker));
        }

        // Model thread first: workers must not accept until dims and
        // the initial version are published.
        let (ready_tx, ready_rx) = std::sync::mpsc::channel::<Result<Dims, String>>();
        let model_shared = Arc::clone(&shared);
        let model_cfg = config.clone();
        let model_thread = std::thread::Builder::new()
            .name("stwa-serve-model".to_string())
            .spawn(move || {
                model_thread_main(model_cfg, build, model_shared, job_rx, reply_txs, ready_tx)
            })?;
        let dims = match ready_rx.recv() {
            Ok(Ok(dims)) => dims,
            Ok(Err(e)) => {
                let _ = model_thread.join();
                return Err(std::io::Error::other(format!("model thread failed: {e}")));
            }
            Err(_) => {
                let _ = model_thread.join();
                return Err(std::io::Error::other("model thread died before ready"));
            }
        };

        let mut wakers = Vec::with_capacity(io_threads);
        let mut workers = Vec::with_capacity(io_threads);
        for (idx, (reply_rx, wake_reader, waker)) in worker_parts.into_iter().enumerate() {
            wakers.push(waker);
            let listener = listener.try_clone()?;
            let shared = Arc::clone(&shared);
            let job_tx = job_tx.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("stwa-serve-io{idx}"))
                    .spawn(move || {
                        worker_main(idx, listener, shared, dims, job_tx, reply_rx, wake_reader)
                    })?,
            );
        }
        drop(job_tx); // model thread exits once every worker is gone

        Ok(Server {
            addr,
            dims,
            shared,
            wakers,
            workers,
            model_thread: Some(model_thread),
        })
    }

    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Live snapshot version (`FrozenStwa::frozen_at`).
    pub fn version(&self) -> u64 {
        self.shared.version.load(Ordering::Acquire)
    }

    /// Completed hot swaps so far.
    pub fn swaps(&self) -> u64 {
        self.shared.swaps.load(Ordering::Relaxed)
    }

    /// (requests parsed, responses sent) so far.
    pub fn traffic(&self) -> (u64, u64) {
        (
            self.shared.requests.load(Ordering::Relaxed),
            self.shared.responses.load(Ordering::Relaxed),
        )
    }

    /// Graceful drain: stop accepting, serve everything in flight,
    /// flush every socket, join every thread.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for waker in &self.wakers {
            waker.wake();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(model) = self.model_thread.take() {
            let _ = model.join();
        }
    }
}

// ---------------------------------------------------------------------------
// IO worker
// ---------------------------------------------------------------------------

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_CONN0: u64 = 2;

struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Next sequence number to assign to a parsed request.
    next_seq: u64,
    /// Next sequence number whose response may be written.
    next_flush: u64,
    /// Completed responses waiting for their turn.
    done: BTreeMap<u64, (Vec<u8>, bool)>,
    /// Requests handed to the model thread, not yet replied.
    inflight: usize,
    /// Observations handed to the model thread, not yet replied —
    /// while nonzero, forecasts on this connection bypass the cache so
    /// the model thread orders them after the observe.
    inflight_observes: usize,
    /// Stop reading (a `Connection: close` request or a fatal parse
    /// error); the connection dies once fully flushed.
    closing: bool,
    /// Registered epoll interest, to skip redundant `EPOLL_CTL_MOD`s.
    interest: u32,
}

fn worker_main(
    worker_idx: usize,
    listener: TcpListener,
    shared: Arc<Shared>,
    dims: Dims,
    job_tx: Sender<Job>,
    reply_rx: Receiver<Reply>,
    wake_reader: WakeReader,
) {
    let mut epoll = match Epoll::new() {
        Ok(e) => e,
        Err(_) => return,
    };
    use std::os::unix::io::AsRawFd;
    if epoll.add(listener.as_raw_fd(), TOKEN_LISTENER, EPOLLIN).is_err() {
        return;
    }
    let _ = epoll.add(wake_reader.fd(), TOKEN_WAKER, EPOLLIN);

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = TOKEN_CONN0;
    let mut events: Vec<Event> = Vec::new();
    let mut accepting = true;

    loop {
        let shutting_down = shared.shutdown.load(Ordering::SeqCst);
        if shutting_down {
            if accepting {
                // Drain the accept backlog once: connections whose
                // handshake finished before the shutdown signal get
                // served, not reset when the listener closes.
                accept_all(&listener, &epoll, &mut conns, &mut next_token);
                let _ = epoll.delete(listener.as_raw_fd());
                accepting = false;
            }
            // Final read pass before judging idleness: requests that
            // reached the kernel buffer before the shutdown signal are
            // parsed and served, not reset.
            let tokens: Vec<u64> = conns.keys().copied().collect();
            for token in tokens {
                let conn = conns.get_mut(&token).unwrap();
                if !conn.closing
                    && read_and_dispatch(worker_idx, token, conn, &shared, &dims, &job_tx)
                {
                    let _ = epoll.delete(conn.stream.as_raw_fd());
                    conns.remove(&token);
                }
            }
            // Close connections with nothing left to serve; exit once
            // none remain. Busy connections finish their responses.
            conns.retain(|_, c| {
                !(c.inflight == 0 && c.done.is_empty() && c.wbuf.is_empty())
            });
            if conns.is_empty() {
                return;
            }
        }

        let timeout = Some(if shutting_down {
            Duration::from_millis(10)
        } else {
            Duration::from_millis(500)
        });
        if epoll.wait(&mut events, timeout).is_err() {
            return;
        }

        let fired = std::mem::take(&mut events);
        for ev in &fired {
            match ev.token {
                TOKEN_LISTENER => {
                    if !accepting || shutting_down {
                        continue;
                    }
                    // Level-triggered and shared across workers: accept
                    // until WouldBlock, whoever wakes first wins.
                    accept_all(&listener, &epoll, &mut conns, &mut next_token);
                }
                TOKEN_WAKER => wake_reader.drain(),
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    let mut dead = false;
                    if ev.readable && !conn.closing {
                        dead = read_and_dispatch(
                            worker_idx, token, conn, &shared, &dims, &job_tx,
                        );
                    }
                    if ev.writable && !dead {
                        dead = flush_wbuf(conn);
                    }
                    if ev.closed && conn.inflight == 0 && conn.wbuf.is_empty() {
                        dead = true;
                    }
                    if dead {
                        if conn.inflight > 0 {
                            // Peer vanished with requests in flight;
                            // their replies will be discarded.
                            shared
                                .client_aborts
                                .fetch_add(conn.inflight as u64, Ordering::Relaxed);
                            stwa_observe::counter!("serve.client_aborts")
                                .add(conn.inflight as u64);
                        }
                        let _ = epoll.delete(conn.stream.as_raw_fd());
                        conns.remove(&token);
                    } else {
                        update_interest(&epoll, token, conns.get_mut(&token).unwrap());
                    }
                }
            }
        }

        // Model-thread replies (the waker fired, or we woke anyway).
        while let Ok(reply) = reply_rx.try_recv() {
            let Some(conn) = conns.get_mut(&reply.conn) else {
                // Client hung up before its answer came back; the abort
                // was counted when the connection died.
                continue;
            };
            conn.inflight -= 1;
            if conn.inflight_observes > 0 {
                // Replies arrive in per-connection submission order, so
                // pair the decrements conservatively: an observe reply
                // is whichever arrives while one is outstanding.
                conn.inflight_observes -= 1;
            }
            complete(conn, reply.seq, reply.bytes, reply.close_after);
            shared.responses.fetch_add(1, Ordering::Relaxed);
            let dead = flush_wbuf(conn);
            let done = conn.closing
                && conn.inflight == 0
                && conn.done.is_empty()
                && conn.wbuf.is_empty();
            if dead || done {
                let _ = epoll.delete(conn.stream.as_raw_fd());
                conns.remove(&reply.conn);
            } else {
                let token = reply.conn;
                update_interest(&epoll, token, conns.get_mut(&token).unwrap());
            }
        }
        events = fired;
    }
}

/// Accept every queued connection and register it for reads.
fn accept_all(
    listener: &TcpListener,
    epoll: &Epoll,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
) {
    use std::os::unix::io::AsRawFd;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                if epoll.add(stream.as_raw_fd(), token, EPOLLIN).is_ok() {
                    conns.insert(
                        token,
                        Conn {
                            stream,
                            rbuf: Vec::new(),
                            wbuf: Vec::new(),
                            next_seq: 0,
                            next_flush: 0,
                            done: BTreeMap::new(),
                            inflight: 0,
                            inflight_observes: 0,
                            closing: false,
                            interest: EPOLLIN,
                        },
                    );
                }
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
}

/// Read everything available, parse pipelined requests, answer inline
/// or dispatch to the model thread. Returns true when the connection
/// is dead.
fn read_and_dispatch(
    worker_idx: usize,
    token: u64,
    conn: &mut Conn,
    shared: &Shared,
    dims: &Dims,
    job_tx: &Sender<Job>,
) -> bool {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                // Orderly close; serve what was already parsed.
                conn.closing = true;
                break;
            }
            Ok(n) => conn.rbuf.extend_from_slice(&chunk[..n]),
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }

    let mut consumed = 0;
    while !conn.closing {
        match http::parse_request(&conn.rbuf[consumed..]) {
            Parse::Partial => break,
            Parse::Bad(status, reason) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                let seq = conn.next_seq;
                conn.next_seq += 1;
                let mut out = Vec::new();
                http::write_response(
                    &mut out,
                    status,
                    reason,
                    "application/json",
                    &proto::error_body(reason),
                    false,
                );
                complete(conn, seq, out, true);
                shared.responses.fetch_add(1, Ordering::Relaxed);
                conn.closing = true;
            }
            Parse::Complete(req, n) => {
                consumed += n;
                shared.requests.fetch_add(1, Ordering::Relaxed);
                stwa_observe::counter!("serve.requests").incr();
                let seq = conn.next_seq;
                conn.next_seq += 1;
                if !req.keep_alive {
                    conn.closing = true;
                }
                match route(worker_idx, token, seq, &req, conn, shared, dims, job_tx) {
                    Routed::Inline(bytes) => {
                        complete(conn, seq, bytes, !req.keep_alive);
                        shared.responses.fetch_add(1, Ordering::Relaxed);
                    }
                    Routed::Dispatched => {
                        conn.inflight += 1;
                        shared.model_jobs.fetch_add(1, Ordering::Relaxed);
                        stwa_observe::counter!("serve.model_jobs").incr();
                    }
                }
            }
        }
    }
    conn.rbuf.drain(..consumed);
    flush_wbuf(conn)
        || (conn.closing && conn.inflight == 0 && conn.done.is_empty() && conn.wbuf.is_empty())
}

enum Routed {
    Inline(Vec<u8>),
    Dispatched,
}

#[allow(clippy::too_many_arguments)]
fn route(
    worker_idx: usize,
    token: u64,
    seq: u64,
    req: &Request,
    conn: &mut Conn,
    shared: &Shared,
    dims: &Dims,
    job_tx: &Sender<Job>,
) -> Routed {
    let inline = |status: u16, reason: &str, body: Vec<u8>| {
        let mut out = Vec::new();
        http::write_response(&mut out, status, reason, "application/json", &body, req.keep_alive);
        Routed::Inline(out)
    };

    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => inline(200, "OK", b"{\"ok\": true}".to_vec()),
        ("GET", "/stats") => {
            let (hits, misses) = shared.cache.stats();
            let doc = Json::Obj(vec![
                ("version".into(), Json::Num(shared.version.load(Ordering::Acquire) as f64)),
                ("requests".into(), Json::Num(shared.requests.load(Ordering::Relaxed) as f64)),
                ("responses".into(), Json::Num(shared.responses.load(Ordering::Relaxed) as f64)),
                ("inline_hits".into(), Json::Num(shared.inline_hits.load(Ordering::Relaxed) as f64)),
                ("model_jobs".into(), Json::Num(shared.model_jobs.load(Ordering::Relaxed) as f64)),
                ("cache_hits".into(), Json::Num(hits as f64)),
                ("cache_misses".into(), Json::Num(misses as f64)),
                ("cache_entries".into(), Json::Num(shared.cache.len() as f64)),
                ("swaps".into(), Json::Num(shared.swaps.load(Ordering::Relaxed) as f64)),
                ("swap_errors".into(), Json::Num(shared.swap_errors.load(Ordering::Relaxed) as f64)),
                ("client_aborts".into(), Json::Num(shared.client_aborts.load(Ordering::Relaxed) as f64)),
            ]);
            inline(200, "OK", doc.to_string().into_bytes())
        }
        ("GET", "/forecast") => {
            let sensor = req.query("sensor").and_then(|v| v.parse::<u32>().ok());
            let horizon = req
                .query("horizon")
                .map_or(Some(dims.horizon as u32), |v| v.parse::<u32>().ok());
            let (Some(sensor), Some(horizon)) = (sensor, horizon) else {
                return inline(400, "Bad Request", proto::error_body("sensor/horizon must be integers"));
            };
            if sensor as usize >= dims.sensors {
                return inline(
                    400,
                    "Bad Request",
                    proto::error_body(&format!("sensor {sensor} out of range (N={})", dims.sensors)),
                );
            }
            if horizon == 0 || horizon as usize > dims.horizon {
                return inline(
                    400,
                    "Bad Request",
                    proto::error_body(&format!("horizon {horizon} out of range (U={})", dims.horizon)),
                );
            }
            // Cache lookup under a snapshot of (version, window). Both
            // can move before the model thread would evaluate, which is
            // exactly why misses carry the authoritative values back.
            // Skip the cache while an observe from this connection is
            // in flight so the model thread orders forecast-after-
            // observe (read-your-writes per connection).
            if conn.inflight_observes == 0 {
                let key = CacheKey {
                    version: shared.version.load(Ordering::Acquire),
                    sensor,
                    horizon,
                    window_fp: shared.window_fp.load(Ordering::Acquire),
                };
                if let Some(values) = shared.cache.get(&key) {
                    shared.inline_hits.fetch_add(1, Ordering::Relaxed);
                    stwa_observe::counter!("serve.cache_hits").incr();
                    return inline(
                        200,
                        "OK",
                        proto::forecast_body(
                            sensor,
                            horizon,
                            key.version,
                            key.window_fp,
                            "hit",
                            &values,
                        ),
                    );
                }
            }
            let job = Job {
                worker: worker_idx,
                conn: token,
                seq,
                keep_alive: req.keep_alive,
                kind: JobKind::Forecast { sensor, horizon },
            };
            match job_tx.send(job) {
                Ok(()) => Routed::Dispatched,
                Err(_) => inline(503, "Service Unavailable", proto::error_body("model thread is gone")),
            }
        }
        ("POST", "/observe") => {
            match proto::parse_observe(&req.body, dims.sensors * dims.features) {
                Err(e) => inline(400, "Bad Request", proto::error_body(&e)),
                Ok(frame) => {
                    let job = Job {
                        worker: worker_idx,
                        conn: token,
                        seq,
                        keep_alive: req.keep_alive,
                        kind: JobKind::Observe { frame },
                    };
                    match job_tx.send(job) {
                        Ok(()) => {
                            conn.inflight_observes += 1;
                            Routed::Dispatched
                        }
                        Err(_) => inline(503, "Service Unavailable", proto::error_body("model thread is gone")),
                    }
                }
            }
        }
        ("POST", "/admin/swap") => {
            let job = Job {
                worker: worker_idx,
                conn: token,
                seq,
                keep_alive: req.keep_alive,
                kind: JobKind::Swap,
            };
            match job_tx.send(job) {
                Ok(()) => Routed::Dispatched,
                Err(_) => inline(503, "Service Unavailable", proto::error_body("model thread is gone")),
            }
        }
        _ => inline(404, "Not Found", proto::error_body("unknown endpoint")),
    }
}

/// File a finished response under its sequence number and move every
/// now-unblocked response into the write buffer.
fn complete(conn: &mut Conn, seq: u64, bytes: Vec<u8>, close_after: bool) {
    conn.done.insert(seq, (bytes, close_after));
    while let Some((bytes, close)) = conn.done.remove(&conn.next_flush) {
        conn.wbuf.extend_from_slice(&bytes);
        conn.next_flush += 1;
        if close {
            conn.closing = true;
        }
    }
}

/// Push the write buffer to the socket. Returns true when the
/// connection is dead (write error).
fn flush_wbuf(conn: &mut Conn) -> bool {
    while !conn.wbuf.is_empty() {
        match conn.stream.write(&conn.wbuf) {
            Ok(0) => return true,
            Ok(n) => {
                conn.wbuf.drain(..n);
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => return false,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    false
}

fn update_interest(epoll: &Epoll, token: u64, conn: &mut Conn) {
    let want = if conn.wbuf.is_empty() {
        EPOLLIN
    } else {
        EPOLLIN | EPOLLOUT
    };
    if want != conn.interest {
        use std::os::unix::io::AsRawFd;
        if epoll.modify(conn.stream.as_raw_fd(), token, want).is_ok() {
            conn.interest = want;
        }
    }
}

// ---------------------------------------------------------------------------
// Model thread
// ---------------------------------------------------------------------------

struct ModelState {
    model: StwaModel,
    queue: InferQueue,
    registry: Option<(stwa_ckpt::Registry, String)>,
    /// Registry version currently loaded (0 = builder weights).
    registry_version: u32,
    precision: Precision,
    queue_cfg: QueueConfig,
    dims: Dims,
    /// Rolling input window `[N, H, F]` shared by every sensor query.
    window: Vec<f32>,
    window_fp: u64,
    /// Recent full forwards keyed by window fingerprint (version is
    /// implicit: the memo is cleared on swap). Front = most recent.
    memo: Vec<(u64, Arc<Vec<f32>>)>,
    memo_cap: usize,
}

fn model_thread_main<F>(
    config: ServeConfig,
    build: F,
    shared: Arc<Shared>,
    job_rx: Receiver<Job>,
    reply_txs: Vec<(Sender<Reply>, Waker)>,
    ready_tx: Sender<Result<Dims, String>>,
) where
    F: FnOnce() -> stwa_tensor::Result<StwaModel> + Send + 'static,
{
    let mut state = match init_model(&config, build) {
        Ok(s) => s,
        Err(e) => {
            let _ = ready_tx.send(Err(e));
            return;
        }
    };
    shared
        .version
        .store(state.queue.session().frozen().frozen_at(), Ordering::Release);
    shared.window_fp.store(state.window_fp, Ordering::Release);
    let _ = ready_tx.send(Ok(state.dims));

    let mut last_poll = Instant::now();
    let mut burst: Vec<Job> = Vec::new();
    loop {
        burst.clear();
        match job_rx.recv_timeout(config.registry_poll) {
            Ok(job) => {
                burst.push(job);
                // Drain whatever queued behind it — one settle per
                // burst amortizes flushes across pipelined traffic.
                while burst.len() < 256 {
                    match job_rx.try_recv() {
                        Ok(job) => burst.push(job),
                        Err(_) => break,
                    }
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                // Every worker is gone (shutdown drained them); nothing
                // can be in flight anymore.
                let _ = state.queue.close();
                return;
            }
        }

        process_burst(&mut state, &burst, &shared, &reply_txs);

        if state.registry.is_some() && last_poll.elapsed() >= config.registry_poll {
            last_poll = Instant::now();
            try_swap(&mut state, &shared);
        }
    }
}

fn init_model<F>(config: &ServeConfig, build: F) -> Result<ModelState, String>
where
    F: FnOnce() -> stwa_tensor::Result<StwaModel>,
{
    let model = build().map_err(|e| format!("build model: {e}"))?;
    let registry = match &config.registry {
        None => None,
        Some((root, name)) => {
            let reg = stwa_ckpt::Registry::open(root).map_err(|e| format!("open registry: {e}"))?;
            Some((reg, name.clone()))
        }
    };
    let (frozen, registry_version) = match &registry {
        Some((reg, name)) if !reg.versions(name).map_err(|e| e.to_string())?.is_empty() => {
            let latest = reg.latest(name).map_err(|e| e.to_string())?;
            let frozen =
                FrozenStwa::freeze_from_registry_at(&model, reg, name, Some(latest), config.precision)
                    .map_err(|e| format!("freeze from registry: {e}"))?;
            (frozen, latest)
        }
        _ => (
            FrozenStwa::freeze_at(&model, config.precision).map_err(|e| format!("freeze: {e}"))?,
            0,
        ),
    };
    let dims = Dims {
        sensors: frozen.num_sensors(),
        history: frozen.input_len(),
        horizon: frozen.horizon(),
        features: frozen.features(),
    };
    let queue = InferQueue::new(
        InferSession::from_frozen(frozen),
        QueueConfig {
            max_batch: config.max_batch,
            max_wait: config.max_wait,
        },
    )
    .map_err(|e| format!("queue: {e}"))?;
    let window = vec![0.0f32; dims.sensors * dims.history * dims.features];
    let window_fp = fingerprint_f32(&window);
    Ok(ModelState {
        model,
        queue,
        registry,
        registry_version,
        precision: config.precision,
        queue_cfg: QueueConfig {
            max_batch: config.max_batch,
            max_wait: config.max_wait,
        },
        dims,
        window,
        window_fp,
        memo: Vec::new(),
        memo_cap: config.memo_cap.max(1),
    })
}

/// Forecast jobs waiting on one submitted window evaluation.
struct PendingEval {
    fp: u64,
    ticket: stwa_infer::RequestId,
    jobs: Vec<(usize, u64, u64, bool, u32, u32)>, // worker, conn, seq, keep_alive, sensor, horizon
}

fn process_burst(
    state: &mut ModelState,
    burst: &[Job],
    shared: &Shared,
    reply_txs: &[(Sender<Reply>, Waker)],
) {
    let mut pending: Vec<PendingEval> = Vec::new();
    for job in burst {
        match &job.kind {
            JobKind::Forecast { sensor, horizon } => {
                let fp = state.window_fp;
                if let Some(values) = memo_get(state, fp) {
                    answer_forecast(
                        state, shared, reply_txs, job, *sensor, *horizon, fp, "memo", &values,
                    );
                    continue;
                }
                if let Some(p) = pending.iter_mut().find(|p| p.fp == fp) {
                    p.jobs
                        .push((job.worker, job.conn, job.seq, job.keep_alive, *sensor, *horizon));
                    continue;
                }
                let x = Tensor::from_vec(
                    state.window.clone(),
                    &[state.dims.sensors, state.dims.history, state.dims.features],
                );
                match x.and_then(|x| state.queue.submit(x)) {
                    Ok(ticket) => pending.push(PendingEval {
                        fp,
                        ticket,
                        jobs: vec![(job.worker, job.conn, job.seq, job.keep_alive, *sensor, *horizon)],
                    }),
                    Err(e) => reply_error(reply_txs, job, 500, &format!("submit: {e}")),
                }
            }
            JobKind::Observe { frame } => {
                // Settle first: submitted forecasts answer for the
                // window they saw, never a newer one.
                settle(state, shared, reply_txs, &mut pending);
                apply_observe(state, frame);
                shared.window_fp.store(state.window_fp, Ordering::Release);
                let version = state.queue.session().frozen().frozen_at();
                reply_ok(
                    reply_txs,
                    job,
                    proto::observe_ack(version, state.window_fp),
                );
            }
            JobKind::Swap => {
                settle(state, shared, reply_txs, &mut pending);
                let before = shared.swaps.load(Ordering::Relaxed);
                try_swap(state, shared);
                let swapped = shared.swaps.load(Ordering::Relaxed) > before;
                let doc = Json::Obj(vec![
                    ("swapped".into(), Json::Bool(swapped)),
                    (
                        "version".into(),
                        Json::Num(state.queue.session().frozen().frozen_at() as f64),
                    ),
                    (
                        "registry_version".into(),
                        Json::Num(state.registry_version as f64),
                    ),
                ]);
                reply_ok(reply_txs, job, doc.to_string().into_bytes());
            }
        }
    }
    settle(state, shared, reply_txs, &mut pending);
}

/// Flush the queue and answer every job waiting on an evaluation.
fn settle(
    state: &mut ModelState,
    shared: &Shared,
    reply_txs: &[(Sender<Reply>, Waker)],
    pending: &mut Vec<PendingEval>,
) {
    if pending.is_empty() {
        return;
    }
    if let Err(e) = state.queue.flush() {
        // A failed flush re-queued the batch inside the queue; answer
        // the jobs with an error rather than stranding the clients.
        // (Unreachable in normal operation: swaps rebuild the queue on
        // this same thread, so the session can't go stale mid-burst.)
        let msg = format!("flush: {e}");
        for p in pending.drain(..) {
            for (worker, conn, seq, keep_alive, _, _) in p.jobs {
                send_reply(reply_txs, worker, conn, seq, error_response(500, &msg, keep_alive));
            }
        }
        return;
    }
    let version = state.queue.session().frozen().frozen_at();
    for p in pending.drain(..) {
        match state.queue.take(p.ticket) {
            Some(out) => {
                // `[1, N, U, F]` → owned row-major values.
                let values = Arc::new(out.data().to_vec());
                memo_put(state, p.fp, Arc::clone(&values));
                for (worker, conn, seq, keep_alive, sensor, horizon) in p.jobs {
                    let sliced = slice_forecast(state, &values, sensor, horizon);
                    // Prime the shared cache so repeats hit inline at
                    // the workers.
                    shared.cache.put(
                        CacheKey {
                            version,
                            sensor,
                            horizon,
                            window_fp: p.fp,
                        },
                        Arc::new(sliced.clone()),
                    );
                    let body =
                        proto::forecast_body(sensor, horizon, version, p.fp, "miss", &sliced);
                    send_reply(
                        reply_txs,
                        worker,
                        conn,
                        seq,
                        ok_response(body, keep_alive),
                    );
                }
            }
            None => {
                for (worker, conn, seq, keep_alive, _, _) in p.jobs {
                    send_reply(
                        reply_txs,
                        worker,
                        conn,
                        seq,
                        error_response(500, "evaluation lost its result", keep_alive),
                    );
                }
            }
        }
    }
}

fn memo_get(state: &ModelState, fp: u64) -> Option<Arc<Vec<f32>>> {
    state
        .memo
        .iter()
        .find(|(k, _)| *k == fp)
        .map(|(_, v)| Arc::clone(v))
}

fn memo_put(state: &mut ModelState, fp: u64, values: Arc<Vec<f32>>) {
    state.memo.retain(|(k, _)| *k != fp);
    state.memo.insert(0, (fp, values));
    state.memo.truncate(state.memo_cap);
}

/// Extract sensor `s`, steps `0..horizon` from a full `[N, U, F]`
/// output (contiguous: the row-major slice `[s*U*F, s*U*F + h*F)`).
fn slice_forecast(state: &ModelState, full: &[f32], sensor: u32, horizon: u32) -> Vec<f32> {
    let (u, f) = (state.dims.horizon, state.dims.features);
    let start = sensor as usize * u * f;
    full[start..start + horizon as usize * f].to_vec()
}

/// Shift the rolling window one step left and append the new frame at
/// `t = H-1` for every sensor.
fn apply_observe(state: &mut ModelState, frame: &[f32]) {
    let (n, h, f) = (state.dims.sensors, state.dims.history, state.dims.features);
    for s in 0..n {
        let row = &mut state.window[s * h * f..(s + 1) * h * f];
        row.copy_within(f.., 0);
        row[(h - 1) * f..].copy_from_slice(&frame[s * f..(s + 1) * f]);
    }
    state.window_fp = fingerprint_f32(&state.window);
}

#[allow(clippy::too_many_arguments)]
fn answer_forecast(
    state: &ModelState,
    shared: &Shared,
    reply_txs: &[(Sender<Reply>, Waker)],
    job: &Job,
    sensor: u32,
    horizon: u32,
    fp: u64,
    source: &str,
    full: &Arc<Vec<f32>>,
) {
    let version = state.queue.session().frozen().frozen_at();
    let sliced = slice_forecast(state, full, sensor, horizon);
    shared.cache.put(
        CacheKey {
            version,
            sensor,
            horizon,
            window_fp: fp,
        },
        Arc::new(sliced.clone()),
    );
    let body = proto::forecast_body(sensor, horizon, version, fp, source, &sliced);
    send_reply(
        reply_txs,
        job.worker,
        job.conn,
        job.seq,
        ok_response(body, job.keep_alive),
    );
}

/// Poll the registry; swap the serving snapshot when a newer version
/// is published. Old-version cache entries are purged so they can
/// never answer again, and the old queue is closed (it is empty —
/// swaps only run between settled bursts).
fn try_swap(state: &mut ModelState, shared: &Shared) {
    let Some((registry, name)) = &state.registry else {
        return;
    };
    let latest = match registry.latest(name) {
        Ok(v) => v,
        Err(_) => return, // nothing published yet
    };
    if latest <= state.registry_version {
        return;
    }
    let old_version = state.queue.session().frozen().frozen_at();
    // Drain the (empty) queue and reject any stray submit from here on.
    let _ = state.queue.close();
    match FrozenStwa::freeze_from_registry_at(
        &state.model,
        registry,
        name,
        Some(latest),
        state.precision,
    ) {
        Ok(frozen) => {
            let new_version = frozen.frozen_at();
            match InferQueue::new(InferSession::from_frozen(frozen), state.queue_cfg) {
                Ok(queue) => {
                    state.queue = queue;
                    state.registry_version = latest;
                    state.memo.clear();
                    shared.version.store(new_version, Ordering::Release);
                    shared.cache.purge_version(old_version);
                    shared.swaps.fetch_add(1, Ordering::Relaxed);
                    stwa_observe::counter!("serve.swaps").incr();
                }
                Err(_) => {
                    shared.swap_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Err(_) => {
            // Registry load failed (partial publish, IO error): keep
            // serving the old snapshot. The old queue was closed, so
            // rebuild one over the same frozen state via re-freeze.
            shared.swap_errors.fetch_add(1, Ordering::Relaxed);
            if let Ok(frozen) = FrozenStwa::freeze_at(&state.model, state.precision) {
                if let Ok(queue) = InferQueue::new(InferSession::from_frozen(frozen), state.queue_cfg)
                {
                    let v = queue.session().frozen().frozen_at();
                    state.queue = queue;
                    shared.version.store(v, Ordering::Release);
                    shared.cache.purge_version(old_version);
                    state.memo.clear();
                }
            }
        }
    }
}

fn ok_response(body: Vec<u8>, keep_alive: bool) -> (Vec<u8>, bool) {
    let mut out = Vec::new();
    http::write_response(&mut out, 200, "OK", "application/json", &body, keep_alive);
    (out, !keep_alive)
}

fn error_response(status: u16, message: &str, keep_alive: bool) -> (Vec<u8>, bool) {
    let reason = match status {
        400 => "Bad Request",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let mut out = Vec::new();
    http::write_response(
        &mut out,
        status,
        reason,
        "application/json",
        &proto::error_body(message),
        keep_alive,
    );
    (out, !keep_alive)
}

fn send_reply(
    reply_txs: &[(Sender<Reply>, Waker)],
    worker: usize,
    conn: u64,
    seq: u64,
    packaged: (Vec<u8>, bool),
) {
    let (bytes, close_after) = packaged;
    if let Some((tx, waker)) = reply_txs.get(worker) {
        if tx
            .send(Reply {
                conn,
                seq,
                bytes,
                close_after,
            })
            .is_ok()
        {
            waker.wake();
        }
    }
}

fn reply_ok(reply_txs: &[(Sender<Reply>, Waker)], job: &Job, body: Vec<u8>) {
    send_reply(
        reply_txs,
        job.worker,
        job.conn,
        job.seq,
        ok_response(body, job.keep_alive),
    );
}

fn reply_error(reply_txs: &[(Sender<Reply>, Waker)], job: &Job, status: u16, message: &str) {
    send_reply(
        reply_txs,
        job.worker,
        job.conn,
        job.seq,
        error_response(status, message, job.keep_alive),
    );
}
