//! Minimal epoll reactor: non-blocking sockets plus a readiness loop.
//!
//! The serving front-end needs exactly three kernel facilities — "tell
//! me when these fds are readable/writable", "wake a sleeping loop from
//! another thread", and nothing else — so instead of pulling in an
//! async runtime this module declares the three `epoll` entry points
//! that glibc already links into every binary and wraps them in a safe
//! [`Epoll`] handle. Cross-thread wakeups ride a non-blocking
//! [`UnixStream`] pair ([`Waker`]): the read end sits in the epoll set
//! like any socket, the write end is `Send + Sync` and writes one byte
//! to wake the loop.
//!
//! Everything is level-triggered: a readable fd keeps reporting until
//! drained, which keeps the event loop's correctness independent of
//! how much each callback consumes.

#![cfg(target_os = "linux")]

use std::io;
use std::os::unix::io::RawFd;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Readiness bits (subset of the kernel's event mask).
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half — lets keep-alive connections report
/// a client-side close without a zero-byte read.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;

/// `struct epoll_event` — packed on x86_64, exactly as the kernel ABI
/// defines it. Fields are copied out rather than referenced (taking a
/// reference into a packed struct is undefined alignment).
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct RawEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut RawEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut RawEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// One readiness notification: the token the fd was registered with
/// plus the event bits that fired.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    pub closed: bool,
}

/// A safe wrapper over one epoll instance.
pub struct Epoll {
    fd: RawFd,
    buf: Vec<RawEvent>,
}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        // Safety: plain syscall, no memory handed over.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll {
            fd,
            buf: vec![RawEvent { events: 0, data: 0 }; 256],
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = RawEvent {
            events,
            data: token,
        };
        // Safety: `ev` outlives the call; the kernel copies it.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` under `token` with the given interest set
    /// (`EPOLLIN` and/or `EPOLLOUT`; `EPOLLRDHUP` is always added).
    pub fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest | EPOLLRDHUP, token)
    }

    /// Change an existing registration's interest set.
    pub fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest | EPOLLRDHUP, token)
    }

    /// Drop a registration (closing the fd also does this implicitly).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Block until at least one registered fd is ready or `timeout`
    /// elapses; deliver the ready set to `out` (cleared first).
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        let timeout_ms = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        // Safety: `buf` is a live, properly sized RawEvent array.
        let n = unsafe {
            epoll_wait(
                self.fd,
                self.buf.as_mut_ptr(),
                self.buf.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for raw in &self.buf[..n as usize] {
            let bits = raw.events;
            out.push(Event {
                token: raw.data,
                readable: bits & EPOLLIN != 0,
                writable: bits & EPOLLOUT != 0,
                closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // Safety: fd is owned by this handle and closed exactly once.
        unsafe { close(self.fd) };
    }
}

/// Cross-thread wakeup for an [`Epoll`] loop: a non-blocking socket
/// pair whose read half lives in the epoll set. Cloneable and cheap —
/// a wake writes one byte and ignores a full pipe (the loop is already
/// scheduled to wake).
pub struct Waker {
    tx: UnixStream,
}

impl Waker {
    /// Build the pair; register `reader` under `token` in the loop's
    /// epoll set and hand `Waker` to the threads that need to wake it.
    pub fn pair() -> io::Result<(Waker, WakeReader)> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((Waker { tx }, WakeReader { rx }))
    }

    pub fn wake(&self) {
        use std::io::Write;
        // WouldBlock means the buffer already holds unread wake bytes;
        // any other error means the loop is gone — both are fine to
        // ignore.
        let _ = (&self.tx).write(&[1u8]);
    }
}

impl Clone for Waker {
    fn clone(&self) -> Waker {
        Waker {
            tx: self.tx.try_clone().expect("clone waker socket"),
        }
    }
}

/// The epoll-side half of a [`Waker`].
pub struct WakeReader {
    rx: UnixStream,
}

impl WakeReader {
    pub fn fd(&self) -> RawFd {
        use std::os::unix::io::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// Consume queued wake bytes so a level-triggered epoll stops
    /// reporting the fd.
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn readiness_round_trip_over_a_socket_pair() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut ep = Epoll::new().unwrap();
        use std::os::unix::io::AsRawFd;
        ep.add(server.as_raw_fd(), 7, EPOLLIN).unwrap();

        let mut events = Vec::new();
        // Nothing to read yet: a short wait times out empty.
        ep.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));

        client.write_all(b"ping").unwrap();
        ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        let ev = events.iter().find(|e| e.token == 7).expect("event");
        assert!(ev.readable);
        let mut buf = [0u8; 8];
        let n = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");

        // Peer close surfaces as a closed event.
        drop(client);
        ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        let ev = events.iter().find(|e| e.token == 7).expect("event");
        assert!(ev.closed || ev.readable);
    }

    #[test]
    fn waker_rouses_a_sleeping_wait() {
        let (waker, reader) = Waker::pair().unwrap();
        let mut ep = Epoll::new().unwrap();
        ep.add(reader.fd(), 1, EPOLLIN).unwrap();

        // Keep one Waker alive for the whole test (dropping every
        // clone hangs up the pair, which reads as `closed`) — exactly
        // the lifetime the server gives its wakers.
        let remote = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            remote.wake();
            remote.wake(); // double-wake coalesces, never errors
        });
        let mut events = Vec::new();
        ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        // Join first so no wake byte can land after the drain.
        t.join().unwrap();
        reader.drain();
        // Drained: the next short wait reports nothing for the waker.
        ep.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.iter().all(|e| e.token != 1));
    }
}
