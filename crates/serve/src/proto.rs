//! JSON request/response bodies, built on `stwa_observe::json`.
//!
//! Forecast values are f32 but travel as JSON numbers (f64). The
//! serializer prints the shortest round-tripping f64 representation
//! and f32→f64 is exact, so `f64 as f32` on the receiving side
//! recovers the original bits — forecasts survive the wire bitwise,
//! which is what lets the bench assert served == direct-eval exactly.

use stwa_observe::{parse_json, Json};

/// Body for a served forecast. `cache` records how the value was
/// produced: `"hit"` (worker-side cache), `"memo"` (model-thread memo
/// of a full forward), or `"miss"` (fresh forward). `window_fp` names
/// the exact input window the values answer for, so a client can
/// verify any response — including cache hits — against a local
/// re-evaluation of that window.
pub fn forecast_body(
    sensor: u32,
    horizon: u32,
    version: u64,
    window_fp: u64,
    cache: &str,
    values: &[f32],
) -> Vec<u8> {
    let doc = Json::Obj(vec![
        ("sensor".to_string(), Json::Num(sensor as f64)),
        ("horizon".to_string(), Json::Num(horizon as f64)),
        ("version".to_string(), Json::Num(version as f64)),
        (
            "window_fp".to_string(),
            Json::Str(format!("{window_fp:016x}")),
        ),
        ("cache".to_string(), Json::Str(cache.to_string())),
        (
            "values".to_string(),
            Json::Arr(values.iter().map(|&v| Json::Num(v as f64)).collect()),
        ),
    ]);
    doc.to_string().into_bytes()
}

/// Body acknowledging an accepted observation frame.
pub fn observe_ack(version: u64, window_fp: u64) -> Vec<u8> {
    let doc = Json::Obj(vec![
        ("ok".to_string(), Json::Bool(true)),
        ("version".to_string(), Json::Num(version as f64)),
        // Fingerprints don't fit f64 exactly; ship as hex string.
        (
            "window_fp".to_string(),
            Json::Str(format!("{window_fp:016x}")),
        ),
    ]);
    doc.to_string().into_bytes()
}

pub fn error_body(message: &str) -> Vec<u8> {
    Json::Obj(vec![(
        "error".to_string(),
        Json::Str(message.to_string()),
    )])
    .to_string()
    .into_bytes()
}

/// Parse a `POST /observe` body: `{"frame": [f32; N*F]}` — one new
/// time step for every sensor, appended to the rolling window.
pub fn parse_observe(body: &[u8], expect_len: usize) -> Result<Vec<f32>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = parse_json(text).map_err(|e| format!("bad JSON: {e}"))?;
    let frame = doc
        .get("frame")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing \"frame\" array".to_string())?;
    if frame.len() != expect_len {
        return Err(format!(
            "frame has {} values, expected {expect_len} (sensors x features)",
            frame.len()
        ));
    }
    frame
        .iter()
        .map(|v| {
            v.as_num()
                .map(|n| n as f32)
                .ok_or_else(|| "frame holds a non-number".to_string())
        })
        .collect()
}

/// Pull the `values` array out of a forecast response body, bit-exact
/// (used by the client, tests, and the bench's correctness gate).
pub fn parse_forecast_values(body: &[u8]) -> Result<Vec<f32>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = parse_json(text).map_err(|e| format!("bad JSON: {e}"))?;
    let values = doc
        .get("values")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing \"values\" array".to_string())?;
    values
        .iter()
        .map(|v| {
            v.as_num()
                .map(|n| n as f32)
                .ok_or_else(|| "values holds a non-number".to_string())
        })
        .collect()
}

/// Pull a hex `window_fp` field out of a response body (forecast or
/// observe ack).
pub fn parse_window_fp(body: &[u8]) -> Result<u64, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = parse_json(text).map_err(|e| format!("bad JSON: {e}"))?;
    let fp = doc
        .get("window_fp")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing \"window_fp\"".to_string())?;
    u64::from_str_radix(fp, 16).map_err(|e| format!("bad window_fp: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forecast_values_round_trip_bitwise() {
        // Awkward f32s: subnormal, negative zero, extremes, repeating
        // fractions — all must survive JSON and come back bit-equal.
        let values = [
            0.1f32,
            -0.0,
            1.0e-40,
            f32::MAX,
            f32::MIN_POSITIVE,
            -3.333_333_3,
            1.0 / 3.0,
        ];
        let body = forecast_body(5, 2, 17, 0xdead_beef_cafe_f00d, "miss", &values);
        let back = parse_forecast_values(&body).unwrap();
        assert_eq!(parse_window_fp(&body).unwrap(), 0xdead_beef_cafe_f00d);
        assert_eq!(back.len(), values.len());
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} diverged over the wire");
        }
    }

    #[test]
    fn forecast_body_carries_metadata() {
        let body = forecast_body(5, 2, 17, 3, "hit", &[1.0]);
        let doc = parse_json(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(doc.get("sensor").unwrap().as_num(), Some(5.0));
        assert_eq!(doc.get("horizon").unwrap().as_num(), Some(2.0));
        assert_eq!(doc.get("version").unwrap().as_num(), Some(17.0));
        assert_eq!(doc.get("cache").unwrap().as_str(), Some("hit"));
    }

    #[test]
    fn observe_parses_and_validates_length() {
        let body = br#"{"frame": [1.5, -2.25, 0.125]}"#;
        assert_eq!(parse_observe(body, 3).unwrap(), vec![1.5, -2.25, 0.125]);
        assert!(parse_observe(body, 4).unwrap_err().contains("expected 4"));
        assert!(parse_observe(b"{}", 3).unwrap_err().contains("frame"));
        assert!(parse_observe(b"not json", 3).unwrap_err().contains("JSON"));
        assert!(parse_observe(br#"{"frame": ["x"]}"#, 1)
            .unwrap_err()
            .contains("non-number"));
    }

    #[test]
    fn error_body_is_parseable_json() {
        let body = error_body("sensor out of range");
        let doc = parse_json(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(doc.get("error").unwrap().as_str(), Some("sensor out of range"));
    }
}
