//! Replica-pool end-to-end tests: several model threads behind the
//! same reactor, each with its own frozen snapshot. The assertions
//! extend the single-evaluator serving contract to the pool — every
//! response is bitwise-verifiable against direct eval of the (version,
//! window) it names no matter which replica answered, observes keep
//! all replica windows identical, and a coordinated hot swap flips the
//! whole pool with zero drops and no mixed-version responses once the
//! swap call returns.

#![cfg(target_os = "linux")]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use stwa_ckpt::{Registry, TrainCheckpoint};
use stwa_core::{ForecastModel, StwaConfig, StwaModel};
use stwa_infer::InferSession;
use stwa_serve::{Client, ServeConfig, Server};
use stwa_tensor::Tensor;

const N: usize = 3;
const H: usize = 12;
const U: usize = 4;

fn model(seed: u64) -> StwaModel {
    let mut rng = StdRng::seed_from_u64(seed);
    StwaModel::new(StwaConfig::st_wa(N, H, U), &mut rng).unwrap()
}

fn config(replicas: usize) -> ServeConfig {
    ServeConfig {
        io_threads: 2,
        model_threads: replicas,
        max_wait: Duration::from_millis(1),
        ttl: Duration::from_secs(300),
        // Swaps in these tests are admin-triggered only, so a publish
        // never races the poller.
        registry_poll: Duration::from_secs(60),
        ..ServeConfig::default()
    }
}

fn frame(t: usize, n: usize, f: usize) -> Vec<f32> {
    (0..n * f)
        .map(|i| ((t * 31 + i * 7) % 23) as f32 * 0.125 - 1.0)
        .collect()
}

fn apply_frame(window: &mut [f32], frame: &[f32], n: usize, h: usize, f: usize) {
    for s in 0..n {
        let row = &mut window[s * h * f..(s + 1) * h * f];
        row.copy_within(f.., 0);
        row[(h - 1) * f..].copy_from_slice(&frame[s * f..(s + 1) * f]);
    }
}

fn direct_eval(
    session: &InferSession,
    window: &[f32],
    n: usize,
    h: usize,
    f: usize,
    sensor: usize,
    horizon: usize,
) -> Vec<f32> {
    let x = Tensor::from_vec(window.to_vec(), &[1, n, h, f]).unwrap();
    let out = session.run(&x).unwrap(); // [1, N, U, F]
    let u = out.shape()[2];
    let start = sensor * u * f;
    out.data()[start..start + horizon * f].to_vec()
}

fn observe_body(frame: &[f32]) -> Vec<u8> {
    let items: Vec<String> = frame.iter().map(|v| format!("{}", *v as f64)).collect();
    format!("{{\"frame\": [{}]}}", items.join(", ")).into_bytes()
}

fn assert_bitwise(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (a, b)) in got.iter().zip(want).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: value {i}: {a} vs {b}");
    }
}

fn response_version(body: &[u8]) -> u64 {
    stwa_observe::parse_json(std::str::from_utf8(body).unwrap())
        .unwrap()
        .get("version")
        .and_then(|v| v.as_num())
        .unwrap() as u64
}

fn stat(body: &[u8], key: &str) -> f64 {
    stwa_observe::parse_json(std::str::from_utf8(body).unwrap())
        .unwrap()
        .get(key)
        .and_then(|v| v.as_num())
        .unwrap_or_else(|| panic!("stats missing {key}"))
}

#[test]
fn replica_pool_serves_bitwise_correct_forecasts_from_every_replica() {
    let server = Server::start(config(3), || Ok(model(42))).unwrap();
    assert_eq!(server.replicas(), 3);
    let dims = server.dims();
    let (n, h, f) = (dims.sensors, dims.history, dims.features);
    let mut client = Client::connect(server.addr()).unwrap();

    let mut window = vec![0.0f32; n * h * f];
    for t in 0..h {
        let fr = frame(t, n, f);
        let resp = client.post("/observe", &observe_body(&fr)).unwrap();
        assert_eq!(resp.status, 200, "{:?}", String::from_utf8_lossy(&resp.body));
        apply_frame(&mut window, &fr, n, h, f);
    }

    // Sensor-affinity hashing sends sensor s to replica s % 3, so this
    // sweep exercises all three replicas against the same window.
    let reference = model(42);
    let session = InferSession::new(&reference).unwrap();
    for sensor in 0..n {
        for horizon in 1..=dims.horizon {
            let resp = client
                .get(&format!("/forecast?sensor={sensor}&horizon={horizon}"))
                .unwrap();
            assert_eq!(resp.status, 200, "{:?}", String::from_utf8_lossy(&resp.body));
            let got = stwa_serve::proto::parse_forecast_values(&resp.body).unwrap();
            let want = direct_eval(&session, &window, n, h, f, sensor, horizon);
            assert_bitwise(&got, &want, &format!("sensor {sensor} horizon {horizon}"));
        }
    }

    // Every replica that owns a queried sensor actually evaluated.
    let stats = client.get("/stats").unwrap();
    let doc = stwa_observe::parse_json(std::str::from_utf8(&stats.body).unwrap()).unwrap();
    assert_eq!(stat(&stats.body, "replicas") as usize, 3);
    let evals: Vec<u64> = doc
        .get("replica_evals")
        .and_then(|v| v.as_arr())
        .unwrap()
        .iter()
        .map(|v| v.as_num().unwrap() as u64)
        .collect();
    assert_eq!(evals.len(), 3);
    let busy = evals.iter().filter(|&&e| e > 0).count();
    assert!(busy >= 2, "misses must shard across replicas: {evals:?}");

    server.shutdown();
}

#[test]
fn pipelined_observe_forecast_pairs_read_your_writes_across_replicas() {
    let server = Server::start(config(3), || Ok(model(9))).unwrap();
    let dims = server.dims();
    let (n, h, f) = (dims.sensors, dims.history, dims.features);
    let mut client = Client::connect(server.addr()).unwrap();

    // Deep pipelined stream of (observe, forecast) pairs with the
    // sensor rotating — successive forecasts land on different
    // replicas, but each one must answer for the window its preceding
    // observe produced (broadcast order + per-channel FIFO).
    const PAIRS: usize = 10;
    let mut windows = Vec::with_capacity(PAIRS);
    let mut window = vec![0.0f32; n * h * f];
    for t in 0..PAIRS {
        let fr = frame(100 + t, n, f);
        client.send_post("/observe", &observe_body(&fr)).unwrap();
        client
            .send_get(&format!("/forecast?sensor={}&horizon={}", t % n, 1 + t % dims.horizon))
            .unwrap();
        apply_frame(&mut window, &fr, n, h, f);
        windows.push(window.clone());
    }

    let reference = model(9);
    let session = InferSession::new(&reference).unwrap();
    for (t, want_window) in windows.iter().enumerate() {
        let ack = client.recv().unwrap();
        assert_eq!(ack.status, 200, "observe {t}");
        let ack_fp = stwa_serve::proto::parse_window_fp(&ack.body).unwrap();
        let resp = client.recv().unwrap();
        assert_eq!(resp.status, 200, "forecast {t}");
        let got_fp = stwa_serve::proto::parse_window_fp(&resp.body).unwrap();
        assert_eq!(got_fp, ack_fp, "forecast {t} answers the observed window");
        let got = stwa_serve::proto::parse_forecast_values(&resp.body).unwrap();
        let want = direct_eval(&session, want_window, n, h, f, t % n, 1 + t % dims.horizon);
        assert_bitwise(&got, &want, &format!("pair {t}"));
    }
    server.shutdown();
}

#[test]
fn coordinated_swap_under_pipelined_traffic_zero_drops_no_mixed_versions() {
    let root = std::env::temp_dir().join(format!("stwa_serve_pool_swap_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let registry = Registry::open(&root).unwrap();
    registry
        .publish("ST-WA", &TrainCheckpoint::params_only("ST-WA", model(101).store()))
        .unwrap();

    let cfg = ServeConfig {
        registry: Some((root.clone(), "ST-WA".to_string())),
        ..config(3)
    };
    let server = Server::start(cfg, || Ok(model(1))).unwrap();
    let dims = server.dims();
    let (n, h, f) = (dims.sensors, dims.history, dims.features);
    assert_eq!(server.version(), 1, "pool starts on registry v1");

    let mut admin = Client::connect(server.addr()).unwrap();
    let mut traffic = Client::connect(server.addr()).unwrap();

    // Window stays all-zeros for the swap phase so any in-flight
    // forecast is checkable against both versions.
    let window = vec![0.0f32; n * h * f];
    let v1_session = InferSession::new(&model(101)).unwrap();
    let v2_session = InferSession::new(&model(202)).unwrap();

    // Publish v2, then pipeline traffic *around* the swap: the
    // traffic connection has a deep burst in flight while the admin
    // connection swaps. Mid-swap responses may name v1 or v2 — each
    // must be bitwise-true to the version it names.
    registry
        .publish("ST-WA", &TrainCheckpoint::params_only("ST-WA", model(202).store()))
        .unwrap();
    const BURST: usize = 24;
    for i in 0..BURST {
        traffic
            .send_get(&format!("/forecast?sensor={}&horizon={}", i % n, 1 + i % dims.horizon))
            .unwrap();
    }
    let swap = admin.post("/admin/swap", b"").unwrap();
    assert_eq!(swap.status, 200);
    let swap_text = String::from_utf8_lossy(&swap.body).to_string();
    assert!(swap_text.contains("\"swapped\":true"), "{swap_text}");
    assert_eq!(response_version(&swap.body), 2);
    assert_eq!(server.version(), 2, "swap reply means the whole pool flipped");
    assert_eq!(server.swaps(), 1);

    for i in 0..BURST {
        let resp = traffic.recv().unwrap_or_else(|e| panic!("in-flight request {i} dropped: {e}"));
        assert_eq!(resp.status, 200, "in-flight request {i}");
        let version = response_version(&resp.body);
        let session = match version {
            1 => &v1_session,
            2 => &v2_session,
            v => panic!("request {i} names unknown version {v}"),
        };
        let got = stwa_serve::proto::parse_forecast_values(&resp.body).unwrap();
        let want = direct_eval(session, &window, n, h, f, i % n, 1 + i % dims.horizon);
        assert_bitwise(&got, &want, &format!("mid-swap request {i} (v{version})"));
    }

    // After the swap call returned, no response may name v1 again —
    // the version flips pool-wide before the admin reply leaves.
    for i in 0..2 * BURST {
        traffic
            .send_get(&format!("/forecast?sensor={}&horizon={}", i % n, 1 + i % dims.horizon))
            .unwrap();
    }
    for i in 0..2 * BURST {
        let resp = traffic.recv().unwrap();
        assert_eq!(resp.status, 200, "post-swap request {i}");
        assert_eq!(response_version(&resp.body), 2, "post-swap request {i} mixed version");
        let got = stwa_serve::proto::parse_forecast_values(&resp.body).unwrap();
        let want = direct_eval(&v2_session, &window, n, h, f, i % n, 1 + i % dims.horizon);
        assert_bitwise(&got, &want, &format!("post-swap request {i}"));
    }

    // Observes still keep every replica window identical after the
    // swap: a post-observe sweep over all sensors is bitwise v2.
    let fr = frame(7, n, f);
    let ack = traffic.post("/observe", &observe_body(&fr)).unwrap();
    assert_eq!(ack.status, 200);
    let mut new_window = window.clone();
    apply_frame(&mut new_window, &fr, n, h, f);
    for sensor in 0..n {
        let resp = traffic.get(&format!("/forecast?sensor={sensor}&horizon=2")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(response_version(&resp.body), 2);
        let got = stwa_serve::proto::parse_forecast_values(&resp.body).unwrap();
        let want = direct_eval(&v2_session, &new_window, n, h, f, sensor, 2);
        assert_bitwise(&got, &want, &format!("post-observe sensor {sensor}"));
    }

    // Zero drops, zero swap errors, no client aborts; the in-flight
    // stats request is the only parsed-but-unanswered one.
    let stats = traffic.get("/stats").unwrap();
    assert_eq!(stat(&stats.body, "swaps"), 1.0);
    assert_eq!(stat(&stats.body, "swap_errors"), 0.0);
    assert_eq!(stat(&stats.body, "client_aborts"), 0.0);
    assert_eq!(
        stat(&stats.body, "requests"),
        stat(&stats.body, "responses") + 1.0,
        "stats: {}",
        String::from_utf8_lossy(&stats.body)
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn shutdown_drains_every_pipelined_request_across_replicas() {
    let server = Server::start(config(2), || Ok(model(5))).unwrap();
    let dims = server.dims();
    let (n, f) = (dims.sensors, dims.features);
    let mut client = Client::connect(server.addr()).unwrap();

    const K: usize = 24;
    for i in 0..K {
        if i == K / 2 {
            client
                .send_post("/observe", &observe_body(&frame(3, n, f)))
                .unwrap();
        }
        client
            .send_get(&format!("/forecast?sensor={}&horizon=1", i % n))
            .unwrap();
    }
    // Shutdown with the burst outstanding across both replicas: the
    // drain contract answers every request before any thread exits.
    server.shutdown();
    for i in 0..K + 1 {
        let resp = client.recv().unwrap_or_else(|e| panic!("request {i} dropped: {e}"));
        assert_eq!(resp.status, 200, "request {i}");
    }
}
