//! End-to-end serving tests: a real server on a real socket, driven by
//! the blocking pipelining client. The recurring assertion is the
//! serving contract — every forecast that leaves the server is bitwise
//! equal to a direct `InferSession` evaluation of the window named in
//! the response, whether it came from a fresh forward, the model-thread
//! memo, or the worker-side cache.

#![cfg(target_os = "linux")]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use stwa_ckpt::{Registry, TrainCheckpoint};
use stwa_core::{ForecastModel, StwaConfig, StwaModel};
use stwa_infer::InferSession;
use stwa_serve::{Client, ServeConfig, Server};
use stwa_tensor::Tensor;

const N: usize = 3;
const H: usize = 12;
const U: usize = 4;

fn model(seed: u64) -> StwaModel {
    let mut rng = StdRng::seed_from_u64(seed);
    StwaModel::new(StwaConfig::st_wa(N, H, U), &mut rng).unwrap()
}

fn config() -> ServeConfig {
    ServeConfig {
        io_threads: 2,
        max_wait: Duration::from_millis(1),
        ttl: Duration::from_secs(300),
        registry_poll: Duration::from_millis(50),
        ..ServeConfig::default()
    }
}

/// Deterministic observation frame for step `t`.
fn frame(t: usize, n: usize, f: usize) -> Vec<f32> {
    (0..n * f)
        .map(|i| ((t * 31 + i * 7) % 23) as f32 * 0.125 - 1.0)
        .collect()
}

/// Client-side mirror of the server's rolling window: shift one step,
/// append `frame` at the end for every sensor.
fn apply_frame(window: &mut [f32], frame: &[f32], n: usize, h: usize, f: usize) {
    for s in 0..n {
        let row = &mut window[s * h * f..(s + 1) * h * f];
        row.copy_within(f.., 0);
        row[(h - 1) * f..].copy_from_slice(&frame[s * f..(s + 1) * f]);
    }
}

/// Direct evaluation of `window` on `session`, sliced to one sensor
/// and horizon — the ground truth every served forecast must match.
fn direct_eval(
    session: &InferSession,
    window: &[f32],
    n: usize,
    h: usize,
    f: usize,
    sensor: usize,
    horizon: usize,
) -> Vec<f32> {
    let x = Tensor::from_vec(window.to_vec(), &[1, n, h, f]).unwrap();
    let out = session.run(&x).unwrap(); // [1, N, U, F]
    let u = out.shape()[2];
    let start = sensor * u * f;
    out.data()[start..start + horizon * f].to_vec()
}

fn observe_body(frame: &[f32]) -> Vec<u8> {
    let items: Vec<String> = frame.iter().map(|v| format!("{}", *v as f64)).collect();
    format!("{{\"frame\": [{}]}}", items.join(", ")).into_bytes()
}

fn assert_bitwise(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (a, b)) in got.iter().zip(want).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: value {i}: {a} vs {b}");
    }
}

#[test]
fn served_forecasts_match_direct_eval_bitwise() {
    let server = Server::start(config(), || Ok(model(42))).unwrap();
    let dims = server.dims();
    let (n, h, f) = (dims.sensors, dims.history, dims.features);
    let mut client = Client::connect(server.addr()).unwrap();

    // Fill the window over the wire and mirror it locally.
    let mut window = vec![0.0f32; n * h * f];
    for t in 0..h {
        let fr = frame(t, n, f);
        let resp = client.post("/observe", &observe_body(&fr)).unwrap();
        assert_eq!(resp.status, 200, "{:?}", String::from_utf8_lossy(&resp.body));
        apply_frame(&mut window, &fr, n, h, f);
    }

    // Ground truth: the same seed builds the same weights.
    let reference = model(42);
    let session = InferSession::new(&reference).unwrap();

    for sensor in 0..n {
        for horizon in 1..=dims.horizon {
            let resp = client
                .get(&format!("/forecast?sensor={sensor}&horizon={horizon}"))
                .unwrap();
            assert_eq!(resp.status, 200, "{:?}", String::from_utf8_lossy(&resp.body));
            let got = stwa_serve::proto::parse_forecast_values(&resp.body).unwrap();
            let want = direct_eval(&session, &window, n, h, f, sensor, horizon);
            assert_bitwise(&got, &want, &format!("sensor {sensor} horizon {horizon}"));
        }
    }
    server.shutdown();
}

#[test]
fn repeat_queries_hit_the_cache_with_identical_values() {
    let server = Server::start(config(), || Ok(model(7))).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let first = client.get("/forecast?sensor=1&horizon=2").unwrap();
    assert_eq!(first.status, 200);
    let first_vals = stwa_serve::proto::parse_forecast_values(&first.body).unwrap();
    let text = String::from_utf8_lossy(&first.body).to_string();
    assert!(text.contains("\"miss\""), "first query is a miss: {text}");

    // The model thread primed the shared cache; repeats serve inline.
    let mut saw_hit = false;
    for _ in 0..5 {
        let resp = client.get("/forecast?sensor=1&horizon=2").unwrap();
        assert_eq!(resp.status, 200);
        let vals = stwa_serve::proto::parse_forecast_values(&resp.body).unwrap();
        assert_bitwise(&vals, &first_vals, "cached repeat");
        let text = String::from_utf8_lossy(&resp.body).to_string();
        saw_hit |= text.contains("\"hit\"");
    }
    assert!(saw_hit, "repeat queries must reach the worker-side cache");

    // A second connection shares the cache.
    let mut other = Client::connect(server.addr()).unwrap();
    let resp = other.get("/forecast?sensor=1&horizon=2").unwrap();
    let vals = stwa_serve::proto::parse_forecast_values(&resp.body).unwrap();
    assert_bitwise(&vals, &first_vals, "cross-connection cache");

    server.shutdown();
}

#[test]
fn pipelined_mixed_traffic_returns_in_order_with_read_your_writes() {
    let server = Server::start(config(), || Ok(model(9))).unwrap();
    let dims = server.dims();
    let (n, h, f) = (dims.sensors, dims.history, dims.features);
    let mut client = Client::connect(server.addr()).unwrap();

    // One pipelined burst: forecast, observe, forecast, stats,
    // forecast. Responses must come back in exactly this order, and
    // the post-observe forecasts must answer for the *new* window.
    client.send_get("/forecast?sensor=0&horizon=1").unwrap();
    let fr = frame(99, n, f);
    client.send_post("/observe", &observe_body(&fr)).unwrap();
    client.send_get("/forecast?sensor=0&horizon=1").unwrap();
    client.send_get("/stats").unwrap();
    client.send_get("/forecast?sensor=2&horizon=3").unwrap();

    let before = client.recv().unwrap();
    let ack = client.recv().unwrap();
    let after = client.recv().unwrap();
    let stats = client.recv().unwrap();
    let last = client.recv().unwrap();
    for (resp, what) in [
        (&before, "pre-observe forecast"),
        (&ack, "observe ack"),
        (&after, "post-observe forecast"),
        (&stats, "stats"),
        (&last, "second post-observe forecast"),
    ] {
        assert_eq!(resp.status, 200, "{what}: {}", String::from_utf8_lossy(&resp.body));
    }

    let fp_before = stwa_serve::proto::parse_window_fp(&before.body).unwrap();
    let fp_ack = stwa_serve::proto::parse_window_fp(&ack.body).unwrap();
    let fp_after = stwa_serve::proto::parse_window_fp(&after.body).unwrap();
    let fp_last = stwa_serve::proto::parse_window_fp(&last.body).unwrap();
    assert_ne!(fp_before, fp_ack, "observe must change the window");
    assert_eq!(fp_after, fp_ack, "read-your-writes: forecast after observe");
    assert_eq!(fp_last, fp_ack);

    // And the post-observe values really are the new window's values.
    let mut window = vec![0.0f32; n * h * f];
    apply_frame(&mut window, &fr, n, h, f);
    let reference = model(9);
    let session = InferSession::new(&reference).unwrap();
    let got = stwa_serve::proto::parse_forecast_values(&after.body).unwrap();
    let want = direct_eval(&session, &window, n, h, f, 0, 1);
    assert_bitwise(&got, &want, "post-observe forecast");

    server.shutdown();
}

#[test]
fn bad_requests_get_4xx_without_killing_the_connection() {
    let server = Server::start(config(), || Ok(model(3))).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    for (target, expect) in [
        ("/forecast?sensor=999&horizon=1", 400),
        ("/forecast?sensor=zero&horizon=1", 400),
        ("/forecast?sensor=0&horizon=0", 400),
        ("/forecast?sensor=0&horizon=99", 400),
        ("/nope", 404),
    ] {
        let resp = client.get(target).unwrap();
        assert_eq!(resp.status, expect, "{target}");
    }
    let resp = client.post("/observe", b"{\"frame\": [1.0]}").unwrap();
    assert_eq!(resp.status, 400, "short frame");

    // The same connection still serves good requests afterwards.
    let resp = client.get("/forecast?sensor=0&horizon=1").unwrap();
    assert_eq!(resp.status, 200);
    let resp = client.get("/healthz").unwrap();
    assert_eq!(resp.status, 200);

    server.shutdown();
}

#[test]
fn registry_hot_swap_serves_new_weights_and_drops_nothing() {
    let root = std::env::temp_dir().join(format!("stwa_serve_swap_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let registry = Registry::open(&root).unwrap();

    // v1 weights published before the server starts.
    let v1 = model(101);
    registry
        .publish("ST-WA", &TrainCheckpoint::params_only("ST-WA", v1.store()))
        .unwrap();

    let cfg = ServeConfig {
        registry: Some((root.clone(), "ST-WA".to_string())),
        ..config()
    };
    // The builder's own weights don't matter: the server loads v1 from
    // the registry before serving.
    let server = Server::start(cfg, || Ok(model(1))).unwrap();
    let dims = server.dims();
    let (n, h, f) = (dims.sensors, dims.history, dims.features);
    let mut client = Client::connect(server.addr()).unwrap();

    let window = vec![0.0f32; n * h * f];
    let v1_session = InferSession::new(&model(101)).unwrap();
    let resp = client.get("/forecast?sensor=0&horizon=2").unwrap();
    assert_eq!(resp.status, 200);
    let got = stwa_serve::proto::parse_forecast_values(&resp.body).unwrap();
    let want = direct_eval(&v1_session, &window, n, h, f, 0, 2);
    assert_bitwise(&got, &want, "v1 forecast");
    let version_before = server.version();

    // Publish v2 and force a poll; traffic keeps flowing pipelined
    // around the swap request.
    let v2 = model(202);
    registry
        .publish("ST-WA", &TrainCheckpoint::params_only("ST-WA", v2.store()))
        .unwrap();
    client.send_get("/forecast?sensor=1&horizon=1").unwrap();
    client.send_post("/admin/swap", b"").unwrap();
    client.send_get("/forecast?sensor=0&horizon=2").unwrap();
    let pre_swap = client.recv().unwrap();
    let swap = client.recv().unwrap();
    let post_swap = client.recv().unwrap();
    assert_eq!(pre_swap.status, 200);
    assert_eq!(swap.status, 200);
    assert!(
        String::from_utf8_lossy(&swap.body).contains("\"swapped\":true"),
        "{}",
        String::from_utf8_lossy(&swap.body)
    );
    assert_eq!(post_swap.status, 200);

    // Post-swap forecasts are v2's answers, computed fresh (the v1
    // cache entries were purged with the old version).
    assert_ne!(server.version(), version_before, "swap must change the version");
    assert_eq!(server.swaps(), 1);
    let v2_session = InferSession::new(&model(202)).unwrap();
    let got = stwa_serve::proto::parse_forecast_values(&post_swap.body).unwrap();
    let want = direct_eval(&v2_session, &window, n, h, f, 0, 2);
    assert_bitwise(&got, &want, "v2 forecast after swap");

    // Zero dropped requests: everything parsed got a response. The
    // stats request itself is in flight while its body is built, so
    // it appears in `requests` but not yet in `responses`.
    let stats = client.get("/stats").unwrap();
    let doc = stwa_observe::parse_json(std::str::from_utf8(&stats.body).unwrap()).unwrap();
    let requests = doc.get("requests").unwrap().as_num().unwrap();
    let responses = doc.get("responses").unwrap().as_num().unwrap();
    assert_eq!(
        requests,
        responses + 1.0,
        "stats: {}",
        String::from_utf8_lossy(&stats.body)
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn shutdown_drains_every_pipelined_request() {
    let server = Server::start(config(), || Ok(model(5))).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    const K: usize = 24;
    for i in 0..K {
        client
            .send_get(&format!("/forecast?sensor={}&horizon=1", i % 3))
            .unwrap();
    }
    // Shutdown with K requests outstanding: the drain contract says
    // every one of them is answered before the threads exit.
    server.shutdown();
    for i in 0..K {
        let resp = client.recv().unwrap_or_else(|e| panic!("request {i} dropped: {e}"));
        assert_eq!(resp.status, 200, "request {i}");
    }
}
