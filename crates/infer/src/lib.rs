//! # stwa-infer
//!
//! Tape-free inference engine for the ST-WA model family.
//!
//! Training evaluates models through the autograd graph, paying for
//! tape nodes, gradient bookkeeping, and per-call GEMM packing that
//! eval never uses. This crate serves a *frozen* model instead:
//!
//! - [`FrozenStwa::freeze`] snapshots the trained parameters, collapses
//!   the stochastic latents to their posterior means, pre-decodes the
//!   per-sensor K/V projections when they are input-independent (S-WA),
//!   precomputes the planar-flow constrained parameters, and re-lays
//!   every static dense weight into packed GEMM panels;
//! - [`InferSession`] executes the frozen op sequence with a
//!   per-batch-size plan arena and refuses to serve once the source
//!   parameters are mutated (version-counter staleness guard);
//! - [`InferQueue`] coalesces single-sample requests into micro-batches
//!   (`max_batch` / `max_wait`) in front of a session.
//!
//! The engine's contract is **bitwise equality**: every f32 forward
//! here runs the same tensor kernels in the same order as the training
//! graph's eval path, so `InferSession::run` and
//! `model.forward(graph, x, rng, false)` agree bit-for-bit. The
//! property tests in `tests/` enforce this across random
//! configurations.
//!
//! A model can also be frozen at a reduced panel [`Precision`]
//! ([`FrozenStwa::freeze_at`] / [`InferSession::new_at`]): bf16 or
//! symmetric int8 weight panels for memory-bandwidth-bound large-batch
//! serving. Quantized snapshots keep the bitwise contract one level
//! down (SIMD kernels vs their scalar references) and gate end-to-end
//! correctness on a forecast-MAE delta against the f32 snapshot
//! (DESIGN.md §14); training is f32-only and untouched.

pub mod frozen;
pub mod packed;
pub mod queue;
pub mod session;

pub use frozen::{BatchPlan, FrozenStwa};
pub use packed::{PackedDense, PackedMlp, PackedWeight};
pub use queue::{InferQueue, QueueConfig, RequestId};
pub use session::InferSession;
pub use stwa_tensor::quant::Precision;
