//! # stwa-infer
//!
//! Tape-free inference engine for the ST-WA model family.
//!
//! Training evaluates models through the autograd graph, paying for
//! tape nodes, gradient bookkeeping, and per-call GEMM packing that
//! eval never uses. This crate serves a *frozen* model instead:
//!
//! - [`FrozenStwa::freeze`] snapshots the trained parameters, collapses
//!   the stochastic latents to their posterior means, pre-decodes the
//!   per-sensor K/V projections when they are input-independent (S-WA),
//!   precomputes the planar-flow constrained parameters, and re-lays
//!   every static dense weight into packed GEMM panels;
//! - [`InferSession`] executes the frozen op sequence with a
//!   per-batch-size plan arena and refuses to serve once the source
//!   parameters are mutated (version-counter staleness guard);
//! - [`InferQueue`] coalesces single-sample requests into micro-batches
//!   (`max_batch` / `max_wait`) in front of a session.
//!
//! The engine's contract is **bitwise equality**: every forward here
//! runs the same tensor kernels in the same order as the training
//! graph's eval path, so `InferSession::run` and
//! `model.forward(graph, x, rng, false)` agree bit-for-bit. The
//! property tests in `tests/` enforce this across random
//! configurations.

pub mod frozen;
pub mod packed;
pub mod queue;
pub mod session;

pub use frozen::{BatchPlan, FrozenStwa};
pub use packed::{PackedDense, PackedMlp, PackedWeight};
pub use queue::{InferQueue, QueueConfig, RequestId};
pub use session::InferSession;
