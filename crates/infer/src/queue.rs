//! Micro-batching serving front-end.
//!
//! Single-sample requests are coalesced into one batched forward: a
//! request enters via [`InferQueue::submit`], sits in the pending queue
//! until either `max_batch` rows have accumulated (flushed immediately)
//! or `max_wait` has elapsed since the oldest pending request (flushed
//! by the next [`InferQueue::poll`]), and its result is collected with
//! [`InferQueue::take`].
//!
//! Tensors are single-threaded (`Rc` copy-on-write), so the queue is an
//! explicitly driven event loop rather than a background thread: the
//! serving loop calls `poll` between request arrivals. Batching is
//! exact, not approximate — a batched forward is bitwise identical per
//! row to running each request alone, so coalescing never changes an
//! answer.

use crate::session::InferSession;
use std::collections::HashMap;
use std::time::{Duration, Instant};
use stwa_tensor::{manip, Result, Tensor, TensorError};

/// Micro-batching knobs.
#[derive(Debug, Clone, Copy)]
pub struct QueueConfig {
    /// Flush as soon as this many rows are pending.
    pub max_batch: usize,
    /// Flush (on `poll`) once the oldest pending request is this old.
    pub max_wait: Duration,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            max_batch: 32,
            max_wait: Duration::from_millis(2),
        }
    }
}

/// Ticket handed out by [`InferQueue::submit`].
pub type RequestId = u64;

/// The coalescing queue in front of an [`InferSession`].
pub struct InferQueue {
    session: InferSession,
    config: QueueConfig,
    pending: Vec<(RequestId, Tensor)>,
    oldest: Option<Instant>,
    ready: HashMap<RequestId, Tensor>,
    next_id: RequestId,
    closed: bool,
}

impl InferQueue {
    pub fn new(session: InferSession, config: QueueConfig) -> Result<InferQueue> {
        if config.max_batch == 0 {
            return Err(TensorError::Invalid(
                "InferQueue: max_batch must be at least 1".into(),
            ));
        }
        Ok(InferQueue {
            session,
            config,
            pending: Vec::new(),
            oldest: None,
            ready: HashMap::new(),
            next_id: 0,
            closed: false,
        })
    }

    pub fn session(&self) -> &InferSession {
        &self.session
    }

    /// Panel precision of the session being served. Micro-batching is
    /// precision-agnostic — coalescing and row slicing never touch the
    /// packed panels — so a queue over a quantized session behaves
    /// identically, just on smaller weights.
    pub fn precision(&self) -> stwa_tensor::quant::Precision {
        self.session.precision()
    }

    /// Rows currently waiting for a flush.
    pub fn pending_rows(&self) -> usize {
        self.pending.len()
    }

    /// Enqueue one request: `x` is a single sample `[N, H, F]` or
    /// `[1, N, H, F]`. Returns a ticket for [`InferQueue::take`]. When
    /// the pending queue reaches `max_batch` the batch runs before this
    /// call returns.
    pub fn submit(&mut self, x: Tensor) -> Result<RequestId> {
        // A closed queue refuses instead of accepting work that no
        // poll/flush will ever run — the caller would wait forever on a
        // ticket that can't complete.
        if self.closed {
            stwa_observe::counter!("infer.closed_rejections").incr();
            return Err(TensorError::Invalid(
                "InferQueue::submit: queue is closed (drained by close()); \
                 open a new queue over a fresh session to keep serving"
                    .into(),
            ));
        }
        let row = match x.rank() {
            3 => x.unsqueeze(0)?,
            4 if x.shape()[0] == 1 => x,
            _ => {
                return Err(TensorError::Invalid(format!(
                    "InferQueue::submit: expected [N, H, F] or [1, N, H, F], got {:?}",
                    x.shape()
                )))
            }
        };
        // A zero-element row would poison every batch it joins: the
        // batched forward fails, `run_batch` re-queues the whole batch,
        // and the queue loops on the same error forever. Refuse it at
        // the door instead.
        if row.is_empty() {
            return Err(TensorError::Invalid(format!(
                "InferQueue::submit: zero-length request {:?} (a zero-sized \
                 dimension) can never be served",
                row.shape()
            )));
        }
        stwa_observe::counter!("infer.requests").incr();
        let id = self.next_id;
        self.next_id += 1;
        if self.pending.is_empty() {
            self.oldest = Some(Instant::now());
        }
        self.pending.push((id, row));
        if self.pending.len() >= self.config.max_batch {
            stwa_observe::counter!("infer.flush_full").incr();
            self.run_batch()?;
        }
        Ok(id)
    }

    /// Drive the queue: flush if the oldest pending request has waited
    /// at least `max_wait`. Returns the number of rows flushed (0 when
    /// nothing was due).
    pub fn poll(&mut self) -> Result<usize> {
        match self.oldest {
            Some(t0) if t0.elapsed() >= self.config.max_wait => {
                stwa_observe::counter!("infer.flush_wait").incr();
                self.run_batch()
            }
            _ => Ok(0),
        }
    }

    /// Flush unconditionally (e.g. at shutdown). Returns rows flushed.
    pub fn flush(&mut self) -> Result<usize> {
        if self.pending.is_empty() {
            return Ok(0);
        }
        stwa_observe::counter!("infer.flush_forced").incr();
        self.run_batch()
    }

    /// Graceful shutdown: flush every pending request so its result
    /// becomes collectable via [`InferQueue::take`], then reject all
    /// later submits with a typed error. Returns the rows flushed.
    ///
    /// The closed flag is set *before* the flush so a failing flush
    /// (e.g. a stale session) still leaves the queue closed — the
    /// pending rows stay queued for a caller that can recover, but no
    /// new work can pile onto a queue that is going away.
    pub fn close(&mut self) -> Result<usize> {
        if self.closed {
            return Ok(0);
        }
        self.closed = true;
        stwa_observe::counter!("infer.closes").incr();
        if self.pending.is_empty() {
            return Ok(0);
        }
        stwa_observe::counter!("infer.flush_close").incr();
        self.run_batch()
    }

    /// Whether [`InferQueue::close`] has run.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Collect a finished request's predictions `[1, N, U, F]`.
    /// `None` while the request is still pending — `poll` or `flush`
    /// first.
    pub fn take(&mut self, id: RequestId) -> Option<Tensor> {
        self.ready.remove(&id)
    }

    fn run_batch(&mut self) -> Result<usize> {
        if self.pending.is_empty() {
            return Ok(0);
        }
        let batch = std::mem::take(&mut self.pending);
        self.oldest = None;
        let rows: Vec<&Tensor> = batch.iter().map(|(_, t)| t).collect();
        let x = manip::concat(&rows, 0)?;
        let preds = match self.session.run(&x) {
            Ok(p) => p,
            Err(e) => {
                // Put the batch back so a re-freeze + retry can serve it.
                self.pending = batch;
                self.oldest = Some(Instant::now());
                return Err(e);
            }
        };
        stwa_observe::counter!("infer.batches").incr();
        stwa_observe::counter!("infer.batched_rows").add(batch.len() as u64);
        for (i, (id, _)) in batch.iter().enumerate() {
            self.ready.insert(*id, preds.narrow(0, i, 1)?);
        }
        Ok(batch.len())
    }
}
