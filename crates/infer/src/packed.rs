//! Pre-packed dense layers: frozen `Linear`/`Mlp` weights re-laid into
//! the GEMM panel format at freeze time, so serving skips the per-call
//! B-matrix pack entirely. Each packed layer carries its panels at one
//! of three [`Precision`]s — f32 (bitwise-equal serving), bf16, or
//! symmetric int8 (see `stwa_tensor::quant`).
//!
//! Every f32 forward here mirrors the corresponding tape-free path in
//! `stwa-nn` branch-for-branch; `matmul_packed_lean` is bitwise
//! identical to `matmul` by the kernel accumulation-order contract (the
//! lean entry runs the same prepacked kernel minus the per-call
//! span/counter/pool dispatch), so an f32 packed layer's output matches
//! the training-graph eval path bit-for-bit. The quantized precisions
//! trade that bitwise contract for smaller panels; their correctness is
//! gated by the round-trip error bounds and the end-to-end forecast
//! accuracy gate instead (DESIGN.md §14).

use stwa_nn::layers::{Activation, Linear, Mlp};
use stwa_tensor::linalg::{matmul_packed_lean, PackedMatrix};
use stwa_tensor::quant::{
    matmul_packed_bf16_lean, matmul_packed_int8_lean, PackedMatrixBf16, PackedMatrixInt8,
    Precision,
};
use stwa_tensor::{mathfn, Result, Tensor, TensorError};

/// One weight matrix packed at a chosen [`Precision`].
enum PackedPanels {
    F32(PackedMatrix),
    Bf16(PackedMatrixBf16),
    Int8(PackedMatrixInt8),
}

impl PackedPanels {
    fn pack(w: &Tensor, precision: Precision) -> Result<PackedPanels> {
        Ok(match precision {
            Precision::F32 => PackedPanels::F32(PackedMatrix::pack(w)?),
            Precision::Bf16 => PackedPanels::Bf16(PackedMatrixBf16::pack(w)?),
            Precision::Int8 => PackedPanels::Int8(PackedMatrixInt8::pack(w)?),
        })
    }

    fn matmul_lean(&self, x: &Tensor) -> Result<Tensor> {
        match self {
            PackedPanels::F32(p) => matmul_packed_lean(x, p),
            PackedPanels::Bf16(p) => matmul_packed_bf16_lean(x, p),
            PackedPanels::Int8(p) => matmul_packed_int8_lean(x, p),
        }
    }

    fn packed_bytes(&self) -> usize {
        match self {
            PackedPanels::F32(p) => p.packed_bytes(),
            PackedPanels::Bf16(p) => p.packed_bytes(),
            PackedPanels::Int8(p) => p.packed_bytes(),
        }
    }

    fn precision(&self) -> Precision {
        match self {
            PackedPanels::F32(_) => Precision::F32,
            PackedPanels::Bf16(_) => Precision::Bf16,
            PackedPanels::Int8(_) => Precision::Int8,
        }
    }
}

/// A frozen [`Linear`]: panel-packed weight plus a bias snapshot.
pub struct PackedDense {
    panels: PackedPanels,
    bias: Option<Tensor>,
    in_dim: usize,
    out_dim: usize,
}

impl PackedDense {
    /// Snapshot and pack a linear layer's current parameters at f32
    /// (the bitwise-equal serving precision).
    pub fn from_linear(layer: &Linear) -> Result<PackedDense> {
        PackedDense::from_linear_at(layer, Precision::F32)
    }

    /// Snapshot and pack a linear layer at the given precision. The
    /// bias stays f32 at every precision — it is O(n) against the
    /// weight's O(k·n) and is added post-GEMM in f32 regardless.
    pub fn from_linear_at(layer: &Linear, precision: Precision) -> Result<PackedDense> {
        let w = layer.weight_param().value();
        Ok(PackedDense {
            panels: PackedPanels::pack(&w, precision)?,
            bias: layer.bias_param().map(|b| b.value()),
            in_dim: layer.in_dim(),
            out_dim: layer.out_dim(),
        })
    }

    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Storage precision of the packed weight panels.
    pub fn precision(&self) -> Precision {
        self.panels.precision()
    }

    /// Bytes held by the packed weight panels.
    pub fn packed_bytes(&self) -> usize {
        self.panels.packed_bytes()
    }

    /// [`Linear::forward_nograd`] on the packed weight.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor> {
        self.forward_act(x, Activation::Identity)
    }

    /// [`Linear::forward_act_nograd`] on the packed weight. The bias
    /// add and activation run in place on the uniquely-owned GEMM
    /// output — the same `kind.apply(a + bias)` scalar chain as both
    /// the fused `bias_add_act` zip and the unfused add-then-activate
    /// branch of the graph path (which agree bitwise), minus a dispatch
    /// and a materialization per call.
    pub fn forward_act(&self, x: &Tensor, act: Activation) -> Result<Tensor> {
        let shape = x.shape().to_vec();
        let rank = shape.len();
        if rank == 0 || shape[rank - 1] != self.in_dim {
            return Err(TensorError::Invalid(format!(
                "PackedDense: expected last dim {}, got shape {:?}",
                self.in_dim, shape
            )));
        }
        let lead: usize = shape[..rank - 1].iter().product();
        let flat = x.reshape(&[lead, self.in_dim])?;
        let mut y = self.panels.matmul_lean(&flat)?;
        // Bias pass, then one wide activation pass over the whole
        // buffer — per element the same add-then-apply chain as the
        // interleaved `kind.apply(a + bias)` zip, so both the fused and
        // unfused graph branches (which agree bitwise) are matched.
        if let Some(b) = &self.bias {
            let bd = b.data();
            for row in y.data_mut().chunks_exact_mut(self.out_dim) {
                for (o, &bv) in row.iter_mut().zip(bd.iter()) {
                    *o += bv;
                }
            }
        }
        match act {
            Activation::Identity => {}
            Activation::Tanh => mathfn::tanh_slice(y.data_mut()),
            Activation::Sigmoid => mathfn::sigmoid_slice(y.data_mut()),
            Activation::Relu => {
                for o in y.data_mut().iter_mut() {
                    *o = o.max(0.0);
                }
            }
        }
        let mut out_shape = shape[..rank - 1].to_vec();
        out_shape.push(self.out_dim);
        y.reshape(&out_shape)
    }
}

/// A frozen [`Mlp`]: every layer packed, activations snapshotted.
pub struct PackedMlp {
    layers: Vec<PackedDense>,
    activations: Vec<Activation>,
}

impl PackedMlp {
    pub fn from_mlp(mlp: &Mlp) -> Result<PackedMlp> {
        PackedMlp::from_mlp_at(mlp, Precision::F32)
    }

    pub fn from_mlp_at(mlp: &Mlp, precision: Precision) -> Result<PackedMlp> {
        Ok(PackedMlp {
            layers: mlp
                .layers()
                .iter()
                .map(|l| PackedDense::from_linear_at(l, precision))
                .collect::<Result<Vec<_>>>()?,
            activations: mlp.activations().to_vec(),
        })
    }

    /// [`Mlp::forward_nograd`] over the packed layers.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor> {
        let mut h = x.clone();
        for (layer, act) in self.layers.iter().zip(&self.activations) {
            h = layer.forward_act(&h, *act)?;
        }
        Ok(h)
    }

    pub fn packed_bytes(&self) -> usize {
        self.layers.iter().map(PackedDense::packed_bytes).sum()
    }
}

/// A frozen bias-free square weight used outside the `Linear` shape
/// discipline (the Eq. 12 gate matrices): packed panels applied to any
/// `[..., k]` input by flattening the leading axes, exactly as the
/// graph path's broadcast matmul does.
pub struct PackedWeight {
    panels: PackedPanels,
}

impl PackedWeight {
    pub fn pack(w: &Tensor) -> Result<PackedWeight> {
        PackedWeight::pack_at(w, Precision::F32)
    }

    pub fn pack_at(w: &Tensor, precision: Precision) -> Result<PackedWeight> {
        Ok(PackedWeight {
            panels: PackedPanels::pack(w, precision)?,
        })
    }

    pub fn matmul(&self, x: &Tensor) -> Result<Tensor> {
        self.panels.matmul_lean(x)
    }

    pub fn packed_bytes(&self) -> usize {
        self.panels.packed_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stwa_nn::ParamStore;
    use stwa_tensor::{linalg, memory};

    #[test]
    fn packed_dense_bitwise_matches_linear_nograd() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new(&store, "l", 9, 13, &mut rng);
        let packed = PackedDense::from_linear(&layer).unwrap();
        let x = Tensor::randn(&[4, 6, 9], &mut rng);
        for fused in [true, false] {
            let prev = memory::fused_enabled();
            memory::set_fused_enabled(fused);
            let want = layer
                .forward_act_nograd(&x, Activation::Tanh)
                .unwrap();
            let got = packed.forward_act(&x, Activation::Tanh).unwrap();
            memory::set_fused_enabled(prev);
            assert_eq!(want.data(), got.data());
        }
        assert!(packed.packed_bytes() > 0);
        assert_eq!(packed.precision(), Precision::F32);
        // Wrong trailing dim rejected.
        assert!(packed.forward(&Tensor::zeros(&[2, 8])).is_err());
    }

    #[test]
    fn packed_mlp_bitwise_matches_mlp_nograd() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mlp = Mlp::new(
            &store,
            "m",
            &[7, 11, 5],
            &[Activation::Relu, Activation::Identity],
            &mut rng,
        );
        let packed = PackedMlp::from_mlp(&mlp).unwrap();
        let x = Tensor::randn(&[3, 7], &mut rng);
        assert_eq!(
            mlp.forward_nograd(&x).unwrap().data(),
            packed.forward(&x).unwrap().data()
        );
    }

    #[test]
    fn packed_weight_bitwise_matches_broadcast_matmul() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Tensor::randn(&[8, 8], &mut rng);
        let packed = PackedWeight::pack(&w).unwrap();
        let x = Tensor::randn(&[2, 3, 4, 8], &mut rng);
        assert_eq!(
            linalg::matmul(&x, &w).unwrap().data(),
            packed.matmul(&x).unwrap().data()
        );
    }

    #[test]
    fn quantized_dense_tracks_its_precision_and_shrinks() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let layer = Linear::new(&store, "q", 64, 48, &mut rng);
        let f32p = PackedDense::from_linear(&layer).unwrap();
        let bf16 = PackedDense::from_linear_at(&layer, Precision::Bf16).unwrap();
        let int8 = PackedDense::from_linear_at(&layer, Precision::Int8).unwrap();
        assert_eq!(bf16.precision(), Precision::Bf16);
        assert_eq!(int8.precision(), Precision::Int8);
        assert!(bf16.packed_bytes() < f32p.packed_bytes());
        assert!(int8.packed_bytes() < bf16.packed_bytes());
        // Quantized forwards stay close to the f32 forward on
        // unit-scale inputs.
        let x = Tensor::randn(&[5, 64], &mut rng);
        let want = f32p.forward_act(&x, Activation::Tanh).unwrap();
        for (label, got) in [
            ("bf16", bf16.forward_act(&x, Activation::Tanh).unwrap()),
            ("int8", int8.forward_act(&x, Activation::Tanh).unwrap()),
        ] {
            let mae: f32 = want
                .data()
                .iter()
                .zip(got.data())
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>()
                / want.len() as f32;
            assert!(mae < 0.05, "{label}: MAE {mae}");
        }
    }
}
