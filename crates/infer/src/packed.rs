//! Pre-packed dense layers: frozen `Linear`/`Mlp` weights re-laid into
//! the GEMM panel format at freeze time, so serving skips the per-call
//! B-matrix pack entirely.
//!
//! Every forward here mirrors the corresponding tape-free path in
//! `stwa-nn` branch-for-branch; `matmul_packed_lean` is bitwise
//! identical to `matmul` by the kernel accumulation-order contract (the
//! lean entry runs the same prepacked kernel minus the per-call
//! span/counter/pool dispatch), so a packed layer's output matches the
//! training-graph eval path bit-for-bit.

use stwa_nn::layers::{Activation, Linear, Mlp};
use stwa_tensor::linalg::{matmul_packed_lean, PackedMatrix};
use stwa_tensor::{mathfn, Result, Tensor, TensorError};

/// A frozen [`Linear`]: panel-packed weight plus a bias snapshot.
pub struct PackedDense {
    packed: PackedMatrix,
    bias: Option<Tensor>,
    in_dim: usize,
    out_dim: usize,
}

impl PackedDense {
    /// Snapshot and pack a linear layer's current parameters.
    pub fn from_linear(layer: &Linear) -> Result<PackedDense> {
        let w = layer.weight_param().value();
        Ok(PackedDense {
            packed: PackedMatrix::pack(&w)?,
            bias: layer.bias_param().map(|b| b.value()),
            in_dim: layer.in_dim(),
            out_dim: layer.out_dim(),
        })
    }

    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Bytes held by the packed weight panels.
    pub fn packed_bytes(&self) -> usize {
        self.packed.packed_bytes()
    }

    /// [`Linear::forward_nograd`] on the packed weight.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor> {
        self.forward_act(x, Activation::Identity)
    }

    /// [`Linear::forward_act_nograd`] on the packed weight. The bias
    /// add and activation run in place on the uniquely-owned GEMM
    /// output — the same `kind.apply(a + bias)` scalar chain as both
    /// the fused `bias_add_act` zip and the unfused add-then-activate
    /// branch of the graph path (which agree bitwise), minus a dispatch
    /// and a materialization per call.
    pub fn forward_act(&self, x: &Tensor, act: Activation) -> Result<Tensor> {
        let shape = x.shape().to_vec();
        let rank = shape.len();
        if rank == 0 || shape[rank - 1] != self.in_dim {
            return Err(TensorError::Invalid(format!(
                "PackedDense: expected last dim {}, got shape {:?}",
                self.in_dim, shape
            )));
        }
        let lead: usize = shape[..rank - 1].iter().product();
        let flat = x.reshape(&[lead, self.in_dim])?;
        let mut y = matmul_packed_lean(&flat, &self.packed)?;
        // Bias pass, then one wide activation pass over the whole
        // buffer — per element the same add-then-apply chain as the
        // interleaved `kind.apply(a + bias)` zip, so both the fused and
        // unfused graph branches (which agree bitwise) are matched.
        if let Some(b) = &self.bias {
            let bd = b.data();
            for row in y.data_mut().chunks_exact_mut(self.out_dim) {
                for (o, &bv) in row.iter_mut().zip(bd.iter()) {
                    *o += bv;
                }
            }
        }
        match act {
            Activation::Identity => {}
            Activation::Tanh => mathfn::tanh_slice(y.data_mut()),
            Activation::Sigmoid => mathfn::sigmoid_slice(y.data_mut()),
            Activation::Relu => {
                for o in y.data_mut().iter_mut() {
                    *o = o.max(0.0);
                }
            }
        }
        let mut out_shape = shape[..rank - 1].to_vec();
        out_shape.push(self.out_dim);
        y.reshape(&out_shape)
    }
}

/// A frozen [`Mlp`]: every layer packed, activations snapshotted.
pub struct PackedMlp {
    layers: Vec<PackedDense>,
    activations: Vec<Activation>,
}

impl PackedMlp {
    pub fn from_mlp(mlp: &Mlp) -> Result<PackedMlp> {
        Ok(PackedMlp {
            layers: mlp
                .layers()
                .iter()
                .map(PackedDense::from_linear)
                .collect::<Result<Vec<_>>>()?,
            activations: mlp.activations().to_vec(),
        })
    }

    /// [`Mlp::forward_nograd`] over the packed layers.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor> {
        let mut h = x.clone();
        for (layer, act) in self.layers.iter().zip(&self.activations) {
            h = layer.forward_act(&h, *act)?;
        }
        Ok(h)
    }

    pub fn packed_bytes(&self) -> usize {
        self.layers.iter().map(PackedDense::packed_bytes).sum()
    }
}

/// A frozen bias-free square weight used outside the `Linear` shape
/// discipline (the Eq. 12 gate matrices): packed panels applied to any
/// `[..., k]` input by flattening the leading axes, exactly as the
/// graph path's broadcast matmul does.
pub struct PackedWeight {
    packed: PackedMatrix,
}

impl PackedWeight {
    pub fn pack(w: &Tensor) -> Result<PackedWeight> {
        Ok(PackedWeight {
            packed: PackedMatrix::pack(w)?,
        })
    }

    pub fn matmul(&self, x: &Tensor) -> Result<Tensor> {
        matmul_packed_lean(x, &self.packed)
    }

    pub fn packed_bytes(&self) -> usize {
        self.packed.packed_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stwa_nn::ParamStore;
    use stwa_tensor::{linalg, memory};

    #[test]
    fn packed_dense_bitwise_matches_linear_nograd() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new(&store, "l", 9, 13, &mut rng);
        let packed = PackedDense::from_linear(&layer).unwrap();
        let x = Tensor::randn(&[4, 6, 9], &mut rng);
        for fused in [true, false] {
            let prev = memory::fused_enabled();
            memory::set_fused_enabled(fused);
            let want = layer
                .forward_act_nograd(&x, Activation::Tanh)
                .unwrap();
            let got = packed.forward_act(&x, Activation::Tanh).unwrap();
            memory::set_fused_enabled(prev);
            assert_eq!(want.data(), got.data());
        }
        assert!(packed.packed_bytes() > 0);
        // Wrong trailing dim rejected.
        assert!(packed.forward(&Tensor::zeros(&[2, 8])).is_err());
    }

    #[test]
    fn packed_mlp_bitwise_matches_mlp_nograd() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mlp = Mlp::new(
            &store,
            "m",
            &[7, 11, 5],
            &[Activation::Relu, Activation::Identity],
            &mut rng,
        );
        let packed = PackedMlp::from_mlp(&mlp).unwrap();
        let x = Tensor::randn(&[3, 7], &mut rng);
        assert_eq!(
            mlp.forward_nograd(&x).unwrap().data(),
            packed.forward(&x).unwrap().data()
        );
    }

    #[test]
    fn packed_weight_bitwise_matches_broadcast_matmul() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Tensor::randn(&[8, 8], &mut rng);
        let packed = PackedWeight::pack(&w).unwrap();
        let x = Tensor::randn(&[2, 3, 4, 8], &mut rng);
        assert_eq!(
            linalg::matmul(&x, &w).unwrap().data(),
            packed.matmul(&x).unwrap().data()
        );
    }
}
