//! [`InferSession`]: a frozen model plus its per-batch-size plan arena
//! and the staleness guard against post-freeze parameter mutation.

use crate::frozen::{BatchPlan, FrozenStwa};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use stwa_core::StwaModel;
use stwa_tensor::quant::Precision;
use stwa_tensor::{Result, Tensor, TensorError};

/// A serving session over a [`FrozenStwa`].
///
/// The first forward at each batch size records an execution plan (the
/// input-independent broadcast buffers); later requests at the same
/// batch size reuse it. A session refuses to serve once any source
/// parameter has been mutated after the freeze — re-freeze to pick up
/// new weights.
pub struct InferSession {
    frozen: FrozenStwa,
    plans: RefCell<HashMap<usize, Rc<BatchPlan>>>,
}

impl InferSession {
    /// Freeze `model` at f32 and open a session over the snapshot.
    pub fn new(model: &StwaModel) -> Result<InferSession> {
        Ok(InferSession::from_frozen(FrozenStwa::freeze(model)?))
    }

    /// Freeze `model` at the given panel precision and open a session.
    /// The plan arena is precision-agnostic (plans hold f32 broadcast
    /// buffers at every precision), so everything downstream — plan
    /// recording, staleness guard, [`crate::InferQueue`] micro-batching
    /// — serves quantized snapshots unchanged.
    pub fn new_at(model: &StwaModel, precision: Precision) -> Result<InferSession> {
        Ok(InferSession::from_frozen(FrozenStwa::freeze_at(
            model, precision,
        )?))
    }

    pub fn from_frozen(frozen: FrozenStwa) -> InferSession {
        InferSession {
            frozen,
            plans: RefCell::new(HashMap::new()),
        }
    }

    pub fn frozen(&self) -> &FrozenStwa {
        &self.frozen
    }

    /// Panel precision of the underlying snapshot.
    pub fn precision(&self) -> Precision {
        self.frozen.precision()
    }

    /// True when the source parameters changed after the freeze.
    pub fn is_stale(&self) -> bool {
        self.frozen.is_stale()
    }

    /// Number of batch sizes with a recorded plan.
    pub fn plan_count(&self) -> usize {
        self.plans.borrow().len()
    }

    /// Normalized-scale predictions `[B, N, U, F]` for a normalized
    /// input batch `[B, N, H, F]` — bitwise identical to the source
    /// model's graph-path eval forward.
    ///
    /// Fails without running anything when the session is stale: the
    /// frozen caches no longer describe the live parameters, and a
    /// silently wrong answer is worse than a refusal.
    pub fn run(&self, x: &Tensor) -> Result<Tensor> {
        if self.is_stale() {
            stwa_observe::counter!("infer.stale_rejections").incr();
            return Err(TensorError::Invalid(format!(
                "InferSession: stale snapshot (frozen at store version {}, now {}); \
                 re-freeze the model to serve the updated parameters",
                self.frozen.frozen_at(),
                self.frozen.current_version()
            )));
        }
        let shape = x.shape();
        if shape.is_empty() {
            return Err(TensorError::Invalid(
                "InferSession: empty input".into(),
            ));
        }
        let b = shape[0];
        let plan = self.plan_for(b)?;
        stwa_observe::counter!("infer.forwards").incr();
        stwa_observe::counter!("infer.rows").add(b as u64);
        self.frozen.forward(x, &plan)
    }

    fn plan_for(&self, b: usize) -> Result<Rc<BatchPlan>> {
        if let Some(plan) = self.plans.borrow().get(&b) {
            stwa_observe::counter!("infer.plan_hits").incr();
            return Ok(Rc::clone(plan));
        }
        stwa_observe::counter!("infer.plan_misses").incr();
        let plan = Rc::new(self.frozen.record_plan(b)?);
        self.plans.borrow_mut().insert(b, Rc::clone(&plan));
        Ok(plan)
    }
}
