//! Freezing an [`StwaModel`] into a serving-ready parameter snapshot.
//!
//! `freeze` walks the trained model once and collapses everything that
//! does not depend on the request input:
//!
//! - stochastic latents collapse to their posterior means (exactly what
//!   the graph path does in eval mode),
//! - for spatially-aware models without a temporal encoder (S-WA), the
//!   decoder `D_omega` runs **once per sensor** here and never again —
//!   the per-sensor K/V projections and sensor-correlation transforms
//!   are cached as `[1, N, F, d]` tensors that broadcast over any batch,
//! - for temporally-aware models, the input-dependent encoder `E_psi`
//!   stays live but every dense weight along its path (encoder body,
//!   mean head, decoders) is panel-packed, and the planar-flow
//!   constrained parameters `(u, w, b)` are precomputed,
//! - all static dense weights (shared K/V, fusion, gate, SCA embedding,
//!   skip, predictor) are packed into GEMM panel layout.
//!
//! The frozen forward mirrors `StwaModel::forward_nograd` — which in
//! turn mirrors the graph path in eval mode — kernel-for-kernel, so its
//! predictions are bitwise identical to the training-time evaluation.

use crate::packed::{PackedDense, PackedMlp, PackedWeight};
use stwa_core::generator::GeneratedTensors;
use stwa_core::{AggregatorKind, ForecastModel, StGenerator, StwaModel};
use stwa_nn::StoreVersion;
use stwa_tensor::quant::Precision;
use stwa_tensor::{linalg, mathfn, memory, Result, Tensor, TensorError};

/// Frozen per-layer state of one window-attention layer.
struct FrozenLayer {
    proxies: Tensor, // [N, W, p, d]
    /// Proxy-fusion dense weight `[2d, d]` and bias, applied by the
    /// fused lean walk in [`fused_fusion`] instead of a packed GEMM —
    /// the matrices are too small for panel dispatch to pay off.
    fusion_w: Option<Tensor>,
    fusion_b: Option<Tensor>,
    k_shared: Option<PackedDense>,
    v_shared: Option<PackedDense>,
    /// Eq. 12 gate matrices `[d, d]`, panel-packed: measured against a
    /// fused scalar walk, the blocked GEMM + bulk activation maps win
    /// (the vectorized `exp` maps beat short per-row loops).
    agg_w1: PackedWeight,
    agg_w2: PackedWeight,
    aggregator: AggregatorKind,
    sca: Option<FrozenSca>,
    n: usize,
    t_in: usize,
    s: usize,
    w: usize,
    p: usize,
    f_in: usize,
    d: usize,
    heads: usize,
}

/// Frozen sensor-correlation attention: packed shared transforms, or
/// none when the transforms are generated per sensor.
struct FrozenSca {
    theta1: Option<PackedDense>,
    theta2: Option<PackedDense>,
    d: usize,
    /// Neighbor lists when the training model ran in sparse mode; the
    /// frozen path must mix over the same support to stay bitwise.
    graph: Option<std::sync::Arc<stwa_tensor::SensorGraph>>,
}

/// The frozen parameter-generation path.
enum FrozenGenerator {
    /// S-WA: fully decoded at freeze time; per-sensor projections are
    /// `[1, N, F, d]` and broadcast over any request batch.
    Static(Vec<GeneratedTensors>),
    /// ST-WA / T-WA: the temporal encoder must see the input, so only
    /// its weights are packed; decoding runs per request.
    Dynamic(Box<DynamicGenerator>),
}

/// The input-dependent remainder of the generator after freezing.
struct DynamicGenerator {
    spatial_mean: Option<Tensor>, // [N, k]
    temporal_body: PackedMlp,
    temporal_head: PackedDense,
    enc_h: usize,
    enc_f: usize,
    /// Per flow layer: constrained `(u, w_col, b)`, precomputed since
    /// they are pure parameter arithmetic.
    flow: Option<Vec<(Tensor, Tensor, Tensor)>>,
    decoders: Vec<PackedMlp>,
    sca_decoders: Option<Vec<PackedMlp>>,
    layer_dims: Vec<(usize, usize)>,
}

/// Per-batch-size execution plan: the input-independent broadcast
/// buffers recorded on the first forward at that batch size and reused
/// for every subsequent request (the proxy blocks `[B, N, p, d]` of
/// every layer/window).
pub struct BatchPlan {
    batch: usize,
    /// `p_base[layer][window]`.
    p_base: Vec<Vec<Tensor>>,
}

impl BatchPlan {
    /// Batch size this plan was recorded for.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Total f32 elements held by the recorded broadcast buffers.
    pub fn buffered_elems(&self) -> usize {
        self.p_base
            .iter()
            .flat_map(|ws| ws.iter().map(Tensor::len))
            .sum()
    }
}

/// A trained [`StwaModel`] collapsed into its serving form.
pub struct FrozenStwa {
    generator: Option<FrozenGenerator>,
    layers: Vec<FrozenLayer>,
    skips: Vec<PackedDense>,
    predictor: PackedMlp,
    n: usize,
    h: usize,
    u: usize,
    f_in: usize,
    d: usize,
    precision: Precision,
    version: StoreVersion,
    frozen_at: u64,
}

impl FrozenStwa {
    /// Snapshot `model`'s parameters into the frozen serving form at
    /// f32 — the precision whose forward is bitwise identical to the
    /// training graph's eval path.
    pub fn freeze(model: &StwaModel) -> Result<FrozenStwa> {
        Self::freeze_at(model, Precision::F32)
    }

    /// Snapshot `model`'s parameters at the given panel [`Precision`].
    /// Training stays f32 and untouched; only the serving snapshot's
    /// static weight panels change width. The pre-decoded S-WA
    /// projection caches and all activations remain f32 at every
    /// precision (they are request-scale data, not frozen weights).
    /// Quantized snapshots trade the bitwise-vs-graph contract for the
    /// accuracy gate in DESIGN.md §14.
    pub fn freeze_at(model: &StwaModel, precision: Precision) -> Result<FrozenStwa> {
        let cfg = model.config();
        let generator = match model.generator() {
            None => None,
            Some(gen) => Some(Self::freeze_generator(gen, precision)?),
        };

        let mut layers = Vec::with_capacity(model.layers().len());
        for layer in model.layers() {
            let (n, t_in, s, p, f_in, d, heads) = layer.dims();
            let (k_shared, v_shared) = layer.shared_projections();
            let (agg_w1, agg_w2) = layer.agg_weights();
            let sca = match layer.sensor_attention() {
                None => None,
                Some(sca) => {
                    let (t1, t2) = sca.shared_transforms();
                    Some(FrozenSca {
                        theta1: t1.map(|l| PackedDense::from_linear_at(l, precision)).transpose()?,
                        theta2: t2.map(|l| PackedDense::from_linear_at(l, precision)).transpose()?,
                        d: sca.dim(),
                        graph: sca.sparsity().graph().cloned(),
                    })
                }
            };
            layers.push(FrozenLayer {
                proxies: layer.proxies().value(),
                fusion_w: layer.fusion().map(|l| l.weight_param().value()),
                fusion_b: layer
                    .fusion()
                    .and_then(|l| l.bias_param().map(|b| b.value())),
                k_shared: k_shared
                    .map(|l| PackedDense::from_linear_at(l, precision))
                    .transpose()?,
                v_shared: v_shared
                    .map(|l| PackedDense::from_linear_at(l, precision))
                    .transpose()?,
                agg_w1: PackedWeight::pack_at(&agg_w1.value(), precision)?,
                agg_w2: PackedWeight::pack_at(&agg_w2.value(), precision)?,
                aggregator: layer.aggregator_kind(),
                sca,
                n,
                t_in,
                s,
                w: layer.num_windows(),
                p,
                f_in,
                d,
                heads,
            });
        }

        Ok(FrozenStwa {
            generator,
            layers,
            skips: model
                .skips()
                .iter()
                .map(|l| PackedDense::from_linear_at(l, precision))
                .collect::<Result<Vec<_>>>()?,
            predictor: PackedMlp::from_mlp_at(model.predictor(), precision)?,
            n: cfg.n,
            h: cfg.h,
            u: cfg.u,
            f_in: cfg.f_in,
            d: cfg.d,
            precision,
            version: model.store().version_handle(),
            frozen_at: model.store().version(),
        })
    }

    /// Load a published checkpoint from `registry` into `model`'s store
    /// and freeze the result — the registry-to-serving transport behind
    /// hot swaps. Loads the best-validation parameters when the
    /// checkpoint carries them, else the live ones. `version: None`
    /// takes the registry's `LATEST`.
    ///
    /// Note that loading mutates the model's store (bumping its
    /// version), so any session frozen from the *previous* weights
    /// becomes stale and starts refusing — exactly the guard that makes
    /// a hot swap safe.
    pub fn freeze_from_registry(
        model: &StwaModel,
        registry: &stwa_ckpt::Registry,
        name: &str,
        version: Option<u32>,
    ) -> Result<FrozenStwa> {
        Self::freeze_from_registry_at(model, registry, name, version, Precision::F32)
    }

    /// [`FrozenStwa::freeze_from_registry`] at a chosen panel
    /// precision — the hot-swap transport for quantized serving.
    pub fn freeze_from_registry_at(
        model: &StwaModel,
        registry: &stwa_ckpt::Registry,
        name: &str,
        version: Option<u32>,
        precision: Precision,
    ) -> Result<FrozenStwa> {
        let _span = stwa_observe::span!("freeze_from_registry");
        let ckpt = registry.load(name, version).map_err(|e| {
            TensorError::Invalid(format!("freeze_from_registry: {e}"))
        })?;
        ckpt.load_best_into(model.store()).map_err(|e| {
            TensorError::Invalid(format!("freeze_from_registry: {e}"))
        })?;
        Self::freeze_at(model, precision)
    }

    fn freeze_generator(gen: &StGenerator, precision: Precision) -> Result<FrozenGenerator> {
        match gen.temporal() {
            // Spatial-only: `Theta` is input-independent, so decode the
            // per-sensor parameters once, with a singleton batch axis
            // that broadcasts against any request batch.
            None => {
                let spatial = gen.spatial().ok_or_else(|| {
                    TensorError::Invalid("freeze: generator with no latents".into())
                })?;
                let means = spatial.means(); // [N, k]
                let (n, k) = (means.shape()[0], means.shape()[1]);
                let theta0 = means.unsqueeze(0)?.broadcast_to(&[1, n, k])?;
                let theta = match gen.flow() {
                    None => theta0,
                    Some(flow) => flow.transform_nograd(&theta0)?,
                };
                let mut cached = Vec::with_capacity(gen.decoders().len());
                for (l, (dec, &(fl, d))) in
                    gen.decoders().iter().zip(gen.layer_dims()).enumerate()
                {
                    let flat = dec.forward_nograd(&theta)?; // [1, N, 2*fl*d]
                    let kv = flat.reshape(&[1, n, 2, fl, d])?;
                    let k_proj = kv.narrow(2, 0, 1)?.squeeze(2)?;
                    let v_proj = kv.narrow(2, 1, 1)?.squeeze(2)?;
                    let sca_transforms = match gen.sca_decoders() {
                        None => None,
                        Some(decs) => {
                            let flat = decs[l].forward_nograd(&theta)?;
                            let pair = flat.reshape(&[1, n, 2, d, d])?;
                            Some((
                                pair.narrow(2, 0, 1)?.squeeze(2)?,
                                pair.narrow(2, 1, 1)?.squeeze(2)?,
                            ))
                        }
                    };
                    cached.push(GeneratedTensors {
                        k_proj,
                        v_proj,
                        sca_transforms,
                    });
                }
                Ok(FrozenGenerator::Static(cached))
            }
            Some(temporal) => Ok(FrozenGenerator::Dynamic(Box::new(DynamicGenerator {
                spatial_mean: gen.spatial().map(|s| s.means()),
                temporal_body: PackedMlp::from_mlp_at(temporal.body(), precision)?,
                temporal_head: PackedDense::from_linear_at(temporal.head_mu(), precision)?,
                enc_h: temporal.h(),
                enc_f: temporal.f(),
                flow: gen
                    .flow()
                    .map(|f| f.frozen_layers_nograd())
                    .transpose()?,
                decoders: gen
                    .decoders()
                    .iter()
                    .map(|d| PackedMlp::from_mlp_at(d.mlp(), precision))
                    .collect::<Result<Vec<_>>>()?,
                sca_decoders: gen
                    .sca_decoders()
                    .map(|decs| {
                        decs.iter()
                            .map(|d| PackedMlp::from_mlp_at(d.mlp(), precision))
                            .collect::<Result<Vec<_>>>()
                    })
                    .transpose()?,
                layer_dims: gen.layer_dims().to_vec(),
            }))),
        }
    }

    /// Sensor count `N` the model was built for.
    pub fn num_sensors(&self) -> usize {
        self.n
    }

    /// Input window length `H`.
    pub fn input_len(&self) -> usize {
        self.h
    }

    /// Forecast horizon `U`.
    pub fn horizon(&self) -> usize {
        self.u
    }

    /// Attributes per timestamp.
    pub fn features(&self) -> usize {
        self.f_in
    }

    /// Panel precision this snapshot was frozen at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Store version this snapshot was taken at.
    pub fn frozen_at(&self) -> u64 {
        self.frozen_at
    }

    /// Live version of the source parameter store as of now.
    pub fn current_version(&self) -> u64 {
        self.version.get()
    }

    /// True when any source parameter changed after [`FrozenStwa::freeze`].
    pub fn is_stale(&self) -> bool {
        self.version.get() != self.frozen_at
    }

    /// Record the execution plan for batch size `b`: materialize every
    /// input-independent broadcast buffer once so subsequent forwards
    /// at the same batch size reuse them.
    pub fn record_plan(&self, b: usize) -> Result<BatchPlan> {
        let mut p_base = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let mut per_window = Vec::with_capacity(layer.w);
            for wi in 0..layer.w {
                per_window.push(
                    layer
                        .proxies
                        .narrow(1, wi, 1)?
                        .squeeze(1)?
                        .unsqueeze(0)?
                        .broadcast_to(&[b, layer.n, layer.p, layer.d])?,
                );
            }
            p_base.push(per_window);
        }
        Ok(BatchPlan { batch: b, p_base })
    }

    /// One tape-free forward through the frozen stack: normalized-scale
    /// predictions `[B, N, U, F]`. At [`Precision::F32`] the output is
    /// bitwise identical to the graph eval path of the source model; at
    /// bf16/int8 it is the same op sequence over quantized panels,
    /// gated by the forecast-MAE accuracy check instead. `plan` must
    /// come from [`FrozenStwa::record_plan`] for `x`'s batch size.
    pub fn forward(&self, x: &Tensor, plan: &BatchPlan) -> Result<Tensor> {
        let shape = x.shape();
        if shape.len() != 4 || shape[1] != self.n || shape[2] != self.h || shape[3] != self.f_in
        {
            return Err(TensorError::Invalid(format!(
                "FrozenStwa: expected [B, {}, {}, {}], got {shape:?}",
                self.n, self.h, self.f_in
            )));
        }
        let b = shape[0];
        if plan.batch != b {
            return Err(TensorError::Invalid(format!(
                "FrozenStwa: plan recorded for batch {}, input has batch {b}",
                plan.batch
            )));
        }
        let _span = stwa_observe::span!("forward");

        // Dynamically generated parameters (ST/T-aware only); the
        // static cache is borrowed, never recomputed.
        let dynamic: Option<Vec<GeneratedTensors>> = match &self.generator {
            Some(FrozenGenerator::Dynamic(dg)) => Some(dg.generate(x, b)?),
            _ => None,
        };
        let generated: Option<&[GeneratedTensors]> = match &self.generator {
            None => None,
            Some(FrozenGenerator::Static(cached)) => Some(cached),
            Some(FrozenGenerator::Dynamic(_)) => dynamic.as_deref(),
        };

        let mut h = x.clone();
        let mut skip_sum: Option<Tensor> = None;
        for (l, layer) in self.layers.iter().enumerate() {
            let layer_span = stwa_observe::span!("wa_layer{}", l);
            let proj = generated.map(|g| &g[l]);
            let out = layer.forward(&h, proj, &plan.p_base[l], b)?;
            let flat = out.reshape(&[b, self.n, layer.w * self.d])?;
            let skip = self.skips[l].forward(&flat)?;
            skip_sum = Some(match skip_sum {
                None => skip,
                Some(acc) => acc.add(&skip)?,
            });
            h = out;
            drop(layer_span);
        }
        let o = skip_sum.expect("at least one layer");

        let predictor_span = stwa_observe::span!("predictor");
        let pred = self
            .predictor
            .forward(&o)?
            .reshape(&[b, self.n, self.u, self.f_in])?;
        drop(predictor_span);
        Ok(pred)
    }

    /// Total bytes held in packed GEMM panels across the snapshot.
    pub fn packed_bytes(&self) -> usize {
        let layer_bytes: usize = self
            .layers
            .iter()
            .map(|l| {
                l.k_shared.as_ref().map_or(0, PackedDense::packed_bytes)
                    + l.v_shared.as_ref().map_or(0, PackedDense::packed_bytes)
                    + l.agg_w1.packed_bytes()
                    + l.agg_w2.packed_bytes()
                    + l.sca.as_ref().map_or(0, |s| {
                        s.theta1.as_ref().map_or(0, PackedDense::packed_bytes)
                            + s.theta2.as_ref().map_or(0, PackedDense::packed_bytes)
                    })
            })
            .sum();
        let gen_bytes = match &self.generator {
            Some(FrozenGenerator::Dynamic(dg)) => {
                dg.temporal_body.packed_bytes()
                    + dg.temporal_head.packed_bytes()
                    + dg.decoders.iter().map(PackedMlp::packed_bytes).sum::<usize>()
                    + dg
                        .sca_decoders
                        .as_ref()
                        .map_or(0, |d| d.iter().map(PackedMlp::packed_bytes).sum())
            }
            _ => 0,
        };
        layer_bytes
            + gen_bytes
            + self.skips.iter().map(PackedDense::packed_bytes).sum::<usize>()
            + self.predictor.packed_bytes()
    }
}

impl DynamicGenerator {
    /// The per-request remainder of `StGenerator::generate_nograd`:
    /// encode `E_psi` means, combine with the cached spatial means,
    /// apply the flow with precomputed constrained parameters, decode.
    fn generate(&self, x: &Tensor, b: usize) -> Result<Vec<GeneratedTensors>> {
        let _span = stwa_observe::span!("generator");
        let n = x.shape()[1];

        let latent_span = stwa_observe::span!("latent");
        let flat = x.reshape(&[b, n, self.enc_h * self.enc_f])?;
        let t_mean = self.temporal_head.forward(&self.temporal_body.forward(&flat)?)?;
        drop(latent_span);

        let theta0 = match &self.spatial_mean {
            Some(s) => s.unsqueeze(0)?.broadcast_to(t_mean.shape())?.add(&t_mean)?,
            None => t_mean,
        };
        let theta = match &self.flow {
            None => theta0,
            Some(layers) => {
                let mut current = theta0;
                for (u, w_col, bias) in layers {
                    let pre = linalg::matmul_lean(&current, w_col)?.add(bias)?;
                    let t = pre.tanh();
                    let step = t.mul(u)?;
                    current = current.add(&step)?;
                }
                current
            }
        };

        let decoder_span = stwa_observe::span!("decoder");
        let mut out = Vec::with_capacity(self.decoders.len());
        for (l, (dec, &(fl, d))) in self.decoders.iter().zip(&self.layer_dims).enumerate() {
            let flat = dec.forward(&theta)?; // [B, N, 2*fl*d]
            let (k_proj, v_proj) = split_kv(&flat, b, n, fl, d)?;
            let sca_transforms = match &self.sca_decoders {
                None => None,
                Some(decs) => {
                    let flat = decs[l].forward(&theta)?;
                    Some(split_kv(&flat, b, n, d, d)?)
                }
            };
            out.push(GeneratedTensors {
                k_proj,
                v_proj,
                sca_transforms,
            });
        }
        drop(decoder_span);
        Ok(out)
    }
}

impl FrozenLayer {
    /// Mirror of `WindowAttentionLayer::forward_nograd` with packed
    /// weights and the proxy broadcasts served from the batch plan.
    fn forward(
        &self,
        x: &Tensor,
        generated: Option<&GeneratedTensors>,
        p_base_plan: &[Tensor],
        b: usize,
    ) -> Result<Tensor> {
        let shape = x.shape();
        if shape.len() != 4 || shape[1] != self.n || shape[2] != self.t_in || shape[3] != self.f_in
        {
            return Err(TensorError::Invalid(format!(
                "FrozenLayer: expected [B, {}, {}, {}], got {shape:?}",
                self.n, self.t_in, self.f_in
            )));
        }
        let (w, s, p, d) = (self.w, self.s, self.p, self.d);

        let x_win = x.reshape(&[b, self.n, w, s, self.f_in])?;
        let (keys, values) = match generated {
            Some(gp) => project_kv(&x_win, &gp.k_proj, &gp.v_proj)?,
            None => {
                let (Some(ks), Some(vs)) = (&self.k_shared, &self.v_shared) else {
                    return Err(TensorError::Invalid(
                        "FrozenLayer without shared projections requires generated K/V".into(),
                    ));
                };
                (ks.forward(&x_win)?, vs.forward(&x_win)?)
            }
        };

        let mut prev: Option<Tensor> = None;
        // Window outputs go straight into the `[B, N, w, d]` result
        // buffer — the graph path unsqueezes and concatenates, which
        // copies the same bytes through `w + 1` extra dispatches.
        let mut out = memory::take_scratch(b * self.n * w * d);
        for wi in 0..w {
            let p_base = p_base_plan[wi].clone();
            let p_q = match &prev {
                None => p_base,
                Some(h_prev) => {
                    let fspan = stwa_observe::span!("fusion");
                    let fw = self.fusion_w.as_ref().expect("w > 1 implies fusion");
                    let r = fused_fusion(
                        h_prev,
                        &p_base,
                        fw,
                        self.fusion_b.as_ref(),
                        (b, self.n, p, d),
                    )?;
                    drop(fspan);
                    r
                }
            };
            let aspan = stwa_observe::span!("attn");
            let h_w = windowed_attention_lean(&p_q, &keys, &values, wi, self.heads)?;
            drop(aspan);
            let gspan = stwa_observe::span!("gate");
            let h_hat = match self.aggregator {
                AggregatorKind::Learned => {
                    // Blocked packed GEMMs (measured faster than a
                    // fused scalar walk at d x d), with the activation
                    // maps run in place on the uniquely-owned buffers
                    // and the gate-multiply + proxy-sum folded into one
                    // pass — same elementwise kernels and the same
                    // ascending-p fold as `mul` + `sum_axis`, minus
                    // four dispatches.
                    let mut gate = self.agg_w1.matmul(&h_w)?;
                    mathfn::tanh_slice(gate.data_mut());
                    let mut gate = self.agg_w2.matmul(&gate)?;
                    mathfn::sigmoid_slice(gate.data_mut());
                    let (gd, hd) = (gate.data(), h_w.data());
                    let mut out = memory::take_filled(b * self.n * d, 0.0);
                    for (ln, orow) in out.chunks_exact_mut(d).enumerate() {
                        for pi in 0..p {
                            let at = (ln * p + pi) * d;
                            for ((o, &g), &hv) in orow
                                .iter_mut()
                                .zip(gd[at..at + d].iter())
                                .zip(hd[at..at + d].iter())
                            {
                                *o += g * hv;
                            }
                        }
                    }
                    Tensor::from_vec(out, &[b, self.n, d])?
                }
                AggregatorKind::Mean => h_w.mean_axis(2, false)?,
            };
            drop(gspan);
            let h_bar = match (
                &self.sca,
                generated.and_then(|g| g.sca_transforms.as_ref()),
            ) {
                (Some(sca), Some((t1, t2))) => sca.forward_with(&h_hat, t1, t2)?,
                (Some(sca), None) => sca.forward(&h_hat)?,
                (None, _) => h_hat,
            };
            let hd = h_bar.data();
            for (ln, row) in hd.chunks_exact(d).enumerate() {
                out[(ln * w + wi) * d..(ln * w + wi + 1) * d].copy_from_slice(row);
            }
            prev = Some(h_bar);
        }
        Tensor::from_vec(out, &[b, self.n, w, d])
    }
}

/// The generated K/V projections `x_win @ kp` / `x_win @ vp` with the
/// window axis flattened into GEMM rows: for each `(b, n)` the `[w, s,
/// F]` input block multiplies one `[F, d]` projection, so the broadcast
/// matmul's `B*N*w` tiny dispatches (and its per-batch offset table)
/// collapse into `B*N` slice products per side.
///
/// Bitwise contract: row `(wi, si)` of a block is the same `[s, F]` row
/// the per-window product consumed, against the same `[F, d]` operand,
/// through [`linalg::gemm_nn_slice`] — same kernels, same ascending-`F`
/// accumulation, so the flattening is invisible bit-for-bit.
fn project_kv(x_win: &Tensor, k_proj: &Tensor, v_proj: &Tensor) -> Result<(Tensor, Tensor)> {
    let xs = x_win.shape();
    let ks = k_proj.shape();
    if xs.len() != 5 || ks.len() != 4 || v_proj.shape() != ks {
        return Err(TensorError::Invalid(format!(
            "project_kv: x {xs:?} / k {ks:?} / v {:?}",
            v_proj.shape()
        )));
    }
    let (b, n, w, s, f) = (xs[0], xs[1], xs[2], xs[3], xs[4]);
    let d = ks[3];
    if (ks[0] != b && ks[0] != 1) || ks[1] != n || ks[2] != f {
        return Err(TensorError::Invalid(format!(
            "project_kv: x {xs:?} incompatible with projections {ks:?}"
        )));
    }
    let rows = w * s;
    let (xd, kd, vd) = (x_win.data(), k_proj.data(), v_proj.data());
    // Freeze-time projections are `[1, N, F, d]` and broadcast over the
    // request batch (stride 0), exactly like the broadcast matmul did.
    let pb_stride = if ks[0] == 1 { 0 } else { n * f * d };
    let mut kout = memory::take_filled(b * n * rows * d, 0.0);
    let mut vout = memory::take_filled(b * n * rows * d, 0.0);
    for bi in 0..b {
        for ni in 0..n {
            let ln = bi * n + ni;
            let pat = bi * pb_stride + ni * f * d;
            let a = &xd[ln * rows * f..(ln + 1) * rows * f];
            let c = &mut kout[ln * rows * d..(ln + 1) * rows * d];
            linalg::gemm_nn_slice(a, &kd[pat..pat + f * d], c, rows, f, d);
            let c = &mut vout[ln * rows * d..(ln + 1) * rows * d];
            linalg::gemm_nn_slice(a, &vd[pat..pat + f * d], c, rows, f, d);
        }
    }
    Ok((
        Tensor::from_vec(kout, &[b, n, w, s, d])?,
        Tensor::from_vec(vout, &[b, n, w, s, d])?,
    ))
}

impl FrozenSca {
    /// Mirror of `SensorCorrelationAttention::forward_nograd` with
    /// packed shared transforms.
    fn forward(&self, h: &Tensor) -> Result<Tensor> {
        let (Some(theta1), Some(theta2)) = (&self.theta1, &self.theta2) else {
            return Err(TensorError::Invalid(
                "FrozenSca built for generated transforms requires forward_with".into(),
            ));
        };
        let _span = stwa_observe::span!("sensor_attention");
        let q = theta1.forward(h)?;
        let k = theta2.forward(h)?;
        self.attend(&q, &k, h)
    }

    /// Mirror of `SensorCorrelationAttention::forward_with_nograd`: the
    /// per-sensor Q/K transforms run as one fused microkernel walk
    /// instead of two broadcast matmul dispatches.
    fn forward_with(&self, h: &Tensor, t1: &Tensor, t2: &Tensor) -> Result<Tensor> {
        let _span = stwa_observe::span!("sensor_attention");
        let (q, k) = fused_qk(h, t1, t2, self.d)?;
        self.attend(&q, &k, h)
    }

    /// The sensor-correlation score matrix is `N x N` — big enough that
    /// the blocked GEMM kernels win — so the two GEMMs stay on the lean
    /// matmul entries; the scale and row softmax in between run in
    /// place on the uniquely-owned score buffer (same elementwise
    /// chain as `mul_scalar` + `softmax`, minus two dispatches and one
    /// materialization).
    fn attend(&self, q: &Tensor, k: &Tensor, h: &Tensor) -> Result<Tensor> {
        let scale = 1.0 / (self.d as f32).sqrt();
        if let Some(graph) = &self.graph {
            // Sparse mode: the fused gather kernel is the exact
            // training-time forward, so no separate lean variant to
            // keep in bitwise lockstep.
            let (out, _) = stwa_tensor::sparse::sparse_attention_forward(q, k, h, graph, scale)?;
            return Ok(out);
        }
        let mut scores = linalg::matmul_nt_lean(q, k)?;
        let t = scores.shape()[scores.rank() - 1];
        for row in scores.data_mut().chunks_exact_mut(t) {
            // Scale first, then the max / exp-shift / ascending-sum /
            // divide chain — fold-for-fold what softmax_lastdim does.
            let mut m = f32::NEG_INFINITY;
            for x in row.iter_mut() {
                *x *= scale;
                m = m.max(*x);
            }
            mathfn::exp_sub_slice(row, m);
            let mut z = 0.0f32;
            for &x in row.iter() {
                z += x;
            }
            for x in row.iter_mut() {
                *x /= z;
            }
        }
        linalg::matmul_lean(&scores, h)
    }
}

/// [`scaled_dot_attention_lean`] with the window's K/V block read
/// straight out of the all-window projection tensors `[B, N, W, s, d]`
/// — the graph path narrows and squeezes a `[B, N, s, d]` copy per
/// window first, which is pure data movement (bitwise, slicing is the
/// same bits).
fn windowed_attention_lean(
    q: &Tensor, // [B, N, p, d]
    keys: &Tensor,
    values: &Tensor, // [B, N, W, s, d]
    wi: usize,
    heads: usize,
) -> Result<Tensor> {
    let qs = q.shape();
    let ks = keys.shape();
    if qs.len() != 4 || ks.len() != 5 || values.shape() != ks {
        return Err(TensorError::Invalid(format!(
            "windowed_attention_lean: q {qs:?} / keys {ks:?} / values {:?}",
            values.shape()
        )));
    }
    let (b, n, p, d) = (qs[0], qs[1], qs[2], qs[3]);
    let (w, s) = (ks[2], ks[3]);
    if ks[0] != b || ks[1] != n || ks[4] != d || wi >= w || heads == 0 || !d.is_multiple_of(heads)
    {
        return Err(TensorError::Invalid(format!(
            "windowed_attention_lean: q {qs:?} vs keys {ks:?}, window {wi}, heads {heads}"
        )));
    }
    let dh = d / heads;
    let scale = 1.0 / (dh as f32).sqrt();
    let (qd, kd, vd) = (q.data(), keys.data(), values.data());
    let mut out = memory::take_scratch(b * n * p * d);
    let mut scores = vec![0f32; s];
    for l in 0..b * n {
        let qb = &qd[l * p * d..(l + 1) * p * d];
        let kvat = (l * w + wi) * s * d;
        let kb = &kd[kvat..kvat + s * d];
        let vb = &vd[kvat..kvat + s * d];
        let ob = &mut out[l * p * d..(l + 1) * p * d];
        for h in 0..heads {
            let off = h * dh;
            for i in 0..p {
                let qrow = &qb[i * d + off..i * d + off + dh];
                for (j, slot) in scores.iter_mut().enumerate() {
                    let krow = &kb[j * d + off..j * d + off + dh];
                    let mut acc = 0.0f32;
                    for (&qv, &kv) in qrow.iter().zip(krow.iter()) {
                        acc += qv * kv;
                    }
                    *slot = acc * scale;
                }
                let mut m = f32::NEG_INFINITY;
                for &x in scores.iter() {
                    m = m.max(x);
                }
                for x in scores.iter_mut() {
                    *x = mathfn::exp_f32(*x - m);
                }
                let mut z = 0.0f32;
                for &x in scores.iter() {
                    z += x;
                }
                for x in scores.iter_mut() {
                    *x /= z;
                }
                let orow = &mut ob[i * d + off..i * d + off + dh];
                for (c, slot) in orow.iter_mut().enumerate() {
                    let mut acc = 0.0f32;
                    for (j, &wv) in scores.iter().enumerate() {
                        acc += wv * vb[j * d + off + c];
                    }
                    *slot = acc;
                }
            }
        }
    }
    Tensor::from_vec(out, &[b, n, p, d])
}

/// Split a decoded `[B, N, 2*F*d]` buffer into its K/V halves
/// (`[B, N, F, d]` each) in one contiguous pass — equivalent to the
/// graph path's reshape-to-`[B, N, 2, F, d]` + `narrow` + `squeeze`
/// pairs, which copy the same bytes through four dispatches.
fn split_kv(
    flat: &Tensor,
    b: usize,
    n: usize,
    f: usize,
    d: usize,
) -> Result<(Tensor, Tensor)> {
    let half = f * d;
    let data = flat.data();
    if data.len() != b * n * 2 * half {
        return Err(TensorError::Invalid(format!(
            "split_kv: {:?} vs [{b}, {n}, 2*{f}*{d}]",
            flat.shape()
        )));
    }
    let mut kbuf = memory::take_scratch(b * n * half);
    let mut vbuf = memory::take_scratch(b * n * half);
    for ln in 0..b * n {
        let src = &data[ln * 2 * half..(ln + 1) * 2 * half];
        kbuf[ln * half..(ln + 1) * half].copy_from_slice(&src[..half]);
        vbuf[ln * half..(ln + 1) * half].copy_from_slice(&src[half..]);
    }
    Ok((
        Tensor::from_vec(kbuf, &[b, n, f, d])?,
        Tensor::from_vec(vbuf, &[b, n, f, d])?,
    ))
}

/// The sensor-correlation Q/K transforms `q = h @ T1`, `k = h @ T2`
/// with per-sensor `T1, T2 in [Bt, N, d, d]` (`Bt = 1` broadcasts over
/// the request batch) as one lean walk sharing each input row.
///
/// Bitwise contract: every output element accumulates its `d`
/// contraction in a single ascending chain, exactly the broadcast
/// matmul the graph path runs on the unsqueezed rows.
fn fused_qk(h: &Tensor, t1: &Tensor, t2: &Tensor, d: usize) -> Result<(Tensor, Tensor)> {
    let hs = h.shape();
    let ts = t1.shape();
    if hs.len() != 3
        || hs[2] != d
        || t2.shape() != ts
        || ts.len() != 4
        || ts[1] != hs[1]
        || ts[2] != d
        || ts[3] != d
        || (ts[0] != 1 && ts[0] != hs[0])
    {
        return Err(TensorError::Invalid(format!(
            "fused_qk: h {hs:?} / t1 {ts:?} / t2 {:?}",
            t2.shape()
        )));
    }
    let (b, n) = (hs[0], hs[1]);
    let tb_stride = if ts[0] == 1 { 0 } else { n * d * d };
    let (hd, t1d, t2d) = (h.data(), t1.data(), t2.data());
    let mut qo = memory::take_filled(b * n * d, 0.0);
    let mut ko = memory::take_filled(b * n * d, 0.0);
    for bi in 0..b {
        for ni in 0..n {
            let at = (bi * n + ni) * d;
            let row = &hd[at..at + d];
            let tbase = bi * tb_stride + ni * d * d;
            let qrow = &mut qo[at..at + d];
            let krow = &mut ko[at..at + d];
            for (k, &hv) in row.iter().enumerate() {
                let t1row = &t1d[tbase + k * d..tbase + (k + 1) * d];
                let t2row = &t2d[tbase + k * d..tbase + (k + 1) * d];
                for ((q, &w1), (kk, &w2)) in qrow
                    .iter_mut()
                    .zip(t1row.iter())
                    .zip(krow.iter_mut().zip(t2row.iter()))
                {
                    *q += hv * w1;
                    *kk += hv * w2;
                }
            }
        }
    }
    Ok((
        Tensor::from_vec(qo, &[b, n, d])?,
        Tensor::from_vec(ko, &[b, n, d])?,
    ))
}

/// Proxy fusion `tanh(concat(h_prev, p_base) @ W + bias)` as one lean
/// walk: the graph path tiles `h_prev` to `[B, N, p, d]`, concatenates
/// with the proxy block, and runs a `2d -> d` dense — five dispatches
/// and three materializations for a `[2d, d]` matrix. Here each output
/// row reads `h_prev` and `p_base` in place.
///
/// Bitwise contract: each output element accumulates the `2d`
/// contraction in one ascending chain — `h_prev` features first, proxy
/// features second, exactly the concat order — matching the GEMM
/// kernels' order contract; the bias add and `tanh_f32` mirror both the
/// fused `bias_add_act` zip and the unfused add-then-activate branch,
/// which agree bitwise.
fn fused_fusion(
    h_prev: &Tensor, // [B, N, d]
    p_base: &Tensor, // [B, N, p, d]
    w: &Tensor,      // [2d, d]
    bias: Option<&Tensor>,
    dims: (usize, usize, usize, usize),
) -> Result<Tensor> {
    let (b, n, p, d) = dims;
    if h_prev.len() != b * n * d || p_base.len() != b * n * p * d || w.len() != 2 * d * d {
        return Err(TensorError::Invalid(format!(
            "fused_fusion: h_prev {:?} / p_base {:?} / w {:?} vs dims {dims:?}",
            h_prev.shape(),
            p_base.shape(),
            w.shape()
        )));
    }
    let (hd, pd, wd) = (h_prev.data(), p_base.data(), w.data());
    let bd = bias.map(Tensor::data);
    let mut out = memory::take_scratch(b * n * p * d);
    let mut acc = vec![0f32; d];
    for ln in 0..b * n {
        let hrow = &hd[ln * d..(ln + 1) * d];
        for pi in 0..p {
            let prow = &pd[(ln * p + pi) * d..(ln * p + pi + 1) * d];
            acc.fill(0.0);
            for (k, &hv) in hrow.iter().enumerate() {
                let wrow = &wd[k * d..(k + 1) * d];
                for (slot, &wv) in acc.iter_mut().zip(wrow.iter()) {
                    *slot += hv * wv;
                }
            }
            for (k, &pv) in prow.iter().enumerate() {
                let wrow = &wd[(d + k) * d..(d + k + 1) * d];
                for (slot, &wv) in acc.iter_mut().zip(wrow.iter()) {
                    *slot += pv * wv;
                }
            }
            let orow = &mut out[(ln * p + pi) * d..(ln * p + pi + 1) * d];
            match bd {
                Some(bv) => {
                    for ((o, &a), &bx) in orow.iter_mut().zip(acc.iter()).zip(bv.iter()) {
                        *o = a + bx;
                    }
                }
                None => orow.copy_from_slice(&acc),
            }
        }
    }
    // One wide tanh pass over the pre-activations — per element the
    // same add-then-tanh chain as the interleaved loop it replaces.
    mathfn::tanh_slice(&mut out);
    Tensor::from_vec(out, &[b, n, p, d])
}

