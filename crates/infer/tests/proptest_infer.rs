//! Property tests for the inference engine's bitwise contract:
//!
//! 1. `InferSession::run` equals the training graph's eval forward
//!    bit-for-bit across random model configurations (awareness
//!    variants, window schedules, proxy counts, sensor attention on or
//!    off, aggregators, flows) and random inputs.
//! 2. Freezing a model configured with a complete (`k = N - 1`) sparse
//!    sensor graph serves the dense model's bits — the frozen leg of
//!    the sparse-attention dense-equivalence gate (DESIGN.md §13).
//! 3. `matmul_packed` over a pre-packed B equals the reference triple
//!    loop bit-for-bit for arbitrary shapes.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use stwa_autograd::Graph;
use stwa_core::{ForecastModel, StwaConfig, StwaModel};
use stwa_infer::InferSession;
use stwa_tensor::linalg::{matmul_packed, matmul_reference, PackedMatrix};
use stwa_tensor::{SensorGraph, Tensor};

fn build_config(variant: u8, windows: u8, proxies: usize, sca: bool, mean_agg: bool) -> StwaConfig {
    let (n, h, u) = (3, 12, 2);
    let mut cfg = match variant % 5 {
        0 => StwaConfig::st_wa(n, h, u),
        1 => StwaConfig::s_wa(n, h, u),
        2 => StwaConfig::wa(n, h, u),
        3 => StwaConfig::st_wa(n, h, u).with_flow(2),
        _ => StwaConfig::st_wa(n, h, u).with_generated_sca(),
    };
    cfg = match windows % 4 {
        0 => cfg.with_windows(&[3, 2, 2]),
        1 => cfg.with_windows(&[4, 3]),
        2 => cfg.with_windows(&[12]),
        _ => cfg.with_windows(&[6, 2]),
    };
    cfg = cfg.with_proxies(proxies);
    cfg.sensor_attention = sca;
    if mean_agg {
        cfg = cfg.with_mean_aggregator();
    }
    // Generated SCA requires sensor attention to matter; keep the flag
    // combination legal either way (the constructor tolerates both).
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn frozen_session_bitwise_matches_graph_eval(
        shape_sel in (0u8..5, 0u8..4, 1usize..=2),
        flags in (any::<bool>(), any::<bool>()),
        batch in 1usize..=3,
        seed in 0u64..1_000_000,
    ) {
        let (variant, windows, proxies) = shape_sel;
        let (sca, mean_agg) = flags;
        let cfg = build_config(variant, windows, proxies, sca, mean_agg);
        let mut rng = StdRng::seed_from_u64(seed);
        let model = StwaModel::new(cfg, &mut rng).unwrap();
        let x = Tensor::randn(&[batch, 3, 12, 1], &mut rng);

        let g = Graph::new();
        let mut eval_rng = StdRng::seed_from_u64(0);
        let want = model
            .forward(&g, &g.constant(x.clone()), &mut eval_rng, false)
            .unwrap()
            .pred;

        let session = InferSession::new(&model).unwrap();
        let got = session.run(&x).unwrap();
        prop_assert_eq!(want.shape(), got.shape().to_vec());
        prop_assert_eq!(want.value().data(), got.data());
    }

    /// Frozen sparse-complete ≡ frozen dense, bit for bit, for random
    /// sensor counts and seeds.
    #[test]
    fn frozen_sparse_complete_graph_matches_dense(
        n in 2usize..6,
        batch in 1usize..=3,
        seed in 0u64..1_000_000,
    ) {
        let dense = StwaModel::new(
            StwaConfig::st_wa(n, 12, 2),
            &mut StdRng::seed_from_u64(seed),
        ).unwrap();
        let sparse = StwaModel::new(
            StwaConfig::st_wa(n, 12, 2)
                .with_sensor_graph(std::sync::Arc::new(SensorGraph::complete(n))),
            &mut StdRng::seed_from_u64(seed),
        ).unwrap();
        let x = Tensor::randn(&[batch, n, 12, 1], &mut StdRng::seed_from_u64(seed ^ 0xabcd));

        let a = InferSession::new(&dense).unwrap().run(&x).unwrap();
        let b = InferSession::new(&sparse).unwrap().run(&x).unwrap();
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&a), bits(&b), "frozen sparse-complete diverged from dense");
    }

    #[test]
    fn packed_gemm_bitwise_matches_reference(
        dims in (1usize..48, 1usize..48, 1usize..48),
        seed in 0u64..1_000_000,
    ) {
        let (m, k, n) = dims;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let packed = PackedMatrix::pack(&b).unwrap();
        let want = matmul_reference(&a, &b).unwrap();
        let got = matmul_packed(&a, &packed).unwrap();
        prop_assert_eq!(want.data(), got.data());
    }

    #[test]
    fn packed_gemm_with_leading_axes_matches_reference(
        dims in (1usize..4, 1usize..12, 1usize..24, 1usize..24),
        seed in 0u64..1_000_000,
    ) {
        let (lead, m, k, n) = dims;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[lead, m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let packed = PackedMatrix::pack(&b).unwrap();
        let flat = a.reshape(&[lead * m, k]).unwrap();
        let want = matmul_reference(&flat, &b).unwrap();
        let got = matmul_packed(&a, &packed).unwrap();
        prop_assert_eq!(got.shape(), &[lead, m, n]);
        prop_assert_eq!(want.data(), got.reshape(&[lead * m, n]).unwrap().data());
    }
}
