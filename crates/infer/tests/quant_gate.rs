//! End-to-end accuracy gates for quantized frozen serving.
//!
//! The quantized paths give up bitwise equality with the training
//! graph, so this suite pins what they promise instead (DESIGN.md §14):
//! a frozen-at-f32 session still *is* bitwise the graph eval (the
//! precision plumbing must be invisible at `Precision::F32`), and the
//! bf16/int8 sessions track the f32 session's forecasts within
//! checked-in MAE budgets on a deterministic model + request. The same
//! thresholds gate `bench_infer` at serving scale.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stwa_core::{StwaConfig, StwaModel};
use stwa_infer::{InferQueue, InferSession, Precision, QueueConfig};
use stwa_tensor::Tensor;

/// Forecast-MAE budgets (normalized units) for quantized sessions
/// against the f32 frozen session. Deliberately loose multiples of the
/// measured deltas (~2e-5 bf16, ~9e-5 int8 at serving scale) so the
/// gate trips on real regressions, not on noise.
const MAE_GATE_BF16: f64 = 0.02;
const MAE_GATE_INT8: f64 = 0.08;

const SENSORS: usize = 12;
const HISTORY: usize = 12;
const HORIZON: usize = 3;

fn mae(a: &Tensor, b: &Tensor) -> f64 {
    assert_eq!(a.shape(), b.shape());
    a.data()
        .iter()
        .zip(b.data().iter())
        .map(|(p, q)| (p - q).abs() as f64)
        .sum::<f64>()
        / a.len() as f64
}

fn model_and_request() -> (StwaModel, Tensor) {
    let mut rng = StdRng::seed_from_u64(33);
    let model =
        StwaModel::new(StwaConfig::st_wa(SENSORS, HISTORY, HORIZON), &mut rng).expect("model");
    let x = Tensor::randn(&[4, SENSORS, HISTORY, 1], &mut rng);
    (model, x)
}

#[test]
fn freezing_at_f32_is_bitwise_the_default_freeze() {
    let (model, x) = model_and_request();
    let plain = InferSession::new(&model).expect("freeze");
    let at_f32 = InferSession::new_at(&model, Precision::F32).expect("freeze_at");
    assert_eq!(plain.precision(), Precision::F32);
    assert_eq!(at_f32.precision(), Precision::F32);
    assert_eq!(
        plain.run(&x).expect("run").data(),
        at_f32.run(&x).expect("run").data(),
        "Precision::F32 must be the identity on the frozen path"
    );
}

#[test]
fn quantized_forecasts_stay_within_their_mae_gates() {
    let (model, x) = model_and_request();
    let base = InferSession::new(&model)
        .expect("freeze")
        .run(&x)
        .expect("f32 forward");
    for (precision, gate) in [
        (Precision::Bf16, MAE_GATE_BF16),
        (Precision::Int8, MAE_GATE_INT8),
    ] {
        let session = InferSession::new_at(&model, precision).expect("freeze_at");
        assert_eq!(session.precision(), precision);
        let pred = session.run(&x).expect("quantized forward");
        assert_eq!(pred.shape(), base.shape());
        assert!(pred.data().iter().all(|v| v.is_finite()));
        let delta = mae(&base, &pred);
        assert!(
            delta <= gate,
            "{precision}: forecast MAE {delta} exceeds the {gate} gate"
        );
    }
}

#[test]
fn int8_session_actually_quantizes_and_shrinks() {
    let (model, x) = model_and_request();
    let f32_session = InferSession::new(&model).expect("freeze");
    let int8_session = InferSession::new_at(&model, Precision::Int8).expect("freeze int8");
    // Smaller panels...
    assert!(
        int8_session.frozen().packed_bytes() * 2 < f32_session.frozen().packed_bytes(),
        "int8 panels did not shrink: {} vs {}",
        int8_session.frozen().packed_bytes(),
        f32_session.frozen().packed_bytes()
    );
    // ...and genuinely different arithmetic: an int8 forward that is
    // bitwise the f32 forward means the precision never reached the
    // kernels.
    let delta = mae(
        &f32_session.run(&x).expect("f32"),
        &int8_session.run(&x).expect("int8"),
    );
    assert!(delta > 0.0, "int8 forward is bitwise f32 — nothing quantized");
}

#[test]
fn quantized_batching_is_row_exact() {
    // Micro-batching must stay exact at reduced precision: a coalesced
    // forward equals each row served alone, bitwise, because row
    // quantization is per-row and panels are shared.
    let (model, x) = model_and_request();
    let solo = InferSession::new_at(&model, Precision::Int8).expect("freeze");
    let mut queue = InferQueue::new(
        InferSession::new_at(&model, Precision::Int8).expect("freeze"),
        QueueConfig {
            max_batch: 4,
            max_wait: std::time::Duration::from_secs(60),
        },
    )
    .expect("queue");
    assert_eq!(queue.precision(), Precision::Int8);
    let ids: Vec<_> = (0..4)
        .map(|i| {
            let row = x.narrow(0, i, 1).expect("row");
            queue.submit(row).expect("submit")
        })
        .collect();
    for (i, id) in ids.into_iter().enumerate() {
        let got = queue.take(id).expect("batch flushed at max_batch");
        let row = x.narrow(0, i, 1).expect("row");
        let want = solo.run(&row).expect("solo run");
        assert_eq!(got.data(), want.data(), "row {i} diverged under batching");
    }
}
