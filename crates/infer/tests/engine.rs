//! End-to-end checks of the frozen inference engine: bitwise equality
//! against the training graph's eval path, staleness refusal, plan
//! reuse, and micro-batching semantics.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use stwa_autograd::Graph;
use stwa_core::{ForecastModel, StwaConfig, StwaModel};
use stwa_infer::{InferQueue, InferSession, QueueConfig};
use stwa_tensor::Tensor;

fn graph_eval(model: &StwaModel, x: &Tensor) -> Tensor {
    let g = Graph::new();
    let xv = g.constant(x.clone());
    let mut rng = StdRng::seed_from_u64(0);
    let out = model.forward(&g, &xv, &mut rng, false).unwrap();
    out.pred.value().as_ref().clone()
}

#[test]
fn frozen_forward_bitwise_matches_graph_eval_for_every_variant() {
    let configs = [
        StwaConfig::st_wa(3, 12, 4),
        StwaConfig::s_wa(3, 12, 4),
        StwaConfig::wa(3, 12, 4),
        StwaConfig::deterministic(3, 12, 4),
        StwaConfig::st_wa(3, 12, 4).with_mean_aggregator(),
        StwaConfig::st_wa(3, 12, 4).with_flow(2),
        StwaConfig::s_wa(3, 12, 4).with_flow(2),
        StwaConfig::st_wa(3, 12, 4).with_generated_sca(),
        StwaConfig::s_wa(3, 12, 4).with_generated_sca(),
        StwaConfig {
            sensor_attention: false,
            ..StwaConfig::st_wa(3, 12, 4)
        },
        StwaConfig::wa_1(3, 12, 4),
        StwaConfig::st_wa(3, 12, 4)
            .with_sensor_graph(std::sync::Arc::new(stwa_tensor::SensorGraph::complete(3))),
        StwaConfig::st_wa(3, 12, 4).with_sensor_graph(std::sync::Arc::new(
            stwa_tensor::SensorGraph::from_neighbor_lists(3, &[vec![0, 1], vec![0, 1, 2], vec![1, 2]])
                .unwrap(),
        )),
    ];
    for (i, cfg) in configs.into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(100 + i as u64);
        let model = StwaModel::new(cfg, &mut rng).unwrap();
        let session = InferSession::new(&model).unwrap();
        for b in [1usize, 3] {
            let x = Tensor::randn(&[b, 3, 12, 1], &mut rng);
            let want = graph_eval(&model, &x);
            let got = session.run(&x).unwrap();
            assert_eq!(want.shape(), got.shape(), "variant {i}, batch {b}");
            assert_eq!(
                want.data(),
                got.data(),
                "variant {i}, batch {b}: frozen path diverged from graph eval"
            );
        }
    }
}

#[test]
fn frozen_sparse_complete_graph_matches_dense_bitwise() {
    // Same seed -> identical parameters; the only difference is the
    // attention support, and a complete graph must reproduce the dense
    // fold orders exactly, through freeze and serve.
    let n = 5;
    let dense = StwaModel::new(StwaConfig::st_wa(n, 12, 4), &mut StdRng::seed_from_u64(7)).unwrap();
    let sparse = StwaModel::new(
        StwaConfig::st_wa(n, 12, 4)
            .with_sensor_graph(std::sync::Arc::new(stwa_tensor::SensorGraph::complete(n))),
        &mut StdRng::seed_from_u64(7),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(8);
    let x = Tensor::randn(&[2, n, 12, 1], &mut rng);
    let a = InferSession::new(&dense).unwrap().run(&x).unwrap();
    let b = InferSession::new(&sparse).unwrap().run(&x).unwrap();
    assert_eq!(a.data(), b.data());
}

#[test]
fn stale_session_refuses_to_serve() {
    let mut rng = StdRng::seed_from_u64(7);
    let model = StwaModel::new(StwaConfig::st_wa(3, 12, 4), &mut rng).unwrap();
    let session = InferSession::new(&model).unwrap();
    let x = Tensor::randn(&[2, 3, 12, 1], &mut rng);
    assert!(!session.is_stale());
    session.run(&x).unwrap();

    // Mutate one parameter, as an optimizer step would.
    let p = &model.store().params()[0];
    let mut v = p.value();
    v.data_mut()[0] += 1.0;
    p.set_value(v);

    assert!(session.is_stale());
    let err = session.run(&x).unwrap_err();
    assert!(
        format!("{err}").contains("stale"),
        "expected a staleness refusal, got: {err}"
    );

    // Re-freezing picks the new weights up and serves again, matching
    // the mutated model's graph path.
    let fresh = InferSession::new(&model).unwrap();
    assert_eq!(fresh.run(&x).unwrap().data(), graph_eval(&model, &x).data());
}

#[test]
fn plan_arena_reuses_per_batch_size_plans() {
    let mut rng = StdRng::seed_from_u64(8);
    let model = StwaModel::new(StwaConfig::st_wa(3, 12, 4), &mut rng).unwrap();
    let session = InferSession::new(&model).unwrap();
    assert_eq!(session.plan_count(), 0);
    let x2 = Tensor::randn(&[2, 3, 12, 1], &mut rng);
    let x5 = Tensor::randn(&[5, 3, 12, 1], &mut rng);
    let first = session.run(&x2).unwrap();
    assert_eq!(session.plan_count(), 1);
    session.run(&x5).unwrap();
    assert_eq!(session.plan_count(), 2);
    // Replays at known batch sizes add no plans and stay bitwise stable.
    let again = session.run(&x2).unwrap();
    assert_eq!(session.plan_count(), 2);
    assert_eq!(first.data(), again.data());
}

#[test]
fn frozen_snapshot_reports_packed_bytes() {
    let mut rng = StdRng::seed_from_u64(9);
    let model = StwaModel::new(StwaConfig::st_wa(3, 12, 4), &mut rng).unwrap();
    let session = InferSession::new(&model).unwrap();
    assert!(session.frozen().packed_bytes() > 0);
    assert_eq!(session.frozen().num_sensors(), 3);
    assert_eq!(session.frozen().input_len(), 12);
    assert_eq!(session.frozen().horizon(), 4);
    assert_eq!(session.frozen().features(), 1);
}

#[test]
fn queue_batched_results_match_individual_runs_bitwise() {
    let mut rng = StdRng::seed_from_u64(10);
    let model = StwaModel::new(StwaConfig::st_wa(3, 12, 4), &mut rng).unwrap();
    let reference = InferSession::new(&model).unwrap();
    let session = InferSession::new(&model).unwrap();
    let mut queue = InferQueue::new(
        session,
        QueueConfig {
            max_batch: 4,
            max_wait: Duration::from_secs(3600),
        },
    )
    .unwrap();

    let rows: Vec<Tensor> = (0..4)
        .map(|_| Tensor::randn(&[3, 12, 1], &mut rng))
        .collect();
    let mut ids = Vec::new();
    for row in &rows {
        ids.push(queue.submit(row.clone()).unwrap());
    }
    // 4th submit hit max_batch and flushed inline.
    assert_eq!(queue.pending_rows(), 0);
    for (id, row) in ids.iter().zip(&rows) {
        let got = queue.take(*id).expect("flushed result available");
        let want = reference.run(&row.clone().unsqueeze(0).unwrap()).unwrap();
        assert_eq!(want.data(), got.data(), "batched row diverged");
    }
    // Tickets are single-use.
    assert!(queue.take(ids[0]).is_none());
}

#[test]
fn queue_flushes_on_wait_and_rejects_bad_shapes() {
    let mut rng = StdRng::seed_from_u64(11);
    let model = StwaModel::new(StwaConfig::wa(3, 12, 4), &mut rng).unwrap();
    let session = InferSession::new(&model).unwrap();
    let mut queue = InferQueue::new(
        session,
        QueueConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(0),
        },
    )
    .unwrap();

    // Nothing pending: poll is a no-op.
    assert_eq!(queue.poll().unwrap(), 0);

    let id = queue
        .submit(Tensor::randn(&[1, 3, 12, 1], &mut rng))
        .unwrap();
    assert_eq!(queue.pending_rows(), 1);
    assert!(queue.take(id).is_none(), "not flushed yet");
    // max_wait = 0: the next poll flushes immediately.
    assert_eq!(queue.poll().unwrap(), 1);
    assert_eq!(queue.take(id).unwrap().shape(), &[1, 3, 4, 1]);

    // Wrong shapes are rejected at submit.
    assert!(queue.submit(Tensor::zeros(&[2, 3, 12, 1])).is_err());
    assert!(queue.submit(Tensor::zeros(&[12, 1])).is_err());

    // Forced flush drains the remainder.
    queue.submit(Tensor::randn(&[3, 12, 1], &mut rng)).unwrap();
    assert_eq!(queue.flush().unwrap(), 1);
    assert_eq!(queue.flush().unwrap(), 0);
}

#[test]
fn queue_surfaces_staleness_and_recovers_after_refreeze() {
    let mut rng = StdRng::seed_from_u64(12);
    let model = StwaModel::new(StwaConfig::st_wa(3, 12, 4), &mut rng).unwrap();
    let session = InferSession::new(&model).unwrap();
    let mut queue = InferQueue::new(session, QueueConfig::default()).unwrap();

    let id = queue.submit(Tensor::randn(&[3, 12, 1], &mut rng)).unwrap();
    let p = &model.store().params()[0];
    let mut v = p.value();
    v.data_mut()[0] -= 0.5;
    p.set_value(v);

    // The flush fails but keeps the request queued.
    assert!(queue.flush().is_err());
    assert_eq!(queue.pending_rows(), 1);
    assert!(queue.take(id).is_none());
}
