//! `InferQueue` edge cases left open by the engine tests: a `max_wait`
//! expiry flushing a partial batch, zero-length request rejection, the
//! staleness error after a registry-driven hot swap (the
//! freeze-from-registry transport), graceful `close()` drain
//! semantics, and concurrent submitters funneling mixed batch sizes
//! through the owning thread.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use stwa_ckpt::{Registry, TrainCheckpoint};
use stwa_core::{ForecastModel, StwaConfig, StwaModel};
use stwa_infer::{FrozenStwa, InferQueue, InferSession, QueueConfig};
use stwa_tensor::Tensor;

const N: usize = 3;
const H: usize = 12;
const U: usize = 4;

fn model(seed: u64) -> StwaModel {
    let mut rng = StdRng::seed_from_u64(seed);
    StwaModel::new(StwaConfig::st_wa(N, H, U), &mut rng).unwrap()
}

fn sample(seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::randn(&[N, H, 1], &mut rng)
}

fn temp_root(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!(
        "stwa_queue_edges_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    root
}

#[test]
fn max_wait_expiry_flushes_a_partial_batch() {
    let m = model(11);
    let session = InferSession::new(&m).unwrap();
    let mut queue = InferQueue::new(
        session,
        QueueConfig {
            max_batch: 8,
            // Every pending request is immediately "old enough"; poll
            // must flush however few rows are waiting.
            max_wait: Duration::ZERO,
        },
    )
    .unwrap();

    let ids: Vec<_> = (0..3).map(|i| queue.submit(sample(50 + i)).unwrap()).collect();
    assert_eq!(queue.pending_rows(), 3, "below max_batch, nothing flushed yet");
    for id in &ids {
        assert!(queue.take(*id).is_none(), "no result before the flush");
    }

    let flushed = queue.poll().unwrap();
    assert_eq!(flushed, 3, "poll must flush the partial batch on expiry");
    assert_eq!(queue.pending_rows(), 0);

    // Each coalesced answer is bitwise equal to serving the request
    // alone — batching must never change an answer.
    let solo = InferSession::new(&m).unwrap();
    for (i, id) in ids.iter().enumerate() {
        let got = queue.take(*id).expect("flushed request has a result");
        let want = solo.run(&sample(50 + i as u64).unsqueeze(0).unwrap()).unwrap();
        assert_eq!(got.shape(), want.shape());
        for (a, b) in got.data().iter().zip(want.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "request {i} diverged");
        }
    }

    // An empty queue polls to zero instead of erroring.
    assert_eq!(queue.poll().unwrap(), 0);
}

#[test]
fn zero_length_requests_are_rejected_at_submit() {
    let m = model(12);
    let mut queue = InferQueue::new(
        InferSession::new(&m).unwrap(),
        QueueConfig {
            max_batch: 4,
            max_wait: Duration::ZERO,
        },
    )
    .unwrap();

    // Zero-sized dimensions in either accepted rank.
    for bad in [
        Tensor::zeros(&[N, 0, 1]),
        Tensor::zeros(&[0, H, 1]),
        Tensor::zeros(&[1, N, H, 0]),
    ] {
        let err = queue.submit(bad).unwrap_err();
        assert!(
            err.to_string().contains("zero-length"),
            "got: {err}"
        );
    }
    // Wrong ranks still rejected as before.
    assert!(queue.submit(Tensor::zeros(&[N, H])).is_err());
    assert!(queue.submit(Tensor::zeros(&[2, N, H, 1])).is_err());
    assert_eq!(queue.pending_rows(), 0, "rejected requests never enqueue");

    // The queue still serves valid traffic afterwards — no poisoning.
    let id = queue.submit(sample(60)).unwrap();
    queue.flush().unwrap();
    assert!(queue.take(id).is_some());
}

#[test]
fn close_flushes_pending_and_rejects_new_submits() {
    let m = model(14);
    let mut queue = InferQueue::new(
        InferSession::new(&m).unwrap(),
        QueueConfig {
            max_batch: 8,
            // Pending rows would sit forever without the close() drain.
            max_wait: Duration::from_secs(3600),
        },
    )
    .unwrap();

    let ids: Vec<_> = (0..3).map(|i| queue.submit(sample(80 + i)).unwrap()).collect();
    assert_eq!(queue.pending_rows(), 3);
    assert!(!queue.is_closed());

    let flushed = queue.close().unwrap();
    assert_eq!(flushed, 3, "close must drain every pending request");
    assert!(queue.is_closed());
    assert_eq!(queue.pending_rows(), 0);

    // The drained results are collectable and bitwise equal to solo
    // eval — shutdown never changes an answer.
    let solo = InferSession::new(&m).unwrap();
    for (i, id) in ids.iter().enumerate() {
        let got = queue.take(*id).expect("close must flush pending results");
        let want = solo.run(&sample(80 + i as u64).unsqueeze(0).unwrap()).unwrap();
        assert_eq!(got.shape(), want.shape());
        for (a, b) in got.data().iter().zip(want.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "request {i} diverged at close");
        }
    }

    // Submitting after close fails with the typed closed error instead
    // of queueing work that nothing will ever flush.
    let err = queue.submit(sample(90)).unwrap_err();
    assert!(err.to_string().contains("closed"), "got: {err}");

    // close() is idempotent.
    assert_eq!(queue.close().unwrap(), 0);
}

#[test]
fn concurrent_submitters_coalesce_row_bitwise() {
    // Tensors are single-threaded (`Rc` storage), so concurrency lives
    // *in front of* the queue: producer threads funnel raw windows
    // through a channel to the owning thread, which submits in arrival
    // order — exactly the shape of the network serving front-end. The
    // flush points are a mix of max_batch auto-flushes and manual
    // flushes at a different stride, so coalesced batch sizes vary.
    const THREADS: usize = 8;
    const PER_THREAD: usize = 25;
    let m = model(21);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, usize, Vec<f32>)>();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let tx = tx.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let x = sample((1000 + t * PER_THREAD + i) as u64);
                    tx.send((t, i, x.data().to_vec())).unwrap();
                }
            });
        }
        drop(tx);

        let mut queue = InferQueue::new(
            InferSession::new(&m).unwrap(),
            QueueConfig {
                max_batch: 5,
                max_wait: Duration::from_secs(3600),
            },
        )
        .unwrap();
        let mut tickets = Vec::new();
        let mut submitted = 0usize;
        while let Ok((t, i, data)) = rx.recv() {
            let x = Tensor::from_vec(data, &[N, H, 1]).unwrap();
            tickets.push(((t, i), queue.submit(x).unwrap()));
            submitted += 1;
            if submitted.is_multiple_of(7) {
                queue.flush().unwrap();
            }
        }
        queue.flush().unwrap();
        assert_eq!(tickets.len(), THREADS * PER_THREAD);

        // Every coalesced row must be bitwise identical to serving the
        // same window alone, regardless of which batch it landed in.
        let solo = InferSession::new(&m).unwrap();
        for ((t, i), id) in tickets {
            let got = queue.take(id).expect("every ticket resolves");
            let want = solo
                .run(
                    &sample((1000 + t * PER_THREAD + i) as u64)
                        .unsqueeze(0)
                        .unwrap(),
                )
                .unwrap();
            assert_eq!(got.shape(), want.shape());
            for (a, b) in got.data().iter().zip(want.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "thread {t} request {i} diverged");
            }
        }
    });
}

#[test]
fn registry_hot_swap_staleness_error_then_fresh_session_serves() {
    let root = temp_root("hot_swap");
    let registry = Registry::open(&root).unwrap();

    // v1: the live model's weights, published to the registry.
    let m = model(13);
    registry
        .publish("ST-WA", &TrainCheckpoint::params_only("ST-WA", m.store()))
        .unwrap();

    // Serving session frozen from the live weights.
    let mut queue = InferQueue::new(
        InferSession::new(&m).unwrap(),
        QueueConfig {
            max_batch: 4,
            max_wait: Duration::ZERO,
        },
    )
    .unwrap();
    let warm = queue.submit(sample(70)).unwrap();
    queue.flush().unwrap();
    assert!(queue.take(warm).is_some());

    // v2: different weights (a fresh model stands in for "more
    // training"), published on top.
    let retrained = model(99);
    registry
        .publish("ST-WA", &TrainCheckpoint::params_only("ST-WA", retrained.store()))
        .unwrap();

    // Hot swap: load v2 from the registry into the live model and
    // freeze. This mutates the store, so the OLD session is now stale.
    let fresh = FrozenStwa::freeze_from_registry(&m, &registry, "ST-WA", None).unwrap();
    assert!(queue.session().is_stale());

    // The old queue refuses with the staleness error and re-queues the
    // batch instead of dropping it.
    let id = queue.submit(sample(71)).unwrap();
    let err = queue.flush().unwrap_err();
    assert!(err.to_string().contains("stale"), "got: {err}");
    assert_eq!(queue.pending_rows(), 1, "failed batch must be re-queued");
    assert!(queue.take(id).is_none());

    // A session over the swapped-in snapshot serves the v2 weights:
    // bitwise equal to freezing the retrained model directly.
    let swapped = InferSession::from_frozen(fresh);
    let x = sample(71).unsqueeze(0).unwrap();
    let got = swapped.run(&x).unwrap();
    let want = InferSession::new(&retrained).unwrap().run(&x).unwrap();
    for (a, b) in got.data().iter().zip(want.data()) {
        assert_eq!(a.to_bits(), b.to_bits(), "hot-swapped weights diverged");
    }

    // Pinned-version load still reaches v1.
    let v1 = FrozenStwa::freeze_from_registry(&m, &registry, "ST-WA", Some(1)).unwrap();
    let m1 = model(13);
    let want_v1 = InferSession::new(&m1).unwrap().run(&x).unwrap();
    let got_v1 = InferSession::from_frozen(v1).run(&x).unwrap();
    for (a, b) in got_v1.data().iter().zip(want_v1.data()) {
        assert_eq!(a.to_bits(), b.to_bits(), "pinned v1 load diverged");
    }

    let _ = std::fs::remove_dir_all(&root);
}
