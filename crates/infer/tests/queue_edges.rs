//! `InferQueue` edge cases left open by the engine tests: a `max_wait`
//! expiry flushing a partial batch, zero-length request rejection, and
//! the staleness error after a registry-driven hot swap (the
//! freeze-from-registry transport).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use stwa_ckpt::{Registry, TrainCheckpoint};
use stwa_core::{ForecastModel, StwaConfig, StwaModel};
use stwa_infer::{FrozenStwa, InferQueue, InferSession, QueueConfig};
use stwa_tensor::Tensor;

const N: usize = 3;
const H: usize = 12;
const U: usize = 4;

fn model(seed: u64) -> StwaModel {
    let mut rng = StdRng::seed_from_u64(seed);
    StwaModel::new(StwaConfig::st_wa(N, H, U), &mut rng).unwrap()
}

fn sample(seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::randn(&[N, H, 1], &mut rng)
}

fn temp_root(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!(
        "stwa_queue_edges_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    root
}

#[test]
fn max_wait_expiry_flushes_a_partial_batch() {
    let m = model(11);
    let session = InferSession::new(&m).unwrap();
    let mut queue = InferQueue::new(
        session,
        QueueConfig {
            max_batch: 8,
            // Every pending request is immediately "old enough"; poll
            // must flush however few rows are waiting.
            max_wait: Duration::ZERO,
        },
    )
    .unwrap();

    let ids: Vec<_> = (0..3).map(|i| queue.submit(sample(50 + i)).unwrap()).collect();
    assert_eq!(queue.pending_rows(), 3, "below max_batch, nothing flushed yet");
    for id in &ids {
        assert!(queue.take(*id).is_none(), "no result before the flush");
    }

    let flushed = queue.poll().unwrap();
    assert_eq!(flushed, 3, "poll must flush the partial batch on expiry");
    assert_eq!(queue.pending_rows(), 0);

    // Each coalesced answer is bitwise equal to serving the request
    // alone — batching must never change an answer.
    let solo = InferSession::new(&m).unwrap();
    for (i, id) in ids.iter().enumerate() {
        let got = queue.take(*id).expect("flushed request has a result");
        let want = solo.run(&sample(50 + i as u64).unsqueeze(0).unwrap()).unwrap();
        assert_eq!(got.shape(), want.shape());
        for (a, b) in got.data().iter().zip(want.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "request {i} diverged");
        }
    }

    // An empty queue polls to zero instead of erroring.
    assert_eq!(queue.poll().unwrap(), 0);
}

#[test]
fn zero_length_requests_are_rejected_at_submit() {
    let m = model(12);
    let mut queue = InferQueue::new(
        InferSession::new(&m).unwrap(),
        QueueConfig {
            max_batch: 4,
            max_wait: Duration::ZERO,
        },
    )
    .unwrap();

    // Zero-sized dimensions in either accepted rank.
    for bad in [
        Tensor::zeros(&[N, 0, 1]),
        Tensor::zeros(&[0, H, 1]),
        Tensor::zeros(&[1, N, H, 0]),
    ] {
        let err = queue.submit(bad).unwrap_err();
        assert!(
            err.to_string().contains("zero-length"),
            "got: {err}"
        );
    }
    // Wrong ranks still rejected as before.
    assert!(queue.submit(Tensor::zeros(&[N, H])).is_err());
    assert!(queue.submit(Tensor::zeros(&[2, N, H, 1])).is_err());
    assert_eq!(queue.pending_rows(), 0, "rejected requests never enqueue");

    // The queue still serves valid traffic afterwards — no poisoning.
    let id = queue.submit(sample(60)).unwrap();
    queue.flush().unwrap();
    assert!(queue.take(id).is_some());
}

#[test]
fn registry_hot_swap_staleness_error_then_fresh_session_serves() {
    let root = temp_root("hot_swap");
    let registry = Registry::open(&root).unwrap();

    // v1: the live model's weights, published to the registry.
    let m = model(13);
    registry
        .publish("ST-WA", &TrainCheckpoint::params_only("ST-WA", m.store()))
        .unwrap();

    // Serving session frozen from the live weights.
    let mut queue = InferQueue::new(
        InferSession::new(&m).unwrap(),
        QueueConfig {
            max_batch: 4,
            max_wait: Duration::ZERO,
        },
    )
    .unwrap();
    let warm = queue.submit(sample(70)).unwrap();
    queue.flush().unwrap();
    assert!(queue.take(warm).is_some());

    // v2: different weights (a fresh model stands in for "more
    // training"), published on top.
    let retrained = model(99);
    registry
        .publish("ST-WA", &TrainCheckpoint::params_only("ST-WA", retrained.store()))
        .unwrap();

    // Hot swap: load v2 from the registry into the live model and
    // freeze. This mutates the store, so the OLD session is now stale.
    let fresh = FrozenStwa::freeze_from_registry(&m, &registry, "ST-WA", None).unwrap();
    assert!(queue.session().is_stale());

    // The old queue refuses with the staleness error and re-queues the
    // batch instead of dropping it.
    let id = queue.submit(sample(71)).unwrap();
    let err = queue.flush().unwrap_err();
    assert!(err.to_string().contains("stale"), "got: {err}");
    assert_eq!(queue.pending_rows(), 1, "failed batch must be re-queued");
    assert!(queue.take(id).is_none());

    // A session over the swapped-in snapshot serves the v2 weights:
    // bitwise equal to freezing the retrained model directly.
    let swapped = InferSession::from_frozen(fresh);
    let x = sample(71).unsqueeze(0).unwrap();
    let got = swapped.run(&x).unwrap();
    let want = InferSession::new(&retrained).unwrap().run(&x).unwrap();
    for (a, b) in got.data().iter().zip(want.data()) {
        assert_eq!(a.to_bits(), b.to_bits(), "hot-swapped weights diverged");
    }

    // Pinned-version load still reaches v1.
    let v1 = FrozenStwa::freeze_from_registry(&m, &registry, "ST-WA", Some(1)).unwrap();
    let m1 = model(13);
    let want_v1 = InferSession::new(&m1).unwrap().run(&x).unwrap();
    let got_v1 = InferSession::from_frozen(v1).run(&x).unwrap();
    for (a, b) in got_v1.data().iter().zip(want_v1.data()) {
        assert_eq!(a.to_bits(), b.to_bits(), "pinned v1 load diverged");
    }

    let _ = std::fs::remove_dir_all(&root);
}
