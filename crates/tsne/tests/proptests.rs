//! Property-based tests of the t-SNE implementation.

use proptest::prelude::*;
use stwa_tensor::Tensor;
use stwa_tsne::{joint_affinities, tsne, TsneConfig};

fn points(n: usize, dim: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-3.0f32..3.0, n * dim)
        .prop_map(move |data| Tensor::from_vec(data, &[n, dim]).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn embedding_is_finite_and_centered(data in points(10, 4)) {
        let cfg = TsneConfig {
            iterations: 80,
            perplexity: 4.0,
            ..TsneConfig::default()
        };
        let y = tsne(&data, &cfg).unwrap();
        prop_assert_eq!(y.shape(), &[10, 2]);
        prop_assert!(!y.has_non_finite());
        let mx: f32 = (0..10).map(|i| y.at(&[i, 0])).sum::<f32>() / 10.0;
        let my: f32 = (0..10).map(|i| y.at(&[i, 1])).sum::<f32>() / 10.0;
        prop_assert!(mx.abs() < 1e-2 && my.abs() < 1e-2);
    }

    #[test]
    fn duplicate_points_get_maximal_affinity(data in points(8, 3)) {
        // The provable invariant behind "duplicates embed together":
        // an exact duplicate is its twin's nearest neighbor, so the
        // symmetrized affinity P[0][1] must be the largest off-diagonal
        // entry of row 0. This is deterministic, unlike the non-convex
        // final layout.
        let mut dup = data.data().to_vec();
        for c in 0..3 {
            dup[3 + c] = dup[c]; // row 1 := row 0
        }
        // Keep the remaining points distinct from the pair.
        for r in 2..8 {
            dup[r * 3] += r as f32;
        }
        let t = Tensor::from_vec(dup, &[8, 3]).unwrap();
        let p = joint_affinities(&t, 3.0).unwrap();
        let pair = p.at(&[0, 1]);
        for j in 2..8 {
            prop_assert!(
                pair >= p.at(&[0, j]),
                "P[0][1]={pair} must dominate P[0][{j}]={}",
                p.at(&[0, j])
            );
        }
        // And the matrix stays a symmetric distribution.
        let total: f32 = p.data().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-3);
    }
}
