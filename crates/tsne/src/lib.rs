//! # stwa-tsne
//!
//! Exact t-SNE (van der Maaten & Hinton, 2008) for the paper's Figure 9
//! latent-space visualizations: embedding the generated projection
//! matrices `phi_t^(i)` and the spatial latents `z^(i)` into 2-D.
//!
//! The implementation is the standard exact algorithm: Gaussian input
//! affinities with a per-point bandwidth found by binary search on the
//! target perplexity, Student-t output affinities, gradient descent with
//! momentum and early exaggeration. Exact (O(n^2)) is the right tool
//! here — the figure embeds at most a few hundred points.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stwa_tensor::{Result, Tensor, TensorError};

/// t-SNE hyperparameters.
#[derive(Debug, Clone)]
pub struct TsneConfig {
    /// Target perplexity (effective neighborhood size).
    pub perplexity: f32,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Iterations with exaggerated input affinities.
    pub early_exaggeration_iters: usize,
    /// Exaggeration factor.
    pub early_exaggeration: f32,
    /// RNG seed for the initial layout.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            perplexity: 15.0,
            iterations: 500,
            learning_rate: 100.0,
            early_exaggeration_iters: 100,
            early_exaggeration: 12.0,
            seed: 7,
        }
    }
}

/// Embed `data` (`[n, dim]`) into 2-D (`[n, 2]`).
pub fn tsne(data: &Tensor, config: &TsneConfig) -> Result<Tensor> {
    if data.rank() != 2 {
        return Err(TensorError::Invalid(format!(
            "tsne expects [n, dim], got {:?}",
            data.shape()
        )));
    }
    let n = data.shape()[0];
    if n < 4 {
        return Err(TensorError::Invalid(format!(
            "tsne needs at least 4 points, got {n}"
        )));
    }
    let p = joint_affinities(data, config.perplexity)?;

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut y: Vec<[f32; 2]> = (0..n)
        .map(|_| {
            let t = Tensor::randn(&[2], &mut rng);
            [t.data()[0] * 1e-2, t.data()[1] * 1e-2]
        })
        .collect();
    let mut velocity = vec![[0f32; 2]; n];
    let mut gains = vec![[1f32; 2]; n];

    let mut q = vec![0f32; n * n];
    let mut num = vec![0f32; n * n];
    for it in 0..config.iterations {
        let exaggeration = if it < config.early_exaggeration_iters {
            config.early_exaggeration
        } else {
            1.0
        };
        // Keep the attraction "spring constant" lr * 4 * exaggeration / n
        // below ~1 regardless of n or the exaggeration phase — gradient
        // magnitudes scale like exaggeration / n (row sums of P are 1/n),
        // so a fixed lr diverges on small point sets.
        let lr = (config.learning_rate / 100.0) * n as f32 / (8.0 * exaggeration);
        // Student-t output affinities.
        let mut z = 0f32;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    num[i * n + j] = 0.0;
                    continue;
                }
                let dx = y[i][0] - y[j][0];
                let dy = y[i][1] - y[j][1];
                let t = 1.0 / (1.0 + dx * dx + dy * dy);
                num[i * n + j] = t;
                z += t;
            }
        }
        let z = z.max(1e-12);
        for (qv, &nv) in q.iter_mut().zip(num.iter()) {
            *qv = (nv / z).max(1e-12);
        }
        // Gradient + momentum update with adaptive gains.
        let momentum = if it < 250 { 0.5 } else { 0.8 };
        for i in 0..n {
            let mut grad = [0f32; 2];
            for j in 0..n {
                if i == j {
                    continue;
                }
                let pij = p.data()[i * n + j] * exaggeration;
                let coeff = 4.0 * (pij - q[i * n + j]) * num[i * n + j];
                grad[0] += coeff * (y[i][0] - y[j][0]);
                grad[1] += coeff * (y[i][1] - y[j][1]);
            }
            for d in 0..2 {
                // Classic t-SNE gain schedule.
                gains[i][d] = if grad[d].signum() != velocity[i][d].signum() {
                    (gains[i][d] + 0.2).min(10.0)
                } else {
                    (gains[i][d] * 0.8).max(0.01)
                };
                velocity[i][d] = momentum * velocity[i][d] - lr * gains[i][d] * grad[d];
                y[i][d] += velocity[i][d];
            }
        }
        // Re-center to keep the embedding bounded.
        let (mut cx, mut cy) = (0f32, 0f32);
        for pt in &y {
            cx += pt[0];
            cy += pt[1];
        }
        cx /= n as f32;
        cy /= n as f32;
        for pt in &mut y {
            pt[0] -= cx;
            pt[1] -= cy;
        }
    }

    let flat: Vec<f32> = y.iter().flat_map(|p| [p[0], p[1]]).collect();
    Tensor::from_vec(flat, &[n, 2])
}

/// Symmetrized, normalized input affinities `P` with per-point bandwidth
/// chosen by binary search to hit the target perplexity.
///
/// Public for inspection and testing: `P` is the exact quantity the
/// embedding optimizes toward, so invariants (symmetry, normalization,
/// nearest-neighbor dominance) are checkable here deterministically,
/// unlike properties of the non-convex final layout.
pub fn joint_affinities(data: &Tensor, perplexity: f32) -> Result<Tensor> {
    let n = data.shape()[0];
    let dim = data.shape()[1];
    // Pairwise squared distances.
    let mut d2 = vec![0f32; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let mut s = 0f32;
            for c in 0..dim {
                let diff = data.data()[i * dim + c] - data.data()[j * dim + c];
                s += diff * diff;
            }
            d2[i * n + j] = s;
            d2[j * n + i] = s;
        }
    }
    let target_entropy = perplexity.max(1.01).ln();
    let mut p = vec![0f32; n * n];
    for i in 0..n {
        // Binary search beta = 1 / (2 sigma^2).
        let row = &d2[i * n..(i + 1) * n];
        let (mut beta, mut beta_lo, mut beta_hi) = (1f32, 0f32, f32::INFINITY);
        let mut probs = vec![0f32; n];
        for _ in 0..64 {
            let mut sum = 0f32;
            for (j, pr) in probs.iter_mut().enumerate() {
                *pr = if j == i { 0.0 } else { (-beta * row[j]).exp() };
                sum += *pr;
            }
            // Divide by the true sum whenever it is positive — raw sums
            // for outlier points legitimately underflow far below any
            // fixed epsilon (e.g. 6e-13 for a point 2.4 sigma from the
            // pack), and flooring them would leave the row
            // unnormalized. An exactly-zero sum leaves the row zero for
            // the uniform fallback after the loop.
            let sum = if sum > 0.0 { sum } else { 1.0 };
            // Shannon entropy of the conditional distribution.
            let mut entropy = 0f32;
            for pr in probs.iter_mut() {
                *pr /= sum;
                if *pr > 1e-12 {
                    entropy -= *pr * pr.ln();
                }
            }
            let diff = entropy - target_entropy;
            if diff.abs() < 1e-4 {
                break;
            }
            if diff > 0.0 {
                beta_lo = beta;
                beta = if beta_hi.is_finite() {
                    (beta + beta_hi) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                beta_hi = beta;
                beta = (beta + beta_lo) / 2.0;
            }
        }
        // Degenerate geometries (tiny or tied distance spreads) can end
        // the search on an iteration where every exp underflowed; fall
        // back to a uniform conditional rather than an all-zero row.
        let row_sum: f32 = probs.iter().sum();
        if row_sum <= 0.0 || !row_sum.is_finite() {
            let uniform = 1.0 / (n - 1) as f32;
            for (j, pr) in probs.iter_mut().enumerate() {
                *pr = if j == i { 0.0 } else { uniform };
            }
        }
        p[i * n..(i + 1) * n].copy_from_slice(&probs);
    }
    // Symmetrize and normalize: P = (P + P^T) / 2n.
    let mut joint = vec![0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            joint[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f32)).max(1e-12);
        }
    }
    Tensor::from_vec(joint, &[n, n])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian blobs in 8-D.
    fn blobs(per_cluster: usize) -> (Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(3);
        let n = per_cluster * 2;
        let mut data = Vec::with_capacity(n * 8);
        let mut labels = Vec::with_capacity(n);
        for c in 0..2 {
            let center = if c == 0 { -5.0 } else { 5.0 };
            for _ in 0..per_cluster {
                let noise = Tensor::randn(&[8], &mut rng);
                for k in 0..8 {
                    data.push(center + noise.data()[k] * 0.3);
                }
                labels.push(c);
            }
        }
        (Tensor::from_vec(data, &[n, 8]).unwrap(), labels)
    }

    #[test]
    fn affinities_are_a_distribution() {
        let (data, _) = blobs(8);
        let p = joint_affinities(&data, 5.0).unwrap();
        let total: f32 = p.data().iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "sum {total}");
        assert!(p.data().iter().all(|&v| v > 0.0));
        // Symmetric.
        let n = data.shape()[0];
        for i in 0..n {
            for j in 0..n {
                assert!((p.at(&[i, j]) - p.at(&[j, i])).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn separates_two_blobs() {
        let (data, labels) = blobs(10);
        let config = TsneConfig {
            iterations: 300,
            perplexity: 5.0,
            ..TsneConfig::default()
        };
        let y = tsne(&data, &config).unwrap();
        assert_eq!(y.shape(), &[20, 2]);
        assert!(!y.has_non_finite());
        // Between-cluster distance must dominate within-cluster spread.
        let centroid = |c: usize| -> [f32; 2] {
            let mut s = [0f32; 2];
            let mut count = 0;
            for (i, &l) in labels.iter().enumerate() {
                if l == c {
                    s[0] += y.at(&[i, 0]);
                    s[1] += y.at(&[i, 1]);
                    count += 1;
                }
            }
            [s[0] / count as f32, s[1] / count as f32]
        };
        let (c0, c1) = (centroid(0), centroid(1));
        let between = ((c0[0] - c1[0]).powi(2) + (c0[1] - c1[1]).powi(2)).sqrt();
        let mut sum_within = 0f32;
        for (i, &l) in labels.iter().enumerate() {
            let c = if l == 0 { c0 } else { c1 };
            sum_within += ((y.at(&[i, 0]) - c[0]).powi(2) + (y.at(&[i, 1]) - c[1]).powi(2)).sqrt();
        }
        let mean_within = sum_within / labels.len() as f32;
        assert!(
            between > 2.0 * mean_within,
            "clusters not separated: between {between}, mean within {mean_within}"
        );
        // Nearest-neighbor label consistency: at least 80% of points have
        // a same-cluster nearest neighbor in the embedding.
        let mut consistent = 0;
        for i in 0..labels.len() {
            let mut best = (f32::INFINITY, 0usize);
            for j in 0..labels.len() {
                if i == j {
                    continue;
                }
                let d = (y.at(&[i, 0]) - y.at(&[j, 0])).powi(2)
                    + (y.at(&[i, 1]) - y.at(&[j, 1])).powi(2);
                if d < best.0 {
                    best = (d, j);
                }
            }
            if labels[best.1] == labels[i] {
                consistent += 1;
            }
        }
        assert!(
            consistent * 10 >= labels.len() * 8,
            "only {consistent}/{} points have same-cluster nearest neighbors",
            labels.len()
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let (data, _) = blobs(6);
        let config = TsneConfig {
            iterations: 50,
            ..TsneConfig::default()
        };
        let a = tsne(&data, &config).unwrap();
        let b = tsne(&data, &config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn input_validation() {
        assert!(tsne(&Tensor::zeros(&[5]), &TsneConfig::default()).is_err());
        assert!(tsne(&Tensor::zeros(&[3, 2]), &TsneConfig::default()).is_err());
    }

    #[test]
    fn embedding_is_centered() {
        let (data, _) = blobs(6);
        let config = TsneConfig {
            iterations: 60,
            ..TsneConfig::default()
        };
        let y = tsne(&data, &config).unwrap();
        let mean_x: f32 = (0..12).map(|i| y.at(&[i, 0])).sum::<f32>() / 12.0;
        let mean_y: f32 = (0..12).map(|i| y.at(&[i, 1])).sum::<f32>() / 12.0;
        assert!(mean_x.abs() < 1e-3 && mean_y.abs() < 1e-3);
    }
}
