//! Complexity claim (paper Section IV-B, Figure 6): canonical
//! self-attention is O(H^2) in the input length while window attention is
//! O(H). This bench sweeps H and times one forward pass of each.
//!
//! Expected shape: the SA curve grows quadratically, the WA curve
//! roughly linearly, with a crossover at small H.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use stwa_autograd::Graph;
use stwa_core::{AggregatorKind, WindowAttentionLayer};
use stwa_nn::layers::MultiHeadSelfAttention;
use stwa_nn::ParamStore;
use stwa_tensor::Tensor;

const N: usize = 8;
const B: usize = 4;
const D: usize = 16;

fn bench_attention(c: &mut Criterion) {
    let mut group = c.benchmark_group("attention_forward_vs_H");
    group.sample_size(10);
    for h in [12usize, 24, 48, 96, 192] {
        // Canonical self-attention over the full window.
        group.bench_with_input(BenchmarkId::new("canonical_SA", h), &h, |bench, &h| {
            let store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(0);
            let att = MultiHeadSelfAttention::new(&store, "sa", 1, D, 4, &mut rng);
            let x = Tensor::randn(&[B, N, h, 1], &mut rng);
            bench.iter(|| {
                let g = Graph::new();
                let xv = g.constant(x.clone());
                std::hint::black_box(att.forward(&g, &xv).unwrap());
            });
        });
        // Window attention with S=6, p=2 (the paper's long-horizon
        // setting), ST-agnostic shared projections.
        group.bench_with_input(BenchmarkId::new("window_WA", h), &h, |bench, &h| {
            let store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(0);
            let wa = WindowAttentionLayer::new(
                &store,
                "wa",
                N,
                h,
                6,
                2,
                1,
                D,
                4,
                AggregatorKind::Learned,
                true,
                true,
                &mut rng,
            )
            .unwrap();
            let x = Tensor::randn(&[B, N, h, 1], &mut rng);
            bench.iter(|| {
                let g = Graph::new();
                let xv = g.constant(x.clone());
                std::hint::black_box(wa.forward(&g, &xv, None).unwrap());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attention);
criterion_main!(benches);
