//! Disabled-mode cost of the `stwa_observe` instrumentation.
//!
//! The observability contract (DESIGN.md) is that with recording off,
//! each `span!` / `counter!` site costs a single relaxed atomic load.
//! This bench verifies the contract two ways:
//!
//! 1. `matmul/disabled` vs `matmul/enabled` criterion benchmarks show
//!    the end-to-end cost of turning recording on.
//! 2. In bench mode (`cargo bench --bench observe_overhead`) a direct
//!    measurement compares the instrumented matmul against the raw
//!    per-call instrumentation cost and prints the disabled-mode
//!    overhead as a percentage — the acceptance bar is < 2%.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use stwa_tensor::{linalg, Tensor};

const SIZE: usize = 128;

fn matmul_inputs() -> (Tensor, Tensor) {
    let mut rng = StdRng::seed_from_u64(0);
    let a = Tensor::randn(&[SIZE, SIZE], &mut rng);
    let b = Tensor::randn(&[SIZE, SIZE], &mut rng);
    (a, b)
}

fn bench_matmul_disabled(c: &mut Criterion) {
    stwa_observe::set_enabled(false);
    let (a, b) = matmul_inputs();
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    group.bench_function("disabled", |bench| {
        bench.iter(|| black_box(linalg::matmul(&a, &b).unwrap()));
    });
    group.finish();
}

fn bench_matmul_enabled(c: &mut Criterion) {
    stwa_observe::set_enabled(true);
    stwa_observe::reset();
    let (a, b) = matmul_inputs();
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    group.bench_function("enabled", |bench| {
        bench.iter(|| black_box(linalg::matmul(&a, &b).unwrap()));
    });
    group.finish();
    stwa_observe::set_enabled(false);
    stwa_observe::reset();
}

fn bench_instrumentation_primitives(c: &mut Criterion) {
    stwa_observe::set_enabled(false);
    let mut group = c.benchmark_group("primitives_disabled");
    group.sample_size(30);
    // The exact instrumentation sequence `linalg::matmul` executes per
    // call when recording is off.
    group.bench_function("matmul_site", |bench| {
        bench.iter(|| {
            let _span = stwa_observe::span!("matmul");
            stwa_observe::counter!("matmul.calls").incr();
            stwa_observe::counter!("matmul.flops").add(black_box(1u64));
        });
    });
    group.finish();
}

/// Direct overhead measurement, printed only under `cargo bench`: the
/// per-call disabled-mode instrumentation cost as a fraction of one
/// matmul call.
fn report_overhead_percentage(_c: &mut Criterion) {
    if !std::env::args().any(|a| a == "--bench") {
        return;
    }
    stwa_observe::set_enabled(false);
    let (a, b) = matmul_inputs();

    let time_per_iter = |mut f: Box<dyn FnMut()>, iters: u64| -> f64 {
        // Warm up, then take the best of 5 samples to suppress noise.
        for _ in 0..iters / 4 {
            f();
        }
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            best = best.min(t.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        best
    };

    let matmul_ns = {
        let (a, b) = (a.clone(), b.clone());
        time_per_iter(
            Box::new(move || {
                black_box(linalg::matmul(&a, &b).unwrap());
            }),
            40,
        )
    };
    let site_ns = time_per_iter(
        Box::new(|| {
            let _span = stwa_observe::span!("matmul");
            stwa_observe::counter!("matmul.calls").incr();
            stwa_observe::counter!("matmul.flops").add(black_box(1u64));
        }),
        4_000_000,
    );

    let pct = 100.0 * site_ns / matmul_ns;
    println!(
        "observe disabled-mode overhead: {site_ns:.1} ns/site over a \
         {:.3} ms matmul ({SIZE}x{SIZE}) = {pct:.4}% (bar: < 2%)",
        matmul_ns / 1e6
    );
    assert!(
        pct < 2.0,
        "disabled-mode observe overhead {pct:.3}% exceeds the 2% contract"
    );
}

criterion_group!(
    benches,
    bench_matmul_disabled,
    bench_matmul_enabled,
    bench_instrumentation_primitives,
    report_overhead_percentage
);
criterion_main!(benches);
