//! Substrate micro-benchmarks: the batched matmul and softmax kernels
//! that dominate every model's runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use stwa_tensor::{linalg, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    for size in [32usize, 64, 128, 256] {
        group.bench_with_input(BenchmarkId::new("square", size), &size, |bench, &s| {
            let mut rng = StdRng::seed_from_u64(0);
            let a = Tensor::randn(&[s, s], &mut rng);
            let b = Tensor::randn(&[s, s], &mut rng);
            bench.iter(|| std::hint::black_box(linalg::matmul(&a, &b).unwrap()));
        });
    }
    // The batched shape window attention actually produces.
    group.bench_function("batched_attention_shape", |bench| {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Tensor::randn(&[32, 16, 2, 16], &mut rng); // proxies
        let b = Tensor::randn(&[32, 16, 16, 6], &mut rng); // keys^T
        bench.iter(|| std::hint::black_box(linalg::matmul(&a, &b).unwrap()));
    });
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("softmax");
    group.sample_size(30);
    for rows in [64usize, 1024] {
        group.bench_with_input(BenchmarkId::new("rows", rows), &rows, |bench, &r| {
            let mut rng = StdRng::seed_from_u64(0);
            let x = Tensor::randn(&[r, 64], &mut rng);
            bench.iter(|| std::hint::black_box(x.softmax(1).unwrap()));
        });
    }
    group.finish();
}

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast_binary");
    group.sample_size(30);
    // Bias-add fast path vs general odometer path.
    let mut rng = StdRng::seed_from_u64(0);
    let x = Tensor::randn(&[64, 128, 16], &mut rng);
    let suffix_bias = Tensor::randn(&[16], &mut rng);
    let middle = Tensor::randn(&[1, 128, 1], &mut rng);
    group.bench_function("suffix_fast_path", |bench| {
        bench.iter(|| std::hint::black_box(x.add(&suffix_bias).unwrap()));
    });
    group.bench_function("general_odometer", |bench| {
        bench.iter(|| std::hint::black_box(x.add(&middle).unwrap()));
    });
    group.finish();
}

fn bench_tsne(c: &mut Criterion) {
    let mut group = c.benchmark_group("tsne");
    group.sample_size(10);
    // The Fig. 9(b) workload: one 2-D point per sensor.
    group.bench_function("64_points_100_iters", |bench| {
        let mut rng = StdRng::seed_from_u64(0);
        let data = Tensor::randn(&[64, 16], &mut rng);
        let config = stwa_tsne::TsneConfig {
            iterations: 100,
            perplexity: 8.0,
            ..Default::default()
        };
        bench.iter(|| std::hint::black_box(stwa_tsne::tsne(&data, &config).unwrap()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_softmax,
    bench_broadcast,
    bench_tsne
);
criterion_main!(benches);
