//! Ablation bench: what does spatio-temporal aware parameter generation
//! cost per forward pass?
//!
//! Times (1) the WA model (no generator), (2) S-WA (spatial latent +
//! decoder), (3) ST-WA (+ variational encoder) — the overhead the
//! paper's linear window attention is designed to leave room for
//! (Table VIII's training-time column tells the same story end-to-end).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use stwa_autograd::Graph;
use stwa_core::{ForecastModel, StwaConfig, StwaModel};
use stwa_tensor::Tensor;

const N: usize = 16;
const H: usize = 12;
const U: usize = 12;
const B: usize = 8;

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("stwa_variant_forward");
    group.sample_size(20);
    let configs: Vec<(&str, StwaConfig)> = vec![
        ("WA", StwaConfig::wa(N, H, U)),
        ("S-WA", StwaConfig::s_wa(N, H, U)),
        ("ST-WA", StwaConfig::st_wa(N, H, U)),
    ];
    for (name, config) in configs {
        group.bench_function(name, |bench| {
            let mut rng = StdRng::seed_from_u64(1);
            let model = StwaModel::new(config.clone(), &mut rng).unwrap();
            let x = Tensor::randn(&[B, N, H, 1], &mut rng);
            bench.iter(|| {
                let g = Graph::new();
                let xv = g.constant(x.clone());
                std::hint::black_box(model.forward(&g, &xv, &mut rng, true).unwrap());
            });
        });
    }
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("stwa_variant_train_step");
    group.sample_size(10);
    for (name, config) in [
        ("WA", StwaConfig::wa(N, H, U)),
        ("ST-WA", StwaConfig::st_wa(N, H, U)),
    ] {
        group.bench_function(name, |bench| {
            let mut rng = StdRng::seed_from_u64(1);
            let model = StwaModel::new(config.clone(), &mut rng).unwrap();
            let x = Tensor::randn(&[B, N, H, 1], &mut rng);
            bench.iter(|| {
                let g = Graph::new();
                let xv = g.constant(x.clone());
                let out = model.forward(&g, &xv, &mut rng, true).unwrap();
                let mut loss = out.pred.square().unwrap().mean_all().unwrap();
                if let Some(reg) = out.regularizer {
                    loss = loss.add(&reg).unwrap();
                }
                g.backward(&loss).unwrap();
                std::hint::black_box(());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants, bench_backward);
criterion_main!(benches);
