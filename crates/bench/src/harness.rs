//! Shared experiment plumbing: dataset construction, single-model runs,
//! and aligned table printing + CSV export.

use crate::cli::Args;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use stwa_baselines::build_model;
use stwa_core::{ForecastModel, TrainConfig, TrainReport, Trainer};
use stwa_tensor::Result;
use stwa_traffic::{export, DatasetConfig, TrafficDataset};

/// Build (and cache-key by name) the dataset an experiment asks for.
pub fn dataset_for(name: &str, args: &Args) -> TrafficDataset {
    let config = match name {
        "PEMS03" => DatasetConfig::pems03_like(),
        "PEMS04" => DatasetConfig::pems04_like(),
        "PEMS07" => DatasetConfig::pems07_like(),
        "PEMS08" => DatasetConfig::pems08_like(),
        other => panic!("unknown dataset '{other}'"),
    };
    let config = if args.full_scale {
        config.full_scale()
    } else {
        config
    };
    TrafficDataset::generate(config)
}

/// The trainer an experiment's `Args` describe. `--observe PATH` turns
/// on `stwa_observe` recording process-wide and routes the trainer's
/// manifest to that path.
pub fn trainer_for(args: &Args) -> Trainer {
    if args.observe.is_some() {
        stwa_observe::set_enabled(true);
    }
    Trainer::new(TrainConfig {
        epochs: args.epochs,
        batch_size: args.batch_size,
        train_stride: args.train_stride,
        eval_stride: args.eval_stride,
        seed: args.seed,
        verbose: args.verbose,
        manifest_path: args.observe.as_ref().map(std::path::PathBuf::from),
        save_every: args.save_every,
        registry_root: args.registry.as_ref().map(std::path::PathBuf::from),
        keep_checkpoints: args.ckpt_keep,
        resume_from: args.resume.as_ref().map(std::path::PathBuf::from),
        ..TrainConfig::default()
    })
}

/// Train a registry model by name and report. Prints a progress line so
/// long experiment runs stay observable.
pub fn run_named_model(
    name: &str,
    dataset: &TrafficDataset,
    h: usize,
    u: usize,
    args: &Args,
) -> Result<TrainReport> {
    let mut rng = StdRng::seed_from_u64(args.seed);
    let n = dataset.num_sensors();
    let adj = dataset.network().adjacency();
    let model = build_model(name, n, h, u, &adj, &mut rng)?;
    run_model(model.as_ref(), dataset, h, u, args)
}

/// Train an already-built model and report.
pub fn run_model(
    model: &dyn ForecastModel,
    dataset: &TrafficDataset,
    h: usize,
    u: usize,
    args: &Args,
) -> Result<TrainReport> {
    eprintln!(
        "== training {} on {} (H={h}, U={u}, epochs={}) ...",
        model.name(),
        dataset.config().name,
        args.epochs
    );
    let trainer = trainer_for(args);
    let report = trainer.train(model, dataset, h, u)?;
    eprintln!(
        "   {}: test {}  ({:.2}s/epoch, {} params)",
        model.name(),
        report.test,
        report.epoch_seconds,
        report.param_count
    );
    Ok(report)
}

/// An aligned text table that doubles as a CSV writer — every experiment
/// binary prints one of these in the paper's layout.
pub struct ResultTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    pub fn new(title: &str, headers: &[&str]) -> ResultTable {
        ResultTable {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n=== {} ===\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout and write `<out_dir>/<file>.csv`.
    pub fn emit(&self, out_dir: &str, file: &str) -> std::io::Result<()> {
        if self.rows.is_empty() {
            eprintln!(
                "warning: '{}' produced no rows — check --models/--datasets filters",
                self.title
            );
        }
        println!("{}", self.render());
        std::fs::create_dir_all(out_dir)?;
        let path = Path::new(out_dir).join(format!("{file}.csv"));
        let headers: Vec<&str> = self.headers.iter().map(|s| s.as_str()).collect();
        export::write_records_csv(&path, &headers, &self.rows)?;
        eprintln!("wrote {}", path.display());
        Ok(())
    }
}

/// Format a float metric cell.
pub fn cell(v: f32) -> String {
    format!("{v:.2}")
}

/// The MAE / MAPE / RMSE cell triple every accuracy table prints.
pub fn metric_cells(m: &stwa_traffic::Metrics) -> [String; 3] {
    [cell(m.mae), cell(m.mape), cell(m.rmse)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = ResultTable::new("Demo", &["model", "MAE"]);
        t.push(vec!["ST-WA".into(), "19.06".into()]);
        t.push(vec!["G".into(), "22.1".into()]);
        let s = t.render();
        assert!(s.contains("Demo"));
        assert!(s.contains("ST-WA"));
        // Right-aligned columns: 'G' padded to the width of 'ST-WA'.
        assert!(s.contains("    G"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_bad_rows() {
        let mut t = ResultTable::new("Demo", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn dataset_for_names() {
        let args = Args::default();
        let ds = dataset_for("PEMS08", &args);
        assert_eq!(ds.config().name, "PEMS08");
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn dataset_for_unknown_panics() {
        dataset_for("PEMS99", &Args::default());
    }

    #[test]
    fn quick_end_to_end_run() {
        // One tiny training run through the harness.
        let args = Args {
            epochs: 1,
            train_stride: 24,
            eval_stride: 24,
            ..Args::default()
        };
        let ds = TrafficDataset::generate(DatasetConfig::small());
        let report = run_named_model("GRU", &ds, 12, 3, &args).unwrap();
        assert!(report.test.mae.is_finite());
    }
}
