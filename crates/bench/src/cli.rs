//! Minimal flag parsing shared by every experiment binary (keeps the
//! workspace off heavyweight CLI dependencies).

/// Flags understood by all experiment binaries.
#[derive(Debug, Clone)]
pub struct Args {
    /// Training epochs per model.
    pub epochs: usize,
    /// Window-origin stride for training samples (1 = paper protocol).
    pub train_stride: usize,
    /// Window-origin stride for validation/test samples.
    pub eval_stride: usize,
    /// Batch size.
    pub batch_size: usize,
    /// Master seed.
    pub seed: u64,
    /// Use the paper's full-scale dataset dimensions (slow on CPU).
    pub full_scale: bool,
    /// Optional subset of model names to run.
    pub models: Option<Vec<String>>,
    /// Optional subset of dataset names to run (e.g. PEMS04).
    pub datasets: Option<Vec<String>>,
    /// Output directory for CSVs.
    pub out_dir: String,
    /// Print per-epoch progress.
    pub verbose: bool,
    /// When set, enable `stwa_observe` recording and write each run's
    /// JSON manifest to this path (later runs overwrite earlier ones).
    pub observe: Option<String>,
    /// Publish a training checkpoint every N epochs (0 = off; requires
    /// `--registry`).
    pub save_every: usize,
    /// Model-registry root directory for checkpoint publishes.
    pub registry: Option<String>,
    /// Keep only the newest N registry versions after each publish
    /// (0 = keep everything).
    pub ckpt_keep: usize,
    /// Resume training from this checkpoint version directory.
    pub resume: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            epochs: 20,
            train_stride: 3,
            eval_stride: 4,
            batch_size: 32,
            seed: 1,
            full_scale: false,
            models: None,
            datasets: None,
            out_dir: "results".to_string(),
            verbose: false,
            observe: None,
            save_every: 0,
            registry: None,
            ckpt_keep: 0,
            resume: None,
        }
    }
}

impl Args {
    /// Parse from `std::env::args`, exiting with usage text on error.
    pub fn parse() -> Args {
        match Args::try_parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!("{}", Args::usage());
                std::process::exit(2);
            }
        }
    }

    /// Parse from an iterator of argument strings.
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value =
                |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
            match flag.as_str() {
                "--epochs" => out.epochs = parse_num(&value("--epochs")?)?,
                "--train-stride" => out.train_stride = parse_num(&value("--train-stride")?)?,
                "--eval-stride" => out.eval_stride = parse_num(&value("--eval-stride")?)?,
                "--batch-size" => out.batch_size = parse_num(&value("--batch-size")?)?,
                "--seed" => out.seed = parse_num(&value("--seed")?)? as u64,
                "--full-scale" => out.full_scale = true,
                "--models" => {
                    out.models = Some(
                        value("--models")?
                            .split(',')
                            .map(|s| s.trim().to_string())
                            .filter(|s| !s.is_empty())
                            .collect(),
                    )
                }
                "--datasets" => {
                    out.datasets = Some(
                        value("--datasets")?
                            .split(',')
                            .map(|s| s.trim().to_string())
                            .filter(|s| !s.is_empty())
                            .collect(),
                    )
                }
                "--out-dir" => out.out_dir = value("--out-dir")?,
                "--observe" => out.observe = Some(value("--observe")?),
                "--save-every" => out.save_every = parse_num(&value("--save-every")?)?,
                "--registry" => out.registry = Some(value("--registry")?),
                "--ckpt-keep" => out.ckpt_keep = parse_num(&value("--ckpt-keep")?)?,
                "--resume" => out.resume = Some(value("--resume")?),
                "--verbose" | "-v" => out.verbose = true,
                "--help" | "-h" => {
                    println!("{}", Args::usage());
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        if out.epochs == 0 || out.train_stride == 0 || out.eval_stride == 0 || out.batch_size == 0 {
            return Err("numeric flags must be positive".to_string());
        }
        if out.save_every > 0 && out.registry.is_none() {
            return Err("--save-every requires --registry DIR".to_string());
        }
        Ok(out)
    }

    /// Usage text.
    pub fn usage() -> String {
        "usage: <experiment> [--epochs N] [--train-stride N] [--eval-stride N] \
         [--batch-size N] [--seed N] [--full-scale] [--models a,b,c] \
         [--datasets PEMS04,PEMS08] [--out-dir DIR] [--observe MANIFEST.json] \
         [--save-every N --registry DIR] [--ckpt-keep N] [--resume CKPT_DIR] \
         [--verbose]"
            .to_string()
    }

    /// Whether `model` should run under the `--models` filter.
    pub fn wants_model(&self, model: &str) -> bool {
        match &self.models {
            None => true,
            Some(list) => list.iter().any(|m| m == model),
        }
    }

    /// Whether `dataset` should run under the `--datasets` filter.
    pub fn wants_dataset(&self, dataset: &str) -> bool {
        match &self.datasets {
            None => true,
            Some(list) => list.iter().any(|d| d == dataset),
        }
    }
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("'{s}' is not a number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        Args::try_parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_empty() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.epochs, 20);
        assert!(!a.full_scale);
        assert!(a.models.is_none());
    }

    #[test]
    fn parses_flags() {
        let a = parse(&[
            "--epochs",
            "5",
            "--seed",
            "9",
            "--full-scale",
            "--models",
            "GRU,ST-WA",
            "--out-dir",
            "/tmp/x",
            "--verbose",
        ])
        .unwrap();
        assert_eq!(a.epochs, 5);
        assert_eq!(a.seed, 9);
        assert!(a.full_scale);
        assert!(a.verbose);
        assert_eq!(a.out_dir, "/tmp/x");
        assert!(a.wants_model("GRU"));
        assert!(a.wants_model("ST-WA"));
        assert!(!a.wants_model("DCRNN"));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--epochs"]).is_err());
        assert!(parse(&["--epochs", "zero"]).is_err());
        assert!(parse(&["--epochs", "0"]).is_err());
        assert!(parse(&["--what"]).is_err());
    }

    #[test]
    fn checkpoint_flags() {
        let a = parse(&[
            "--save-every",
            "2",
            "--registry",
            "/tmp/reg",
            "--ckpt-keep",
            "3",
            "--resume",
            "/tmp/reg/ST-WA/4",
        ])
        .unwrap();
        assert_eq!(a.save_every, 2);
        assert_eq!(a.registry.as_deref(), Some("/tmp/reg"));
        assert_eq!(a.ckpt_keep, 3);
        assert_eq!(a.resume.as_deref(), Some("/tmp/reg/ST-WA/4"));
        // Publishing needs somewhere to publish to.
        assert!(parse(&["--save-every", "2"]).is_err());
    }

    #[test]
    fn no_filter_accepts_everything() {
        let a = parse(&[]).unwrap();
        assert!(a.wants_model("anything"));
        assert!(a.wants_dataset("PEMS99"));
    }

    #[test]
    fn dataset_filter() {
        let a = parse(&["--datasets", "PEMS04, PEMS08"]).unwrap();
        assert!(a.wants_dataset("PEMS04"));
        assert!(a.wants_dataset("PEMS08"));
        assert!(!a.wants_dataset("PEMS03"));
    }
}
