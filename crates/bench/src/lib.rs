//! # stwa-bench
//!
//! Experiment harness: one binary per table/figure of the paper
//! (`src/bin/table04.rs` … `fig10.rs`) plus Criterion micro-benchmarks
//! for the complexity claims (`benches/`).
//!
//! Every binary accepts the same flags (see [`cli`]), prints the paper's
//! table layout to stdout, and writes a CSV under `results/`.

pub mod cli;
pub mod harness;

pub use cli::Args;
pub use harness::{dataset_for, run_named_model, ResultTable};
