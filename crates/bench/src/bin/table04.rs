//! Table IV — Overall accuracy, H = 12, U = 12.
//!
//! Trains the paper's 12 Table-IV models on all four PEMS-like datasets
//! and prints MAE / MAPE / RMSE per (dataset, model), in the paper's
//! column order.
//!
//! Paper shape to check (see EXPERIMENTS.md): ST-WA best on most
//! metrics; the spatial-aware models (EnhanceNet, AGCRN) ahead of the
//! ST-agnostic pack; meta-LSTM worst (no sensor correlations).

use stwa_bench::harness::{metric_cells, ResultTable};
use stwa_bench::{dataset_for, run_named_model, Args};

const MODELS: [&str; 12] = [
    "LongFormer",
    "DCRNN",
    "STGCN",
    "STG2Seq",
    "GWN",
    "STSGCN",
    "ASTGNN",
    "STFGNN",
    "EnhanceNet",
    "AGCRN",
    "meta-LSTM",
    "ST-WA",
];
const DATASETS: [&str; 4] = ["PEMS03", "PEMS04", "PEMS07", "PEMS08"];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse();
    let (h, u) = (12, 12);
    let mut table = ResultTable::new(
        "Table IV: Overall accuracy, H=12, U=12",
        &[
            "dataset", "model", "MAE", "MAPE%", "RMSE", "s/epoch", "params",
        ],
    );
    for ds_name in DATASETS {
        if !args.wants_dataset(ds_name) {
            continue;
        }
        let dataset = dataset_for(ds_name, &args);
        for model in MODELS {
            if !args.wants_model(model) {
                continue;
            }
            let report = run_named_model(model, &dataset, h, u, &args)?;
            let r = &report;
            {
                let mut row = vec![ds_name.to_string(), model.to_string()];
                row.extend(metric_cells(&r.test));
                row.extend([format!("{:.2}", r.epoch_seconds), r.param_count.to_string()]);
                table.push(row);
            }
        }
    }
    table.emit(&args.out_dir, "table04")?;
    Ok(())
}
