//! Table XIII — Effect of the number of proxies p ∈ {1, 2, 3} at the
//! long-horizon setting (H = 72, U = 72, PEMS04), with training time and
//! parameter counts.
//!
//! Paper shape: more proxies buy a little accuracy at a roughly linear
//! cost in time and parameters.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stwa_bench::harness::{metric_cells, run_model, ResultTable};
use stwa_bench::{dataset_for, Args};
use stwa_core::{StwaConfig, StwaModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = Args::parse();
    args.train_stride = args.train_stride.max(6);
    args.eval_stride = args.eval_stride.max(6);
    let (h, u) = (72, 72);
    let dataset = dataset_for("PEMS04", &args);
    let mut table = ResultTable::new(
        "Table XIII: Effect of number of proxies p, PEMS04 (H=72, U=72)",
        &["p", "MAE", "MAPE%", "RMSE", "s/epoch", "params"],
    );
    for p in [1usize, 2, 3] {
        let mut rng = StdRng::seed_from_u64(args.seed);
        let config = StwaConfig::st_wa(dataset.num_sensors(), h, u)
            .with_windows(&[6, 6, 2])
            .with_proxies(p);
        let model = StwaModel::new(config, &mut rng)?;
        let report = run_model(&model, &dataset, h, u, &args)?;
        let r = &report;
        {
            let mut row = vec![p.to_string()];
            row.extend(metric_cells(&r.test));
            row.extend([format!("{:.2}", r.epoch_seconds), r.param_count.to_string()]);
            table.push(row);
        }
    }
    table.emit(&args.out_dir, "table13")?;
    Ok(())
}
