//! Inference-engine harness: serves the default ST-WA configuration
//! through both eval paths on synthetic PEMS-shaped requests —
//!
//! - **graph**: the training-time eval forward (autograd tape built and
//!   discarded per call), and
//! - **infer**: the frozen `stwa-infer` session (tape-free, frozen
//!   latents, pre-decoded projections where input-independent, packed
//!   GEMM panels, plan arena),
//!
//! at batch sizes 1, 8, and 64, reporting p50/p99 latency and rows/sec
//! for each. Every measured pair is asserted bitwise identical before
//! timing begins — the engine is only fast because it skips bookkeeping,
//! never because it changes arithmetic.
//!
//! The speedups are same-run ratios, so the `--check` gate is portable
//! across hosts of different absolute speed, exactly like
//! `bench_kernels` and `bench_train_step`. The batch-1 speedup is also
//! a hard floor: below 2x the engine has lost its reason to exist.
//!
//! A second section times the **quantized** frozen paths (f32 vs bf16
//! vs int8 panels; `quant_*` keys) on a serving-scale configuration
//! whose weight panels exceed L2 — the memory-bandwidth-bound regime
//! quantization exists for. Two hard gates ride on it: the batch-64
//! int8 speedup floor (`MIN_INT8_SPEEDUP_B64`) and the forecast-MAE
//! accuracy gate of each quantized path against the f32 frozen path.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use stwa_autograd::Graph;
use stwa_core::{ForecastModel, StwaConfig, StwaModel};
use stwa_infer::{InferSession, Precision};
use stwa_tensor::Tensor;

/// Allowed relative loss of a baseline ratio before `--check` fails.
const REGRESSION_TOLERANCE: f64 = 0.15;
/// Hard floor on the batch-1 speedup, independent of any baseline.
const MIN_SPEEDUP_B1: f64 = 2.0;
/// Hard floor on the batch-64 int8-vs-f32 frozen speedup: below 1.3x
/// the quantized panels are not paying for their accuracy loss.
const MIN_INT8_SPEEDUP_B64: f64 = 1.3;
/// Forecast-MAE accuracy gates (normalized units, batch-64 request)
/// for the quantized frozen paths against the f32 frozen path.
const MAE_GATE_BF16: f64 = 0.02;
const MAE_GATE_INT8: f64 = 0.08;

const SENSORS: usize = 32;
const HISTORY: usize = 12;
const HORIZON: usize = 3;
const BATCHES: [usize; 3] = [1, 8, 64];

/// Serving-scale dims for the quant section: wide enough that the
/// decoder/predictor panels dominate the forward and spill L2 at f32.
const QSENSORS: usize = 48;

const WARMUP: usize = 3;
/// Per-batch measured iterations, scaled down as rows per call grow.
fn iters_for(batch: usize) -> usize {
    match batch {
        1 => 120,
        8 => 24,
        _ => 8,
    }
}

struct PathStats {
    p50_ms: f64,
    p99_ms: f64,
    rows_per_sec: f64,
}

struct BatchResult {
    batch: usize,
    graph: PathStats,
    infer: PathStats,
}

impl BatchResult {
    /// Graph-path p50 over infer-path p50 (same run).
    fn speedup(&self) -> f64 {
        self.graph.p50_ms / self.infer.p50_ms
    }
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    let idx = ((sorted_ms.len() as f64 * q).ceil() as usize)
        .saturating_sub(1)
        .min(sorted_ms.len() - 1);
    sorted_ms[idx]
}

/// Time the two paths with their iterations interleaved pairwise, so a
/// noisy-neighbour burst (or a frequency-scaling step) lands on both
/// sides of the ratio instead of skewing one whole phase.
fn measure_pair(
    batch: usize,
    mut graph: impl FnMut(),
    mut infer: impl FnMut(),
) -> (PathStats, PathStats) {
    for _ in 0..WARMUP {
        graph();
        infer();
    }
    let iters = iters_for(batch);
    let mut graph_ms = Vec::with_capacity(iters);
    let mut infer_ms = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        graph();
        graph_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        infer();
        infer_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let stats = |ms: &mut Vec<f64>| {
        ms.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let p50 = percentile(ms, 0.50);
        PathStats {
            p50_ms: p50,
            p99_ms: percentile(ms, 0.99),
            rows_per_sec: batch as f64 / (p50 / 1e3),
        }
    };
    (stats(&mut graph_ms), stats(&mut infer_ms))
}

/// Time three paths with their iterations interleaved, same rationale
/// as [`measure_pair`] but for the f32/bf16/int8 frozen trio.
fn measure_trio(
    batch: usize,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
    mut c: impl FnMut(),
) -> (PathStats, PathStats, PathStats) {
    for _ in 0..WARMUP {
        a();
        b();
        c();
    }
    let iters = iters_for(batch);
    let mut a_ms = Vec::with_capacity(iters);
    let mut b_ms = Vec::with_capacity(iters);
    let mut c_ms = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        a();
        a_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        b();
        b_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        c();
        c_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let stats = |ms: &mut Vec<f64>| {
        ms.sort_by(|x, y| x.partial_cmp(y).expect("finite timings"));
        let p50 = percentile(ms, 0.50);
        PathStats {
            p50_ms: p50,
            p99_ms: percentile(ms, 0.99),
            rows_per_sec: batch as f64 / (p50 / 1e3),
        }
    };
    (stats(&mut a_ms), stats(&mut b_ms), stats(&mut c_ms))
}

fn graph_eval(model: &StwaModel, x: &Tensor) -> Tensor {
    let g = Graph::new();
    let xv = g.constant(x.clone());
    let mut rng = StdRng::seed_from_u64(0);
    let out = model.forward(&g, &xv, &mut rng, false).expect("forward");
    out.pred.value().as_ref().clone()
}

fn run_suite() -> Vec<BatchResult> {
    let mut rng = StdRng::seed_from_u64(42);
    let model =
        StwaModel::new(StwaConfig::st_wa(SENSORS, HISTORY, HORIZON), &mut rng).expect("model");
    let session = InferSession::new(&model).expect("freeze");

    BATCHES
        .iter()
        .map(|&batch| {
            let x = Tensor::randn(&[batch, SENSORS, HISTORY, 1], &mut rng);
            // Correctness first: the two paths must agree bit-for-bit.
            let want = graph_eval(&model, &x);
            let got = session.run(&x).expect("infer");
            assert_eq!(
                want.data(),
                got.data(),
                "batch {batch}: frozen path diverged from graph eval"
            );
            let (graph, infer) = measure_pair(
                batch,
                || {
                    std::hint::black_box(graph_eval(&model, &x));
                },
                || {
                    std::hint::black_box(session.run(&x).expect("infer"));
                },
            );
            BatchResult {
                batch,
                graph,
                infer,
            }
        })
        .collect()
}

struct QuantBatch {
    batch: usize,
    f32_ms: PathStats,
    bf16_ms: PathStats,
    int8_ms: PathStats,
}

impl QuantBatch {
    fn bf16_speedup(&self) -> f64 {
        self.f32_ms.p50_ms / self.bf16_ms.p50_ms
    }
    fn int8_speedup(&self) -> f64 {
        self.f32_ms.p50_ms / self.int8_ms.p50_ms
    }
}

struct QuantSuite {
    batches: Vec<QuantBatch>,
    bf16_mae: f64,
    int8_mae: f64,
    f32_bytes: usize,
    bf16_bytes: usize,
    int8_bytes: usize,
}

/// Serving-scale ST-WA: same data shape family as the main section but
/// with paper-scale widths so the decoder/predictor panels dominate the
/// forward and the f32 panels spill L2.
fn quant_config() -> StwaConfig {
    let mut cfg = StwaConfig::st_wa(QSENSORS, HISTORY, HORIZON);
    cfg.d = 32;
    cfg.heads = 8;
    cfg.k = 32;
    cfg.predictor_hidden = 512;
    cfg.decoder_hidden = (64, 128);
    cfg
}

fn mae(a: &Tensor, b: &Tensor) -> f64 {
    let (x, y) = (a.data(), b.data());
    assert_eq!(x.len(), y.len(), "MAE over mismatched tensors");
    x.iter()
        .zip(y.iter())
        .map(|(p, q)| (p - q).abs() as f64)
        .sum::<f64>()
        / x.len() as f64
}

fn run_quant_suite() -> QuantSuite {
    let mut rng = StdRng::seed_from_u64(7);
    let model = StwaModel::new(quant_config(), &mut rng).expect("quant model");
    let s_f32 = InferSession::new_at(&model, Precision::F32).expect("freeze f32");
    let s_bf16 = InferSession::new_at(&model, Precision::Bf16).expect("freeze bf16");
    let s_int8 = InferSession::new_at(&model, Precision::Int8).expect("freeze int8");

    // Accuracy gate on the largest request before any timing: the
    // quantized forecasts must track the f32 frozen forecasts.
    let x64 = Tensor::randn(&[64, QSENSORS, HISTORY, 1], &mut rng);
    let base = s_f32.run(&x64).expect("f32 forward");
    let bf16_mae = mae(&base, &s_bf16.run(&x64).expect("bf16 forward"));
    let int8_mae = mae(&base, &s_int8.run(&x64).expect("int8 forward"));

    let batches = BATCHES
        .iter()
        .map(|&batch| {
            let x = if batch == 64 {
                x64.clone()
            } else {
                Tensor::randn(&[batch, QSENSORS, HISTORY, 1], &mut rng)
            };
            let (f32_ms, bf16_ms, int8_ms) = measure_trio(
                batch,
                || {
                    std::hint::black_box(s_f32.run(&x).expect("f32"));
                },
                || {
                    std::hint::black_box(s_bf16.run(&x).expect("bf16"));
                },
                || {
                    std::hint::black_box(s_int8.run(&x).expect("int8"));
                },
            );
            QuantBatch {
                batch,
                f32_ms,
                bf16_ms,
                int8_ms,
            }
        })
        .collect();

    QuantSuite {
        batches,
        bf16_mae,
        int8_mae,
        f32_bytes: s_f32.frozen().packed_bytes(),
        bf16_bytes: s_bf16.frozen().packed_bytes(),
        int8_bytes: s_int8.frozen().packed_bytes(),
    }
}

fn render_json(results: &[BatchResult], quant: &QuantSuite) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"threads\": {},\n  \"shape\": \"[B,{SENSORS},{HISTORY},1] -> [B,{SENSORS},{HORIZON},1]\",\n",
        stwa_pool::current_threads()
    ));
    for r in results {
        let b = r.batch;
        s.push_str(&format!(
            "  \"b{b}_graph_p50_ms\": {:.3},\n  \"b{b}_graph_p99_ms\": {:.3},\n  \
             \"b{b}_infer_p50_ms\": {:.3},\n  \"b{b}_infer_p99_ms\": {:.3},\n  \
             \"b{b}_infer_rows_per_sec\": {:.1},\n  \"b{b}_speedup\": {:.3},\n",
            r.graph.p50_ms,
            r.graph.p99_ms,
            r.infer.p50_ms,
            r.infer.p99_ms,
            r.infer.rows_per_sec,
            r.speedup(),
        ));
    }
    s.push_str(&format!(
        "  \"min_speedup_b1\": {MIN_SPEEDUP_B1:.1},\n"
    ));
    s.push_str(&format!(
        "  \"quant_shape\": \"[B,{QSENSORS},{HISTORY},1] d=32 heads=8 k=32 ph=512 dh=(64,128)\",\n"
    ));
    for q in &quant.batches {
        let b = q.batch;
        s.push_str(&format!(
            "  \"quant_b{b}_f32_p50_ms\": {:.3},\n  \"quant_b{b}_bf16_p50_ms\": {:.3},\n  \
             \"quant_b{b}_int8_p50_ms\": {:.3},\n  \"quant_b{b}_bf16_speedup\": {:.3},\n  \
             \"quant_b{b}_int8_speedup\": {:.3},\n",
            q.f32_ms.p50_ms,
            q.bf16_ms.p50_ms,
            q.int8_ms.p50_ms,
            q.bf16_speedup(),
            q.int8_speedup(),
        ));
    }
    let mib = |bytes: usize| bytes as f64 / (1024.0 * 1024.0);
    s.push_str(&format!(
        "  \"quant_bf16_mae\": {:.6},\n  \"quant_int8_mae\": {:.6},\n  \
         \"quant_mae_gate_bf16\": {MAE_GATE_BF16},\n  \"quant_mae_gate_int8\": {MAE_GATE_INT8},\n  \
         \"quant_f32_panel_mib\": {:.3},\n  \"quant_bf16_panel_mib\": {:.3},\n  \
         \"quant_int8_panel_mib\": {:.3},\n  \"min_int8_speedup_b64\": {MIN_INT8_SPEEDUP_B64:.1}\n}}\n",
        quant.bf16_mae,
        quant.int8_mae,
        mib(quant.f32_bytes),
        mib(quant.bf16_bytes),
        mib(quant.int8_bytes),
    ));
    s
}

/// Pull a `"key": value` number back out of a report written by
/// [`render_json`] (one key per line — no JSON dependency needed).
fn parse_number(json: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    for line in json.lines() {
        if let Some(at) = line.find(&tag) {
            let s: String = line[at + tag.len()..]
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
                .collect();
            return s.parse().ok();
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_infer.json".to_string();
    let mut check_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = args.get(i + 1).expect("--out needs a path").clone();
                i += 2;
            }
            "--check" => {
                check_path = Some(args.get(i + 1).expect("--check needs a path").clone());
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other}; usage: bench_infer [--out PATH | --check PATH]");
                std::process::exit(2);
            }
        }
    }

    let results = run_suite();
    for r in &results {
        println!(
            "batch {:>2}  graph p50 {:>7.2} ms  infer p50 {:>7.2} ms  p99 {:>7.2} ms  \
             {:>9.0} rows/s  speedup {:.2}x",
            r.batch,
            r.graph.p50_ms,
            r.infer.p50_ms,
            r.infer.p99_ms,
            r.infer.rows_per_sec,
            r.speedup()
        );
    }

    let b1 = results.iter().find(|r| r.batch == 1).expect("batch 1 run");
    if b1.speedup() < MIN_SPEEDUP_B1 {
        eprintln!(
            "REGRESSION: batch-1 speedup {:.2}x fell below the {MIN_SPEEDUP_B1:.1}x floor",
            b1.speedup()
        );
        std::process::exit(1);
    }

    let quant = run_quant_suite();
    for q in &quant.batches {
        println!(
            "quant batch {:>2}  f32 p50 {:>7.2} ms  bf16 p50 {:>7.2} ms ({:.2}x)  \
             int8 p50 {:>7.2} ms ({:.2}x)",
            q.batch,
            q.f32_ms.p50_ms,
            q.bf16_ms.p50_ms,
            q.bf16_speedup(),
            q.int8_ms.p50_ms,
            q.int8_speedup(),
        );
    }
    println!(
        "quant panels  f32 {:.2} MiB  bf16 {:.2} MiB  int8 {:.2} MiB  |  \
         mae bf16 {:.5}  int8 {:.5}",
        quant.f32_bytes as f64 / (1 << 20) as f64,
        quant.bf16_bytes as f64 / (1 << 20) as f64,
        quant.int8_bytes as f64 / (1 << 20) as f64,
        quant.bf16_mae,
        quant.int8_mae,
    );
    if quant.bf16_mae > MAE_GATE_BF16 {
        eprintln!(
            "ACCURACY: bf16 forecast MAE {:.5} exceeds the {MAE_GATE_BF16} gate",
            quant.bf16_mae
        );
        std::process::exit(1);
    }
    if quant.int8_mae > MAE_GATE_INT8 {
        eprintln!(
            "ACCURACY: int8 forecast MAE {:.5} exceeds the {MAE_GATE_INT8} gate",
            quant.int8_mae
        );
        std::process::exit(1);
    }
    let qb64 = quant
        .batches
        .iter()
        .find(|q| q.batch == 64)
        .expect("quant batch 64 run");
    if qb64.int8_speedup() < MIN_INT8_SPEEDUP_B64 {
        eprintln!(
            "REGRESSION: batch-64 int8 speedup {:.2}x fell below the \
             {MIN_INT8_SPEEDUP_B64:.1}x floor",
            qb64.int8_speedup()
        );
        std::process::exit(1);
    }

    if let Some(baseline_path) = check_path {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let mut failed = false;
        let mut ratios: Vec<(String, f64)> = results
            .iter()
            .map(|r| (format!("b{}_speedup", r.batch), r.speedup()))
            .collect();
        for q in &quant.batches {
            ratios.push((format!("quant_b{}_bf16_speedup", q.batch), q.bf16_speedup()));
            ratios.push((format!("quant_b{}_int8_speedup", q.batch), q.int8_speedup()));
        }
        for (key, new_val) in ratios {
            let Some(old_val) = parse_number(&baseline, &key) else {
                println!("note: no baseline value for {key}, skipping");
                continue;
            };
            let floor = old_val * (1.0 - REGRESSION_TOLERANCE);
            if new_val < floor {
                eprintln!(
                    "REGRESSION {key}: {new_val:.2} fell below {floor:.2} \
                     (baseline {old_val:.2} - {:.0}% tolerance)",
                    REGRESSION_TOLERANCE * 100.0
                );
                failed = true;
            } else {
                println!("ok {key}: {new_val:.2} vs baseline {old_val:.2} (floor {floor:.2})");
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("infer check passed");
    } else {
        std::fs::write(&out_path, render_json(&results, &quant))
            .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
        println!("wrote {out_path}");
    }
}
