//! Inference-engine harness: serves the default ST-WA configuration
//! through both eval paths on synthetic PEMS-shaped requests —
//!
//! - **graph**: the training-time eval forward (autograd tape built and
//!   discarded per call), and
//! - **infer**: the frozen `stwa-infer` session (tape-free, frozen
//!   latents, pre-decoded projections where input-independent, packed
//!   GEMM panels, plan arena),
//!
//! at batch sizes 1, 8, and 64, reporting p50/p99 latency and rows/sec
//! for each. Every measured pair is asserted bitwise identical before
//! timing begins — the engine is only fast because it skips bookkeeping,
//! never because it changes arithmetic.
//!
//! The speedups are same-run ratios, so the `--check` gate is portable
//! across hosts of different absolute speed, exactly like
//! `bench_kernels` and `bench_train_step`. The batch-1 speedup is also
//! a hard floor: below 2x the engine has lost its reason to exist.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use stwa_autograd::Graph;
use stwa_core::{ForecastModel, StwaConfig, StwaModel};
use stwa_infer::InferSession;
use stwa_tensor::Tensor;

/// Allowed relative loss of a baseline ratio before `--check` fails.
const REGRESSION_TOLERANCE: f64 = 0.15;
/// Hard floor on the batch-1 speedup, independent of any baseline.
const MIN_SPEEDUP_B1: f64 = 2.0;

const SENSORS: usize = 32;
const HISTORY: usize = 12;
const HORIZON: usize = 3;
const BATCHES: [usize; 3] = [1, 8, 64];

const WARMUP: usize = 3;
/// Per-batch measured iterations, scaled down as rows per call grow.
fn iters_for(batch: usize) -> usize {
    match batch {
        1 => 120,
        8 => 24,
        _ => 8,
    }
}

struct PathStats {
    p50_ms: f64,
    p99_ms: f64,
    rows_per_sec: f64,
}

struct BatchResult {
    batch: usize,
    graph: PathStats,
    infer: PathStats,
}

impl BatchResult {
    /// Graph-path p50 over infer-path p50 (same run).
    fn speedup(&self) -> f64 {
        self.graph.p50_ms / self.infer.p50_ms
    }
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    let idx = ((sorted_ms.len() as f64 * q).ceil() as usize)
        .saturating_sub(1)
        .min(sorted_ms.len() - 1);
    sorted_ms[idx]
}

/// Time the two paths with their iterations interleaved pairwise, so a
/// noisy-neighbour burst (or a frequency-scaling step) lands on both
/// sides of the ratio instead of skewing one whole phase.
fn measure_pair(
    batch: usize,
    mut graph: impl FnMut(),
    mut infer: impl FnMut(),
) -> (PathStats, PathStats) {
    for _ in 0..WARMUP {
        graph();
        infer();
    }
    let iters = iters_for(batch);
    let mut graph_ms = Vec::with_capacity(iters);
    let mut infer_ms = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        graph();
        graph_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        infer();
        infer_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let stats = |ms: &mut Vec<f64>| {
        ms.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let p50 = percentile(ms, 0.50);
        PathStats {
            p50_ms: p50,
            p99_ms: percentile(ms, 0.99),
            rows_per_sec: batch as f64 / (p50 / 1e3),
        }
    };
    (stats(&mut graph_ms), stats(&mut infer_ms))
}

fn graph_eval(model: &StwaModel, x: &Tensor) -> Tensor {
    let g = Graph::new();
    let xv = g.constant(x.clone());
    let mut rng = StdRng::seed_from_u64(0);
    let out = model.forward(&g, &xv, &mut rng, false).expect("forward");
    out.pred.value().as_ref().clone()
}

fn run_suite() -> Vec<BatchResult> {
    let mut rng = StdRng::seed_from_u64(42);
    let model =
        StwaModel::new(StwaConfig::st_wa(SENSORS, HISTORY, HORIZON), &mut rng).expect("model");
    let session = InferSession::new(&model).expect("freeze");

    BATCHES
        .iter()
        .map(|&batch| {
            let x = Tensor::randn(&[batch, SENSORS, HISTORY, 1], &mut rng);
            // Correctness first: the two paths must agree bit-for-bit.
            let want = graph_eval(&model, &x);
            let got = session.run(&x).expect("infer");
            assert_eq!(
                want.data(),
                got.data(),
                "batch {batch}: frozen path diverged from graph eval"
            );
            let (graph, infer) = measure_pair(
                batch,
                || {
                    std::hint::black_box(graph_eval(&model, &x));
                },
                || {
                    std::hint::black_box(session.run(&x).expect("infer"));
                },
            );
            BatchResult {
                batch,
                graph,
                infer,
            }
        })
        .collect()
}

fn render_json(results: &[BatchResult]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"threads\": {},\n  \"shape\": \"[B,{SENSORS},{HISTORY},1] -> [B,{SENSORS},{HORIZON},1]\",\n",
        stwa_pool::current_threads()
    ));
    for r in results {
        let b = r.batch;
        s.push_str(&format!(
            "  \"b{b}_graph_p50_ms\": {:.3},\n  \"b{b}_graph_p99_ms\": {:.3},\n  \
             \"b{b}_infer_p50_ms\": {:.3},\n  \"b{b}_infer_p99_ms\": {:.3},\n  \
             \"b{b}_infer_rows_per_sec\": {:.1},\n  \"b{b}_speedup\": {:.3},\n",
            r.graph.p50_ms,
            r.graph.p99_ms,
            r.infer.p50_ms,
            r.infer.p99_ms,
            r.infer.rows_per_sec,
            r.speedup(),
        ));
    }
    s.push_str(&format!(
        "  \"min_speedup_b1\": {MIN_SPEEDUP_B1:.1}\n}}\n"
    ));
    s
}

/// Pull a `"key": value` number back out of a report written by
/// [`render_json`] (one key per line — no JSON dependency needed).
fn parse_number(json: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    for line in json.lines() {
        if let Some(at) = line.find(&tag) {
            let s: String = line[at + tag.len()..]
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
                .collect();
            return s.parse().ok();
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_infer.json".to_string();
    let mut check_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = args.get(i + 1).expect("--out needs a path").clone();
                i += 2;
            }
            "--check" => {
                check_path = Some(args.get(i + 1).expect("--check needs a path").clone());
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other}; usage: bench_infer [--out PATH | --check PATH]");
                std::process::exit(2);
            }
        }
    }

    let results = run_suite();
    for r in &results {
        println!(
            "batch {:>2}  graph p50 {:>7.2} ms  infer p50 {:>7.2} ms  p99 {:>7.2} ms  \
             {:>9.0} rows/s  speedup {:.2}x",
            r.batch,
            r.graph.p50_ms,
            r.infer.p50_ms,
            r.infer.p99_ms,
            r.infer.rows_per_sec,
            r.speedup()
        );
    }

    let b1 = results.iter().find(|r| r.batch == 1).expect("batch 1 run");
    if b1.speedup() < MIN_SPEEDUP_B1 {
        eprintln!(
            "REGRESSION: batch-1 speedup {:.2}x fell below the {MIN_SPEEDUP_B1:.1}x floor",
            b1.speedup()
        );
        std::process::exit(1);
    }

    if let Some(baseline_path) = check_path {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let mut failed = false;
        for r in &results {
            let key = format!("b{}_speedup", r.batch);
            let Some(old_val) = parse_number(&baseline, &key) else {
                println!("note: no baseline value for {key}, skipping");
                continue;
            };
            let new_val = r.speedup();
            let floor = old_val * (1.0 - REGRESSION_TOLERANCE);
            if new_val < floor {
                eprintln!(
                    "REGRESSION {key}: {new_val:.2} fell below {floor:.2} \
                     (baseline {old_val:.2} - {:.0}% tolerance)",
                    REGRESSION_TOLERANCE * 100.0
                );
                failed = true;
            } else {
                println!("ok {key}: {new_val:.2} vs baseline {old_val:.2} (floor {floor:.2})");
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("infer check passed");
    } else {
        std::fs::write(&out_path, render_json(&results))
            .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
        println!("wrote {out_path}");
    }
}
