//! Kernel throughput harness: measures the production matmul paths
//! (blocked/packed, fused NT, pool-split) against the retained naive
//! reference on the shapes the models actually run, and writes the
//! results to `BENCH_kernels.json`.
//!
//! Modes:
//!
//! - `bench_kernels [--out PATH]` — run the suite, print a table, write
//!   the JSON report (default `BENCH_kernels.json` in the CWD).
//! - `bench_kernels --check PATH` — run the suite and compare against a
//!   checked-in baseline report; exits nonzero if any shape's
//!   *normalized* throughput (production kernel relative to the naive
//!   reference measured in the same run) regressed more than 15%.
//!   Normalizing by the same-run reference makes the gate portable
//!   across hosts of different absolute speed: a uniformly slower
//!   machine slows both kernels equally, while a real kernel regression
//!   shows up in the ratio.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use stwa_tensor::{linalg, Tensor};

/// Allowed relative loss of normalized throughput before `--check` fails.
const REGRESSION_TOLERANCE: f64 = 0.15;

/// Per-sample measurement budget; long enough to swamp timer noise for
/// every shape in the suite.
const TARGET_SAMPLE_MS: f64 = 150.0;

struct Entry {
    name: &'static str,
    shape: String,
    flops: usize,
    reference_ms: f64,
    kernel_ms: f64,
}

impl Entry {
    fn reference_gflops(&self) -> f64 {
        self.flops as f64 / (self.reference_ms * 1e6)
    }
    fn kernel_gflops(&self) -> f64 {
        self.flops as f64 / (self.kernel_ms * 1e6)
    }
    /// Production throughput normalized by the same-run reference.
    fn speedup(&self) -> f64 {
        self.reference_ms / self.kernel_ms
    }
}

/// Mean per-call milliseconds, adaptively iterated until the timed
/// window reaches [`TARGET_SAMPLE_MS`]; best of three windows.
fn time_ms(mut f: impl FnMut()) -> f64 {
    f(); // warmup: page in buffers, spawn pool workers, pack scratch
    let mut iters = 1u64;
    let mut best = f64::INFINITY;
    let mut windows = 0;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        if ms < TARGET_SAMPLE_MS && windows == 0 {
            let scale = (TARGET_SAMPLE_MS / ms.max(1e-3)).ceil();
            iters = (iters as f64 * scale.clamp(2.0, 256.0)) as u64;
            continue;
        }
        best = best.min(ms / iters as f64);
        windows += 1;
        if windows >= 3 {
            return best;
        }
    }
}

fn measure(
    name: &'static str,
    shape: String,
    flops: usize,
    mut kernel: impl FnMut(),
    mut reference: impl FnMut(),
) -> Entry {
    let kernel_ms = time_ms(&mut kernel);
    let reference_ms = time_ms(&mut reference);
    Entry {
        name,
        shape,
        flops,
        reference_ms,
        kernel_ms,
    }
}

fn run_suite() -> Vec<Entry> {
    let mut rng = StdRng::seed_from_u64(42);
    let mut entries = Vec::new();

    // Square single-matrix products: the predictor/generator dense
    // layers. 512 is the acceptance shape for the blocked kernel.
    for s in [64usize, 128, 256, 512] {
        let a = Tensor::randn(&[s, s], &mut rng);
        let b = Tensor::randn(&[s, s], &mut rng);
        let name: &'static str = match s {
            64 => "square_64",
            128 => "square_128",
            256 => "square_256",
            _ => "square_512",
        };
        entries.push(measure(
            name,
            format!("[{s},{s}]@[{s},{s}]"),
            2 * s * s * s,
            || {
                std::hint::black_box(linalg::matmul(&a, &b).unwrap());
            },
            || {
                std::hint::black_box(linalg::matmul_reference(&a, &b).unwrap());
            },
        ));
    }

    // The satellite regression shape: a unit batch axis must not defeat
    // intra-matrix parallelism.
    {
        let a = Tensor::randn(&[1, 512, 512], &mut rng);
        let b = Tensor::randn(&[512, 512], &mut rng);
        entries.push(measure(
            "batch1_512",
            "[1,512,512]@[512,512]".into(),
            2 * 512 * 512 * 512,
            || {
                std::hint::black_box(linalg::matmul(&a, &b).unwrap());
            },
            || {
                std::hint::black_box(linalg::matmul_reference(&a, &b).unwrap());
            },
        ));
    }

    // Attention scores, fused Q·Kᵀ vs materialized transpose: the shape
    // window attention produces per layer ([B·heads, T, d]).
    {
        let q = Tensor::randn(&[64, 24, 32], &mut rng);
        let k = Tensor::randn(&[64, 24, 32], &mut rng);
        entries.push(measure(
            "attention_qkt",
            "[64,24,32]@[64,24,32]^T".into(),
            2 * 64 * 24 * 24 * 32,
            || {
                std::hint::black_box(linalg::matmul_nt(&q, &k).unwrap());
            },
            || {
                std::hint::black_box(
                    linalg::matmul(&q, &k.transpose_last2().unwrap()).unwrap(),
                );
            },
        ));
    }

    // Wide batched product: the per-sensor projection pattern.
    {
        let a = Tensor::randn(&[128, 32, 32], &mut rng);
        let b = Tensor::randn(&[128, 32, 32], &mut rng);
        entries.push(measure(
            "batched_128x32",
            "[128,32,32]@[128,32,32]".into(),
            2 * 128 * 32 * 32 * 32,
            || {
                std::hint::black_box(linalg::matmul(&a, &b).unwrap());
            },
            || {
                std::hint::black_box(linalg::matmul_reference(&a, &b).unwrap());
            },
        ));
    }

    entries
}

fn render_json(entries: &[Entry], total_wall_ms: f64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"threads\": {},\n  \"total_wall_ms\": {:.1},\n  \"entries\": [\n",
        stwa_pool::current_threads(),
        total_wall_ms
    ));
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"shape\": \"{}\", \"flops\": {}, \
             \"reference_ms\": {:.4}, \"kernel_ms\": {:.4}, \
             \"reference_gflops\": {:.3}, \"kernel_gflops\": {:.3}, \
             \"speedup\": {:.3}}}{}\n",
            e.name,
            e.shape,
            e.flops,
            e.reference_ms,
            e.kernel_ms,
            e.reference_gflops(),
            e.kernel_gflops(),
            e.speedup(),
            comma
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pull `"name": ..., "speedup": ...` pairs back out of a report. The
/// writer above emits one entry per line, so a line-oriented scan is
/// enough — no JSON dependency in the workspace.
fn parse_speedups(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name_at) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else {
            continue;
        };
        let name = rest[..name_end].to_string();
        let Some(spd_at) = line.find("\"speedup\": ") else {
            continue;
        };
        let spd_str: String = line[spd_at + 11..]
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = spd_str.parse::<f64>() {
            out.push((name, v));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_kernels.json".to_string();
    let mut check_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = args.get(i + 1).expect("--out needs a path").clone();
                i += 2;
            }
            "--check" => {
                check_path = Some(args.get(i + 1).expect("--check needs a path").clone());
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other}; usage: bench_kernels [--out PATH | --check PATH]");
                std::process::exit(2);
            }
        }
    }

    let t0 = Instant::now();
    let entries = run_suite();
    let total_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    println!(
        "{:<16} {:>26} {:>10} {:>10} {:>9} {:>9} {:>8}",
        "shape", "dims", "ref ms", "kernel ms", "ref GF/s", "ker GF/s", "speedup"
    );
    for e in &entries {
        println!(
            "{:<16} {:>26} {:>10.3} {:>10.3} {:>9.2} {:>9.2} {:>7.2}x",
            e.name,
            e.shape,
            e.reference_ms,
            e.kernel_ms,
            e.reference_gflops(),
            e.kernel_gflops(),
            e.speedup()
        );
    }
    println!(
        "threads: {}, total wall: {:.0} ms",
        stwa_pool::current_threads(),
        total_wall_ms
    );

    if let Some(baseline_path) = check_path {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let old = parse_speedups(&baseline);
        let mut failed = false;
        for e in &entries {
            let Some((_, old_spd)) = old.iter().find(|(n, _)| n == e.name) else {
                println!("note: no baseline entry for {}, skipping", e.name);
                continue;
            };
            let new_spd = e.speedup();
            let floor = old_spd * (1.0 - REGRESSION_TOLERANCE);
            if new_spd < floor {
                eprintln!(
                    "REGRESSION {}: normalized speedup {new_spd:.2}x fell below \
                     {floor:.2}x (baseline {old_spd:.2}x - {:.0}% tolerance)",
                    e.name,
                    REGRESSION_TOLERANCE * 100.0
                );
                failed = true;
            } else {
                println!(
                    "ok {}: {new_spd:.2}x vs baseline {old_spd:.2}x (floor {floor:.2}x)",
                    e.name
                );
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("throughput check passed");
    } else {
        std::fs::write(&out_path, render_json(&entries, total_wall_ms))
            .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
        println!("wrote {out_path}");
    }
}
